#!/usr/bin/env python
"""Validate the SLO-report artefacts (``make slo``).

Usage: python scripts/check_slo.py SLO.json [METRICS.prom]

Checks ``slo.json`` against the ``repro-slo-v1`` schema: every objective
carries the full grading row, the breach count matches the per-objective
verdicts, the error-budget arithmetic is internally consistent, and the
reported latency quantiles are monotone (p50 <= p95 <= p99 <= p999 —
the property the bucket-walk estimator guarantees).  The optional
OpenMetrics exposition is checked for parseability: a ``# EOF``
terminator, well-formed ``# TYPE`` declarations, and every sample line
belonging to a declared family.
"""

from __future__ import annotations

import json
import re
import sys

QUANTILE_ORDER = ("p50", "p95", "p99", "p999")

OBJECTIVE_KEYS = (
    "name",
    "scope",
    "match",
    "quantile",
    "threshold_us",
    "observed_us",
    "latency_ok",
    "calls",
    "errors",
    "error_rate",
    "error_budget",
    "budget_consumed",
    "budget_burn_per_day",
    "budget_ok",
    "ok",
)

_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")


def check_slo(path: str) -> list[str]:
    with open(path) as handle:
        document = json.load(handle)
    problems: list[str] = []
    if document.get("schema") != "repro-slo-v1":
        problems.append("slo schema is %r" % document.get("schema"))
    if not document.get("bundle"):
        problems.append("slo bundle name missing")
    window = document.get("window_days")
    if not isinstance(window, (int, float)) or window <= 0:
        problems.append("window_days %r is not a positive number" % window)
    objectives = document.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        problems.append("objectives missing or empty")
        objectives = []
    breaches = 0
    for objective in objectives:
        name = objective.get("name", "?")
        missing = [key for key in OBJECTIVE_KEYS if key not in objective]
        if missing:
            problems.append("objective %r missing keys %r" % (name, missing))
            continue
        if not objective["ok"]:
            breaches += 1
        if objective["ok"] != (objective["latency_ok"] and objective["budget_ok"]):
            problems.append("objective %r verdict is inconsistent" % name)
        if objective["errors"] > objective["calls"]:
            problems.append("objective %r has more errors than calls" % name)
        budget = objective["error_budget"]
        if budget > 0:
            expected = min(1.0, objective["error_rate"] / budget)
            if abs(objective["budget_consumed"] - expected) > 1e-4:
                problems.append(
                    "objective %r budget_consumed %.6f != error_rate/budget %.6f"
                    % (name, objective["budget_consumed"], expected)
                )
    if objectives and document.get("breaches") != breaches:
        problems.append(
            "breaches is %r but %d objectives failed"
            % (document.get("breaches"), breaches)
        )
    latency = document.get("latency")
    if not isinstance(latency, dict):
        problems.append("latency section missing")
        latency = {}
    for section in ("by_method", "by_host"):
        rows = latency.get(section)
        if not isinstance(rows, dict):
            problems.append("latency.%s missing" % section)
            continue
        if rows and "*" not in rows:
            problems.append("latency.%s has rows but no '*' aggregate" % section)
        for series, row in rows.items():
            quantiles = [
                row.get(q) for q in QUANTILE_ORDER if row.get(q) is not None
            ]
            if quantiles != sorted(quantiles):
                problems.append(
                    "latency.%s[%r] quantiles not monotone: %r"
                    % (section, series, quantiles)
                )
    return problems


def check_openmetrics(path: str) -> list[str]:
    with open(path) as handle:
        text = handle.read()
    problems: list[str] = []
    if not text.endswith("# EOF\n"):
        return ["openmetrics exposition does not end with '# EOF'"]
    declared: set[str] = set()
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append("content after the '# EOF' terminator")
            continue
        if line.startswith("#"):
            match = _TYPE_RE.match(line)
            if match is None:
                problems.append("line %d: bad comment %r" % (lineno, line))
                continue
            if match.group(1) in declared:
                problems.append("line %d: duplicate TYPE for %r" % (lineno, match.group(1)))
            declared.add(match.group(1))
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append("line %d: unparseable sample %r" % (lineno, line))
            continue
        name = match.group(1)
        candidates = {name}
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                candidates.add(name[: -len(suffix)])
        if not candidates & declared:
            problems.append("line %d: sample %r has no TYPE declaration" % (lineno, name))
        try:
            float(match.group(3))
        except ValueError:
            problems.append("line %d: bad value %r" % (lineno, match.group(3)))
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = check_slo(argv[0])
    if argv[1:]:
        problems += check_openmetrics(argv[1])
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        return 1
    with open(argv[0]) as handle:
        document = json.load(handle)
    print(
        "ok: %s (bundle %s, %d objectives, %d breaches over %.0f virtual days)"
        % (
            argv[0],
            document["bundle"],
            len(document["objectives"]),
            document["breaches"],
            document["window_days"],
        )
    )
    if argv[1:]:
        print("ok: %s" % argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

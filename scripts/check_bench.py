#!/usr/bin/env python
"""Guard the read-path microbenchmarks in BENCH_perf.json (``make bench``).

Usage: python scripts/check_bench.py BENCH_perf.json

Fails (exit 1) if:
  * any of the read-path throughput metrics is missing, or
  * the cached variant is less than MIN_CACHE_SPEEDUP x the uncached
    variant measured in the same run, or
  * the deterministic read-cache hit/miss counters disappeared from the
    benchmark output, or
  * the worker-supervision guardrails regress: the faulted workers=4
    chaos leg is missing or no longer byte-identical, or the supervision
    machinery's overhead on a fault-free run exceeds
    MAX_SUPERVISION_OVERHEAD_PCT (with a small absolute-seconds slack so
    a noisy single-core CI box can't flake the build on a 0.1s delta), or
  * the SLO/observability export (metrics.prom + slo.json + events.jsonl
    rendering) costs more than MAX_SLO_OVERHEAD_PCT of the pipeline wall
    it reports on (same absolute-slack escape hatch).

The cached/uncached and supervised/unsupervised comparisons are
within-run, so they are robust to the absolute speed of the machine
running CI.
"""

from __future__ import annotations

import json
import sys

READ_METRICS = ("timeline_ops_per_s", "getfeed_ops_per_s", "search_ops_per_s")
MIN_CACHE_SPEEDUP = 5.0
MAX_SUPERVISION_OVERHEAD_PCT = 5.0
SUPERVISION_OVERHEAD_SLACK_S = 0.75
MAX_SLO_OVERHEAD_PCT = 5.0
SLO_OVERHEAD_SLACK_S = 0.25


def check(document: dict) -> list[str]:
    problems = []
    optimized = document.get("optimized")
    if not isinstance(optimized, dict):
        return ["no 'optimized' section in bench file"]
    for name in READ_METRICS:
        cached = optimized.get(name)
        uncached = optimized.get(name.replace("_ops_per_s", "_uncached_ops_per_s"))
        if not isinstance(cached, (int, float)):
            problems.append("missing read metric %r" % name)
            continue
        if not isinstance(uncached, (int, float)) or uncached <= 0:
            problems.append("missing uncached reference for %r" % name)
            continue
        ratio = cached / uncached
        if ratio < MIN_CACHE_SPEEDUP:
            problems.append(
                "%s cached/uncached ratio %.2fx < %.1fx"
                % (name, ratio, MIN_CACHE_SPEEDUP)
            )
    counters = optimized.get("read_cache_counters")
    if not isinstance(counters, dict) or not counters:
        problems.append("read_cache_counters missing or empty")
    else:
        if not any(key.startswith("read_cache_hits_total") for key in counters):
            problems.append("no read_cache_hits_total series in counters")
        if not any(key.startswith("read_cache_misses_total") for key in counters):
            problems.append("no read_cache_misses_total series in counters")
    problems.extend(check_supervision(optimized))
    problems.extend(check_slo_overhead(optimized))
    return problems


def check_supervision(optimized: dict) -> list[str]:
    problems = []
    if optimized.get("sharded_faulted_artefacts_identical") is not True:
        problems.append(
            "sharded_faulted_artefacts_identical is not True: the faulted "
            "workers=4 chaos leg diverged (or was not run)"
        )
    faulted = optimized.get("pipeline_tiny_workers4_faulted_wall_s")
    if not isinstance(faulted, (int, float)) or faulted <= 0:
        problems.append("missing pipeline_tiny_workers4_faulted_wall_s")
    supervised = optimized.get("pipeline_tiny_workers4_wall_s")
    legacy = optimized.get("pipeline_tiny_workers4_nosupervision_wall_s")
    if not isinstance(supervised, (int, float)) or not isinstance(
        legacy, (int, float)
    ) or legacy <= 0:
        problems.append(
            "missing workers=4 supervised/unsupervised wall metrics for the "
            "supervision-overhead guardrail"
        )
        return problems
    overhead_pct = (supervised - legacy) / legacy * 100
    if (
        overhead_pct > MAX_SUPERVISION_OVERHEAD_PCT
        and supervised - legacy > SUPERVISION_OVERHEAD_SLACK_S
    ):
        problems.append(
            "supervision overhead on a fault-free run is %.2f%% "
            "(%.2fs supervised vs %.2fs heartbeats-off), above the %.1f%% "
            "guardrail" % (overhead_pct, supervised, legacy, MAX_SUPERVISION_OVERHEAD_PCT)
        )
    return problems


def check_slo_overhead(optimized: dict) -> list[str]:
    problems = []
    export_wall = optimized.get("slo_export_wall_s")
    reference = optimized.get("slo_pipeline_reference_wall_s")
    if not isinstance(export_wall, (int, float)) or not isinstance(
        reference, (int, float)
    ) or reference <= 0:
        problems.append(
            "missing slo_export_wall_s / slo_pipeline_reference_wall_s for "
            "the SLO-export overhead guardrail"
        )
        return problems
    overhead_pct = export_wall / reference * 100
    if overhead_pct > MAX_SLO_OVERHEAD_PCT and export_wall > SLO_OVERHEAD_SLACK_S:
        problems.append(
            "SLO/observability export costs %.2f%% of the pipeline wall "
            "(%.3fs export vs %.2fs pipeline), above the %.1f%% guardrail"
            % (overhead_pct, export_wall, reference, MAX_SLO_OVERHEAD_PCT)
        )
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        document = json.load(handle)
    problems = check(document)
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        return 1
    ratios = []
    optimized = document["optimized"]
    for name in READ_METRICS:
        uncached = optimized[name.replace("_ops_per_s", "_uncached_ops_per_s")]
        ratios.append("%s %.1fx" % (name.split("_")[0], optimized[name] / uncached))
    supervised = optimized["pipeline_tiny_workers4_wall_s"]
    legacy = optimized["pipeline_tiny_workers4_nosupervision_wall_s"]
    ratios.append(
        "supervision overhead %+.1f%%" % ((supervised - legacy) / legacy * 100)
    )
    ratios.append(
        "slo export %.2f%%"
        % (
            optimized["slo_export_wall_s"]
            / optimized["slo_pipeline_reference_wall_s"]
            * 100
        )
    )
    print("ok: %s (%s)" % (argv[0], ", ".join(ratios)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

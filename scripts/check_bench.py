#!/usr/bin/env python
"""Guard the read-path microbenchmarks in BENCH_perf.json (``make bench``).

Usage: python scripts/check_bench.py BENCH_perf.json

Fails (exit 1) if:
  * any of the read-path throughput metrics is missing, or
  * the cached variant is less than MIN_CACHE_SPEEDUP x the uncached
    variant measured in the same run, or
  * the deterministic read-cache hit/miss counters disappeared from the
    benchmark output.

The cached/uncached comparison is within-run, so it is robust to the
absolute speed of the machine running CI.
"""

from __future__ import annotations

import json
import sys

READ_METRICS = ("timeline_ops_per_s", "getfeed_ops_per_s", "search_ops_per_s")
MIN_CACHE_SPEEDUP = 5.0


def check(document: dict) -> list[str]:
    problems = []
    optimized = document.get("optimized")
    if not isinstance(optimized, dict):
        return ["no 'optimized' section in bench file"]
    for name in READ_METRICS:
        cached = optimized.get(name)
        uncached = optimized.get(name.replace("_ops_per_s", "_uncached_ops_per_s"))
        if not isinstance(cached, (int, float)):
            problems.append("missing read metric %r" % name)
            continue
        if not isinstance(uncached, (int, float)) or uncached <= 0:
            problems.append("missing uncached reference for %r" % name)
            continue
        ratio = cached / uncached
        if ratio < MIN_CACHE_SPEEDUP:
            problems.append(
                "%s cached/uncached ratio %.2fx < %.1fx"
                % (name, ratio, MIN_CACHE_SPEEDUP)
            )
    counters = optimized.get("read_cache_counters")
    if not isinstance(counters, dict) or not counters:
        problems.append("read_cache_counters missing or empty")
    else:
        if not any(key.startswith("read_cache_hits_total") for key in counters):
            problems.append("no read_cache_hits_total series in counters")
        if not any(key.startswith("read_cache_misses_total") for key in counters):
            problems.append("no read_cache_misses_total series in counters")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        document = json.load(handle)
    problems = check(document)
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        return 1
    ratios = []
    optimized = document["optimized"]
    for name in READ_METRICS:
        uncached = optimized[name.replace("_ops_per_s", "_uncached_ops_per_s")]
        ratios.append("%s %.1fx" % (name.split("_")[0], optimized[name] / uncached))
    print("ok: %s (%s)" % (argv[0], ", ".join(ratios)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

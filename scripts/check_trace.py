#!/usr/bin/env python
"""Sanity-check a Chrome trace_event JSON file (``make trace``).

Usage: python scripts/check_trace.py TRACE.json [METRICS.json]

Exits non-zero if the trace would not load in chrome://tracing /
Perfetto, or if the optional metrics snapshot is malformed.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.trace import validate_trace  # noqa: E402


def check_metrics(path: str) -> list[str]:
    with open(path) as handle:
        snapshot = json.load(handle)
    problems = []
    if snapshot.get("schema") != "repro-metrics-v1":
        problems.append("metrics schema is %r" % snapshot.get("schema"))
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            problems.append("metrics %r section missing" % section)
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        document = json.load(handle)
    problems = validate_trace(document)
    events = document.get("traceEvents") or []
    if argv[1:]:
        problems += check_metrics(argv[1])
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        return 1
    print("ok: %s (%d events)" % (argv[0], len(events)))
    if argv[1:]:
        print("ok: %s" % argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Sanity-check the traced-study artefacts (``make trace``).

Usage: python scripts/check_trace.py TRACE.json [METRICS.json [EVENTS.jsonl]]

Exits non-zero if the trace would not load in chrome://tracing /
Perfetto, if its phase/study spans fail to nest, if the wall track is
not recorded in completion order, or if the optional metrics snapshot /
event log is malformed.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.events import validate_events_lines  # noqa: E402
from repro.obs.trace import (  # noqa: E402
    validate_span_nesting,
    validate_trace,
    validate_wall_monotonic,
)


def check_metrics(path: str) -> list[str]:
    with open(path) as handle:
        snapshot = json.load(handle)
    problems = []
    if snapshot.get("schema") != "repro-metrics-v1":
        problems.append("metrics schema is %r" % snapshot.get("schema"))
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            problems.append("metrics %r section missing" % section)
    return problems


def check_events(path: str) -> list[str]:
    with open(path) as handle:
        return ["events: %s" % problem for problem in validate_events_lines(handle)]


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        document = json.load(handle)
    problems = validate_trace(document)
    problems += validate_span_nesting(document)
    problems += validate_wall_monotonic(document)
    events = document.get("traceEvents") or []
    if argv[1:]:
        problems += check_metrics(argv[1])
    if argv[2:]:
        problems += check_events(argv[2])
    if problems:
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        return 1
    print("ok: %s (%d events, spans nested, wall track monotone)" % (argv[0], len(events)))
    for extra in argv[1:3]:
        print("ok: %s" % extra)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

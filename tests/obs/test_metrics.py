"""Tests for the metrics registry (counters, gauges, histograms)."""

import json
import random
from bisect import bisect_right

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    MetricsRegistry,
    NullRegistry,
    percentile_from_record,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("calls_total", (), ()) == "calls_total"

    def test_labels_render_in_declared_order(self):
        key = series_key("calls_total", ("host", "outcome"), ("a.test", "ok"))
        assert key == "calls_total{host=a.test,outcome=ok}"


class TestCounters:
    def test_inc_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", ("kind",))
        counter.inc(("commit",))
        counter.inc(("commit",), 2)
        counter.inc(("identity",))
        assert counter.get(("commit",)) == 3
        assert counter.total() == 4

    def test_unlabeled_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total")
        counter.inc()
        counter.inc((), 5)
        assert counter.total() == 6

    def test_sum_by_projects_one_label(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls_total", ("host", "outcome"))
        counter.inc(("a.test", "ok"), 3)
        counter.inc(("a.test", "error"), 1)
        counter.inc(("b.test", "ok"), 2)
        assert counter.sum_by(0) == {"a.test": 4, "b.test": 2}
        assert counter.sum_by(1) == {"ok": 5, "error": 1}

    def test_idempotent_declaration_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", ("a",))
        again = registry.counter("x_total", ("a",))
        assert first is again

    def test_conflicting_declaration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", ("b",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", ("a",))


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us", ("host",))
        hist.observe(("h",), 500)            # <= 1ms bucket
        hist.observe(("h",), 40_000)         # <= 50ms bucket
        hist.observe(("h",), 10**9)          # overflow bucket
        counts, total, count, overflow_sum = hist.get(("h",))
        assert count == 3
        assert total == 500 + 40_000 + 10**9
        assert sum(counts) == 3
        assert counts[-1] == 1  # the +Inf bucket
        assert overflow_sum == 10**9  # only the overflow observation

    def test_percentile_reports_bucket_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        for _ in range(99):
            hist.observe((), 500)
        hist.observe((), 40_000)
        assert hist.percentile((), 0.50) == LATENCY_BUCKETS_US[0]
        assert hist.percentile((), 0.99) == LATENCY_BUCKETS_US[0]
        assert hist.percentile((), 1.0) == 50_000

    def test_percentile_empty_is_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        assert hist.percentile((), 0.5) is None

    def test_overflow_estimate_is_overflow_mean(self):
        # The tail estimate must be the mean of the *overflow* population
        # only — the old everything-mean was dragged below bounds[-1] by
        # the finite buckets.
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        for _ in range(1000):
            hist.observe((), 2_000)
        for value in (700_000_000, 900_000_000):
            hist.observe((), value)
        assert hist.percentile((), 0.999) == 800_000_000

    def test_overflow_estimate_clamped_to_last_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        hist.observe((), LATENCY_BUCKETS_US[-1] + 1)
        assert hist.percentile((), 0.999) >= LATENCY_BUCKETS_US[-1]


class TestPercentileProperty:
    """The estimate vs exact quantiles on seeded random samples.

    For a quantile whose order statistic lands in a finite bucket, the
    estimate is exactly that bucket's upper bound: it never undershoots
    the true quantile and overshoots by less than one bucket width.
    """

    QS = (0.01, 0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999)

    def _samples(self, seed):
        rng = random.Random(seed)
        # Log-normal-ish latencies, clamped inside the finite buckets so
        # every order statistic has a well-defined bucket upper bound.
        return [
            min(int(rng.lognormvariate(9.5, 2.0)) + 1, LATENCY_BUCKETS_US[-1] - 1)
            for _ in range(5000)
        ]

    @staticmethod
    def _exact_order_statistic(ordered, q):
        # The value the bucket walk's ``seen >= q * count`` rank selects.
        target = q * len(ordered)
        seen = 0
        for value in ordered:
            seen += 1
            if seen >= target:
                return value
        return ordered[-1]

    @pytest.mark.parametrize("seed", [7, 1234, 999])
    def test_estimate_is_bucket_upper_bound_of_exact_quantile(self, seed):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_us")
        samples = self._samples(seed)
        for value in samples:
            hist.observe((), value)
        ordered = sorted(samples)
        for q in self.QS:
            exact = self._exact_order_statistic(ordered, q)
            expected = LATENCY_BUCKETS_US[bisect_right(LATENCY_BUCKETS_US, exact)]
            estimate = hist.percentile((), q)
            assert estimate == expected
            assert estimate >= exact  # never undershoots

    @pytest.mark.parametrize("seed", [7, 1234, 999])
    def test_estimate_monotone_in_q(self, seed):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_us")
        for value in self._samples(seed):
            hist.observe((), value)
        estimates = [hist.percentile((), q) for q in self.QS]
        assert estimates == sorted(estimates)

    def test_snapshot_record_matches_family(self):
        # percentile_from_record over the snapshot entry must agree with
        # the family's own estimate (the SLO evaluator's code path).
        registry = MetricsRegistry()
        hist = registry.histogram("lat_us")
        for value in self._samples(42):
            hist.observe((), value)
        hist.observe((), 10**9)
        entry = registry.snapshot()["histograms"]["lat_us"]
        bounds = tuple(b for b in entry["le"] if b != "+Inf")
        for q in self.QS:
            assert percentile_from_record(
                bounds, entry["counts"], entry["count"], entry["overflow_sum"], q
            ) == hist.percentile((), q)


class TestOpenMetrics:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", ("host", "outcome")).inc(("a.test", "ok"), 3)
        registry.counter("calls_total", ("host", "outcome")).inc(("a.test", "error"), 1)
        registry.gauge("depth", ("host",)).set(("h",), 7)
        hist = registry.histogram("lat_us", ("host",))
        hist.observe(("h",), 500)
        hist.observe(("h",), 40_000)
        registry.counter("wall_us_total", volatile=True).inc((), 99)
        return registry

    def test_counter_type_uses_base_name_sample_keeps_total(self):
        text = self.build().render_openmetrics()
        assert "# TYPE calls counter\n" in text
        assert 'calls_total{host="a.test",outcome="ok"} 3\n' in text
        assert "# TYPE calls_total" not in text

    def test_histogram_buckets_cumulative_with_sum_and_count(self):
        text = self.build().render_openmetrics()
        assert 'lat_us_bucket{host="h",le="1000"} 1\n' in text
        assert 'lat_us_bucket{host="h",le="50000"} 2\n' in text
        assert 'lat_us_bucket{host="h",le="+Inf"} 2\n' in text
        assert 'lat_us_sum{host="h"} 40500\n' in text
        assert 'lat_us_count{host="h"} 2\n' in text

    def test_gauge_and_eof_terminator(self):
        text = self.build().render_openmetrics()
        assert "# TYPE depth gauge\n" in text
        assert 'depth{host="h"} 7\n' in text
        assert text.endswith("# EOF\n")

    def test_volatile_excluded_by_default_included_on_request(self):
        assert "wall_us_total" not in self.build().render_openmetrics()
        assert "wall_us_total 99" in self.build().render_openmetrics(
            include_volatile=True
        )

    def test_byte_identical_across_builds(self):
        assert self.build().render_openmetrics() == self.build().render_openmetrics()

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", ("v",)).inc(('a"b\\c\nd',))
        text = registry.render_openmetrics()
        assert 'odd_total{v="a\\"b\\\\c\\nd"} 1\n' in text

    def test_null_registry_renders_eof_only(self):
        assert NullRegistry().render_openmetrics() == "# EOF\n"


class TestSnapshot:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("b_total", ("k",)).inc(("z",))
        registry.counter("b_total", ("k",)).inc(("a",), 2)
        registry.counter("a_total").inc()
        registry.gauge("depth", ("host",)).set(("h",), 7)
        registry.histogram("lat_us").observe((), 3_000)
        registry.counter("wall_us_total", volatile=True).inc((), 123)
        return registry

    def test_snapshot_sorted_and_volatile_excluded(self):
        snapshot = self.build().snapshot()
        assert snapshot["schema"] == "repro-metrics-v1"
        keys = list(snapshot["counters"])
        assert keys == sorted(keys)
        assert "wall_us_total" not in snapshot["counters"]
        assert snapshot["gauges"]["depth{host=h}"] == 7
        hist = snapshot["histograms"]["lat_us"]
        assert hist["count"] == 1 and hist["le"][-1] == "+Inf"

    def test_snapshot_json_deterministic(self):
        a = self.build().snapshot_json()
        b = self.build().snapshot_json()
        assert a == b
        assert a.endswith("\n")
        json.loads(a)  # round-trips

    def test_include_volatile_opt_in(self):
        snapshot = self.build().snapshot(include_volatile=True)
        assert snapshot["counters"]["wall_us_total"] == 123


class TestStateAdopt:
    def test_round_trip_preserves_series_and_identity(self):
        registry = self.populated()
        counter = registry.family("calls_total")
        state = registry.state()

        fresh = MetricsRegistry()
        fresh_counter = fresh.counter("calls_total", ("host",))
        fresh_counter.inc(("stale.test",), 99)  # must be cleared by adopt
        fresh.histogram("lat_us")
        fresh.adopt(state)
        assert fresh.snapshot_json() == registry.snapshot_json()
        # adopt() keeps family objects alive: bound references still work.
        assert fresh.family("calls_total") is fresh_counter
        fresh_counter.inc(("a.test",))
        assert fresh_counter.get(("a.test",)) == counter.get(("a.test",)) + 1

    def test_volatile_families_not_in_state(self):
        registry = self.populated()
        registry.counter("wall_us_total", volatile=True).inc((), 5)
        assert "wall_us_total" not in registry.state()

    @staticmethod
    def populated():
        registry = MetricsRegistry()
        registry.counter("calls_total", ("host",)).inc(("a.test",), 4)
        registry.histogram("lat_us").observe((), 2_000)
        registry.gauge("depth").set((), 3)
        return registry


class TestNullRegistry:
    def test_every_surface_is_a_noop(self):
        registry = NullRegistry()
        counter = registry.counter("x_total", ("a",))
        counter.inc(("v",))
        assert counter.total() == 0
        assert counter.get(("v",)) == 0
        registry.histogram("h").observe((), 5)
        assert registry.histogram("h").percentile((), 0.5) is None
        registry.gauge("g").set((), 1)
        assert registry.state() == {}
        assert registry.snapshot()["counters"] == {}

"""Tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    MetricsRegistry,
    NullRegistry,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("calls_total", (), ()) == "calls_total"

    def test_labels_render_in_declared_order(self):
        key = series_key("calls_total", ("host", "outcome"), ("a.test", "ok"))
        assert key == "calls_total{host=a.test,outcome=ok}"


class TestCounters:
    def test_inc_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", ("kind",))
        counter.inc(("commit",))
        counter.inc(("commit",), 2)
        counter.inc(("identity",))
        assert counter.get(("commit",)) == 3
        assert counter.total() == 4

    def test_unlabeled_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total")
        counter.inc()
        counter.inc((), 5)
        assert counter.total() == 6

    def test_sum_by_projects_one_label(self):
        registry = MetricsRegistry()
        counter = registry.counter("calls_total", ("host", "outcome"))
        counter.inc(("a.test", "ok"), 3)
        counter.inc(("a.test", "error"), 1)
        counter.inc(("b.test", "ok"), 2)
        assert counter.sum_by(0) == {"a.test": 4, "b.test": 2}
        assert counter.sum_by(1) == {"ok": 5, "error": 1}

    def test_idempotent_declaration_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", ("a",))
        again = registry.counter("x_total", ("a",))
        assert first is again

    def test_conflicting_declaration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", ("b",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", ("a",))


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us", ("host",))
        hist.observe(("h",), 500)            # <= 1ms bucket
        hist.observe(("h",), 40_000)         # <= 50ms bucket
        hist.observe(("h",), 10**9)          # overflow bucket
        counts, total, count = hist.get(("h",))
        assert count == 3
        assert total == 500 + 40_000 + 10**9
        assert sum(counts) == 3
        assert counts[-1] == 1  # the +Inf bucket

    def test_percentile_reports_bucket_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        for _ in range(99):
            hist.observe((), 500)
        hist.observe((), 40_000)
        assert hist.percentile((), 0.50) == LATENCY_BUCKETS_US[0]
        assert hist.percentile((), 0.99) == LATENCY_BUCKETS_US[0]
        assert hist.percentile((), 1.0) == 50_000

    def test_percentile_empty_is_none(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_us")
        assert hist.percentile((), 0.5) is None


class TestSnapshot:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("b_total", ("k",)).inc(("z",))
        registry.counter("b_total", ("k",)).inc(("a",), 2)
        registry.counter("a_total").inc()
        registry.gauge("depth", ("host",)).set(("h",), 7)
        registry.histogram("lat_us").observe((), 3_000)
        registry.counter("wall_us_total", volatile=True).inc((), 123)
        return registry

    def test_snapshot_sorted_and_volatile_excluded(self):
        snapshot = self.build().snapshot()
        assert snapshot["schema"] == "repro-metrics-v1"
        keys = list(snapshot["counters"])
        assert keys == sorted(keys)
        assert "wall_us_total" not in snapshot["counters"]
        assert snapshot["gauges"]["depth{host=h}"] == 7
        hist = snapshot["histograms"]["lat_us"]
        assert hist["count"] == 1 and hist["le"][-1] == "+Inf"

    def test_snapshot_json_deterministic(self):
        a = self.build().snapshot_json()
        b = self.build().snapshot_json()
        assert a == b
        assert a.endswith("\n")
        json.loads(a)  # round-trips

    def test_include_volatile_opt_in(self):
        snapshot = self.build().snapshot(include_volatile=True)
        assert snapshot["counters"]["wall_us_total"] == 123


class TestStateAdopt:
    def test_round_trip_preserves_series_and_identity(self):
        registry = self.populated()
        counter = registry.family("calls_total")
        state = registry.state()

        fresh = MetricsRegistry()
        fresh_counter = fresh.counter("calls_total", ("host",))
        fresh_counter.inc(("stale.test",), 99)  # must be cleared by adopt
        fresh.histogram("lat_us")
        fresh.adopt(state)
        assert fresh.snapshot_json() == registry.snapshot_json()
        # adopt() keeps family objects alive: bound references still work.
        assert fresh.family("calls_total") is fresh_counter
        fresh_counter.inc(("a.test",))
        assert fresh_counter.get(("a.test",)) == counter.get(("a.test",)) + 1

    def test_volatile_families_not_in_state(self):
        registry = self.populated()
        registry.counter("wall_us_total", volatile=True).inc((), 5)
        assert "wall_us_total" not in registry.state()

    @staticmethod
    def populated():
        registry = MetricsRegistry()
        registry.counter("calls_total", ("host",)).inc(("a.test",), 4)
        registry.histogram("lat_us").observe((), 2_000)
        registry.gauge("depth").set((), 3)
        return registry


class TestNullRegistry:
    def test_every_surface_is_a_noop(self):
        registry = NullRegistry()
        counter = registry.counter("x_total", ("a",))
        counter.inc(("v",))
        assert counter.total() == 0
        assert counter.get(("v",)) == 0
        registry.histogram("h").observe((), 5)
        assert registry.histogram("h").percentile((), 0.5) is None
        registry.gauge("g").set((), 1)
        assert registry.state() == {}
        assert registry.snapshot()["counters"] == {}

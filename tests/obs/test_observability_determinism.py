"""Byte-identity of the observability artefacts (the acceptance tests).

``metrics.prom`` and ``slo.json`` must come out byte-identical across
worker counts, interpreter hash seeds, and crash/resume chains — they
derive from the deterministic registry snapshot, so any divergence means
nondeterminism leaked into the registry itself.  The deterministic event
stream carries the same contract once the forensic wall clock (a dual
clock by design) is stripped.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.export import firehose_frame_observer, study_fingerprint
from repro.core.pipeline import MeasurementPipeline
from repro.netsim.faults import CrashPlan, FaultPlan, StudyCrashed
from repro.obs.events import validate_events_lines
from repro.obs.slo import slo_json, study_window_days
from repro.simulation.config import (
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    SimulationConfig,
)
from repro.simulation.world import World

WORKER_COUNTS = (1, 2, 4)


def strip_wall(jsonl: str) -> str:
    """Drop the process-local wall clock; everything else must match."""
    out = []
    for line in jsonl.splitlines():
        event = json.loads(line)
        event.pop("wall_us", None)
        out.append(json.dumps(event, sort_keys=True))
    return "\n".join(out)


def observability_artefacts(datasets) -> dict:
    telemetry = datasets.telemetry
    snapshot = telemetry.registry.snapshot()
    return {
        "prom": telemetry.metrics_openmetrics(),
        "slo": slo_json(snapshot, window_days=study_window_days()),
        "events": strip_wall(telemetry.events_jsonl(include_volatile=False)),
    }


def _fault_plan():
    # Injected faults populate fault.injected events and SLO error budgets.
    return FaultPlan.recoverable(
        11, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
    )


def _run(workers: int = 1, **kwargs):
    world = World(SimulationConfig.tiny())
    frame_digest = firehose_frame_observer(world)
    datasets = MeasurementPipeline(
        world, workers=workers, fault_plan=_fault_plan(), **kwargs
    ).run()
    artefacts = observability_artefacts(datasets)
    artefacts["fingerprint"] = study_fingerprint(datasets, frame_digest)
    return artefacts


@pytest.mark.slow
class TestWorkerCountByteIdentity:
    @pytest.fixture(scope="class")
    def runs(self):
        return {workers: _run(workers) for workers in WORKER_COUNTS}

    def test_openmetrics_identical(self, runs):
        assert len({run["prom"] for run in runs.values()}) == 1

    def test_slo_json_identical(self, runs):
        assert len({run["slo"] for run in runs.values()}) == 1

    def test_event_stream_identical_modulo_wall_clock(self, runs):
        assert len({run["events"] for run in runs.values()}) == 1

    def test_event_stream_nonempty_with_faults(self, runs):
        events = runs[1]["events"].splitlines()
        kinds = {json.loads(line)["kind"] for line in events}
        assert "fault.injected" in kinds
        assert "phase.start" in kinds and "phase.end" in kinds

    def test_slo_report_grades_the_faulted_run(self, runs):
        document = json.loads(runs[1]["slo"])
        aggregate = next(
            o for o in document["objectives"] if o["match"] == "*"
            and o["quantile"] == "p99"
        )
        assert aggregate["calls"] > 0
        assert aggregate["errors"] > 0  # injected faults consume budget


@pytest.mark.slow
class TestCrashResumeByteIdentity:
    def test_resumed_chain_matches_uninterrupted(self, tmp_path):
        uninterrupted = _run(1)

        checkpoint_dir = str(tmp_path / "ckpt")
        with pytest.raises(StudyCrashed):
            MeasurementPipeline(
                World(SimulationConfig.tiny()),
                fault_plan=_fault_plan(),
                checkpoint_dir=checkpoint_dir,
                crash_plan=CrashPlan(points=(900,)),
            ).run()
        world = World(SimulationConfig.tiny())
        frame_digest = firehose_frame_observer(world)
        datasets = MeasurementPipeline(
            world,
            fault_plan=_fault_plan(),
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ).run()
        resumed = observability_artefacts(datasets)
        resumed["fingerprint"] = study_fingerprint(datasets, frame_digest)

        assert resumed["prom"] == uninterrupted["prom"]
        assert resumed["slo"] == uninterrupted["slo"]
        assert resumed["events"] == uninterrupted["events"]
        assert resumed["fingerprint"] == uninterrupted["fingerprint"]

    def test_resumed_event_log_validates(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt2")
        with pytest.raises(StudyCrashed):
            MeasurementPipeline(
                World(SimulationConfig.tiny()),
                fault_plan=_fault_plan(),
                checkpoint_dir=checkpoint_dir,
                crash_plan=CrashPlan(points=(1500,)),
            ).run()
        world = World(SimulationConfig.tiny())
        datasets = MeasurementPipeline(
            world,
            fault_plan=_fault_plan(),
            checkpoint_dir=checkpoint_dir,
            resume=True,
        ).run()
        lines = datasets.telemetry.events_jsonl().splitlines()
        assert validate_events_lines(lines) == []


_CHILD = """\
import hashlib, json
from repro.core.pipeline import MeasurementPipeline
from repro.netsim.faults import FaultPlan
from repro.obs.slo import slo_json, study_window_days
from repro.simulation.config import (
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    SimulationConfig,
)
from repro.simulation.world import World

world = World(SimulationConfig.tiny())
plan = FaultPlan.recoverable(11, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US)
datasets = MeasurementPipeline(world, fault_plan=plan).run()
telemetry = datasets.telemetry

events = []
for line in telemetry.events_jsonl(include_volatile=False).splitlines():
    event = json.loads(line)
    event.pop("wall_us", None)
    events.append(json.dumps(event, sort_keys=True))

print(json.dumps({
    "prom_sha": hashlib.sha256(telemetry.metrics_openmetrics().encode()).hexdigest(),
    "slo_sha": hashlib.sha256(
        slo_json(telemetry.registry.snapshot(), window_days=study_window_days()).encode()
    ).hexdigest(),
    "events_sha": hashlib.sha256("\\n".join(events).encode()).hexdigest(),
    "hash_probe": hash("did:plc:hash-probe"),
}))
"""


def _run_child(hashseed: str) -> dict:
    env = dict(os.environ)  # repro: allow(env-read) -- test harness must thread PYTHONPATH/PYTHONHASHSEED into the child
    env["PYTHONHASHSEED"] = hashseed
    src_dir = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.slow
def test_observability_artefacts_identical_across_hash_seeds():
    run_a = _run_child("0")
    run_b = _run_child("1")
    assert run_a["hash_probe"] != run_b["hash_probe"]  # the seeds really differ
    assert run_a["prom_sha"] == run_b["prom_sha"]
    assert run_a["slo_sha"] == run_b["slo_sha"]
    assert run_a["events_sha"] == run_b["events_sha"]

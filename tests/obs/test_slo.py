"""Tests for the SLO evaluator (``slo.json``)."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    CALLS_FAMILY,
    HOST_LATENCY_FAMILY,
    METHOD_LATENCY_FAMILY,
    SloBundle,
    SloObjective,
    default_bundle,
    evaluate_slos,
    parse_series_key,
    resolve_bundle,
    slo_json,
    strict_bundle,
    study_window_days,
)

GET_REPO = "com.atproto.sync.getRepo"


def seeded_registry(errors=0, tail_us=()):
    """A registry shaped like a study's: call counters + latency pairs."""
    registry = MetricsRegistry()
    calls = registry.counter(CALLS_FAMILY, ("host", "method", "outcome"))
    by_host = registry.histogram(HOST_LATENCY_FAMILY, ("host",))
    by_method = registry.histogram(METHOD_LATENCY_FAMILY, ("method",))
    for index in range(200):
        latency = 2_000 + index * 40
        calls.inc(("pds.test", GET_REPO, "ok"))
        by_host.observe(("pds.test",), latency)
        by_method.observe((GET_REPO,), latency)
    for _ in range(errors):
        calls.inc(("pds.test", GET_REPO, "error-500"))
        by_host.observe(("pds.test",), 90_000_000)
        by_method.observe((GET_REPO,), 90_000_000)
    for value in tail_us:
        calls.inc(("labeler.test", "com.atproto.label.queryLabels", "ok"))
        by_host.observe(("labeler.test",), value)
    # Announced-but-dead probing is study design, never budget spend.
    calls.inc(("ghost.test", GET_REPO, "host-down"), 50)
    calls.inc(("ghost.test", GET_REPO, "unknown-host"), 5)
    return registry


class TestParseSeriesKey:
    def test_bare_name(self):
        assert parse_series_key("a_total") == ("a_total", {})

    def test_labels(self):
        name, labels = parse_series_key("xrpc_calls_total{host=h.test,outcome=ok}")
        assert name == "xrpc_calls_total"
        assert labels == {"host": "h.test", "outcome": "ok"}


class TestEvaluate:
    def test_healthy_run_passes_default_bundle(self):
        snapshot = seeded_registry().snapshot()
        doc = evaluate_slos(snapshot)
        assert doc["schema"] == "repro-slo-v1"
        assert doc["bundle"] == "default"
        assert doc["breaches"] == 0
        assert all(obj["ok"] for obj in doc["objectives"])

    def test_expected_outcomes_do_not_burn_budget(self):
        snapshot = seeded_registry().snapshot()
        doc = evaluate_slos(snapshot)
        aggregate = next(o for o in doc["objectives"] if o["match"] == "*")
        # 55 host-down/unknown-host calls are in the tally but not errors.
        assert aggregate["errors"] == 0
        assert aggregate["calls"] >= 255

    def test_error_statuses_consume_budget(self):
        snapshot = seeded_registry(errors=40).snapshot()
        doc = evaluate_slos(snapshot)
        repo = next(o for o in doc["objectives"] if o["match"] == GET_REPO)
        assert repo["errors"] == 40
        # 200 ok + 40 errors + 55 dead-host probes share the method label.
        assert repo["error_rate"] == pytest.approx(40 / 295, abs=1e-6)
        assert repo["budget_consumed"] == 1.0  # rate over the 5% budget
        assert not repo["budget_ok"] and not repo["ok"]
        assert doc["breaches"] >= 1

    def test_latency_breach_detected(self):
        registry = seeded_registry()
        bundle = SloBundle(
            name="tight",
            objectives=(
                SloObjective(
                    name="repo-tight",
                    scope="method",
                    match=GET_REPO,
                    quantile="p99",
                    threshold_us=1_000,
                    error_budget=0.5,
                ),
            ),
        )
        doc = evaluate_slos(registry.snapshot(), bundle)
        objective = doc["objectives"][0]
        assert objective["observed_us"] > 1_000
        assert not objective["latency_ok"] and not objective["ok"]
        assert objective["budget_ok"]  # only the latency half breached

    def test_burn_normalised_per_window_day(self):
        snapshot = seeded_registry(errors=40).snapshot()
        one_day = evaluate_slos(snapshot, window_days=1.0)
        ten_days = evaluate_slos(snapshot, window_days=10.0)
        repo_1 = next(o for o in one_day["objectives"] if o["match"] == GET_REPO)
        repo_10 = next(o for o in ten_days["objectives"] if o["match"] == GET_REPO)
        assert repo_1["budget_burn_per_day"] == pytest.approx(
            repo_10["budget_burn_per_day"] * 10, abs=1e-4
        )

    def test_quantiles_monotone_everywhere(self):
        snapshot = seeded_registry(
            errors=3, tail_us=(100, 5_000, 400_000, 70_000_000, 10**9)
        ).snapshot()
        doc = evaluate_slos(snapshot)
        for section in ("by_method", "by_host"):
            for row in doc["latency"][section].values():
                quantiles = [
                    row[q] for q in ("p50", "p95", "p99", "p999") if row[q] is not None
                ]
                assert quantiles == sorted(quantiles)

    def test_aggregate_row_merges_all_series(self):
        snapshot = seeded_registry(tail_us=(100, 200)).snapshot()
        doc = evaluate_slos(snapshot)
        hosts = doc["latency"]["by_host"]
        assert "*" in hosts
        assert hosts["*"]["count"] == sum(
            row["count"] for key, row in hosts.items() if key != "*"
        )

    def test_p999_resolvable_in_the_tail(self):
        # A 0.5% slow tail must surface in p999 while p99 stays fast —
        # the property the widened bucket bounds exist to provide.
        registry = MetricsRegistry()
        hist = registry.histogram(HOST_LATENCY_FAMILY, ("host",))
        for _ in range(995):
            hist.observe(("h.test",), 3_000)
        for _ in range(5):
            hist.observe(("h.test",), 200_000_000)
        doc = evaluate_slos(registry.snapshot())
        row = doc["latency"]["by_host"]["h.test"]
        assert row["p99"] <= 10_000
        assert row["p999"] >= 200_000_000

    def test_unknown_series_grades_vacuously(self):
        doc = evaluate_slos(MetricsRegistry().snapshot())
        assert doc["breaches"] == 0
        for objective in doc["objectives"]:
            assert objective["observed_us"] is None
            assert objective["calls"] == 0 and objective["ok"]


class TestBundles:
    def test_default_and_strict_shapes(self):
        assert default_bundle().name == "default"
        assert strict_bundle().name == "strict"
        names = {o.name for o in default_bundle().objectives}
        assert "sync-get-repo-p99" in names

    def test_strict_bundle_breaches_on_faulted_shape(self):
        snapshot = seeded_registry(errors=40).snapshot()
        doc = evaluate_slos(snapshot, strict_bundle())
        assert doc["bundle"] == "strict"
        assert doc["breaches"] >= 1

    def test_resolve_bundle(self):
        assert resolve_bundle("default").name == "default"
        with pytest.raises(ValueError, match="unknown SLO bundle"):
            resolve_bundle("nope")


class TestArtefact:
    def test_slo_json_deterministic_and_round_trips(self):
        snapshot = seeded_registry(errors=7).snapshot()
        first = slo_json(snapshot, window_days=3.5)
        second = slo_json(snapshot, window_days=3.5)
        assert first == second
        assert first.endswith("\n")
        decoded = json.loads(first)
        assert decoded["window_days"] == 3.5

    def test_study_window_days_is_positive_constant(self):
        assert study_window_days() > 0
        assert study_window_days() == study_window_days()

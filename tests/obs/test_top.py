"""Tests for the live dashboard (``python -m repro top``)."""

import json

from repro.obs.top import _current_phase, _load, _resolve_path, main, render_frame

from tests.obs.test_slo import seeded_registry


def status_document(errors=0):
    registry = seeded_registry(errors=errors)
    registry.counter("sim_worker_restarts_total", ("shard",), volatile=True).inc(
        ("s00",)
    )
    return {
        "schema": "repro-status-v1",
        "ticks": 1234,
        "done_actions": 7,
        "metrics": registry.snapshot(include_volatile=True),
        "events_tail": [
            {"kind": "phase.start", "fields": {"phase": "study"}},
            {"kind": "phase.start", "fields": {"phase": "simulation"}},
            {"kind": "phase.end", "fields": {"phase": "simulation"}},
            {"kind": "phase.start", "fields": {"phase": "repo-crawl"}},
        ],
    }


class TestRenderFrame:
    def test_frame_shows_phase_counts_and_slos(self):
        frame = render_frame(status_document(), source="test-feed")
        assert "test-feed" in frame
        assert "phase: repo-crawl" in frame
        assert "ticks: 1234" in frame
        assert "com.atproto.sync.getRepo" in frame
        assert "SLOs (default bundle)" in frame
        assert "xrpc-aggregate-p99" in frame

    def test_worker_health_reads_volatile_counters(self):
        frame = render_frame(status_document())
        assert "1 shard-restarts" in frame

    def test_breach_rendered(self):
        frame = render_frame(status_document(errors=40))
        assert "BREACH" in frame

    def test_call_rate_delta(self):
        status = status_document()
        frame = render_frame(status, previous=status, interval_s=2.0)
        assert "(0 calls/s)" in frame

    def test_metrics_only_snapshot_renders(self):
        status = {
            "schema": "repro-status-v1",
            "metrics": seeded_registry().snapshot(),
        }
        frame = render_frame(status)
        assert "phase: (idle)" in frame
        assert "xrpc calls:" in frame


class TestCurrentPhase:
    def test_innermost_open_phase_wins(self):
        assert _current_phase(status_document()) == "repo-crawl"

    def test_idle_without_events(self):
        assert _current_phase({"events_tail": []}) == "(idle)"


class TestFeedLoading:
    def test_metrics_json_wrapped_as_status(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(seeded_registry().snapshot()))
        status = _load(str(path))
        assert status["schema"] == "repro-status-v1"
        assert "metrics" in status

    def test_torn_or_missing_feed_returns_none(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert _load(str(missing)) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"schema": "repro-status-v1", "metr')
        assert _load(str(torn)) is None

    def test_resolve_path_prefers_status_json(self, tmp_path):
        (tmp_path / "metrics.json").write_text("{}")
        (tmp_path / "status.json").write_text("{}")
        assert _resolve_path(str(tmp_path)).endswith("status.json")

    def test_resolve_path_empty_dir_is_none(self, tmp_path):
        assert _resolve_path(str(tmp_path)) is None


class TestMain:
    def test_once_renders_one_frame(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        path.write_text(json.dumps(status_document()))
        assert main([str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "SLOs" in out

    def test_missing_feed_exits_nonzero(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json"), "--once"]) == 1

"""Tests for the deterministic event log (``events.jsonl``)."""

import json

from repro.obs.events import (
    EVENTS_SCHEMA,
    EventLog,
    NullEventLog,
    validate_events_lines,
)
from repro.obs.telemetry import Telemetry


class TestEmit:
    def test_sequences_and_shape(self):
        log = EventLog()
        first = log.emit("cache.flush", 1000, fields={"phase": "p"})
        second = log.emit("fault.injected", 2000, span="phase:p#1")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["virtual_us"] == 1000
        assert first["span"] is None and second["span"] == "phase:p#1"
        assert first["fields"] == {"phase": "p"} and second["fields"] == {}
        assert isinstance(first["wall_us"], float)

    def test_volatile_events_use_their_own_sequence(self):
        log = EventLog()
        log.emit("cache.flush", 1)
        volatile = log.emit("checkpoint.save", 2, volatile=True)
        deterministic = log.emit("cache.flush", 3)
        assert volatile["seq"] == 1 and volatile["volatile"] is True
        assert deterministic["seq"] == 2
        assert "volatile" not in deterministic

    def test_cap_counts_drops(self):
        log = EventLog(max_events=2)
        assert log.emit("cache.flush", 1) is not None
        assert log.emit("cache.flush", 2) is not None
        assert log.emit("cache.flush", 3) is None
        assert log.dropped == 1
        assert log.stats()["events"] == 2


class TestPhaseSpans:
    def test_occurrence_based_ids(self):
        log = EventLog()
        assert log.phase_span("sim") == "phase:sim#1"
        log.emit("phase.start", 0, fields={"phase": "sim"}, span="phase:sim#1")
        log.emit("phase.end", 9, fields={"phase": "sim"}, span="phase:sim#1")
        assert log.phase_span("sim") == "phase:sim#2"

    def test_span_id_stable_across_resume(self):
        # A journal holding an unmatched start: the resumed process must
        # mint the SAME span id for the replayed occurrence, so its
        # suppressed start and re-emitted end join the journaled start.
        crashed = EventLog()
        span = crashed.phase_span("simulation")
        crashed.emit("phase.start", 0, fields={"phase": "simulation"}, span=span)

        resumed = EventLog()
        resumed.adopt(crashed.state())
        resumed.suppress_phase("simulation")
        assert resumed.phase_span("simulation") == span


class TestSuppressPhase:
    def test_unmatched_start_suppresses_next_start_only(self):
        log = EventLog()
        log.emit("phase.start", 0, fields={"phase": "sim"})
        log.suppress_phase("sim")
        assert log.emit("phase.start", 0, fields={"phase": "sim"}) is None
        end = log.emit("phase.end", 5, fields={"phase": "sim"})
        assert end is not None
        kinds = [e["kind"] for e in log.events]
        assert kinds == ["phase.start", "phase.end"]

    def test_matched_pair_suppresses_both(self):
        log = EventLog()
        log.emit("phase.start", 0, fields={"phase": "sim"})
        log.emit("phase.end", 5, fields={"phase": "sim"})
        log.suppress_phase("sim")
        assert log.emit("phase.start", 0, fields={"phase": "sim"}) is None
        assert log.emit("phase.end", 5, fields={"phase": "sim"}) is None
        # Replay done; a genuinely new occurrence records normally.
        assert log.emit("phase.start", 9, fields={"phase": "sim"}) is not None
        assert len(log.events) == 3

    def test_other_phases_untouched(self):
        log = EventLog()
        log.emit("phase.start", 0, fields={"phase": "sim"})
        log.suppress_phase("sim")
        assert log.emit("phase.start", 0, fields={"phase": "other"}) is not None


class TestStateAdopt:
    def test_round_trip_drops_volatile(self):
        log = EventLog()
        log.emit("cache.flush", 1, fields={"b": 2, "a": 1})
        log.emit("checkpoint.save", 2, volatile=True)
        log.emit("fault.injected", 3)

        fresh = EventLog()
        fresh.adopt(log.state())
        assert [e["kind"] for e in fresh.events] == ["cache.flush", "fault.injected"]
        # The deterministic sequence resumes where the journal left off.
        assert fresh.emit("cache.flush", 9)["seq"] == 3

    def test_adopt_none_is_noop(self):
        log = EventLog()
        log.adopt(None)
        log.adopt({})
        assert log.events == []


class TestJsonl:
    def test_fixed_key_order_and_sorted_fields(self):
        log = EventLog()
        log.emit("cache.flush", 5, fields={"zeta": 1, "alpha": 2})
        line = log.to_jsonl().strip()
        assert line.index('"seq"') < line.index('"virtual_us"') < line.index('"kind"')
        decoded = json.loads(line)
        assert list(decoded["fields"]) == ["alpha", "zeta"]

    def test_include_volatile_toggle(self):
        log = EventLog()
        log.emit("cache.flush", 1)
        log.emit("checkpoint.save", 2, volatile=True)
        assert len(log.to_jsonl().splitlines()) == 2
        assert len(log.to_jsonl(include_volatile=False).splitlines()) == 1

    def test_empty_log_renders_empty_string(self):
        assert EventLog().to_jsonl() == ""


class TestValidate:
    def _lines(self):
        log = EventLog()
        span = log.phase_span("sim")
        log.emit("phase.start", 0, fields={"phase": "sim"}, span=span)
        log.emit("fault.injected", 3, fields={"host": "h"}, span=span)
        log.emit("checkpoint.save", 4, volatile=True)
        log.emit("phase.end", 9, fields={"phase": "sim"}, span=span)
        return log.to_jsonl().splitlines()

    def test_valid_log_passes(self):
        assert validate_events_lines(self._lines()) == []

    def test_schema_name_is_versioned(self):
        assert EVENTS_SCHEMA == "repro-events-v1"

    def test_empty_log_fails(self):
        assert validate_events_lines([]) == ["event log is empty"]

    def test_bad_json_reported(self):
        problems = validate_events_lines(["not json"])
        assert any("not valid JSON" in p for p in problems)

    def test_missing_keys_reported(self):
        problems = validate_events_lines(['{"seq": 1}'])
        assert any("missing keys" in p for p in problems)

    def test_unknown_keys_reported(self):
        lines = self._lines()
        event = json.loads(lines[0])
        event["surprise"] = 1
        problems = validate_events_lines([json.dumps(event)])
        assert any("unknown keys" in p for p in problems)

    def test_non_increasing_seq_reported(self):
        lines = self._lines()
        problems = validate_events_lines([lines[0], lines[0]])
        assert any("not increasing" in p for p in problems)

    def test_volatile_sequence_space_is_separate(self):
        # det seq 1, vol seq 1, det seq 2: valid despite repeated "1".
        assert validate_events_lines(self._lines()) == []


class TestTelemetryIntegration:
    def test_phase_context_emits_start_end_with_shared_span(self):
        telemetry = Telemetry(trace=False)
        with telemetry.phase("analysis"):
            telemetry.emit_event("cache.flush", fields={"phase": "analysis"})
        kinds = [e["kind"] for e in telemetry.events.events]
        assert kinds == ["phase.start", "cache.flush", "phase.end"]
        spans = {e["span"] for e in telemetry.events.events}
        assert spans == {"phase:analysis#1"}

    def test_emit_event_outside_phase_has_null_span(self):
        telemetry = Telemetry(trace=False)
        telemetry.emit_event("cache.flush")
        assert telemetry.events.events[0]["span"] is None

    def test_disabled_telemetry_uses_null_log(self):
        telemetry = Telemetry.disabled()
        assert isinstance(telemetry.events, NullEventLog)
        telemetry.emit_event("cache.flush")
        assert telemetry.events.to_jsonl() == ""
        assert telemetry.events_jsonl() == ""


class TestNullEventLog:
    def test_every_surface_is_a_noop(self):
        log = NullEventLog()
        assert log.emit("cache.flush", 1) is None
        assert log.phase_span("sim") == "phase:sim#0"
        log.suppress_phase("sim")
        assert log.state() == {}
        assert log.to_jsonl() == ""
        assert log.stats()["events"] == 0

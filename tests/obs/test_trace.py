"""Tests for the span tracer and trace_event export."""

from repro.obs.trace import (
    PID_VIRTUAL,
    PID_WALL,
    NullTracer,
    SpanTracer,
    validate_span_nesting,
    validate_trace,
    validate_wall_monotonic,
)


def _span(name, ts, dur, cat="phase", pid=PID_WALL):
    return {
        "name": name, "cat": cat, "ph": "X", "pid": pid, "tid": 1,
        "ts": ts, "dur": dur, "args": {},
    }


class FakeClock:
    def __init__(self, now_us=0):
        self.now_us = now_us

    def __call__(self):
        return self.now_us


class TestSpans:
    def test_span_mirrors_wall_and_virtual(self):
        clock = FakeClock(1_000_000)
        tracer = SpanTracer(now_virtual=clock)
        with tracer.span("crawl", cat="collector", args={"host": "a.test"}):
            clock.now_us += 250_000
        wall = [e for e in tracer.events if e["pid"] == PID_WALL]
        virtual = [e for e in tracer.events if e["pid"] == PID_VIRTUAL]
        assert len(wall) == 1 and len(virtual) == 1
        assert wall[0]["name"] == virtual[0]["name"] == "crawl"
        assert wall[0]["args"]["host"] == "a.test"
        assert wall[0]["args"]["virtual_ts_us"] == 1_000_000
        assert wall[0]["args"]["virtual_dur_us"] == 250_000
        assert virtual[0]["dur"] == 250_000

    def test_nested_spans_both_recorded(self):
        tracer = SpanTracer(now_virtual=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events if e["pid"] == PID_WALL]
        assert names == ["inner", "outer"]  # completion order

    def test_export_rebases_virtual_track_to_zero(self):
        # A span that *starts* at virtual 0 can complete after spans with
        # much later timestamps; the pid-2 track must still be >= 0.
        clock = FakeClock(0)
        tracer = SpanTracer(now_virtual=clock)
        outer = tracer.span("study")
        outer.__enter__()
        clock.now_us = 7_000_000
        with tracer.span("late"):
            clock.now_us += 1_000
        outer.__exit__(None, None, None)
        document = tracer.export()
        assert validate_trace(document) == []
        virtual_ts = [
            e["ts"]
            for e in document["traceEvents"]
            if e.get("pid") == PID_VIRTUAL and e["ph"] == "X"
        ]
        assert min(virtual_ts) == 0
        assert all(ts >= 0 for ts in virtual_ts)


class TestSamplingAndBounds:
    def test_one_in_n_sampling_per_category(self):
        tracer = SpanTracer(sample_every=4)
        hits = [tracer.sampled("xrpc") for _ in range(8)]
        assert hits == [True, False, False, False, True, False, False, False]
        assert tracer.sampled("other-cat")  # independent counter

    def test_sampled_spans_skip_recording(self):
        tracer = SpanTracer(now_virtual=FakeClock(), sample_every=2)
        for _ in range(4):
            with tracer.span("call", cat="xrpc", sample=True):
                pass
        wall = [e for e in tracer.events if e["pid"] == PID_WALL]
        assert len(wall) == 2

    def test_max_events_drops_and_counts(self):
        tracer = SpanTracer(max_events=3, sample_every=1)
        for index in range(10):
            tracer.instant("frame %d" % index, "firehose")
        assert len(tracer.events) == 3
        assert tracer.dropped == 7
        assert tracer.export()["otherData"]["events_dropped"] == 7


class TestExportDocument:
    def test_document_shape_and_metadata(self):
        tracer = SpanTracer(now_virtual=FakeClock(5))
        with tracer.span("phase"):
            pass
        tracer.instant("tick", "sim", sample=False)
        document = tracer.export()
        assert validate_trace(document) == []
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {PID_WALL, PID_VIRTUAL}
        assert document["otherData"]["generator"] == "repro.obs.trace"

    def test_validator_flags_problems(self):
        assert validate_trace({}) == ["traceEvents missing or not a list"]
        bad = {"traceEvents": [{"ph": "X", "name": "x", "cat": "c", "pid": 1,
                                "tid": 1, "ts": -5, "dur": 1}]}
        assert any("bad ts" in p for p in validate_trace(bad))


class TestSpanNesting:
    def test_contained_and_sequential_spans_pass(self):
        document = {"traceEvents": [
            _span("study", 0, 100, cat="study"),
            _span("simulation", 5, 40),
            _span("analysis", 50, 45),
        ]}
        assert validate_span_nesting(document) == []

    def test_straddling_span_flagged(self):
        document = {"traceEvents": [
            _span("simulation", 0, 50),
            _span("analysis", 40, 30),  # starts inside, ends outside
        ]}
        problems = validate_span_nesting(document)
        assert len(problems) == 1 and "straddles" in problems[0]

    def test_other_categories_and_tracks_exempt(self):
        document = {"traceEvents": [
            _span("shard.day", 0, 50, cat="shard"),
            _span("shard.day", 40, 30, cat="shard"),   # workers overlap: fine
            _span("simulation", 0, 50, pid=PID_VIRTUAL),
            _span("analysis", 40, 30, pid=PID_VIRTUAL),  # virtual track: fine
        ]}
        assert validate_span_nesting(document) == []

    def test_real_tracer_output_nests(self):
        tracer = SpanTracer(now_virtual=FakeClock())
        with tracer.span("study", cat="study"):
            with tracer.span("simulation", cat="phase"):
                pass
            with tracer.span("analysis", cat="phase"):
                pass
        assert validate_span_nesting(tracer.export()) == []


class TestWallMonotonic:
    def test_completion_order_passes(self):
        # Inner completes first: earlier array position, earlier end.
        document = {"traceEvents": [
            _span("inner", 10, 20),
            _span("outer", 0, 100),
            {"name": "tick", "cat": "c", "ph": "i", "s": "t",
             "pid": PID_WALL, "tid": 1, "ts": 150, "args": {}},
        ]}
        assert validate_wall_monotonic(document) == []

    def test_backwards_completion_flagged(self):
        document = {"traceEvents": [
            _span("outer", 0, 100),
            _span("late-appended", 10, 20),  # ends at 30, after 100: bad
        ]}
        problems = validate_wall_monotonic(document)
        assert len(problems) == 1 and "precedes" in problems[0]

    def test_virtual_track_exempt(self):
        document = {"traceEvents": [
            _span("a", 0, 100, pid=PID_VIRTUAL),
            _span("b", 10, 20, pid=PID_VIRTUAL),
        ]}
        assert validate_wall_monotonic(document) == []

    def test_real_tracer_output_monotone(self):
        tracer = SpanTracer(now_virtual=FakeClock())
        with tracer.span("study", cat="study"):
            with tracer.span("simulation", cat="phase"):
                pass
        tracer.instant("tick", "sim", sample=False)
        assert validate_wall_monotonic(tracer.export()) == []


class TestNullTracer:
    def test_all_noops(self):
        tracer = NullTracer()
        with tracer.span("x"):
            pass
        tracer.instant("y", "cat")
        tracer.complete("z", "cat", 0.0)
        assert tracer.events == []
        assert tracer.stats()["events"] == 0
        assert tracer.export()["traceEvents"] == []

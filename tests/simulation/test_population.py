"""Tests for the population generator's calibration."""

import random

import pytest

from repro.simulation.config import PAPER, SimulationConfig
from repro.simulation.population import (
    REGISTRAR_SHARES,
    build_population,
    sample_signup_us,
)


@pytest.fixture(scope="module")
def plan():
    # A mid-size population so the statistical checks have enough samples.
    return build_population(SimulationConfig(seed=7, scale=1 / 500))


class TestPopulationShape:
    def test_count(self, plan):
        assert len(plan.users) == SimulationConfig(scale=1 / 500).n_users

    def test_unique_handles(self, plan):
        handles = [u.handle for u in plan.users]
        assert len(set(handles)) == len(handles)

    def test_bsky_social_dominates(self, plan):
        share = sum(1 for u in plan.users if u.is_bsky_handle) / len(plan.users)
        assert 0.97 < share < 1.0

    def test_custom_handles_have_registered_domains(self, plan):
        for user in plan.users:
            if not user.is_bsky_handle:
                assert user.registered_domain is not None

    def test_verification_mechanism_split(self, plan):
        custom = [u for u in plan.users if not u.is_bsky_handle]
        dns = sum(1 for u in custom if u.verification_mechanism == "dns-txt")
        if len(custom) >= 20:
            assert dns / len(custom) > 0.9

    def test_did_web_count_bounded(self, plan):
        web = [u for u in plan.users if u.identity_method == "web"]
        assert len(web) <= 6
        for user in web:
            assert user.custom_domain is not None

    def test_signups_within_window(self, plan):
        config = SimulationConfig(scale=1 / 2000)
        for user in plan.users:
            assert config.start_us <= user.signup_us < config.end_us

    def test_engagement_positive(self, plan):
        assert all(u.engagement > 0 for u in plan.users)

    def test_attractiveness_heavy_tailed(self, plan):
        values = sorted((u.attractiveness for u in plan.users), reverse=True)
        # Pareto tail: top account dwarfs the median.
        assert values[0] > 20 * values[len(values) // 2]

    def test_special_accounts(self, plan):
        officials = [u for u in plan.users if u.is_official]
        assert len(officials) == 1
        assert sum(1 for u in plan.users if u.is_impersonator) == 2

    def test_official_is_most_attractive(self, plan):
        official = next(u for u in plan.users if u.is_official)
        assert official.attractiveness == max(u.attractiveness for u in plan.users)


class TestDomainRegistrations:
    def test_registrar_shares_roughly_match_table2(self, plan):
        names = list(plan.domain_registrations.values())
        gtl_domains = [n for n, cc in names if not cc and not n.startswith("Registrar ")]
        if len(gtl_domains) < 50:
            pytest.skip("not enough registered domains at this scale")
        from collections import Counter

        counts = Counter(gtl_domains)
        top_name, _ = counts.most_common(1)[0]
        assert top_name == "NameCheap, Inc."

    def test_cctld_domains_get_cctld_registrars(self, plan):
        for domain, (registrar, is_cctld) in plan.domain_registrations.items():
            if is_cctld:
                assert registrar.startswith("ccTLD")

    def test_named_share_total_below_one(self):
        assert sum(share for _, share in REGISTRAR_SHARES) < 1.0


class TestSignupSampling:
    def test_public_opening_bump(self):
        rng = random.Random(1)
        config = SimulationConfig()
        from repro.simulation.clock import date_us

        samples = [
            sample_signup_us(rng, "en", config.start_us, config.end_us) for _ in range(3000)
        ]
        early = sum(1 for s in samples if s < date_us("2023-03-01"))
        boom = sum(
            1 for s in samples if date_us("2024-02-06") <= s < date_us("2024-03-01")
        )
        # The invite-only period is ~3.5 months but contributes almost
        # nothing; the 3.5-week public-opening window is far busier.
        assert boom > 10 * max(1, early)

    def test_portuguese_surge_in_april(self):
        rng = random.Random(2)
        config = SimulationConfig()
        from repro.simulation.clock import date_us

        samples = [
            sample_signup_us(rng, "pt", config.start_us, config.end_us) for _ in range(2000)
        ]
        april = sum(1 for s in samples if s >= date_us("2024-04-01"))
        assert april / len(samples) > 0.4

    def test_german_community_unaffected_by_opening(self):
        rng = random.Random(3)
        config = SimulationConfig()
        from repro.simulation.clock import date_us

        de = [sample_signup_us(rng, "de", config.start_us, config.end_us) for _ in range(2000)]
        ja = [sample_signup_us(rng, "ja", config.start_us, config.end_us) for _ in range(2000)]
        de_after = sum(1 for s in de if s >= date_us("2024-02-06")) / len(de)
        ja_after = sum(1 for s in ja if s >= date_us("2024-02-06")) / len(ja)
        assert ja_after > de_after


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = build_population(SimulationConfig(seed=11, scale=1 / 30000))
        b = build_population(SimulationConfig(seed=11, scale=1 / 30000))
        assert [u.handle for u in a.users] == [u.handle for u in b.users]
        assert [u.signup_us for u in a.users] == [u.signup_us for u in b.users]

    def test_different_seed_different_population(self):
        a = build_population(SimulationConfig(seed=11, scale=1 / 30000))
        b = build_population(SimulationConfig(seed=12, scale=1 / 30000))
        assert [u.handle for u in a.users] != [u.handle for u in b.users]

"""Tests for the labeler- and feed-ecosystem spec generators."""

import random

import pytest

from repro.netsim.hosting import HostingClass
from repro.simulation.config import (
    COMMUNITY_LABELERS_OPEN_US,
    OFFICIAL_LABELER_START_US,
    SimulationConfig,
)
from repro.simulation.feeds import (
    KIND_AGGREGATOR,
    KIND_DEAD,
    KIND_PERSONALIZED,
    PLATFORM_GOODFEEDS,
    PLATFORM_SKYFEED,
    SELF_HOSTED,
    build_feed_specs,
)
from repro.simulation.labelers import (
    TRIGGER_RANDOM,
    build_labeler_specs,
)
from repro.simulation.population import build_population


@pytest.fixture(scope="module")
def labeler_specs():
    return build_labeler_specs(random.Random(5))


@pytest.fixture(scope="module")
def feed_setup():
    config = SimulationConfig(seed=5, scale=1 / 2000, feed_scale=1 / 40)
    plan = build_population(config)
    specs = build_feed_specs(config, plan.users, random.Random(9))
    return config, plan, specs


class TestLabelerSpecs:
    def test_counts_match_paper(self, labeler_specs):
        assert len(labeler_specs) == 62
        functional = [s for s in labeler_specs if s.functional]
        assert len(functional) == 46

    def test_exactly_one_official(self, labeler_specs):
        officials = [s for s in labeler_specs if s.is_official]
        assert len(officials) == 1
        assert officials[0].start_us == OFFICIAL_LABELER_START_US

    def test_community_labelers_start_after_opening(self, labeler_specs):
        for spec in labeler_specs:
            if not spec.is_official:
                assert spec.start_us >= COMMUNITY_LABELERS_OPEN_US

    def test_residential_count_matches_paper(self, labeler_specs):
        residential = [
            s for s in labeler_specs if s.functional and s.hosting == HostingClass.RESIDENTIAL
        ]
        assert len(residential) == 6

    def test_official_has_takedown_capability(self, labeler_specs):
        official = next(s for s in labeler_specs if s.is_official)
        assert "!takedown" in official.values
        assert "!takedown" in official.account_values

    def test_baatl_dominates_expected_volume(self, labeler_specs):
        baatl = next(s for s in labeler_specs if s.key == "baatl")
        assert baatl.reaction.median_s < 1.0
        assert baatl.trigger_probability > 0.9

    def test_manual_labelers_much_slower(self, labeler_specs):
        automated = [s for s in labeler_specs if s.key in ("baatl", "no-gifs", "ai-imagery")]
        manual = [
            s
            for s in labeler_specs
            if s.trigger == TRIGGER_RANDOM and s.key.startswith(("community", "furry", "cringe"))
        ]
        assert max(s.reaction.median_s for s in automated) < 10
        assert min(s.reaction.median_s for s in manual) > 1000

    def test_unique_keys(self, labeler_specs):
        keys = [s.key for s in labeler_specs]
        assert len(set(keys)) == len(keys)

    def test_reaction_sampler_positive_and_spread(self, labeler_specs):
        rng = random.Random(0)
        official = next(s for s in labeler_specs if s.is_official)
        samples = [official.reaction.sample_us(rng) for _ in range(200)]
        assert all(s > 0 for s in samples)
        assert max(samples) > min(samples)

    def test_label_vocabulary_diversity(self, labeler_specs):
        # The paper observes ~200 distinct values network-wide.
        values = set()
        for spec in labeler_specs:
            values.update(spec.values)
        assert len(values) > 120


class TestFeedSpecs:
    def test_count(self, feed_setup):
        config, _, specs = feed_setup
        assert len(specs) == config.n_feed_generators

    def test_skyfeed_dominates(self, feed_setup):
        _, _, specs = feed_setup
        from collections import Counter

        shares = Counter(s.platform for s in specs)
        assert shares[PLATFORM_SKYFEED] / len(specs) > 0.75

    def test_goodfeeds_only_aggregator_or_author(self, feed_setup):
        _, _, specs = feed_setup
        for spec in specs:
            if spec.platform == PLATFORM_GOODFEEDS:
                assert spec.kind in (KIND_AGGREGATOR, "author", KIND_DEAD)

    def test_personalized_only_self_hosted(self, feed_setup):
        _, _, specs = feed_setup
        for spec in specs:
            if spec.kind == KIND_PERSONALIZED:
                assert spec.platform == SELF_HOSTED

    def test_regex_only_on_skyfeed(self, feed_setup):
        _, _, specs = feed_setup
        for spec in specs:
            if spec.regex is not None:
                assert spec.platform == PLATFORM_SKYFEED

    def test_dead_share_near_paper(self, feed_setup):
        _, _, specs = feed_setup
        dead = sum(1 for s in specs if s.kind == KIND_DEAD)
        assert 0.03 < dead / len(specs) < 0.18

    def test_creation_after_creator_signup(self, feed_setup):
        _, plan, specs = feed_setup
        for spec in specs:
            assert spec.created_us > plan.users[spec.creator_index].signup_us

    def test_feed_creation_after_intro(self, feed_setup):
        from repro.simulation.config import FEEDGEN_INTRO_US

        _, plan, specs = feed_setup
        for spec in specs:
            creator = plan.users[spec.creator_index]
            # Feeds predate neither the feature nor their creator.
            assert spec.created_us >= min(FEEDGEN_INTRO_US, creator.signup_us)

    def test_rules_valid_for_platforms(self, feed_setup):
        """Every generated spec must be expressible on its platform."""
        from repro.services.feedgen import FeedRule
        from repro.services.feedservice import ALL_PROFILES, rule_required_features

        _, _, specs = feed_setup
        profiles = {p.name: p for p in ALL_PROFILES}
        for spec in specs:
            if spec.platform == SELF_HOSTED or spec.kind in (KIND_PERSONALIZED, KIND_DEAD):
                continue
            if spec.kind == KIND_AGGREGATOR:
                rule = FeedRule(whole_network=True)
            elif spec.kind == "language":
                rule = FeedRule(languages=frozenset(spec.languages))
            elif spec.kind == "author":
                rule = FeedRule(authors=frozenset({"did:plc:" + "x" * 24}))
            else:
                rule = FeedRule(
                    keywords=frozenset({spec.topic}),
                    regex=spec.regex,
                    languages=frozenset(spec.languages),
                )
            missing = rule_required_features(rule) - profiles[spec.platform].features
            assert not missing, "%s cannot host %s (missing %s)" % (
                spec.platform,
                spec.kind,
                missing,
            )

    def test_unhosted_fraction(self, feed_setup):
        _, _, specs = feed_setup
        share = sum(1 for s in specs if s.unhosted) / len(specs)
        assert 0.01 < share < 0.15

    def test_like_weights_positive(self, feed_setup):
        _, _, specs = feed_setup
        assert all(s.like_weight > 0 for s in specs)

    def test_personalized_feeds_highly_likeable(self, feed_setup):
        _, _, specs = feed_setup
        personalized = [s.like_weight for s in specs if s.kind == KIND_PERSONALIZED]
        aggregators = [s.like_weight for s in specs if s.kind == KIND_AGGREGATOR]
        if personalized and aggregators:
            assert min(personalized) > max(aggregators)

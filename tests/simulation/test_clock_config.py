"""Tests for the simulation clock, calendar helpers, and configuration."""

import pytest
from hypothesis import given, strategies as st

from repro.simulation.clock import (
    US_PER_DAY,
    SimClock,
    date_us,
    day_key,
    day_range,
    iso_timestamp,
    month_key,
    us_to_date,
)
from repro.simulation.config import PAPER, SimulationConfig


class TestCalendar:
    def test_date_us_epoch(self):
        assert date_us("1970-01-01") == 0

    def test_date_us_known(self):
        assert date_us("1970-01-02") == US_PER_DAY

    def test_datetime_form(self):
        assert date_us("2024-03-06T12:00:00") == date_us("2024-03-06") + 12 * 3600 * 1_000_000

    def test_round_trip_date(self):
        t = date_us("2024-04-24")
        assert str(us_to_date(t)) == "2024-04-24"

    def test_month_key(self):
        assert month_key(date_us("2024-03-15")) == "2024-03"

    def test_day_key(self):
        assert day_key(date_us("2024-03-15") + 5000) == "2024-03-15"

    def test_iso_timestamp(self):
        assert iso_timestamp(0) == "1970-01-01T00:00:00.000Z"

    def test_day_range(self):
        start = date_us("2024-01-01")
        days = list(day_range(start, start + 3 * US_PER_DAY))
        assert days == [start, start + US_PER_DAY, start + 2 * US_PER_DAY]

    def test_day_range_aligns(self):
        start = date_us("2024-01-01") + 500
        days = list(day_range(start, start + US_PER_DAY))
        assert all(day % US_PER_DAY == 0 for day in days)


class TestSimClock:
    def test_advance_to(self):
        clock = SimClock(100)
        clock.advance_to(500)
        assert clock.now_us == 500

    def test_advance_to_never_goes_back(self):
        clock = SimClock(100)
        clock.advance_to(50)
        assert clock.now_us == 100

    def test_advance_delta(self):
        clock = SimClock(0)
        clock.advance(42)
        assert clock.now_us == 42


class TestConfig:
    def test_paper_constants_sanity(self):
        assert PAPER["users"] == 5_523_919
        assert PAPER["labelers_announced"] == 62
        assert PAPER["feed_generators_reachable"] == 40_398
        assert abs(PAPER["share_commit"] - 0.9978) < 1e-9

    def test_scaled_user_count(self):
        config = SimulationConfig(scale=1 / 1000)
        assert config.n_users == int(5_523_919 / 1000)

    def test_minimum_floors(self):
        config = SimulationConfig(scale=1e-9, feed_scale=1e-9)
        assert config.n_users >= 50
        assert config.n_feed_generators >= 20

    def test_labelers_never_scaled(self):
        assert SimulationConfig(scale=1e-9).n_labelers == 62
        assert SimulationConfig(scale=1.0).n_labelers == 62

    def test_target_ops_scale_linearly(self):
        small = SimulationConfig(scale=1 / 2000, activity_scale=1.0).target_ops()
        half = SimulationConfig(scale=1 / 2000, activity_scale=0.5).target_ops()
        assert half["like"] == pytest.approx(small["like"] / 2, abs=1)

    def test_presets_are_ordered_by_size(self):
        assert SimulationConfig.tiny().n_users < SimulationConfig.small().n_users
        assert SimulationConfig.small().n_users < SimulationConfig.bench().n_users


@given(st.integers(min_value=0, max_value=4 * 10**15))
def test_day_key_matches_month_key_prefix(t):
    assert day_key(t).startswith(month_key(t))

"""Tests for extension scenarios and label signing in the world."""

import pytest

from repro.simulation.clock import date_us, us_to_date
from repro.simulation.config import SIM_END_US, SimulationConfig
from repro.simulation.population import build_population
from repro.simulation.world import World


class TestBrazilBanScenario:
    def test_timeline_extends(self):
        config = SimulationConfig.tiny()
        config.brazil_ban_scenario = True
        config.__post_init__()
        assert config.end_us > SIM_END_US

    def test_september_pt_wave(self):
        config = SimulationConfig(
            seed=9, scale=1 / 10000, brazil_ban_scenario=True
        )
        plan = build_population(config)
        pt_users = [u for u in plan.users if u.lang == "pt"]
        assert len(pt_users) > 20
        september = sum(
            1 for u in pt_users if u.signup_us >= date_us("2024-08-30")
        )
        # The ban wave dominates Portuguese signups.
        assert september / len(pt_users) > 0.6

    def test_other_languages_unaffected(self):
        config = SimulationConfig(seed=9, scale=1 / 10000, brazil_ban_scenario=True)
        plan = build_population(config)
        de_users = [u for u in plan.users if u.lang == "de"]
        if de_users:
            september = sum(1 for u in de_users if u.signup_us >= date_us("2024-08-30"))
            assert september / len(de_users) < 0.5

    def test_default_config_has_no_wave(self):
        plan = build_population(SimulationConfig(seed=9, scale=1 / 10000))
        assert all(u.signup_us < SIM_END_US for u in plan.users)

    @pytest.mark.slow
    def test_scenario_world_runs(self):
        config = SimulationConfig(
            seed=4, scale=1 / 60000, feed_scale=1 / 1200, activity_scale=0.3,
            brazil_ban_scenario=True,
        )
        world = World(config).run()
        pt_sept = [
            u
            for u in world.live_users()
            if u.spec.lang == "pt" and u.spec.signup_us >= date_us("2024-08-30")
        ]
        assert pt_sept, "the September wave must produce live pt accounts"


class TestSignedLabels:
    def test_simulation_labels_are_signed(self, study_world):
        official = study_world.official_labeler()
        labels = official.service.xrpc_subscribeLabels(cursor=0, limit=5)
        assert labels
        assert all(label.sig for label in labels)

    def test_signatures_verify_against_did_document(self, study_world):
        official = study_world.official_labeler()
        doc = study_world.plc.resolve(official.did)
        from repro.atproto.keys import public_key_from_did_key

        key = public_key_from_did_key(doc.signing_key)
        label = official.service.xrpc_subscribeLabels(cursor=0, limit=1)[0]
        assert official.service.verify_label(label, key)

    def test_collector_verified_all_signatures(self, study_datasets):
        assert study_datasets.labels.signature_failures == 0
        assert any(label.sig for label in study_datasets.labels.labels)

    def test_forged_label_rejected(self, study_world):
        from repro.atproto.keys import HmacKeypair, public_key_from_did_key
        from repro.services.labeler import Label

        official = study_world.official_labeler()
        doc = study_world.plc.resolve(official.did)
        key = public_key_from_did_key(doc.signing_key)
        forged = Label(
            seq=1, src=official.did, uri="at://x/app.bsky.feed.post/1",
            val="spam", neg=False, cts=1,
            sig=HmacKeypair.from_seed(b"attacker").sign(b"whatever"),
        )
        assert not official.service.verify_label(forged, key)

"""Tests for the content vocabularies."""

import random

import pytest

from repro.simulation import vocab


@pytest.fixture()
def rng():
    return random.Random(42)


class TestPickWeighted:
    def test_respects_weights(self, rng):
        pairs = (("a", 99.0), ("b", 1.0))
        picks = [vocab.pick_weighted(rng, pairs) for _ in range(500)]
        assert picks.count("a") > 400

    def test_single_option(self, rng):
        assert vocab.pick_weighted(rng, (("only", 1.0),)) == "only"

    def test_extra_tuple_fields_ignored(self, rng):
        pairs = (("x", 1.0, "meta"), ("y", 1.0, "meta"))
        assert vocab.pick_weighted(rng, pairs) in ("x", "y")


class TestPostText:
    def test_language_words_used(self, rng):
        text = vocab.make_post_text(rng, "ja")
        words = set(text.split())
        assert words & set(vocab.LANGUAGE_WORDS["ja"])

    def test_topic_injected(self, rng):
        text = vocab.make_post_text(rng, "en", topic="ramen")
        assert "ramen" in text.split()

    def test_unknown_language_falls_back(self, rng):
        text = vocab.make_post_text(rng, "xx")
        assert set(text.split()) & set(vocab.LANGUAGE_WORDS["en"])

    def test_length_bounds(self, rng):
        for _ in range(50):
            words = vocab.make_post_text(rng, "en").split()
            assert 4 <= len(words) <= 15


class TestFeedDescription:
    def test_topic_present(self, rng):
        description = vocab.make_feed_description(rng, "en", "cats")
        assert "cats" in description

    def test_nsfw_tagged(self, rng):
        description = vocab.make_feed_description(rng, "en", "nsfw")
        assert "nsfw" in description

    def test_art_descriptions_sometimes_link_platforms(self, rng):
        linked = 0
        for _ in range(100):
            description = vocab.make_feed_description(rng, "en", "art")
            if any(site in description for site in vocab.ARTIST_PLATFORM_LINKS):
                linked += 1
        assert linked > 10


class TestUsernames:
    def test_unique_by_index(self, rng):
        a = vocab.make_username(rng, 1)
        b = vocab.make_username(rng, 2)
        assert a != b
        assert a.endswith("1") and b.endswith("2")

    def test_handle_safe(self, rng):
        name = vocab.make_username(rng, 123)
        assert name.isalnum()
        assert name.islower()


class TestCalibrationTables:
    def test_language_shares_sum_near_one(self):
        from repro.simulation.config import LANGUAGES

        assert sum(share for _, share, _ in LANGUAGES) == pytest.approx(1.0, abs=0.01)

    def test_topics_have_positive_weights(self):
        assert all(weight > 0 for _, weight in vocab.TOPICS)

    def test_subdomain_providers_match_paper_names(self):
        names = {name for name, _ in vocab.SUBDOMAIN_PROVIDERS}
        assert {"swifties.social", "tired.io", "vibes.cool", "github.io"} <= names

    def test_provider_counts_ordered_like_paper(self):
        counts = dict(vocab.SUBDOMAIN_PROVIDERS)
        assert counts["swifties.social"] > counts["tired.io"] > counts["vibes.cool"]

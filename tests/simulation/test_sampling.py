"""Samplers must be drop-in replacements for random.choices in the engine."""

import random
from collections import Counter

import pytest

from repro.simulation.sampling import AliasSampler, CumulativeSampler, SamplingError


class TestCumulativeSampler:
    def test_stream_identical_to_rng_choices(self):
        """The whole point: swapping the sampler in must not move a single
        draw of a seeded RNG relative to rng.choices(weights=...)."""
        population = list(range(500))
        weights = [random.Random(1).random() + 0.01 for _ in population]
        sampler = CumulativeSampler(population, weights)

        rng_a = random.Random(99)
        rng_b = random.Random(99)
        for k in (1, 3, 10, 50):
            assert sampler.sample_k(rng_a, k) == rng_b.choices(population, weights=weights, k=k)
        # And the generators themselves stay in lockstep afterwards.
        assert rng_a.random() == rng_b.random()

    def test_single_sample_matches_choices(self):
        sampler = CumulativeSampler(["a", "b", "c"], [1.0, 5.0, 2.0])
        rng_a = random.Random(7)
        rng_b = random.Random(7)
        for _ in range(200):
            assert sampler.sample(rng_a) == rng_b.choices(
                ["a", "b", "c"], weights=[1.0, 5.0, 2.0], k=1
            )[0]

    def test_incremental_append_equals_bulk_build(self):
        pairs = [(i, 0.5 + (i % 7)) for i in range(100)]
        bulk = CumulativeSampler([p for p, _ in pairs], [w for _, w in pairs])
        incremental = CumulativeSampler()
        incremental.extend(pairs)
        assert incremental.items == bulk.items
        assert incremental.cum_weights == bulk.cum_weights

    def test_items_alias_sees_appends(self):
        sampler = CumulativeSampler()
        alias = sampler.items
        sampler.append("x", 1.0)
        assert alias == ["x"]

    def test_default_weights_are_uniform(self):
        sampler = CumulativeSampler(["a", "b", "c"])
        assert sampler.cum_weights == [1.0, 2.0, 3.0]

    def test_empty_sampler_is_falsy_and_raises(self):
        sampler = CumulativeSampler()
        assert not sampler
        assert len(sampler) == 0
        with pytest.raises(SamplingError):
            sampler.sample(random.Random(0))

    def test_rejects_negative_weight_and_zero_total(self):
        sampler = CumulativeSampler()
        with pytest.raises(SamplingError):
            sampler.append("x", -1.0)
        zero = CumulativeSampler(["x"], [0.0])
        with pytest.raises(SamplingError):
            zero.sample(random.Random(0))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(SamplingError):
            CumulativeSampler(["a", "b"], [1.0])


class TestAliasSampler:
    def test_distribution_matches_weights(self):
        weights = {"a": 1.0, "b": 3.0, "c": 6.0}
        sampler = AliasSampler(list(weights), list(weights.values()))
        rng = random.Random(5)
        counts = Counter(sampler.sample(rng) for _ in range(60_000))
        total = sum(counts.values())
        for item, weight in weights.items():
            assert counts[item] / total == pytest.approx(weight / 10.0, abs=0.02)

    def test_single_item(self):
        sampler = AliasSampler(["only"], [2.5])
        assert sampler.sample(random.Random(0)) == "only"

    def test_zero_weight_item_never_drawn(self):
        sampler = AliasSampler(["never", "always"], [0.0, 1.0])
        rng = random.Random(3)
        assert all(sampler.sample(rng) == "always" for _ in range(5000))

    def test_invalid_construction(self):
        with pytest.raises(SamplingError):
            AliasSampler([], [])
        with pytest.raises(SamplingError):
            AliasSampler(["a"], [0.0])
        with pytest.raises(SamplingError):
            AliasSampler(["a", "b"], [1.0])

"""Worker supervision: fault injection, detection, recovery, forensics.

The acceptance criteria from the issue: a ``--workers 4`` study whose
workers are killed and hung mid-run completes with artefacts
byte-identical to the fault-free ``--workers 1`` run; a run whose
restart budget is deliberately exhausted finishes via the in-process
fallback instead of raising; and supervision is visible only through
the volatile ``sim_worker_*`` metrics and ``supervisor.*`` spans.
"""

import dataclasses
import json
import multiprocessing
import os

import pytest

from repro.core import report
from repro.core.export import firehose_frame_observer, study_fingerprint
from repro.core.pipeline import MeasurementPipeline
from repro.netsim.faults import (
    WORKER_FAULT_HANG,
    WORKER_FAULT_KILL,
    WORKER_FAULT_SLOW,
    CrashPlan,
    FaultPlan,
    StudyCrashed,
    WorkerFault,
    WorkerFaultPlan,
)
from repro.simulation.config import (
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    SimulationConfig,
)
from repro.simulation.workers import SupervisionPolicy, WorkerError, WorkerPool
from repro.simulation.world import World


def _run(workers: int, **kwargs):
    """One tiny study; mirrors ``test_sharding._run_with_fingerprint``
    but also surfaces the registry so tests can assert on the volatile
    supervision counters (which never reach the snapshot)."""
    world = World(SimulationConfig.tiny())
    frame_digest = firehose_frame_observer(world)
    datasets = MeasurementPipeline(world, workers=workers, **kwargs).run()
    return {
        "frames": frame_digest(),
        "table1": report.render_table1(datasets),
        "metrics": datasets.telemetry.metrics_json(),
        "fingerprint": study_fingerprint(datasets, frame_digest),
        "shard_digests": dict(world.shard_digest_log),
        "registry": world.telemetry.registry,
        "events": list(world.telemetry.events.events),
    }

# Tight deadlines so chaos tests detect a hang in ~a second instead of
# the production-shaped ten; semantics are identical.
TEST_POLICY = SupervisionPolicy(
    poll_interval_s=0.02,
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=1.5,
    restart_backoff_s=0.01,
)


def _no_fallback_policy(**overrides):
    merged = dict(
        poll_interval_s=0.02,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.5,
        restart_backoff_s=0.01,
        max_restarts_per_worker=0,
        fallback_in_process=False,
    )
    merged.update(overrides)
    return SupervisionPolicy(**merged)


# ---------------------------------------------------------------------------
# The fault plan itself
# ---------------------------------------------------------------------------


class TestWorkerFaultPlan:
    def test_seeded_deterministic(self):
        a = WorkerFaultPlan.seeded(7, workers=4, n_days=100)
        b = WorkerFaultPlan.seeded(7, workers=4, n_days=100)
        assert a == b

    def test_different_seeds_differ(self):
        a = WorkerFaultPlan.seeded(7, workers=4, n_days=100)
        b = WorkerFaultPlan.seeded(8, workers=4, n_days=100)
        assert a != b

    def test_seeded_contains_kill_and_hang(self):
        # Kinds cycle, so any plan with >= 2 faults exercises both the
        # crash-detection and the hang-detection paths.
        plan = WorkerFaultPlan.seeded(3, workers=4, n_days=100)
        kinds = {fault.kind for fault in plan.faults}
        assert WORKER_FAULT_KILL in kinds
        assert WORKER_FAULT_HANG in kinds

    def test_days_within_first_80_percent(self):
        for seed in range(10):
            plan = WorkerFaultPlan.seeded(seed, workers=4, n_days=100)
            assert all(1 <= f.day_index <= 80 for f in plan.faults)

    def test_workers_within_range(self):
        plan = WorkerFaultPlan.seeded(5, workers=3, n_days=50)
        assert all(0 <= f.worker < 3 for f in plan.faults)

    def test_schedule_for_orders_and_dedupes(self):
        plan = WorkerFaultPlan(
            seed=0,
            faults=(
                WorkerFault(0, 9, WORKER_FAULT_KILL),
                WorkerFault(0, 3, WORKER_FAULT_HANG),
                WorkerFault(0, 9, WORKER_FAULT_SLOW, slow_s=0.1),  # dup day: ignored
                WorkerFault(1, 5, WORKER_FAULT_KILL),
            ),
        )
        schedule = plan.schedule_for(0)
        assert [f.day_index for f in schedule] == [3, 9]
        assert schedule[1].kind == WORKER_FAULT_KILL
        assert plan.schedule_for(2) == ()

    def test_empty(self):
        assert WorkerFaultPlan().is_empty()
        assert not WorkerFaultPlan.seeded(1, workers=2, n_days=50).is_empty()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkerFault(0, 1, "explode")


class TestSupervisionPolicy:
    def test_backoff_exponential_and_capped(self):
        policy = SupervisionPolicy(
            restart_backoff_s=0.1, backoff_multiplier=2.0, max_backoff_s=0.5
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)
        assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Day-protocol error paths (direct pool tests)
# ---------------------------------------------------------------------------


class TestProtocolErrorPaths:
    def test_unknown_op_is_fatal_worker_error(self):
        with WorkerPool(
            SimulationConfig.tiny(), 2, supervision=TEST_POLICY
        ) as pool:
            handle = pool._handles[0]
            handle.conn.send(("bogus",))
            with pytest.raises(WorkerError, match="unknown worker op"):
                pool._recv(handle)
        assert pool.live_workers() == 0

    def test_error_reply_during_repo_fetch_is_fatal(self):
        # A malformed repos payload makes the replica raise while
        # exporting; the traceback must come back as a WorkerError, not
        # hang the coordinator or trigger a pointless restart loop.
        with WorkerPool(
            SimulationConfig.tiny(), 2, supervision=TEST_POLICY
        ) as pool:
            handle = pool._handles[0]
            handle.conn.send(("repos", [["unhashable-did"]]))
            with pytest.raises(WorkerError, match="TypeError"):
                pool._recv(handle)
        assert pool.live_workers() == 0

    def test_worker_death_during_collect_raises_when_unsupervised(self):
        # max_restarts=0 + no fallback restores the old fail-fast
        # contract — but unlike the old code the pool's context manager
        # still reaps the survivors (the leak this PR fixes).
        config = SimulationConfig.tiny()
        plan = WorkerFaultPlan(seed=0, faults=(WorkerFault(0, 0, WORKER_FAULT_KILL),))
        with WorkerPool(
            config, 2, fault_plan=plan, supervision=_no_fallback_policy()
        ) as pool:
            assert pool.live_workers() == 2
            pool.send_day(config.start_us, [])
            with pytest.raises(WorkerError, match="restart budget"):
                pool.collect_batches()
        assert pool.live_workers() == 0

    def test_context_manager_shuts_down_on_normal_exit(self):
        with WorkerPool(SimulationConfig.tiny(), 2) as pool:
            assert pool.live_workers() == 2
        assert pool.live_workers() == 0
        assert all(handle.conn is None for handle in pool._handles)

    def test_shutdown_idempotent(self):
        pool = WorkerPool(SimulationConfig.tiny(), 2)
        pool.shutdown()
        pool.shutdown()
        assert pool.live_workers() == 0

    def test_hung_worker_is_reaped_not_leaked_at_shutdown(self):
        # A worker wedged in a hang fault ignores ("stop",); shutdown
        # must escalate (terminate -> kill) instead of leaking it.
        config = SimulationConfig.tiny()
        plan = WorkerFaultPlan(seed=0, faults=(WorkerFault(0, 0, WORKER_FAULT_HANG),))
        pool = WorkerPool(config, 2, fault_plan=plan, supervision=TEST_POLICY)
        pool.send_day(config.start_us, [])  # trips the hang in worker 0
        pool.shutdown()
        assert pool.live_workers() == 0
        assert not multiprocessing.active_children()


# ---------------------------------------------------------------------------
# Recovery: restart-and-replay, byte-identical artefacts
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestSupervisedRecoveryByteIdentity:
    """Kill + hang + slow a workers=4 run; artefacts match workers=1."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return _run(1)

    @pytest.fixture(scope="class")
    def faulted(self):
        plan = WorkerFaultPlan(
            seed=7,
            faults=(
                WorkerFault(0, 5, WORKER_FAULT_KILL),
                WorkerFault(1, 9, WORKER_FAULT_HANG),
                WorkerFault(2, 13, WORKER_FAULT_SLOW, slow_s=0.3),
            ),
        )
        return _run(4, worker_fault_plan=plan, supervision=TEST_POLICY)

    def test_fingerprint_identical(self, baseline, faulted):
        assert faulted["fingerprint"] == baseline["fingerprint"]

    def test_frames_and_table1_identical(self, baseline, faulted):
        assert faulted["frames"] == baseline["frames"]
        assert faulted["table1"] == baseline["table1"]

    def test_metrics_json_identical_and_free_of_supervision(self, baseline, faulted):
        # The supervision counters are volatile: real in the registry,
        # absent from the deterministic snapshot that artefacts embed.
        assert faulted["metrics"] == baseline["metrics"]
        assert "sim_worker" not in faulted["metrics"]

    def test_restart_metrics_deterministic(self, faulted):
        registry = faulted["registry"]
        restarts = registry.family("sim_worker_restarts_total")
        # One restart for the killed worker's shard, one for the hung
        # worker's; the slowed worker kept heartbeating and was left
        # alone (slow != hung — the detection must distinguish them).
        assert dict(restarts.items()) == {("s00",): 1, ("s01",): 1}
        assert registry.family("sim_worker_hangs_detected_total").total() == 1
        assert registry.family("sim_worker_fallbacks_total").total() == 0

    def test_no_worker_processes_leaked(self, faulted):
        assert not multiprocessing.active_children()


@pytest.mark.slow
class TestSeededPlanByteIdentity:
    """The CLI path: ``--workers 4 --worker-fault-seed <s>``."""

    def test_seeded_kills_and_hangs_match_fault_free_workers1(self):
        baseline = _run(1)
        plan = WorkerFaultPlan.seeded(2024, workers=4, n_days=60)
        kinds = {f.kind for f in plan.faults}
        assert WORKER_FAULT_KILL in kinds and WORKER_FAULT_HANG in kinds
        faulted = _run(4, worker_fault_plan=plan, supervision=TEST_POLICY)
        assert faulted["fingerprint"] == baseline["fingerprint"]
        restarts = faulted["registry"].family("sim_worker_restarts_total")
        expected = sum(
            1 for f in plan.faults if f.kind in (WORKER_FAULT_KILL, WORKER_FAULT_HANG)
        )
        assert restarts.total() == expected


@pytest.mark.slow
class TestRestartBudgetExhaustion:
    """Budget gone -> the shards fold into the coordinator, not an abort."""

    def test_exhausted_budget_falls_back_in_process(self):
        baseline = _run(1)
        # Two kills against a budget of one: the second detection folds
        # worker 0's shards (s00, s02 at workers=2) inline.
        plan = WorkerFaultPlan(
            seed=1,
            faults=(
                WorkerFault(0, 4, WORKER_FAULT_KILL),
                WorkerFault(0, 8, WORKER_FAULT_KILL),
            ),
        )
        policy = SupervisionPolicy(
            poll_interval_s=0.02,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=1.5,
            restart_backoff_s=0.01,
            max_restarts_per_worker=1,
        )
        faulted = _run(2, worker_fault_plan=plan, supervision=policy)
        assert faulted["fingerprint"] == baseline["fingerprint"]
        registry = faulted["registry"]
        assert dict(registry.family("sim_worker_restarts_total").items()) == {
            ("s00",): 1,
            ("s02",): 1,
        }
        assert dict(registry.family("sim_worker_fallbacks_total").items()) == {
            ("s00",): 1,
            ("s02",): 1,
        }
        assert not multiprocessing.active_children()


@pytest.mark.slow
class TestFlightRecorder:
    """A killed worker leaves ``flight-w<idx>.json`` forensics behind —
    and the dump never perturbs the artefact fingerprint."""

    @pytest.fixture(scope="class")
    def crashed(self, tmp_path_factory):
        flight_dir = str(tmp_path_factory.mktemp("flight"))
        plan = WorkerFaultPlan(
            seed=5, faults=(WorkerFault(0, 5, WORKER_FAULT_KILL),)
        )
        policy = dataclasses.replace(TEST_POLICY, flight_dir=flight_dir)
        faulted = _run(4, worker_fault_plan=plan, supervision=policy)
        return flight_dir, faulted

    def test_dump_written_for_the_killed_worker_only(self, crashed):
        flight_dir, _ = crashed
        assert sorted(os.listdir(flight_dir)) == ["flight-w00.json"]

    def test_dump_schema_and_final_receipt(self, crashed):
        flight_dir, _ = crashed
        with open(os.path.join(flight_dir, "flight-w00.json")) as handle:
            record = json.load(handle)
        assert record["schema"] == "repro-flight-v1"
        assert record["worker"] == 0
        assert record["failure"]["type"] == "WorkerCrashed"
        assert record["owned_shards"]
        # The receipt for the day that killed the worker is shipped
        # before the fault gate, so the ring holds it: the last entry
        # must be a day "recv" with no matching "done".
        entries = record["entries"]
        assert entries
        final = entries[-1]
        assert (final["op"], final["stage"]) == ("day", "recv")
        assert final["day_index"] == 5

    def test_fingerprint_unperturbed_by_flight_dump(self, crashed):
        _, faulted = crashed
        assert faulted["fingerprint"] == _run(1)["fingerprint"]

    def test_flight_dump_event_is_volatile(self, crashed):
        _, faulted = crashed
        dumps = [e for e in faulted["events"] if e["kind"] == "flight.dump"]
        assert dumps and all(e.get("volatile") for e in dumps)
        assert dumps[0]["fields"]["worker"] == 0


@pytest.mark.slow
class TestCombinedFaultsCrashResume:
    """Worker faults stay invisible under --fault-seed + crash/resume."""

    @staticmethod
    def _crash_resume(tmp_path_factory, workers, **kwargs):
        def fault_plan():
            return FaultPlan.recoverable(
                11, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
            )

        checkpoint_dir = str(tmp_path_factory.mktemp("ckpt-supervise"))
        with pytest.raises(StudyCrashed):
            MeasurementPipeline(
                World(SimulationConfig.tiny()),
                fault_plan=fault_plan(),
                checkpoint_dir=checkpoint_dir,
                crash_plan=CrashPlan(points=(900,)),
                workers=workers,
                **kwargs,
            ).run()
        return _run(
            workers,
            fault_plan=fault_plan(),
            checkpoint_dir=checkpoint_dir,
            resume=True,
            **kwargs,
        )

    def test_workers4_with_faults_matches_workers1(self, tmp_path_factory):
        baseline = self._crash_resume(tmp_path_factory, 1)
        plan = WorkerFaultPlan(
            seed=3,
            faults=(
                WorkerFault(0, 6, WORKER_FAULT_KILL),
                WorkerFault(1, 11, WORKER_FAULT_HANG),
            ),
        )
        faulted = self._crash_resume(
            tmp_path_factory,
            4,
            worker_fault_plan=plan,
            supervision=TEST_POLICY,
        )
        assert faulted["fingerprint"] == baseline["fingerprint"]
        assert faulted["frames"] == baseline["frames"]
        assert faulted["shard_digests"] == baseline["shard_digests"]

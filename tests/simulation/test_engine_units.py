"""Unit-level tests for engine internals on a running tiny world."""

import pytest

from repro.atproto.lexicon import BLOCK, FOLLOW, LIKE, POST
from repro.simulation.clock import US_PER_DAY, date_us
from repro.simulation.config import LABEL_SNAPSHOT_US


class TestSessionOutputs:
    def test_posts_carry_language_tags_mostly(self, study_world):
        posts = list(study_world.appview.index.posts.values())
        tagged = sum(1 for p in posts if p.langs)
        assert tagged / len(posts) > 0.8

    def test_media_posts_exist(self, study_world):
        posts = list(study_world.appview.index.posts.values())
        assert any(p.has_media for p in posts)

    def test_session_times_stay_inside_their_day(self, study_world):
        """Clamped sessions: no post is timestamped past its day's end."""
        from repro.simulation.clock import day_key

        for view in list(study_world.appview.index.posts.values())[:500]:
            # time_us within a valid day implies day_key parses cleanly.
            assert len(day_key(view.time_us)) == 10

    def test_bogus_created_at_exists_at_scale(self, study_world):
        """A handful of posts carry the pre-launch createdAt bug."""
        bogus = [
            view
            for view in study_world.appview.index.posts.values()
            if view.created_at[:4] in ("1185", "1776", "1923")
        ]
        # Tiny worlds may legitimately have zero; the rate is 2.5e-4.
        assert len(bogus) <= max(5, len(study_world.appview.index.posts) // 500)

    def test_likes_reference_real_subjects(self, study_world):
        sampled = 0
        for user in study_world.live_users()[:10]:
            repo = user.pds.repo(user.did)
            for path, record in repo.list_records(LIKE):
                subject = record["subject"]["uri"]
                assert subject.startswith("at://")
                sampled += 1
                if sampled > 30:
                    return

    def test_follow_subjects_are_users_or_labelers(self, study_world):
        known = {u.did for u in study_world.users if u.joined}
        known.update(r.did for r in study_world.labelers if r.did)
        checked = 0
        for user in study_world.live_users()[:10]:
            repo = user.pds.repo(user.did)
            for path, record in repo.list_records(FOLLOW):
                assert record["subject"] in known
                checked += 1
        assert checked > 0


class TestLabelTiming:
    def test_no_label_predates_its_labeler(self, study_world):
        for runtime in study_world.labelers:
            if runtime.service is None:
                continue
            for label in runtime.service.xrpc_subscribeLabels(cursor=0, limit=20):
                # Reaction delays are non-negative, so cts can never come
                # before the labeler's own start (modulo the forced-label
                # floor, which is clamped to >= start too).
                assert label.cts >= runtime.spec.start_us - US_PER_DAY

    def test_labels_reference_network_objects(self, study_world):
        official = study_world.official_labeler()
        for label in official.service.xrpc_subscribeLabels(cursor=0, limit=50):
            assert label.uri.startswith(("at://", "did:"))

    def test_rescinds_follow_applications(self, study_world):
        for runtime in study_world.labelers:
            if runtime.service is None:
                continue
            seen = set()
            for label in runtime.service.xrpc_subscribeLabels(cursor=0):
                key = (label.uri, label.val)
                if label.neg:
                    assert key in seen, "negation without prior application"
                seen.add(key)


class TestWorldInvariants:
    def test_every_live_user_resolvable_and_hosted(self, study_world):
        for user in study_world.live_users()[:30]:
            assert study_world.relay.cached_repo(user.did) is not None

    def test_firehose_seq_dense(self, study_world):
        from repro.atproto.events import KIND_INFO

        events = study_world.relay.firehose.events_since(0)
        seqs = [e.seq for e in events if e.kind != KIND_INFO]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        # An 18-month timeline with 3-day retention must have pruned, and
        # the cursor-0 replay must announce that instead of hiding it.
        if seqs[0] > 1:
            assert events[0].kind == KIND_INFO
            assert events[0].dropped == seqs[0] - 1

    def test_self_hosted_pdses_crawled(self, study_world):
        for pds in study_world.self_hosted_pdses:
            for did in pds.dids():
                assert study_world.relay.hosting_pds(did) is pds

    def test_feed_platform_feed_counts_consistent(self, study_world):
        for name, platform in study_world.feed_platforms.items():
            announced = [
                f
                for f in study_world.feeds
                if f.announced and f.endpoint == platform.endpoint and f.feed_obj is not None
            ]
            assert platform.feed_count() == len(announced)

"""Sharded-engine determinism: the tentpole acceptance tests.

The criterion from the issue: partitioning the population into logical
shards and running them across worker processes must leave every artefact
byte-identical to the single-process run of the same seed — firehose
frames, Table 1, metrics.json — including under fault injection and
through a crash/resume cycle.  The deterministic relay merge
``(time_us, shard id, intra-shard seq)`` is what makes this hold.
"""

import hashlib

import pytest

from repro.core import report
from repro.core.checkpoint import CheckpointError
from repro.core.export import firehose_frame_observer, study_fingerprint
from repro.core.pipeline import MeasurementPipeline, run_study
from repro.netsim.faults import CrashPlan, FaultPlan, StudyCrashed
from repro.simulation.config import (
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    SimulationConfig,
)
from repro.simulation.sharding import (
    DayBatch,
    RecentPost,
    RecentPostPool,
    derive_seed,
    digest_batch,
    merged_items,
    shard_of,
)
from repro.simulation.world import World

WORKER_COUNTS = (1, 2, 4)


def _post(i: int, time_us: int = 0) -> RecentPost:
    return RecentPost(
        uri="at://did:plc:u%d/app.bsky.feed.post/3k%d" % (i, i),
        cid="cid%d" % i,
        author_did="did:plc:u%d" % i,
        time_us=time_us or i,
    )


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(2024, "shard", 3) == derive_seed(2024, "shard", 3)

    def test_streams_independent(self):
        seeds = {
            derive_seed(2024, "schedule"),
            derive_seed(2024, "lifecycle"),
            derive_seed(2024, "signup"),
            derive_seed(2024, "shard", 0),
            derive_seed(2024, "shard", 1),
            derive_seed(2025, "shard", 0),
        }
        assert len(seeds) == 6

    def test_64_bit_range(self):
        for shard in range(16):
            assert 0 <= derive_seed(7, "shard", shard) < 2**64

    def test_shard_assignment_rule(self):
        # Same rule as the default PDS layout: index modulo shard count.
        assert [shard_of(i, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


class TestRecentPostPool:
    def test_bounded(self):
        pool = RecentPostPool(maxlen=3)
        pool.extend(_post(i) for i in range(10))
        assert len(pool) == 3

    def test_fifo_eviction_oldest_first(self):
        pool = RecentPostPool(maxlen=3)
        pool.extend(_post(i) for i in range(5))
        # Entries 0 and 1 were evicted; index 0 is the oldest survivor.
        assert [p.cid for p in pool.snapshot()] == ["cid2", "cid3", "cid4"]
        assert pool[0].cid == "cid2"
        assert pool[2].cid == "cid4"

    def test_indexing_stable_before_full(self):
        pool = RecentPostPool(maxlen=10)
        pool.extend(_post(i) for i in range(4))
        assert [pool[i].cid for i in range(4)] == ["cid0", "cid1", "cid2", "cid3"]

    def test_out_of_range_raises(self):
        pool = RecentPostPool(maxlen=2)
        pool.extend(_post(i) for i in range(3))
        with pytest.raises(IndexError):
            pool[2]

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            RecentPostPool(maxlen=0)


class TestMergeRule:
    def test_orders_by_time_then_shard_then_seq(self):
        batch0 = DayBatch(shard_id=0, items=[(200, 1, "a0"), (100, 1, "a1")])
        batch1 = DayBatch(shard_id=1, items=[(100, 1, "b0"), (100, 1, "b1")])
        merged = [item[3][2] for item in merged_items([batch0, batch1])]
        # time 100: shard 0 first, then shard 1 in intra-shard order.
        assert merged == ["a1", "b0", "b1", "a0"]

    def test_merge_independent_of_batch_arrival_order(self):
        batch0 = DayBatch(shard_id=0, items=[(5, 1, "x")])
        batch1 = DayBatch(shard_id=1, items=[(5, 1, "y")])
        forward = merged_items([batch0, batch1])
        reversed_ = merged_items([batch1, batch0])
        assert forward == reversed_

    def test_digest_excludes_wall_time(self):
        items = [(10, 1, (_post(1), frozenset()))]
        a, b = hashlib.sha256(), hashlib.sha256()
        digest_batch(a, DayBatch(shard_id=0, items=list(items), gen_wall_us=1.0))
        digest_batch(b, DayBatch(shard_id=0, items=list(items), gen_wall_us=99.0))
        assert a.hexdigest() == b.hexdigest()


def _run_with_fingerprint(workers: int, **kwargs):
    """One tiny study at ``workers`` processes, with the frame observer
    attached before the world runs; returns everything the byte-identity
    assertions compare."""
    world = World(SimulationConfig.tiny())
    frame_digest = firehose_frame_observer(world)
    datasets = MeasurementPipeline(world, workers=workers, **kwargs).run()
    return {
        "frames": frame_digest(),
        "table1": report.render_table1(datasets),
        "metrics": datasets.telemetry.metrics_json(),
        "fingerprint": study_fingerprint(datasets, frame_digest),
        "shard_digests": dict(world.shard_digest_log),
        "next_seq": world.relay.firehose.next_seq(),
    }


@pytest.mark.slow
class TestWorkerByteIdentity:
    """Same seed, workers 1/2/4: every artefact byte-identical."""

    @pytest.fixture(scope="class")
    def runs(self):
        return {w: _run_with_fingerprint(w) for w in WORKER_COUNTS}

    def test_firehose_frames_identical(self, runs):
        assert runs[2]["frames"] == runs[1]["frames"]
        assert runs[4]["frames"] == runs[1]["frames"]

    def test_table1_identical(self, runs):
        assert runs[2]["table1"] == runs[1]["table1"]
        assert runs[4]["table1"] == runs[1]["table1"]

    def test_metrics_json_identical(self, runs):
        assert runs[2]["metrics"] == runs[1]["metrics"]
        assert runs[4]["metrics"] == runs[1]["metrics"]

    def test_relay_seq_numbers_identical(self, runs):
        assert runs[1]["next_seq"] > 1
        assert runs[2]["next_seq"] == runs[1]["next_seq"]
        assert runs[4]["next_seq"] == runs[1]["next_seq"]

    def test_shard_digest_log_identical(self, runs):
        base = runs[1]["shard_digests"]
        assert base, "coordinator must record per-shard digests"
        n_shards = SimulationConfig.tiny().sim_shards
        assert all(len(digests) == n_shards for digests in base.values())
        assert runs[2]["shard_digests"] == base
        assert runs[4]["shard_digests"] == base

    def test_study_fingerprint_identical(self, runs):
        assert runs[2]["fingerprint"] == runs[1]["fingerprint"]
        assert runs[4]["fingerprint"] == runs[1]["fingerprint"]


@pytest.mark.slow
class TestWorkerIdentityUnderFaults:
    """Sharding composes with deterministic fault injection."""

    def test_fault_seed_run_identical_across_workers(self):
        def plan():
            return FaultPlan.recoverable(
                11, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
            )

        single = _run_with_fingerprint(1, fault_plan=plan())
        sharded = _run_with_fingerprint(2, fault_plan=plan())
        assert sharded["fingerprint"] == single["fingerprint"]
        assert sharded["frames"] == single["frames"]


@pytest.mark.slow
class TestWorkerIdentityAcrossCrashResume:
    """A workers=2 study killed mid-run and resumed matches an
    uninterrupted workers=1 run byte for byte — and the resume passes the
    per-shard checkpoint-segment verification."""

    def test_crash_resume_workers2_matches_uninterrupted_workers1(
        self, tmp_path_factory
    ):
        checkpoint_dir = str(tmp_path_factory.mktemp("ckpt-shard"))
        with pytest.raises(StudyCrashed):
            MeasurementPipeline(
                World(SimulationConfig.tiny()),
                checkpoint_dir=checkpoint_dir,
                crash_plan=CrashPlan(points=(900,)),
                workers=2,
            ).run()
        resumed = _run_with_fingerprint(
            2, checkpoint_dir=checkpoint_dir, resume=True
        )
        baseline = _run_with_fingerprint(1)
        assert resumed["fingerprint"] == baseline["fingerprint"]
        assert resumed["frames"] == baseline["frames"]
        assert resumed["shard_digests"] == baseline["shard_digests"]


class TestShardSegmentVerification:
    def test_divergent_digests_rejected(self):
        pipeline = MeasurementPipeline(World(SimulationConfig.tiny()))
        pipeline.world.shard_digest_log = {123: ("aa", "bb", "cc", "dd")}
        pipeline._expected_shard_segment = {
            "day_us": 123,
            "digests": ("aa", "bb", "cc", "ee"),
        }
        with pytest.raises(CheckpointError):
            pipeline._verify_shard_segment()

    def test_missing_day_rejected(self):
        pipeline = MeasurementPipeline(World(SimulationConfig.tiny()))
        pipeline.world.shard_digest_log = {}
        pipeline._expected_shard_segment = {"day_us": 123, "digests": ("aa",)}
        with pytest.raises(CheckpointError):
            pipeline._verify_shard_segment()

    def test_matching_segment_accepted(self):
        pipeline = MeasurementPipeline(World(SimulationConfig.tiny()))
        pipeline.world.shard_digest_log = {123: ("aa", "bb")}
        pipeline._expected_shard_segment = {"day_us": 123, "digests": ("aa", "bb")}
        pipeline._verify_shard_segment()  # must not raise


@pytest.mark.slow
class TestWorkersCli:
    def test_workers_flag_threads_through_run_study(self):
        # Smoke test for the --workers plumbing: a sharded run_study call
        # completes and produces a non-trivial world.
        world, datasets = run_study(SimulationConfig.tiny(), workers=2)
        assert datasets.firehose.total_events() > 0
        assert world.shard_digest_log

"""Integration tests for the world + engine on the shared tiny study."""

import pytest

from repro.atproto.events import KIND_COMMIT
from repro.netsim.dns import DnsRecordType
from repro.simulation.clock import date_us
from repro.simulation.config import (
    COMMUNITY_LABELERS_OPEN_US,
    PUBLIC_OPENING_US,
    SimulationConfig,
)
from repro.simulation.engine import active_fraction, poisson
from repro.simulation.world import World


class TestHelpers:
    def test_poisson_zero_rate(self):
        import random

        assert poisson(random.Random(0), 0.0) == 0

    def test_poisson_mean(self):
        import random

        rng = random.Random(1)
        samples = [poisson(rng, 3.0) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert 2.7 < mean < 3.3

    def test_active_fraction_declines_after_march(self):
        assert active_fraction(date_us("2024-03-02")) > active_fraction(date_us("2024-05-01"))

    def test_active_fraction_bumps_at_opening(self):
        assert active_fraction(PUBLIC_OPENING_US + 1) > active_fraction(PUBLIC_OPENING_US - 86400 * 10**6 * 5)


class TestWorldState(object):
    def test_all_scheduled_users_joined_or_pending(self, study_world):
        joined = [u for u in study_world.users if u.joined]
        assert len(joined) == len(study_world.users)

    def test_repos_exist_for_live_users(self, study_world):
        for user in study_world.live_users()[:20]:
            assert user.pds.has_account(user.did)

    def test_tombstoned_users_removed(self, study_world):
        tombstoned = [u for u in study_world.users if u.tombstoned]
        for user in tombstoned:
            assert not user.pds.has_account(user.did)
            if user.spec.identity_method == "plc":
                assert study_world.plc.resolve(user.did) is None

    def test_did_documents_resolve(self, study_world):
        for user in study_world.live_users()[:20]:
            doc = study_world.resolver.resolve(user.did)
            assert doc is not None
            assert doc.pds_endpoint == user.pds.url

    def test_handle_proofs_published(self, study_world):
        from repro.identity.handles import HandleResolver

        resolver = HandleResolver(study_world.dns, study_world.web)
        checked = 0
        for user in study_world.live_users():
            if user.handle_changes_done:
                continue
            probe = resolver.probe(user.current_handle)
            assert probe.did == user.did
            checked += 1
            if checked >= 15:
                break
        assert checked > 0

    def test_firehose_commit_majority(self, study_world):
        # Table 1 shape: commits dominate the event mix.
        events = study_world.relay.firehose
        assert events.next_seq() > 1000

    def test_labelers_started(self, study_world):
        started = [r for r in study_world.labelers if r.did]
        assert len(started) == 62
        functional = [r for r in study_world.labelers if r.service and
                      study_world.services.is_reachable(r.endpoint)]
        assert len(functional) == 46

    def test_official_labeler_predates_community(self, study_world):
        official = study_world.official_labeler()
        assert official.spec.start_us < COMMUNITY_LABELERS_OPEN_US
        assert official.service.label_count() > 0

    def test_labeler_endpoints_in_did_documents(self, study_world):
        for runtime in study_world.labelers:
            doc = study_world.plc.resolve(runtime.did)
            assert doc is not None
            assert doc.labeler_endpoint == runtime.endpoint

    def test_labeler_dns_a_records(self, study_world):
        functional = [r for r in study_world.labelers if r.spec.functional]
        host = functional[0].endpoint.split("://")[1]
        addresses = study_world.dns.lookup(host, DnsRecordType.A)
        assert len(addresses) == 1

    def test_feeds_announced(self, study_world):
        announced = [f for f in study_world.feeds if f.announced]
        assert len(announced) >= 0.9 * len(study_world.feeds)

    def test_feed_records_in_creator_repos(self, study_world):
        for runtime in study_world.feeds:
            if not runtime.announced:
                continue
            creator = study_world.users[runtime.spec.creator_index]
            if creator.tombstoned:
                continue
            record = creator.pds.repo(creator.did).get_record(
                "app.bsky.feed.generator", runtime.spec.rkey
            )
            assert record is not None
            assert record["did"] == runtime.service_did
            break

    def test_appview_indexed_activity(self, study_world):
        index = study_world.appview.index
        assert len(index.posts) > 100
        assert sum(index.like_counts.values()) > 100
        assert sum(index.follower_counts.values()) > 100

    def test_appview_labels_synced(self, study_world):
        assert study_world.appview.label_count() > 50

    def test_whois_has_provider_domains(self, study_world):
        assert study_world.whois.query("swifties.social") is not None

    def test_deterministic_worlds(self):
        a = World(SimulationConfig.tiny(seed=99)).run()
        b = World(SimulationConfig.tiny(seed=99)).run()
        assert a.relay.firehose.next_seq() == b.relay.firehose.next_seq()
        assert len(a.appview.index.posts) == len(b.appview.index.posts)


class TestGrowthShape:
    def test_daily_actives_grow_over_time(self, study_world):
        """Fig 1 shape: later months have more active users than early ones."""
        from collections import defaultdict

        from repro.simulation.clock import month_key

        posts_by_month = defaultdict(set)
        for view in study_world.appview.index.posts.values():
            posts_by_month[month_key(view.time_us)].add(view.author)
        months = sorted(posts_by_month)
        if len(months) >= 6:
            early = len(posts_by_month[months[1]])
            late = len(posts_by_month[months[-2]])
            assert late > early

    def test_signup_calendar_spans_window(self, study_world):
        signups = [u.spec.signup_us for u in study_world.users]
        config = study_world.config
        assert min(signups) >= config.start_us
        assert max(signups) < config.end_us

"""Session-wide fixtures: one shared tiny world + study datasets.

Building a world is the expensive part of the integration tests; the
simulation is deterministic, so a single session-scoped study is shared by
every test that only reads from it.
"""

import pytest

from repro.core.pipeline import MeasurementPipeline, StudyDatasets, run_study
from repro.simulation.config import SimulationConfig
from repro.simulation.world import World


@pytest.fixture(scope="session")
def study():
    """(world, datasets) for the standard tiny configuration."""
    world, datasets = run_study(SimulationConfig.tiny())
    return world, datasets


@pytest.fixture(scope="session")
def study_world(study) -> World:
    return study[0]


@pytest.fixture(scope="session")
def study_datasets(study) -> StudyDatasets:
    return study[1]

"""Tests for the PDS, the Relay, and the Firehose."""

import pytest

from repro.atproto.events import KIND_COMMIT, KIND_HANDLE, KIND_IDENTITY, KIND_TOMBSTONE
from repro.atproto.keys import HmacKeypair
from repro.atproto.lexicon import FOLLOW, POST
from repro.atproto.repo import import_car
from repro.services.pds import Pds, PdsError
from repro.services.relay import Firehose, Relay
from repro.services.xrpc import XrpcError


def post(text, t="2024-04-01T00:00:00Z"):
    return {"$type": POST, "text": text, "createdAt": t}


class TestPdsAccounts:
    def test_create_account(self, net):
        did, _ = net.create_user("alice")
        assert net.pds.has_account(did)
        assert net.pds.repo_count() == 1

    def test_duplicate_account_rejected(self, net):
        did, key = net.create_user("alice")
        with pytest.raises(PdsError):
            net.pds.create_account(did, key)

    def test_remove_account(self, net):
        did, _ = net.create_user("alice")
        net.pds.remove_account(did, net.tick())
        assert not net.pds.has_account(did)

    def test_preferences_are_private(self, net):
        did, _ = net.create_user("alice")
        net.pds.put_preferences(did, {"labelers": ["did:plc:" + "a" * 24]})
        assert net.pds.get_preferences(did, authenticated_as=did)["labelers"]
        with pytest.raises(PdsError):
            net.pds.get_preferences(did, authenticated_as="did:plc:" + "b" * 24)

    def test_lexicon_validation_on_write(self, net):
        from repro.atproto.lexicon import LexiconError

        did, _ = net.create_user("alice")
        with pytest.raises(LexiconError):
            net.pds.create_record(did, POST, {"$type": POST, "text": "no createdAt"}, 1)

    def test_migration_between_pdses(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("pre-move"), net.tick())
        repo = net.pds.repo(did)
        new_pds = Pds("https://selfhosted.test")
        net.pds._repos.pop(did)  # simulate transfer-out
        new_pds.import_repo(repo)
        assert new_pds.repo(did).get_record(POST, repo.commits[-1].ops[0][1].split("/")[1])


class TestPdsSyncApi:
    def test_list_repos_pagination(self, net):
        for i in range(5):
            did, _ = net.create_user("user%d" % i)
            net.pds.create_record(did, POST, post("x"), net.tick())
        first = net.pds.xrpc_listRepos(limit=2)
        assert len(first["repos"]) == 2
        second = net.pds.xrpc_listRepos(cursor=first["cursor"], limit=10)
        assert len(second["repos"]) == 3
        assert second["cursor"] is None

    def test_get_repo_car(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("hello"), net.tick())
        snapshot = import_car(net.pds.xrpc_getRepo(did=did))
        assert snapshot.did == did

    def test_get_repo_unknown(self, net):
        with pytest.raises(XrpcError):
            net.pds.xrpc_getRepo(did="did:plc:" + "z" * 24)

    def test_get_record(self, net):
        did, _ = net.create_user("alice")
        meta = net.pds.create_record(did, POST, post("hi"), net.tick())
        rkey = meta.ops[0][1].split("/")[1]
        result = net.pds.xrpc_getRecord(did=did, collection=POST, rkey=rkey)
        assert result["value"]["text"] == "hi"

    def test_list_records_pagination(self, net):
        did, _ = net.create_user("alice")
        for i in range(7):
            net.pds.create_record(did, POST, post("p%d" % i), net.tick())
        page = net.pds.xrpc_listRecords(did=did, collection=POST, limit=4)
        assert len(page["records"]) == 4
        rest = net.pds.xrpc_listRecords(
            did=did, collection=POST, limit=4, cursor=page["cursor"]
        )
        assert len(rest["records"]) == 3


class TestRelay:
    def test_commit_events_flow_to_firehose(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("hello"), net.tick())
        events = net.relay.xrpc_subscribeRepos()
        kinds = [e.kind for e in events]
        assert KIND_COMMIT in kinds

    def test_event_records_included(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("payload"), net.tick())
        commit = [e for e in net.relay.xrpc_subscribeRepos() if e.kind == KIND_COMMIT][0]
        assert commit.ops[0].record["text"] == "payload"

    def test_seq_monotonic(self, net):
        did, _ = net.create_user("alice")
        for i in range(5):
            net.pds.create_record(did, POST, post("p%d" % i), net.tick())
        seqs = [e.seq for e in net.relay.xrpc_subscribeRepos()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_cursor_replay(self, net):
        did, _ = net.create_user("alice")
        for i in range(4):
            net.pds.create_record(did, POST, post("p%d" % i), net.tick())
        all_events = net.relay.xrpc_subscribeRepos()
        later = net.relay.xrpc_subscribeRepos(cursor=all_events[1].seq)
        assert [e.seq for e in later] == [e.seq for e in all_events[2:]]

    def test_relay_serves_repo_from_cache(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("cached"), net.tick())
        snapshot = import_car(net.relay.xrpc_getRepo(did=did))
        assert snapshot.did == did

    def test_list_repos_via_relay(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("x"), net.tick())
        result = net.relay.xrpc_listRepos()
        assert result["repos"][0]["did"] == did
        assert result["repos"][0]["rev"] is not None

    def test_tombstone_event(self, net):
        did, _ = net.create_user("alice")
        net.pds.create_record(did, POST, post("x"), net.tick())
        net.pds.remove_account(did, net.tick())
        kinds = [e.kind for e in net.relay.xrpc_subscribeRepos()]
        assert KIND_TOMBSTONE in kinds
        with pytest.raises(XrpcError):
            net.relay.xrpc_getRepo(did=did)

    def test_identity_and_handle_events(self, net):
        did, _ = net.create_user("alice")
        net.relay.publish_identity_event(did, net.tick())
        net.relay.publish_handle_event(did, "alice.example.com", net.tick())
        kinds = [e.kind for e in net.relay.xrpc_subscribeRepos()]
        assert KIND_IDENTITY in kinds and KIND_HANDLE in kinds

    def test_get_latest_commit(self, net):
        did, _ = net.create_user("alice")
        meta = net.pds.create_record(did, POST, post("x"), net.tick())
        latest = net.relay.xrpc_getLatestCommit(did=did)
        assert latest["rev"] == meta.rev

    def test_multi_pds_aggregation(self, net):
        other_pds = Pds("https://pds2.test")
        net.relay.crawl_pds(other_pds)
        key = HmacKeypair.from_seed(b"bob")
        other_pds.create_account("did:plc:" + "b" * 24, key)
        other_pds.create_record("did:plc:" + "b" * 24, POST, post("from pds2"), net.tick())
        did_a, _ = net.create_user("alice")
        net.pds.create_record(did_a, POST, post("from pds1"), net.tick())
        dids = {e.did for e in net.relay.xrpc_subscribeRepos() if e.kind == KIND_COMMIT}
        assert dids == {"did:plc:" + "b" * 24, did_a}


class TestFirehoseRetention:
    DAY_US = 24 * 3600 * 1_000_000

    def test_old_events_pruned(self):
        from repro.atproto.events import IdentityEvent

        firehose = Firehose()
        base = 1_700_000_000_000_000
        for day in range(10):
            firehose.publish(
                lambda seq, day=day: IdentityEvent(
                    seq=seq, did="did:plc:" + "a" * 24, time_us=base + day * self.DAY_US
                )
            )
        # Only the last 3 days (plus the newest event's own day) survive.
        remaining = firehose.events_since(0)
        assert all(e.time_us >= base + 6 * self.DAY_US for e in remaining)
        assert firehose.oldest_available_seq() > 1

    def test_cursor_before_retention_window(self):
        from repro.atproto.events import IdentityEvent

        firehose = Firehose()
        base = 1_700_000_000_000_000
        for day in range(10):
            firehose.publish(
                lambda seq, day=day: IdentityEvent(
                    seq=seq, did="did:plc:" + "a" * 24, time_us=base + day * self.DAY_US
                )
            )
        # Asking from seq 0 returns what retention kept, preceded by an
        # OutdatedCursor notice sizing the gap.
        events = firehose.events_since(0)
        info, replay = events[0], events[1:]
        assert info.kind == "#info"
        assert info.dropped == firehose.oldest_available_seq() - 1
        assert len(replay) == firehose.backlog_size()

    def test_live_subscription(self):
        from repro.atproto.events import IdentityEvent

        firehose = Firehose()
        received = []
        firehose.subscribe(received.append)
        firehose.publish(
            lambda seq: IdentityEvent(seq=seq, did="did:plc:" + "a" * 24, time_us=1)
        )
        assert len(received) == 1
        assert received[0].seq == 1


class TestListReposTombstonedCursor:
    """Pagination must survive the cursor DID being deleted between pages
    (bisect on sort position, not an exact-match index lookup)."""

    def seed_users(self, net, count=6):
        dids = []
        for i in range(count):
            did, _ = net.create_user("user%d" % i)
            net.pds.create_record(did, POST, post("x"), net.tick())
            dids.append(did)
        return sorted(dids)

    def drain(self, service, limit=2):
        seen, cursor = [], None
        while True:
            page = service.xrpc_listRepos(cursor=cursor, limit=limit)
            seen.extend(entry["did"] for entry in page["repos"])
            cursor = page["cursor"]
            if cursor is None:
                return seen

    def test_relay_pagination_continues_past_tombstoned_cursor(self, net):
        dids = self.seed_users(net)
        first = net.relay.xrpc_listRepos(limit=2)
        cursor = first["cursor"]
        net.pds.remove_account(cursor, net.tick())  # tombstone mid-crawl
        seen = [e["did"] for e in first["repos"]]
        while cursor is not None:
            page = net.relay.xrpc_listRepos(cursor=cursor, limit=2)
            seen.extend(e["did"] for e in page["repos"])
            cursor = page["cursor"]
        # Every surviving repo after the tombstoned one is still listed.
        assert set(seen) >= set(dids) - {first["cursor"]}
        assert len(seen) == len(set(seen))  # no duplicates either

    def test_pds_pagination_continues_past_tombstoned_cursor(self, net):
        dids = self.seed_users(net)
        first = net.pds.xrpc_listRepos(limit=2)
        cursor = first["cursor"]
        net.pds.remove_account(cursor, net.tick())
        seen = [e["did"] for e in first["repos"]]
        while cursor is not None:
            page = net.pds.xrpc_listRepos(cursor=cursor, limit=2)
            seen.extend(e["did"] for e in page["repos"])
            cursor = page["cursor"]
        assert set(seen) >= set(dids) - {first["cursor"]}
        assert len(seen) == len(set(seen))

    def test_full_listing_unaffected_without_tombstone(self, net):
        dids = self.seed_users(net)
        assert self.drain(net.relay) == dids
        assert self.drain(net.pds) == dids

"""Tests for AppView post search and curation lists / list feeds."""

import pytest

from repro.services.client import Client
from repro.services.feedgen import FeedError, FeedRule
from repro.services.feedservice import (
    BLUEFEED_PROFILE,
    SKYFEED_PROFILE,
    FeedServicePlatform,
    rule_required_features,
)
from repro.services.xrpc import XrpcError


@pytest.fixture()
def searchable_net(net):
    net.appview.index_search = True
    return net


def make_client(net, name):
    did, _ = net.create_user(name)
    return Client(did, net.pds, net.appview)


class TestSearchPosts:
    def test_single_token(self, searchable_net):
        net = searchable_net
        alice = make_client(net, "alice")
        alice.post("the ramen was excellent", net.tick())
        alice.post("nothing to see", net.tick())
        result = net.appview.xrpc_searchPosts(q="ramen")
        assert len(result["posts"]) == 1
        assert "ramen" in result["posts"][0]["text"]

    def test_multi_token_requires_all(self, searchable_net):
        net = searchable_net
        alice = make_client(net, "alice")
        alice.post("good ramen in tokyo", net.tick())
        alice.post("ramen again", net.tick())
        result = net.appview.xrpc_searchPosts(q="ramen tokyo")
        assert len(result["posts"]) == 1

    def test_no_match(self, searchable_net):
        net = searchable_net
        make_client(net, "alice").post("hello", net.tick())
        assert net.appview.xrpc_searchPosts(q="zebra")["posts"] == []

    def test_empty_query(self, searchable_net):
        assert searchable_net.appview.xrpc_searchPosts(q="!!!")["posts"] == []

    def test_disabled_by_default(self, net):
        with pytest.raises(XrpcError):
            net.appview.xrpc_searchPosts(q="anything")

    def test_limit(self, searchable_net):
        net = searchable_net
        alice = make_client(net, "alice")
        for i in range(6):
            alice.post("cats post %d" % i, net.tick())
        assert len(net.appview.xrpc_searchPosts(q="cats", limit=4)["posts"]) == 4


class TestLists:
    def make_list(self, net, owner, members, rkey="friends"):
        list_record = {
            "$type": "app.bsky.graph.list",
            "name": "friends",
            "purpose": "app.bsky.graph.defs#curatelist",
            "createdAt": "2024-04-13T00:00:00Z",
        }
        net.pds.create_record(owner.did, "app.bsky.graph.list", list_record, net.tick(), rkey=rkey)
        list_uri = "at://%s/app.bsky.graph.list/%s" % (owner.did, rkey)
        for member in members:
            item = {
                "$type": "app.bsky.graph.listitem",
                "subject": member,
                "list": list_uri,
                "createdAt": "2024-04-13T00:00:00Z",
            }
            net.pds.create_record(owner.did, "app.bsky.graph.listitem", item, net.tick())
        return list_uri

    def test_get_list_members(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        list_uri = self.make_list(net, alice, [bob.did])
        result = net.appview.xrpc_getList(list_uri=list_uri)
        assert result["items"] == [bob.did]

    def test_unknown_list_404(self, net):
        with pytest.raises(XrpcError):
            net.appview.xrpc_getList(list_uri="at://x/app.bsky.graph.list/ghost")

    def test_list_feed_on_supporting_platform(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        list_uri = self.make_list(net, alice, [bob.did])
        members = net.appview.xrpc_getList(list_uri=list_uri)["items"]
        platform = FeedServicePlatform(SKYFEED_PROFILE, "did:web:sf.test", "https://sf.test")
        feed = platform.create_list_feed(
            alice.did, "at://%s/app.bsky.feed.generator/friends" % alice.did, members
        )
        assert feed.rule.from_list
        assert bob.did in feed.rule.authors

    def test_list_feed_rejected_without_feature(self, net):
        alice = make_client(net, "alice")
        platform = FeedServicePlatform(BLUEFEED_PROFILE, "did:web:bf.test", "https://bf.test")
        with pytest.raises(FeedError):
            platform.create_list_feed(
                alice.did,
                "at://%s/app.bsky.feed.generator/f" % alice.did,
                ["did:plc:" + "m" * 24],
            )

    def test_list_rule_needs_list_feature(self):
        rule = FeedRule(authors=frozenset({"did:plc:" + "m" * 24}), from_list=True)
        assert "input:list" in rule_required_features(rule)
        plain = FeedRule(authors=frozenset({"did:plc:" + "m" * 24}))
        assert "input:single-user" in rule_required_features(plain)

"""Regression tests for feed skeleton pagination on out-of-order ingests.

Posts arrive from the firehose with day-scale jitter (concurrent user
sessions); timestamp-cursor pagination over an unsorted feed silently
truncates after the first page — the crawler would see exactly one page of
a 20K-post aggregator.  CuratedFeed therefore keeps entries time-sorted.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.services.feedgen import CuratedFeed, FeedRule, PostFeatures, RetentionPolicy

HOUR_US = 3600 * 1_000_000
DAY_US = 24 * HOUR_US
BASE = 1_700_000_000_000_000


def make_post(index, time_us):
    return PostFeatures(
        uri="at://did:plc:%s/app.bsky.feed.post/p%06d" % ("u" * 24, index),
        author="did:plc:" + "u" * 24,
        time_us=time_us,
        text="post",
        langs=("en",),
        tokens=frozenset({"post"}),
    )


def crawl_all(feed, now_us, limit=100, max_pages=500):
    seen = set()
    cursor = None
    pages = 0
    while pages < max_pages:
        page = feed.skeleton(None, now_us, limit=limit, cursor=cursor)
        for item in page["feed"]:
            seen.add(item["post"])
        cursor = page.get("cursor")
        pages += 1
        if cursor is None:
            break
    return seen, pages


class TestOutOfOrderIngestion:
    def make_jittered_feed(self, count=1000, retention=None):
        rng = random.Random(7)
        feed = CuratedFeed(
            "at://x/app.bsky.feed.generator/agg", FeedRule(whole_network=True), retention
        )
        t = BASE
        for index in range(count):
            t += rng.randrange(1, HOUR_US)
            jitter = rng.randrange(-12 * HOUR_US, 12 * HOUR_US)
            feed.ingest(make_post(index, t + jitter))
        return feed, t + DAY_US

    def test_full_crawl_recovers_every_post(self):
        feed, now = self.make_jittered_feed()
        seen, pages = crawl_all(feed, now)
        assert len(seen) == 1000
        assert pages == 11  # 10 full pages + the empty-cursor page

    def test_entries_are_time_sorted(self):
        feed, now = self.make_jittered_feed(200)
        entries = feed.entries(None, now)
        times = [t for _, t in entries]
        assert times == sorted(times, reverse=True)

    def test_age_retention_with_jitter(self):
        feed, now = self.make_jittered_feed(500, RetentionPolicy.days(3))
        entries = feed.entries(None, now)
        assert all(t >= now - 3 * DAY_US for _, t in entries)
        seen, _ = crawl_all(feed, now)
        assert len(seen) == len(entries)

    def test_count_retention_keeps_newest(self):
        feed, now = self.make_jittered_feed(500, RetentionPolicy.last(50))
        entries = feed.entries(None, now)
        assert len(entries) == 50
        # The kept entries are the 50 largest timestamps ingested.
        assert min(t for _, t in entries) >= BASE


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=30 * DAY_US),
        min_size=1,
        max_size=150,
    )
)
def test_pagination_complete_property(offsets):
    """For any ingestion order, a cursor crawl recovers at least every
    uniquely-timestamped post (duplicate timestamps may collapse)."""
    feed = CuratedFeed("at://x/app.bsky.feed.generator/p", FeedRule(whole_network=True))
    for index, offset in enumerate(offsets):
        feed.ingest(make_post(index, BASE + offset))
    now = BASE + 31 * DAY_US
    seen, _ = crawl_all(feed, now, limit=7)
    assert len(seen) >= len(set(offsets))

"""Tests for verifiable single-record reads over the Relay."""

import pytest

from repro.atproto.cbor import cbor_decode, cbor_encode
from repro.atproto.cid import Cid, cid_for_cbor
from repro.atproto.lexicon import POST
from repro.atproto.mst import verify_inclusion
from repro.services.xrpc import XrpcError


def verify_response(response, verify_key) -> bool:
    """What a real client does with a getRecord response:

    1. check the commit signature,
    2. check the MST inclusion proof against the commit's data root,
    3. check the record's own CID.
    """
    commit = cbor_decode(response["commit"]["block"])
    unsigned = {k: v for k, v in commit.items() if k != "sig"}
    if not verify_key.verify(cbor_encode(unsigned), commit["sig"]):
        return False
    key = response["uri"].split("/", 3)[-1]
    record_cid = Cid.parse(response["cid"])
    if not verify_inclusion(commit["data"], key, record_cid, response["proof"]):
        return False
    return cid_for_cbor(response["value"]) == record_cid


class TestGetRecordWithProof:
    def make_post(self, net, text="provable post"):
        did, keypair = net.create_user("prover")
        meta = net.pds.create_record(
            did, POST,
            {"$type": POST, "text": text, "createdAt": "2024-04-13T00:00:00Z"},
            net.tick(),
        )
        rkey = meta.ops[0][1].split("/", 1)[1]
        return did, keypair, rkey

    def test_response_shape(self, net):
        did, _, rkey = self.make_post(net)
        response = net.relay.xrpc_getRecord(did=did, collection=POST, rkey=rkey)
        assert response["value"]["text"] == "provable post"
        assert response["proof"]
        assert response["commit"]["cid"].startswith("b")

    def test_full_client_side_verification(self, net):
        did, keypair, rkey = self.make_post(net)
        response = net.relay.xrpc_getRecord(did=did, collection=POST, rkey=rkey)
        assert verify_response(response, keypair.public_key)

    def test_tampered_record_fails_verification(self, net):
        did, keypair, rkey = self.make_post(net)
        response = net.relay.xrpc_getRecord(did=did, collection=POST, rkey=rkey)
        response["value"] = dict(response["value"], text="forged content")
        assert not verify_response(response, keypair.public_key)

    def test_wrong_key_fails_verification(self, net):
        from repro.atproto.keys import HmacKeypair

        did, _, rkey = self.make_post(net)
        response = net.relay.xrpc_getRecord(did=did, collection=POST, rkey=rkey)
        assert not verify_response(response, HmacKeypair.from_seed(b"other").public_key)

    def test_unknown_record_404(self, net):
        did, _, _ = self.make_post(net)
        with pytest.raises(XrpcError):
            net.relay.xrpc_getRecord(did=did, collection=POST, rkey="ghost")

    def test_unknown_repo_404(self, net):
        with pytest.raises(XrpcError):
            net.relay.xrpc_getRecord(
                did="did:plc:" + "q" * 24, collection=POST, rkey="x"
            )


class TestOfficialLabelRegimes:
    def test_two_regimes_detected(self, study_datasets):
        from repro.core.analysis import moderation

        official = moderation.find_official_labeler_did(study_datasets)
        regimes = moderation.official_label_regimes(study_datasets, official)
        # The automated NSFW classifiers answer within seconds.
        auto_values = {value for value, _ in regimes.automated_values}
        if not auto_values:
            pytest.skip("no official window labels at this scale/seed")
        assert auto_values & {"porn", "sexual", "nudity", "graphic-media"}
        for value, median in regimes.automated_values:
            assert median < 60

    def test_manual_values_slow(self, study_datasets):
        from repro.core.analysis import moderation

        official = moderation.find_official_labeler_did(study_datasets)
        regimes = moderation.official_label_regimes(study_datasets, official)
        for value, median in regimes.manual_values:
            assert median >= 60

"""Shared fixtures: a minimal wired network of services."""

import pytest

from repro.atproto.keys import HmacKeypair
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.web import WebHostRegistry
from repro.services.appview import AppView
from repro.services.pds import Pds
from repro.services.relay import Relay
from repro.services.xrpc import ServiceDirectory


class MiniNetwork:
    """A hand-wired network: one PDS, one relay, one appview."""

    def __init__(self):
        self.plc = PlcDirectory()
        self.web = WebHostRegistry()
        self.services = ServiceDirectory()
        self.resolver = DidResolver(self.plc, self.web)
        self.pds = Pds("https://pds.test")
        self.relay = Relay("https://relay.test")
        self.relay.crawl_pds(self.pds)
        self.appview = AppView("https://appview.test", self.resolver, self.services)
        self.appview.attach(self.relay)
        self.services.register(self.pds.url, self.pds)
        self.services.register(self.relay.url, self.relay)
        self.services.register(self.appview.url, self.appview)
        self.now_us = 1_700_000_000_000_000

    def tick(self, micros: int = 1_000_000) -> int:
        self.now_us += micros
        return self.now_us

    def create_user(self, name: str):
        keypair = HmacKeypair.from_seed(name.encode())
        signing = HmacKeypair.from_seed(b"sign:" + name.encode())
        did = self.plc.create(
            rotation_keypair=keypair,
            signing_key=signing.did_key(),
            handle="%s.bsky.social" % name,
            pds_endpoint=self.pds.url,
        )
        self.pds.create_account(did, signing)
        return did, signing


@pytest.fixture()
def net():
    return MiniNetwork()

"""Tests for the home timeline (AppView getTimeline + Client)."""

import pytest

from repro.services.client import Client, LabelAction
from repro.services.labeler import LabelerPolicies, LabelerService


def make_client(net, name):
    did, _ = net.create_user(name)
    return Client(did, net.pds, net.appview)


class TestGetTimeline:
    def test_shows_followed_posts_newest_first(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        carol = make_client(net, "carol")
        carol.follow(alice.did, net.tick())
        alice.post("first", net.tick(), langs=["en"])
        bob.post("unfollowed", net.tick(), langs=["en"])
        alice.post("second", net.tick(), langs=["en"])
        timeline = carol.home_timeline()
        texts = [item["record"]["text"] for item in timeline]
        assert texts == ["second", "first"]

    def test_empty_for_nonfollower(self, net):
        loner = make_client(net, "loner")
        make_client(net, "alice").post("hello", net.tick())
        assert loner.home_timeline() == []

    def test_unfollow_removes_from_timeline(self, net):
        alice = make_client(net, "alice")
        carol = make_client(net, "carol")
        meta = carol.follow(alice.did, net.tick())
        alice.post("visible", net.tick())
        rkey = meta.ops[0][1].split("/")[1]
        net.pds.delete_record(carol.did, "app.bsky.graph.follow", rkey, net.tick())
        assert carol.home_timeline() == []

    def test_deleted_posts_drop_out(self, net):
        alice = make_client(net, "alice")
        carol = make_client(net, "carol")
        carol.follow(alice.did, net.tick())
        meta = alice.post("temporary", net.tick())
        alice.delete_post(meta.ops[0][1].split("/")[1], net.tick())
        assert carol.home_timeline() == []

    def test_limit_respected(self, net):
        alice = make_client(net, "alice")
        carol = make_client(net, "carol")
        carol.follow(alice.did, net.tick())
        for i in range(8):
            alice.post("p%d" % i, net.tick())
        assert len(carol.home_timeline(limit=3)) == 3

    def test_multiple_followed_interleaved(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        carol = make_client(net, "carol")
        carol.follow(alice.did, net.tick())
        carol.follow(bob.did, net.tick())
        alice.post("a1", net.tick())
        bob.post("b1", net.tick())
        alice.post("a2", net.tick())
        texts = [item["record"]["text"] for item in carol.home_timeline()]
        assert texts == ["a2", "b1", "a1"]

    def test_moderation_applies_to_timeline(self, net):
        alice = make_client(net, "alice")
        carol = make_client(net, "carol")
        carol.follow(alice.did, net.tick())
        meta = alice.post("nsfw content", net.tick())
        uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
        labeler_did, _ = net.create_user("labeler")
        labeler = LabelerService(labeler_did, "https://lab.test", LabelerPolicies(("nsfw",), {}))
        net.appview.add_labeler(labeler)
        labeler.emit(uri, "nsfw", net.tick())
        net.appview.sync_labels()
        assert len(carol.home_timeline()) == 1  # not subscribed yet
        carol.subscribe_labeler(labeler_did)
        carol.set_label_action(labeler_did, "nsfw", LabelAction.HIDE)
        assert carol.home_timeline() == []

    def test_takedown_purges_from_timeline(self, net):
        alice = make_client(net, "alice")
        carol = make_client(net, "carol")
        carol.follow(alice.did, net.tick())
        meta = alice.post("illegal", net.tick())
        uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
        official_did, _ = net.create_user("official")
        official = LabelerService(official_did, "https://off.test", LabelerPolicies(("!takedown",), {}))
        net.appview.add_labeler(official)
        net.appview.official_labeler_did = official_did
        official.emit(uri, "!takedown", net.tick())
        net.appview.sync_labels()
        assert net.appview.xrpc_getTimeline(actor=carol.did)["feed"] == []

"""Tests for CAR-based account migration and the WhiteWind AppView."""

import pytest

from repro.atproto.keys import HmacKeypair
from repro.atproto.lexicon import POST, WHTWND_ENTRY
from repro.services.pds import Pds, PdsError
from repro.services.relay import Relay
from repro.services.whitewind import WhiteWindAppView
from repro.services.xrpc import XrpcError

NOW = 1_713_000_000_000_000


def make_account(pds, name):
    keypair = HmacKeypair.from_seed(name.encode())
    did = "did:plc:" + (name * 24)[:24].ljust(24, "a")
    pds.create_account(did, keypair)
    return did, keypair


def post(text):
    return {"$type": POST, "text": text, "createdAt": "2024-04-13T00:00:00Z"}


class TestCarMigration:
    def test_full_migration_flow(self):
        old_pds = Pds("https://old.test")
        new_pds = Pds("https://new.test")
        did, keypair = make_account(old_pds, "mover")
        for index in range(12):
            old_pds.create_record(did, POST, post("post %d" % index), NOW + index)
        car = old_pds.xrpc_getRepo(did=did)
        old_pds.remove_account(did, NOW + 100)
        repo = new_pds.import_account_car(car, keypair, NOW + 200)
        assert new_pds.has_account(did)
        assert repo.record_count() == 12
        assert len(list(new_pds.repo(did).list_records(POST))) == 12

    def test_migration_requires_correct_key(self):
        old_pds = Pds("https://old.test")
        new_pds = Pds("https://new.test")
        did, keypair = make_account(old_pds, "mover")
        old_pds.create_record(did, POST, post("x"), NOW)
        car = old_pds.xrpc_getRepo(did=did)
        from repro.atproto.repo import RepoError

        with pytest.raises(RepoError):
            new_pds.import_account_car(car, HmacKeypair.from_seed(b"wrong"), NOW)

    def test_migration_rejects_existing_account(self):
        pds = Pds("https://one.test")
        did, keypair = make_account(pds, "dupe")
        pds.create_record(did, POST, post("x"), NOW)
        car = pds.xrpc_getRepo(did=did)
        with pytest.raises(PdsError):
            pds.import_account_car(car, keypair, NOW)

    def test_migration_announces_on_relay(self):
        old_pds = Pds("https://old.test")
        new_pds = Pds("https://new.test")
        relay = Relay("https://relay.test")
        relay.crawl_pds(new_pds)
        did, keypair = make_account(old_pds, "mover")
        old_pds.create_record(did, POST, post("x"), NOW)
        car = old_pds.xrpc_getRepo(did=did)
        new_pds.import_account_car(car, keypair, NOW + 50)
        # The migration commit flows to the relay; the repo is now mirrored.
        assert relay.cached_repo(did) is not None
        events = relay.xrpc_subscribeRepos()
        assert any(e.did == did for e in events)


class TestWhiteWindAppView:
    def make_stack(self):
        pds = Pds("https://pds.test")
        relay = Relay("https://relay.test")
        relay.crawl_pds(pds)
        whitewind = WhiteWindAppView()
        whitewind.attach(relay)
        return pds, relay, whitewind

    def entry(self, title, content, visibility="public"):
        return {
            "$type": WHTWND_ENTRY,
            "title": title,
            "content": content,
            "createdAt": "2024-04-13T00:00:00Z",
            "visibility": visibility,
        }

    def test_indexes_only_whitewind_records(self):
        pds, _, whitewind = self.make_stack()
        did, _ = make_account(pds, "blogger")
        pds.create_record(did, WHTWND_ENTRY, self.entry("Hello", "# first"), NOW)
        pds.create_record(did, POST, post("a bluesky post"), NOW + 1)
        assert whitewind.entry_count() == 1
        assert whitewind.foreign_records_ignored == 1

    def test_get_entry(self):
        pds, _, whitewind = self.make_stack()
        did, _ = make_account(pds, "blogger")
        meta = pds.create_record(did, WHTWND_ENTRY, self.entry("T", "# body"), NOW)
        uri = "at://%s/%s" % (did, meta.ops[0][1])
        entry = whitewind.xrpc_getEntry(uri=uri)
        assert entry["title"] == "T"
        assert entry["content"] == "# body"

    def test_unknown_entry_404(self):
        _, _, whitewind = self.make_stack()
        with pytest.raises(XrpcError):
            whitewind.xrpc_getEntry(uri="at://x/com.whtwnd.blog.entry/ghost")

    def test_list_by_author_newest_first(self):
        pds, _, whitewind = self.make_stack()
        did, _ = make_account(pds, "blogger")
        pds.create_record(did, WHTWND_ENTRY, self.entry("one", "1"), NOW)
        pds.create_record(did, WHTWND_ENTRY, self.entry("two", "2"), NOW + 10)
        result = whitewind.xrpc_listEntries(author=did)
        assert [e["title"] for e in result["entries"]] == ["two", "one"]

    def test_private_entries_hidden_from_listing(self):
        pds, _, whitewind = self.make_stack()
        did, _ = make_account(pds, "blogger")
        pds.create_record(
            did, WHTWND_ENTRY, self.entry("secret", "x", visibility="author"), NOW
        )
        assert whitewind.xrpc_listEntries()["entries"] == []

    def test_deletes_remove_entries(self):
        pds, _, whitewind = self.make_stack()
        did, _ = make_account(pds, "blogger")
        meta = pds.create_record(did, WHTWND_ENTRY, self.entry("gone", "x"), NOW)
        rkey = meta.ops[0][1].split("/", 1)[1]
        pds.delete_record(did, WHTWND_ENTRY, rkey, NOW + 5)
        assert whitewind.entry_count() == 0

    def test_coexists_with_bluesky_appview(self, study_world):
        """In the simulated world, WhiteWind entries flow on the same
        firehose the Bluesky AppView consumes (Section 4)."""
        whitewind = WhiteWindAppView()
        # Replay the retained firehose backlog.
        for event in study_world.relay.firehose.events_since(0):
            whitewind.consume_event(event)
        assert whitewind.events_seen > 0

"""Additional PDS surface tests: blob sync API, preferences, accounts."""

import pytest

from repro.atproto.keys import HmacKeypair
from repro.atproto.lexicon import POST, PROFILE
from repro.services.pds import Pds, PdsError
from repro.services.xrpc import ServiceDirectory, XrpcError

NOW = 1_713_000_000_000_000


@pytest.fixture()
def pds():
    return Pds("https://pds.test")


@pytest.fixture()
def account(pds):
    keypair = HmacKeypair.from_seed(b"acct")
    did = "did:plc:" + "s" * 24
    pds.create_account(did, keypair)
    return did


class TestBlobApiOverDirectory:
    def test_get_blob_via_xrpc_call(self, pds, account):
        directory = ServiceDirectory()
        directory.register(pds.url, pds)
        ref = pds.upload_blob(account, b"banner bytes", "image/jpeg")
        record = {
            "$type": PROFILE,
            "banner": ref.to_record_field(),
            "createdAt": "2024-04-13T00:00:00Z",
        }
        pds.create_record(account, PROFILE, record, NOW, rkey="self")
        data = directory.call(pds.url, "com.atproto.sync.getBlob", did=account, cid=str(ref.cid))
        assert data == b"banner bytes"

    def test_upload_requires_account(self, pds):
        with pytest.raises(PdsError):
            pds.upload_blob("did:plc:" + "z" * 24, b"x", "image/png")

    def test_unreferenced_blob_survives_until_gc(self, pds, account):
        ref = pds.upload_blob(account, b"orphan", "image/png")
        # Uploaded but never referenced: still fetchable (pending commit).
        assert pds.xrpc_getBlob(did=account, cid=str(ref.cid)) == b"orphan"

    def test_update_swaps_blob_reference(self, pds, account):
        old = pds.upload_blob(account, b"old avatar", "image/png")
        record = {
            "$type": PROFILE,
            "avatar": old.to_record_field(),
            "createdAt": "2024-04-13T00:00:00Z",
        }
        pds.create_record(account, PROFILE, record, NOW, rkey="self")
        new = pds.upload_blob(account, b"new avatar", "image/png")
        record2 = dict(record)
        record2["avatar"] = new.to_record_field()
        pds.update_record(account, PROFILE, "self", record2, NOW + 1)
        assert not pds.blobs.has(old.cid)  # old avatar garbage-collected
        assert pds.blobs.has(new.cid)


class TestAccountEdgeCases:
    def test_remove_unknown_account(self, pds):
        with pytest.raises(PdsError):
            pds.remove_account("did:plc:" + "q" * 24, NOW)

    def test_repo_unknown_account(self, pds):
        with pytest.raises(PdsError):
            pds.repo("did:plc:" + "q" * 24)

    def test_preferences_unknown_account(self, pds):
        with pytest.raises(PdsError):
            pds.put_preferences("did:plc:" + "q" * 24, {})

    def test_list_repos_skips_empty_repos(self, pds, account):
        # The account exists but has no commits yet.
        assert pds.xrpc_listRepos()["repos"] == []
        pds.create_record(
            account, POST,
            {"$type": POST, "text": "first", "createdAt": "2024-04-13T00:00:00Z"},
            NOW,
        )
        assert len(pds.xrpc_listRepos()["repos"]) == 1

    def test_validation_can_be_skipped(self, pds, account):
        # validate=False lets through records a lexicon would reject (the
        # network is permissive at the sync layer).
        pds.create_record(account, POST, {"$type": POST, "text": "no createdAt"}, NOW, validate=False)
        assert len(list(pds.repo(account).list_records(POST))) == 1

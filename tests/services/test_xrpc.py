"""Tests for the XRPC service directory."""

import pytest

from repro.services.xrpc import (
    REASON_HOST_DOWN,
    REASON_UNKNOWN_HOST,
    ServiceDirectory,
    XrpcError,
    XrpcService,
)


class EchoService(XrpcService):
    def xrpc_echo(self, value):
        return {"value": value}

    def xrpc_fail(self):
        raise XrpcError(500, "boom")


class TestDirectory:
    def test_register_and_call(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        result = directory.call("https://svc.test", "com.example.echo", value=42)
        assert result == {"value": 42}

    def test_url_normalization(self):
        directory = ServiceDirectory()
        directory.register("https://SVC.test/", EchoService())
        assert directory.call("https://svc.test", "com.example.echo", value=1) == {"value": 1}

    def test_unknown_host(self):
        directory = ServiceDirectory()
        with pytest.raises(XrpcError) as info:
            directory.call("https://nowhere.test", "com.example.echo")
        assert info.value.status == 0

    def test_unknown_method(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        with pytest.raises(XrpcError) as info:
            directory.call("https://svc.test", "com.example.missing")
        assert info.value.status == 501

    def test_down_service(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.set_down("https://svc.test")
        assert not directory.is_reachable("https://svc.test")
        with pytest.raises(XrpcError):
            directory.call("https://svc.test", "com.example.echo", value=1)
        directory.set_down("https://svc.test", False)
        assert directory.is_reachable("https://svc.test")

    def test_try_call_swallows_transport_errors_only(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        assert directory.try_call("https://nowhere.test", "com.example.echo") is None
        with pytest.raises(XrpcError):
            directory.try_call("https://svc.test", "com.example.fail")

    def test_unregister(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.unregister("https://svc.test")
        assert not directory.is_registered("https://svc.test")

    def test_call_counting(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.call("https://svc.test", "com.example.echo", value=1)
        directory.try_call("https://other.test", "com.example.echo")
        assert directory.call_count == 2

    def test_unreachable_reasons_are_distinct(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.set_down("https://svc.test")
        with pytest.raises(XrpcError) as down:
            directory.call("https://svc.test", "com.example.echo", value=1)
        with pytest.raises(XrpcError) as unknown:
            directory.call("https://nowhere.test", "com.example.echo")
        assert down.value.reason == REASON_HOST_DOWN
        assert unknown.value.reason == REASON_UNKNOWN_HOST
        assert down.value.reason != unknown.value.reason
        assert not down.value.injected
        assert not unknown.value.injected

    def test_per_host_outcome_metrics(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.call("https://svc.test", "com.example.echo", value=1)
        directory.call("https://svc.test", "com.example.echo", value=2)
        with pytest.raises(XrpcError):
            directory.call("https://svc.test", "com.example.fail")
        directory.try_call("https://gone.test", "com.example.echo")
        calls = directory.telemetry.registry.family("xrpc_calls_total")
        assert calls.get(("https://svc.test", "com.example.echo", "ok")) == 2
        assert calls.get(("https://svc.test", "com.example.fail", "error-500")) == 1
        assert calls.get(
            ("https://gone.test", "com.example.echo", REASON_UNKNOWN_HOST)
        ) == 1
        latency = directory.telemetry.registry.family("xrpc_latency_us")
        assert latency.get(("https://svc.test",))[2] == 3  # observation count

    def test_deprecated_aliases_track_registry(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        assert directory.call_count == 0
        assert directory.injected_latency_us == 0
        directory.call("https://svc.test", "com.example.echo", value=1)
        assert directory.call_count == 1

"""Tests for the XRPC service directory."""

import pytest

from repro.services.xrpc import ServiceDirectory, XrpcError, XrpcService


class EchoService(XrpcService):
    def xrpc_echo(self, value):
        return {"value": value}

    def xrpc_fail(self):
        raise XrpcError(500, "boom")


class TestDirectory:
    def test_register_and_call(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        result = directory.call("https://svc.test", "com.example.echo", value=42)
        assert result == {"value": 42}

    def test_url_normalization(self):
        directory = ServiceDirectory()
        directory.register("https://SVC.test/", EchoService())
        assert directory.call("https://svc.test", "com.example.echo", value=1) == {"value": 1}

    def test_unknown_host(self):
        directory = ServiceDirectory()
        with pytest.raises(XrpcError) as info:
            directory.call("https://nowhere.test", "com.example.echo")
        assert info.value.status == 0

    def test_unknown_method(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        with pytest.raises(XrpcError) as info:
            directory.call("https://svc.test", "com.example.missing")
        assert info.value.status == 501

    def test_down_service(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.set_down("https://svc.test")
        assert not directory.is_reachable("https://svc.test")
        with pytest.raises(XrpcError):
            directory.call("https://svc.test", "com.example.echo", value=1)
        directory.set_down("https://svc.test", False)
        assert directory.is_reachable("https://svc.test")

    def test_try_call_swallows_transport_errors_only(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        assert directory.try_call("https://nowhere.test", "com.example.echo") is None
        with pytest.raises(XrpcError):
            directory.try_call("https://svc.test", "com.example.fail")

    def test_unregister(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.unregister("https://svc.test")
        assert not directory.is_registered("https://svc.test")

    def test_call_counting(self):
        directory = ServiceDirectory()
        directory.register("https://svc.test", EchoService())
        directory.call("https://svc.test", "com.example.echo", value=1)
        directory.try_call("https://other.test", "com.example.echo")
        assert directory.call_count == 2

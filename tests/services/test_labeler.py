"""Tests for Labeler services."""

import pytest

from repro.services.labeler import (
    TARGET_ACCOUNT,
    TARGET_OTHER,
    TARGET_POST,
    TARGET_PROFILE_MEDIA,
    LabelerPolicies,
    LabelerService,
    classify_subject,
)

DID = "did:plc:" + "l" * 24
POST_URI = "at://did:plc:%s/app.bsky.feed.post/3kabc" % ("u" * 24)
PROFILE_URI = "at://did:plc:%s/app.bsky.actor.profile/self" % ("u" * 24)


@pytest.fixture()
def labeler():
    policies = LabelerPolicies(
        label_values=("porn", "spam", "no-alt-text"),
        descriptions={"porn": {"severity": "alert"}},
    )
    return LabelerService(DID, "https://labeler.test", policies)


class TestSubjectClassification:
    def test_post(self):
        assert classify_subject(POST_URI) == TARGET_POST

    def test_account(self):
        assert classify_subject("did:plc:" + "u" * 24) == TARGET_ACCOUNT

    def test_profile_media(self):
        assert classify_subject(PROFILE_URI) == TARGET_PROFILE_MEDIA

    def test_other(self):
        assert classify_subject("at://did:plc:x/app.bsky.graph.list/1") == TARGET_OTHER


class TestEmission:
    def test_emit(self, labeler):
        label = labeler.emit(POST_URI, "porn", now_us=1000)
        assert label.src == DID
        assert label.seq == 1
        assert not label.neg
        assert labeler.is_applied(POST_URI, "porn")

    def test_rescind(self, labeler):
        labeler.emit(POST_URI, "spam", now_us=1000)
        negation = labeler.rescind(POST_URI, "spam", now_us=2000)
        assert negation.neg
        assert not labeler.is_applied(POST_URI, "spam")
        assert labeler.label_count() == 2  # both events retained in the stream

    def test_seq_increments(self, labeler):
        for i in range(5):
            labeler.emit(POST_URI, "spam", now_us=i)
        assert [l.seq for l in labeler.xrpc_subscribeLabels()] == [1, 2, 3, 4, 5]


class TestStream:
    def test_full_backfill(self, labeler):
        labeler.emit(POST_URI, "porn", now_us=1)
        labeler.emit(POST_URI, "spam", now_us=2)
        # Unlike the firehose, the labeler stream replays its full history.
        assert len(labeler.xrpc_subscribeLabels(cursor=0)) == 2

    def test_cursor(self, labeler):
        labeler.emit(POST_URI, "porn", now_us=1)
        labeler.emit(POST_URI, "spam", now_us=2)
        assert len(labeler.xrpc_subscribeLabels(cursor=1)) == 1

    def test_limit(self, labeler):
        for i in range(10):
            labeler.emit(POST_URI, "spam", now_us=i)
        assert len(labeler.xrpc_subscribeLabels(cursor=0, limit=3)) == 3

    def test_query_labels_excludes_negated(self, labeler):
        labeler.emit(POST_URI, "porn", now_us=1)
        labeler.emit(POST_URI, "spam", now_us=2)
        labeler.rescind(POST_URI, "spam", now_us=3)
        result = labeler.xrpc_queryLabels(uriPatterns=[POST_URI])
        values = {l.val for l in result["labels"]}
        assert values == {"porn"}


class TestServiceRecord:
    def test_record_shape(self, labeler):
        record = labeler.service_record("2024-03-15T00:00:00Z")
        assert record["$type"] == "app.bsky.labeler.service"
        assert "porn" in record["policies"]["labelValues"]
        assert record["policies"]["labelValueDefinitions"]["porn"]["severity"] == "alert"

    def test_record_validates_against_lexicon(self, labeler):
        from repro.atproto.lexicon import LABELER_SERVICE, default_registry

        default_registry().validate(LABELER_SERVICE, labeler.service_record("2024-01-01T00:00:00Z"))

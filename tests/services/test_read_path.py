"""Read-path correctness: indexes and caches must be invisible.

The AppView serves getTimeline from a per-follower index and getFeed /
searchPosts / getProfile through hydrated-view caches.  All of it is an
acceleration, never a semantic: every response must be byte-identical
with the features switched off, across repeated (cache-warm) reads, and
across interpreters launched with different ``PYTHONHASHSEED`` values.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.atproto.events import CommitEvent, CommitOp
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.web import WebHostRegistry
from repro.obs.metrics import READ_CACHE_HITS, READ_CACHE_MISSES
from repro.obs.telemetry import Telemetry
from repro.services.appview import AppView
from repro.services.feedgen import (
    CuratedFeed,
    FeedGeneratorHost,
    FeedRule,
    PostFeatures,
    tokenize,
)
from repro.services.labeler import Label
from repro.services.xrpc import ServiceDirectory

BASE_US = 1_700_000_000_000_000
OFFICIAL = "did:plc:" + "mod" * 8
FEEDGEN_DID = "did:web:feeds.test"
FEEDGEN_URL = "https://feeds.test"


def canon(response) -> str:
    """Byte-level form of a response: content *and* key/item order."""
    return json.dumps(response)


class ReadHarness:
    """One event stream applied to several AppViews with different
    read-path flags, so their responses can be compared byte for byte."""

    def __init__(self, cached_flags=(True, False), telemetry=None):
        self.services = ServiceDirectory()
        self.resolver = DidResolver(PlcDirectory(), WebHostRegistry())
        self.views = [
            AppView(
                "https://appview%d.test" % index,
                self.resolver,
                self.services,
                official_labeler_did=OFFICIAL,
                index_search=True,
                index_timelines=cached,
                cache_views=cached,
                telemetry=telemetry if cached else None,
            )
            for index, cached in enumerate(cached_flags)
        ]
        self.host = FeedGeneratorHost(FEEDGEN_DID, FEEDGEN_URL)
        self.services.register(FEEDGEN_URL, self.host)
        self.feed = None
        self.seq = 0
        self.label_seq = 0
        self.now = BASE_US

    @property
    def cached(self) -> AppView:
        return self.views[0]

    @property
    def uncached(self) -> AppView:
        return self.views[-1]

    def emit(self, did, path, record=None, action="create", step=1_000_000):
        self.seq += 1
        self.now += step
        event = CommitEvent(
            seq=self.seq,
            did=did,
            time_us=self.now,
            ops=(CommitOp(action, path, None, record),),
        )
        for view in self.views:
            view.consume_event(event)
        return "at://%s/%s" % (did, path)

    def post(self, did, rkey, text, step=1_000_000):
        uri = self.emit(
            did,
            "app.bsky.feed.post/" + rkey,
            {"text": text, "langs": ["en"], "createdAt": "2024-04-01T00:00:00Z"},
            step=step,
        )
        if self.feed is not None:
            self.feed.ingest(
                PostFeatures(
                    uri=uri,
                    author=did,
                    time_us=self.now,
                    text=text,
                    langs=("en",),
                    tokens=frozenset(tokenize(text)),
                )
            )
        return uri

    def follow(self, follower, subject, rkey):
        return self.emit(
            follower, "app.bsky.graph.follow/" + rkey, {"subject": subject}
        )

    def like(self, did, rkey, subject_uri):
        return self.emit(
            did, "app.bsky.feed.like/" + rkey, {"subject": {"uri": subject_uri}}
        )

    def delete(self, uri):
        did, path = uri[5:].split("/", 1)
        return self.emit(did, path, action="delete")

    def take_down(self, uri, neg=False):
        self.label_seq += 1
        label = Label(
            seq=self.label_seq,
            src=OFFICIAL,
            uri=uri,
            val="!takedown",
            neg=neg,
            cts=self.now,
        )
        for view in self.views:
            view._ingest_label(label)

    def publish_feed(self, creator, rkey="stream", rule=None):
        uri = "at://%s/app.bsky.feed.generator/%s" % (creator, rkey)
        self.feed = CuratedFeed(uri, rule or FeedRule(whole_network=True))
        self.host.add_feed(self.feed)
        self.emit(
            creator,
            "app.bsky.feed.generator/" + rkey,
            {
                "did": FEEDGEN_DID,
                "displayName": rkey,
                "description": "",
                "createdAt": "2024-04-01T00:00:00Z",
            },
        )
        return uri


def did_for(index: int) -> str:
    return "did:plc:user%020d" % index


@pytest.fixture()
def harness():
    return ReadHarness()


def build_busy_network(harness, users=6, posts_per_user=5):
    """Follows + posts (with timestamp ties) + likes + deletes + takedowns."""
    dids = [did_for(index) for index in range(users)]
    for i, follower in enumerate(dids):
        for j, subject in enumerate(dids):
            if follower != subject and (i + j) % 2 == 0:
                harness.follow(follower, subject, "f%d" % j)
    feed_uri = harness.publish_feed(dids[0])
    uris = []
    for i, did in enumerate(dids):
        for k in range(posts_per_user):
            # step=0 creates equal-timestamp tie groups across authors.
            uris.append(
                harness.post(
                    did, "p%d" % k, "post %d shared" % k, step=0 if (i + k) % 2 else 1_000_000
                )
            )
    for i, uri in enumerate(uris):
        if i % 7 == 0:
            harness.like(dids[(i + 1) % users], "l%d" % i, uri)
        if i % 9 == 4:
            harness.delete(uri)
        elif i % 5 == 0:
            harness.take_down(uri)
    return dids, uris, feed_uri


class TestTimelineOrdering:
    def test_equal_timestamps_tie_break_on_uri(self, harness):
        reader, a, b = did_for(0), did_for(1), did_for(2)
        harness.follow(reader, a, "fa")
        harness.follow(reader, b, "fb")
        # b posts first but shares a timestamp with a's post: the tie must
        # resolve by ascending uri, not by arrival or hash order.
        uri_b = harness.post(b, "tie", "from b")
        uri_a = harness.post(a, "tie", "from a", step=0)
        uri_late = harness.post(a, "late", "newest")
        for view in harness.views:
            feed = view.xrpc_getTimeline(reader)["feed"]
            assert [item["post"]["uri"] for item in feed] == sorted(
                [uri_late]
            ) + sorted([uri_a, uri_b])

    def test_takedowns_do_not_displace_live_posts(self, harness):
        reader, author = did_for(0), did_for(1)
        harness.follow(reader, author, "f")
        uris = [harness.post(author, "p%02d" % k, "p%d" % k) for k in range(8)]
        for uri in uris[-3:]:
            harness.take_down(uri)
        for view in harness.views:
            feed = view.xrpc_getTimeline(reader, limit=4)["feed"]
            # A full page of live posts: the three taken-down newest posts
            # must not eat the page budget.
            assert [item["post"]["uri"] for item in feed] == list(reversed(uris[1:5]))

    def test_unfollow_and_delete_purge_the_index(self, harness):
        reader, a, b = did_for(0), did_for(1), did_for(2)
        follow_uri = harness.follow(reader, a, "fa")
        harness.follow(reader, b, "fb")
        harness.post(a, "pa", "from a")
        uri_b = harness.post(b, "pb", "from b")
        harness.delete(uri_b)
        harness.delete(follow_uri)
        for view in harness.views:
            assert view.xrpc_getTimeline(reader)["feed"] == []


class TestCacheTransparency:
    def test_all_reads_byte_identical_cache_on_off(self, harness):
        dids, _uris, feed_uri = build_busy_network(harness)
        now = harness.now + 1_000_000
        # Two rounds: the second one reads through warm caches on the
        # cached view and must still match the scan path byte for byte.
        for _round in range(2):
            for actor in dids:
                assert canon(harness.cached.xrpc_getTimeline(actor, limit=7)) == canon(
                    harness.uncached.xrpc_getTimeline(actor, limit=7)
                )
                assert canon(harness.cached.xrpc_getProfile(actor)) == canon(
                    harness.uncached.xrpc_getProfile(actor)
                )
            assert canon(harness.cached.xrpc_searchPosts("shared", limit=9)) == canon(
                harness.uncached.xrpc_searchPosts("shared", limit=9)
            )
            assert canon(
                harness.cached.xrpc_getFeed(feed_uri, limit=6, now_us=now)
            ) == canon(harness.uncached.xrpc_getFeed(feed_uri, limit=6, now_us=now))

    def test_invalidation_keeps_views_equal_after_writes(self, harness):
        dids, uris, _feed_uri = build_busy_network(harness)
        live = [uri for uri in uris if uri in harness.cached.index.posts]
        reader = dids[0]
        before = canon(harness.cached.xrpc_getTimeline(reader, limit=10))
        assert before == canon(harness.uncached.xrpc_getTimeline(reader, limit=10))
        # Mutate through every invalidation path, reading in between so
        # stale cache entries would be observable.
        harness.like(dids[1], "lx", live[0])
        harness.take_down(live[1])
        harness.take_down(live[1], neg=True)  # and reversed again
        harness.delete(live[2])
        for actor in dids:
            assert canon(harness.cached.xrpc_getTimeline(actor, limit=10)) == canon(
                harness.uncached.xrpc_getTimeline(actor, limit=10)
            )
        assert canon(harness.cached.xrpc_searchPosts("shared")) == canon(
            harness.uncached.xrpc_searchPosts("shared")
        )

    def test_warm_reads_hit_and_match_cold_reads(self):
        telemetry = Telemetry()
        harness = ReadHarness(telemetry=telemetry)
        dids, _uris, _feed_uri = build_busy_network(harness)
        reader = dids[0]
        cold = canon(harness.cached.xrpc_getTimeline(reader, limit=10))
        hits_before = _read_counters(telemetry)[0]
        warm = canon(harness.cached.xrpc_getTimeline(reader, limit=10))
        hits_after = _read_counters(telemetry)[0]
        assert warm == cold
        assert sum(hits_after.values()) > sum(hits_before.values())

    def test_flush_drops_warmth_but_not_the_timeline_index(self):
        telemetry = Telemetry()
        harness = ReadHarness(telemetry=telemetry)
        dids, _uris, _feed_uri = build_busy_network(harness)
        reader = dids[0]
        first = canon(harness.cached.xrpc_getTimeline(reader, limit=10))
        harness.cached.xrpc_searchPosts("shared")
        harness.cached.flush_read_caches()
        assert harness.cached._post_views == {}
        assert harness.cached._search_pages == {}
        assert harness.cached._timelines  # the index is not a cache
        _hits, misses_before = _read_counters(telemetry)
        assert canon(harness.cached.xrpc_getTimeline(reader, limit=10)) == first
        _hits, misses_after = _read_counters(telemetry)
        # Post-flush reads re-hydrate: the miss counters move again, which
        # is exactly what makes crash/resume counter totals reproducible.
        assert sum(misses_after.values()) > sum(misses_before.values())


def _read_counters(telemetry):
    counters = telemetry.registry.snapshot()["counters"]
    hits = {k: v for k, v in counters.items() if k.startswith(READ_CACHE_HITS)}
    misses = {k: v for k, v in counters.items() if k.startswith(READ_CACHE_MISSES)}
    return hits, misses


class TestGetFeedRefill:
    def test_page_refills_past_takedowns(self, harness):
        author = did_for(1)
        feed_uri = harness.publish_feed(did_for(0))
        uris = [harness.post(author, "p%02d" % k, "entry %d" % k) for k in range(12)]
        for uri in uris[-6:]:
            harness.take_down(uri)
        now = harness.now + 1_000_000
        for view in harness.views:
            response = view.xrpc_getFeed(feed_uri, limit=4, now_us=now)
            got = [item["post"]["uri"] for item in response["feed"]]
            # The 6 newest entries hydrate to nothing; the page still
            # fills to ``limit`` from the live remainder.
            assert got == list(reversed(uris[2:6]))

    def test_skeleton_exhaustion_returns_short_page(self, harness):
        author = did_for(1)
        feed_uri = harness.publish_feed(did_for(0))
        uris = [harness.post(author, "p%02d" % k, "entry %d" % k) for k in range(5)]
        for uri in uris[:-2]:
            harness.take_down(uri)
        now = harness.now + 1_000_000
        for view in harness.views:
            response = view.xrpc_getFeed(feed_uri, limit=5, now_us=now)
            assert len(response["feed"]) == 2
            assert response["cursor"] is None

    def test_paging_covers_every_live_post_once(self, harness):
        author = did_for(1)
        feed_uri = harness.publish_feed(did_for(0))
        uris = [harness.post(author, "p%02d" % k, "entry %d" % k) for k in range(20)]
        for index, uri in enumerate(uris):
            if index % 3 == 0:
                harness.take_down(uri)
        live = [uri for index, uri in enumerate(uris) if index % 3 != 0]
        now = harness.now + 1_000_000
        for view in harness.views:
            seen, cursor = [], None
            while True:
                page = view.xrpc_getFeed(feed_uri, limit=4, cursor=cursor, now_us=now)
                seen.extend(item["post"]["uri"] for item in page["feed"])
                cursor = page["cursor"]
                if cursor is None:
                    break
            assert seen == list(reversed(live))


class TestSearchOrdering:
    def test_most_recent_matches_first(self, harness):
        a, b = did_for(1), did_for(2)
        harness.post(a, "p0", "needle old")
        tie_b = harness.post(b, "p1", "needle tie")
        tie_a = harness.post(a, "p1", "needle tie", step=0)
        newest = harness.post(b, "p2", "needle new")
        for view in harness.views:
            posts = view.xrpc_searchPosts("needle", limit=3)["posts"]
            assert [p["uri"] for p in posts] == [newest] + sorted([tie_a, tie_b])

    def test_takedowns_do_not_truncate_live_matches(self, harness):
        author = did_for(1)
        uris = [harness.post(author, "p%02d" % k, "needle %d" % k) for k in range(6)]
        for uri in uris[-3:]:
            harness.take_down(uri)
        for view in harness.views:
            posts = view.xrpc_searchPosts("needle", limit=3)["posts"]
            # The old code cut the candidate list at ``limit`` before
            # filtering takedowns, returning [] here.
            assert [p["uri"] for p in posts] == list(reversed(uris[:3]))

    def test_multi_token_intersection_order(self, harness):
        author = did_for(1)
        old = harness.post(author, "p0", "alpha beta old")
        new = harness.post(author, "p1", "beta alpha new")
        harness.post(author, "p2", "alpha only")
        for view in harness.views:
            posts = view.xrpc_searchPosts("alpha beta")["posts"]
            assert [p["uri"] for p in posts] == [new, old]


_CHILD = """\
import json
from repro.atproto.events import CommitEvent, CommitOp
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.web import WebHostRegistry
from repro.obs.telemetry import Telemetry
from repro.services.appview import AppView
from repro.services.labeler import Label
from repro.services.xrpc import ServiceDirectory

OFFICIAL = "did:plc:" + "mod" * 8
telemetry = Telemetry()
appview = AppView(
    "https://appview.test",
    DidResolver(PlcDirectory(), WebHostRegistry()),
    ServiceDirectory(),
    official_labeler_did=OFFICIAL,
    index_search=True,
    telemetry=telemetry,
)
dids = ["did:plc:user%020d" % i for i in range(8)]
state = {"seq": 0, "now": 1_700_000_000_000_000}

def emit(did, path, record=None, action="create", step=1_000_000):
    state["seq"] += 1
    state["now"] += step
    appview.consume_event(CommitEvent(
        seq=state["seq"], did=did, time_us=state["now"],
        ops=(CommitOp(action, path, None, record),),
    ))
    return "at://%s/%s" % (did, path)

for i, did in enumerate(dids):
    for j, other in enumerate(dids):
        if other != did and (i + j) % 3 == 0:
            emit(did, "app.bsky.graph.follow/f%d" % j, {"subject": other})
uris = []
for i, did in enumerate(dids):
    for k in range(6):
        uris.append(emit(
            did, "app.bsky.feed.post/p%d" % k,
            {"text": "post %d shared" % k, "langs": ["en"], "createdAt": "t"},
            step=0 if (i + k) % 2 else 1_000_000,
        ))
for i, uri in enumerate(uris):
    if i % 5 == 0:
        appview._ingest_label(Label(
            seq=i + 1, src=OFFICIAL, uri=uri, val="!takedown",
            neg=False, cts=state["now"],
        ))
reads = []
for did in dids:
    reads.append(appview.xrpc_getTimeline(did, limit=10))
    reads.append(appview.xrpc_getProfile(did))
reads.append(appview.xrpc_searchPosts("shared", limit=15))
reads.append(appview.xrpc_searchPosts("shared", limit=15))  # cache hit
counters = {
    k: v
    for k, v in sorted(telemetry.registry.snapshot()["counters"].items())
    if k.startswith("read_cache_")
}
print(json.dumps({
    "reads": reads,
    "counters": counters,
    "hash_probe": hash("did:plc:hash-probe"),
}))
"""


def _run_child(hashseed: str):
    env = dict(os.environ)  # repro: allow(env-read) -- test harness must thread PYTHONPATH/PYTHONHASHSEED into the child
    env["PYTHONHASHSEED"] = hashseed
    src_dir = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestHashSeedDeterminism:
    def test_reads_and_counters_identical_across_hash_seeds(self):
        run_a = _run_child("0")
        run_b = _run_child("1")
        # Sanity: the interpreters really hash strings differently.
        assert run_a["hash_probe"] != run_b["hash_probe"]
        # Byte-level equality: key order and list order included.
        assert json.dumps(run_a["reads"]) == json.dumps(run_b["reads"])
        assert json.dumps(run_a["counters"]) == json.dumps(run_b["counters"])
        assert run_a["counters"]  # the deterministic hit/miss series exist


@pytest.mark.slow
def test_study_artefacts_identical_with_read_caches_off():
    """End to end: the full tiny study produces the same data artefacts
    (Table 1 + firehose wire frames) with the read path accelerated and
    with it in reference (scan) mode.  The metrics registry is excluded
    on purpose: its cache hit/miss counters *should* differ between the
    two modes — that is what they measure."""
    from repro.core import report
    from repro.core.export import firehose_frame_observer
    from repro.core.pipeline import MeasurementPipeline
    from repro.simulation.config import SimulationConfig
    from repro.simulation.world import World

    artefacts = []
    for read_caches in (True, False):
        config = SimulationConfig.tiny()
        config.read_caches = read_caches
        world = World(config)
        digest = firehose_frame_observer(world)
        datasets = MeasurementPipeline(world).run()
        artefacts.append((report.render_table1(datasets), digest()))
    assert artefacts[0] == artefacts[1]

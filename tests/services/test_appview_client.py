"""Tests for the AppView and the Client (end-to-end service integration)."""

import pytest

from repro.identity.did import LABELER_SERVICE_ID, ServiceEndpoint
from repro.services.client import Client, LabelAction
from repro.services.feedgen import CuratedFeed, FeedGeneratorHost, FeedRule, tokenize
from repro.services.labeler import LabelerPolicies, LabelerService
from repro.services.xrpc import XrpcError

FEEDGEN_DID = "did:web:feeds.test"
FEEDGEN_URL = "https://feeds.test"


def make_client(net, name):
    did, _ = net.create_user(name)
    return Client(did, net.pds, net.appview)


def publish_feed(net, creator_client, rkey="cats", rule=None):
    """Create a hosted feed + its announcement record."""
    host = net.services.get(FEEDGEN_URL)
    if host is None:
        host = FeedGeneratorHost(FEEDGEN_DID, FEEDGEN_URL)
        net.services.register(FEEDGEN_URL, host)
    uri = "at://%s/app.bsky.feed.generator/%s" % (creator_client.did, rkey)
    feed = CuratedFeed(uri, rule or FeedRule(keywords=frozenset({"cats"})))
    host.add_feed(feed)
    record = {
        "$type": "app.bsky.feed.generator",
        "did": FEEDGEN_DID,
        "displayName": rkey,
        "description": "a feed about " + rkey,
        "createdAt": "2024-04-01T00:00:00Z",
    }
    net.pds.create_record(creator_client.did, "app.bsky.feed.generator", record, net.tick(), rkey=rkey)
    return uri, feed, host


class TestAppViewIndexing:
    def test_posts_indexed(self, net):
        alice = make_client(net, "alice")
        meta = alice.post("hello world", net.tick(), langs=["en"])
        uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
        assert net.appview.index.posts[uri].text == "hello world"
        assert net.appview.index.posts[uri].langs == ("en",)

    def test_deleted_posts_removed(self, net):
        alice = make_client(net, "alice")
        meta = alice.post("temp", net.tick())
        rkey = meta.ops[0][1].split("/")[1]
        uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
        alice.delete_post(rkey, net.tick())
        assert uri not in net.appview.index.posts

    def test_like_counts(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        meta = alice.post("likeable", net.tick())
        uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
        bob.like(uri, str(meta.ops[0][2]), net.tick())
        assert net.appview.index.like_counts[uri] == 1

    def test_follow_counts(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        bob.follow(alice.did, net.tick())
        assert net.appview.index.follower_counts[alice.did] == 1
        assert net.appview.index.following_counts[bob.did] == 1

    def test_unfollow_decrements(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        meta = bob.follow(alice.did, net.tick())
        rkey = meta.ops[0][1].split("/")[1]
        net.pds.delete_record(bob.did, "app.bsky.graph.follow", rkey, net.tick())
        assert net.appview.index.follower_counts[alice.did] == 0

    def test_block_counts(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        bob.block(alice.did, net.tick())
        assert net.appview.index.block_counts[alice.did] == 1

    def test_profile_indexed(self, net):
        alice = make_client(net, "alice")
        alice.set_profile(net.tick(), display_name="Alice", description="hi")
        assert net.appview.index.profiles[alice.did]["displayName"] == "Alice"

    def test_non_bsky_records_counted(self, net):
        alice = make_client(net, "alice")
        record = {"$type": "com.whtwnd.blog.entry", "content": "# post"}
        net.pds.create_record(alice.did, "com.whtwnd.blog.entry", record, net.tick())
        assert net.appview.index.non_bsky_records == 1

    def test_get_profile(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        bob.follow(alice.did, net.tick())
        profile = net.appview.xrpc_getProfile(actor=alice.did)
        assert profile["followersCount"] == 1


class TestFeedGeneratorApi:
    def test_get_feed_generator(self, net):
        alice = make_client(net, "alice")
        uri, _, _ = publish_feed(net, alice)
        result = net.appview.xrpc_getFeedGenerator(feed=uri)
        assert result["view"]["displayName"] == "cats"
        assert result["isOnline"]
        assert result["isValid"]

    def test_offline_feed_generator(self, net):
        alice = make_client(net, "alice")
        uri, _, _ = publish_feed(net, alice)
        net.services.set_down(FEEDGEN_URL)
        result = net.appview.xrpc_getFeedGenerator(feed=uri)
        assert not result["isOnline"]
        assert not result["isValid"]

    def test_unknown_feed_generator(self, net):
        with pytest.raises(XrpcError):
            net.appview.xrpc_getFeedGenerator(feed="at://x/app.bsky.feed.generator/ghost")

    def test_get_feed_hydrates_posts(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        uri, feed, _ = publish_feed(net, alice)
        meta = bob.post("cats are nice", net.tick(), langs=["en"])
        post_uri = "at://%s/%s" % (bob.did, meta.ops[0][1])
        from repro.services.feedgen import PostFeatures

        feed.ingest(
            PostFeatures(
                uri=post_uri,
                author=bob.did,
                time_us=net.now_us,
                text="cats are nice",
                langs=("en",),
                tokens=frozenset(tokenize("cats are nice")),
            )
        )
        result = net.appview.xrpc_getFeed(feed=uri, now_us=net.now_us)
        assert len(result["feed"]) == 1
        assert result["feed"][0]["post"]["record"]["text"] == "cats are nice"

    def test_get_feed_drops_deleted_posts(self, net):
        alice = make_client(net, "alice")
        uri, feed, _ = publish_feed(net, alice)
        from repro.services.feedgen import PostFeatures

        feed.ingest(
            PostFeatures(
                uri="at://%s/app.bsky.feed.post/ghost" % alice.did,
                author=alice.did,
                time_us=net.now_us,
                text="gone",
                langs=("en",),
                tokens=frozenset({"gone"}),
            )
        )
        result = net.appview.xrpc_getFeed(feed=uri, now_us=net.now_us)
        assert result["feed"] == []

    def test_feed_like_count_in_view(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        uri, _, _ = publish_feed(net, alice)
        # Liking the generator record itself (how feed popularity works).
        bob.like(uri, "cid-placeholder", net.tick())
        result = net.appview.xrpc_getFeedGenerator(feed=uri)
        assert result["view"]["likeCount"] == 1


class TestLabelAggregation:
    def make_labeler(self, net, name="labeler1", values=("spam",)):
        did, signing = net.create_user(name)
        endpoint = "https://%s.test" % name
        labeler = LabelerService(did, endpoint, LabelerPolicies(values, {}))
        net.services.register(endpoint, labeler)
        net.appview.add_labeler(labeler)
        return labeler

    def test_sync_labels(self, net):
        labeler = self.make_labeler(net)
        labeler.emit("at://x/app.bsky.feed.post/1", "spam", net.tick())
        assert net.appview.sync_labels() == 1
        assert net.appview.label_count() == 1

    def test_sync_is_incremental(self, net):
        labeler = self.make_labeler(net)
        labeler.emit("at://x/app.bsky.feed.post/1", "spam", net.tick())
        net.appview.sync_labels()
        labeler.emit("at://x/app.bsky.feed.post/2", "spam", net.tick())
        assert net.appview.sync_labels() == 1

    def test_labels_for_respects_negation(self, net):
        labeler = self.make_labeler(net)
        labeler.emit("at://x/app.bsky.feed.post/1", "spam", net.tick())
        labeler.rescind("at://x/app.bsky.feed.post/1", "spam", net.tick())
        net.appview.sync_labels()
        assert net.appview.labels_for("at://x/app.bsky.feed.post/1") == []

    def test_takedown_only_from_official_labeler(self, net):
        official = self.make_labeler(net, "official", ("!takedown",))
        rogue = self.make_labeler(net, "rogue", ("!takedown",))
        net.appview.official_labeler_did = official.did
        rogue.emit("at://x/app.bsky.feed.post/1", "!takedown", net.tick())
        net.appview.sync_labels()
        assert not net.appview.is_taken_down("at://x/app.bsky.feed.post/1")
        official.emit("at://x/app.bsky.feed.post/1", "!takedown", net.tick())
        net.appview.sync_labels()
        assert net.appview.is_taken_down("at://x/app.bsky.feed.post/1")


class TestClientModeration:
    def test_hide_action_filters_feed(self, net):
        alice = make_client(net, "alice")
        bob = make_client(net, "bob")
        uri, feed, _ = publish_feed(net, alice)
        meta = bob.post("cats but nsfw", net.tick(), langs=["en"])
        post_uri = "at://%s/%s" % (bob.did, meta.ops[0][1])
        from repro.services.feedgen import PostFeatures

        feed.ingest(
            PostFeatures(
                uri=post_uri,
                author=bob.did,
                time_us=net.now_us,
                text="cats but nsfw",
                langs=("en",),
                tokens=frozenset(tokenize("cats but nsfw")),
            )
        )
        labeler_did, _ = net.create_user("labeler")
        labeler = LabelerService(labeler_did, "https://lab.test", LabelerPolicies(("nsfw",), {}))
        net.services.register("https://lab.test", labeler)
        net.appview.add_labeler(labeler)
        labeler.emit(post_uri, "nsfw", net.tick())
        net.appview.sync_labels()

        viewer = make_client(net, "carol")
        # Without subscribing: label ignored, post visible.
        assert len(viewer.view_feed(uri, net.now_us)) == 1
        viewer.subscribe_labeler(labeler_did)
        viewer.set_label_action(labeler_did, "nsfw", LabelAction.HIDE)
        assert viewer.view_feed(uri, net.now_us) == []

    def test_warn_action_annotates(self, net):
        alice = make_client(net, "alice")
        uri, feed, _ = publish_feed(net, alice)
        meta = alice.post("cats warn", net.tick(), langs=["en"])
        post_uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
        from repro.services.feedgen import PostFeatures

        feed.ingest(
            PostFeatures(
                uri=post_uri,
                author=alice.did,
                time_us=net.now_us,
                text="cats warn",
                langs=("en",),
                tokens=frozenset(tokenize("cats warn")),
            )
        )
        labeler_did, _ = net.create_user("labeler")
        labeler = LabelerService(labeler_did, "https://lab.test", LabelerPolicies(("odd",), {}))
        net.appview.add_labeler(labeler)
        labeler.emit(post_uri, "odd", net.tick())
        net.appview.sync_labels()
        viewer = make_client(net, "carol")
        viewer.subscribe_labeler(labeler_did)
        viewer.set_label_action(labeler_did, "odd", LabelAction.WARN)
        feed_items = viewer.view_feed(uri, net.now_us)
        assert feed_items[0]["warning"]

    def test_cannot_unsubscribe_official(self, net):
        viewer = make_client(net, "carol")
        with pytest.raises(ValueError):
            viewer.unsubscribe_labeler("did:plc:" + "o" * 24, official_did="did:plc:" + "o" * 24)

    def test_prefs_saved_privately_on_pds(self, net):
        viewer = make_client(net, "carol")
        viewer.subscribe_labeler("did:plc:" + "l" * 24)
        prefs = net.pds.get_preferences(viewer.did, authenticated_as=viewer.did)
        assert prefs["labelers"] == ["did:plc:" + "l" * 24]

    def test_labeler_announcement_via_did_doc(self, net):
        labeler_did, _ = net.create_user("labeler")
        rotation = None  # rotation key is managed inside create_user; re-resolve
        doc = net.plc.resolve(labeler_did)
        assert doc.labeler_endpoint is None
        # Announce via PLC update (the rotation key is the user keypair).
        from repro.atproto.keys import HmacKeypair

        net.plc.update(
            labeler_did,
            HmacKeypair.from_seed(b"labeler"),
            labeler_endpoint="https://lab.test",
        )
        assert net.plc.resolve(labeler_did).labeler_endpoint == "https://lab.test"

"""Focused tests for firehose retention and cursor semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atproto.events import KIND_INFO, IdentityEvent, InfoEvent
from repro.services.relay import Firehose

DAY_US = 24 * 3600 * 1_000_000
DID = "did:plc:" + "a" * 24


def publish_at(firehose, time_us):
    return firehose.publish(lambda seq: IdentityEvent(seq=seq, did=DID, time_us=time_us))


class TestRetention:
    def test_exactly_at_cutoff_survives(self):
        firehose = Firehose(retention_us=3 * DAY_US)
        publish_at(firehose, 0)
        publish_at(firehose, 3 * DAY_US)  # cutoff = 0, first event survives
        assert firehose.backlog_size() == 2

    def test_one_us_past_cutoff_pruned(self):
        firehose = Firehose(retention_us=3 * DAY_US)
        publish_at(firehose, 0)
        publish_at(firehose, 3 * DAY_US + 1)
        assert firehose.backlog_size() == 1
        assert firehose.oldest_available_seq() == 2

    def test_seq_numbers_survive_pruning(self):
        firehose = Firehose(retention_us=DAY_US)
        for day in range(6):
            publish_at(firehose, day * DAY_US)
        events = firehose.events_since(0)
        # The replay leads with an OutdatedCursor notice, then the backlog.
        assert events[0].kind == KIND_INFO
        assert [e.seq for e in events[1:]] == [5, 6]

    def test_cursor_mid_backlog(self):
        firehose = Firehose()
        base = 10**15
        for index in range(5):
            publish_at(firehose, base + index)
        events = firehose.events_since(cursor=3)
        assert [e.seq for e in events] == [4, 5]

    def test_cursor_at_head_returns_empty(self):
        firehose = Firehose()
        publish_at(firehose, 10**15)
        assert firehose.events_since(cursor=1) == []

    def test_limit(self):
        firehose = Firehose()
        base = 10**15
        for index in range(10):
            publish_at(firehose, base + index)
        assert len(firehose.events_since(0, limit=4)) == 4

    def test_empty_firehose(self):
        firehose = Firehose()
        assert firehose.events_since(0) == []
        assert firehose.oldest_available_seq() is None
        assert firehose.next_seq() == 1

    def test_multiple_subscribers_all_receive(self):
        firehose = Firehose()
        received_a, received_b = [], []
        firehose.subscribe(received_a.append)
        firehose.subscribe(received_b.append)
        publish_at(firehose, 10**15)
        assert len(received_a) == len(received_b) == 1


class TestRetentionGaps:
    """The OutdatedCursor semantics: a cursor that predates the retention
    window gets an explicit ``#info`` frame instead of a silent hole."""

    def make_pruned(self):
        firehose = Firehose(retention_us=DAY_US)
        for day in range(6):
            publish_at(firehose, day * DAY_US)
        return firehose  # seqs 1-4 pruned; 5, 6 retained

    def test_gap_frame_reports_oldest_and_dropped(self):
        firehose = self.make_pruned()
        info = firehose.events_since(0)[0]
        assert isinstance(info, InfoEvent)
        assert info.name == "OutdatedCursor"
        assert info.oldest_seq == 5
        assert info.dropped == 4  # seqs 1-4 are gone
        assert firehose.dropped_total == 4

    def test_gap_sized_to_cursor(self):
        firehose = self.make_pruned()
        info = firehose.events_since(cursor=2)[0]
        assert isinstance(info, InfoEvent)
        assert info.dropped == 2  # seqs 3 and 4 were missed

    def test_cursor_inside_window_gets_no_gap(self):
        firehose = self.make_pruned()
        events = firehose.events_since(cursor=4)
        assert [e.seq for e in events] == [5, 6]
        assert firehose.gap_for_cursor(4) is None

    def test_cursor_at_window_edge(self):
        firehose = self.make_pruned()
        # cursor 4 means "I have seen up to seq 4"; seq 5 is the oldest
        # retained event, so nothing was actually lost.
        assert firehose.gap_for_cursor(4) is None
        assert firehose.gap_for_cursor(3) is not None

    def test_limit_caps_total_frames_including_gap(self):
        firehose = self.make_pruned()
        # ``limit`` bounds the frames on the wire: a consumer asking for
        # at most 2 must never receive 3 (the old code prepended the gap
        # frame *after* cutting, overflowing the budget by one).
        events = firehose.events_since(0, limit=2)
        assert len(events) == 2
        assert events[0].kind == KIND_INFO
        assert events[1].seq == 5

    def test_limit_one_at_retention_boundary_yields_only_the_notice(self):
        firehose = self.make_pruned()
        events = firehose.events_since(0, limit=1)
        assert len(events) == 1
        assert events[0].kind == KIND_INFO

    def test_resume_at_retention_boundary_with_limit_loses_nothing(self):
        # A consumer resuming from a pre-retention cursor pages with a
        # small limit: frame counts never exceed the limit and the pages
        # cover every retained event exactly once.
        firehose = self.make_pruned()
        cursor = 0
        replayed = []
        saw_gap = False
        while True:
            page = firehose.events_since(cursor, limit=2)
            assert len(page) <= 2
            if not page:
                break
            for event in page:
                if event.kind == KIND_INFO:
                    saw_gap = True
                    # The notice tells the consumer where replay resumes.
                    cursor = event.oldest_seq - 1
                else:
                    replayed.append(event.seq)
                    cursor = event.seq
        assert saw_gap
        assert replayed == [5, 6]

    def test_fresh_firehose_has_no_gap(self):
        firehose = Firehose(retention_us=DAY_US)
        publish_at(firehose, 0)
        assert firehose.gap_for_cursor(0) is None
        assert all(e.kind != KIND_INFO for e in firehose.events_since(0))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10 * DAY_US), min_size=1, max_size=40))
def test_retention_invariant_property(offsets):
    """After any publish sequence with increasing times, the backlog only
    contains events within the retention window of the newest event."""
    firehose = Firehose(retention_us=2 * DAY_US)
    now = 10**15
    for offset in sorted(offsets):
        publish_at(firehose, now + offset)
    newest = now + max(offsets)
    for event in firehose.events_since(0):
        assert event.time_us >= newest - 2 * DAY_US
    seqs = [e.seq for e in firehose.events_since(0)]
    assert seqs == sorted(seqs)

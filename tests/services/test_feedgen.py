"""Tests for Feed Generators, the router, and feed-service platforms."""

import pytest

from repro.services.feedgen import (
    CuratedFeed,
    FeedError,
    FeedGeneratorHost,
    FeedRouter,
    FeedRule,
    PersonalizedFeed,
    PostFeatures,
    RetentionPolicy,
    tokenize,
)
from repro.services.feedservice import (
    ALL_PROFILES,
    BLUEFEED_PROFILE,
    FILTER_REGEX_TEXT,
    GOODFEEDS_PROFILE,
    SKYFEED_PROFILE,
    FeedServicePlatform,
    feature_matrix_table,
    rule_required_features,
)
from repro.services.xrpc import XrpcError

HOUR_US = 3600 * 1_000_000
DAY_US = 24 * HOUR_US


def make_post(uri_suffix, text, t, author="did:plc:" + "a" * 24, langs=("en",)):
    return PostFeatures(
        uri="at://%s/app.bsky.feed.post/%s" % (author, uri_suffix),
        author=author,
        time_us=t,
        text=text,
        langs=tuple(langs),
        tokens=frozenset(tokenize(text)),
    )


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World!") == {"hello", "world"}

    def test_hashtags_kept(self):
        assert "#art" in tokenize("my #art post")

    def test_apostrophes(self):
        assert "don't" in tokenize("don't stop")


class TestFeedRule:
    def test_requires_a_source(self):
        with pytest.raises(FeedError):
            FeedRule()

    def test_invalid_regex_rejected(self):
        with pytest.raises(FeedError):
            FeedRule(whole_network=True, regex="([unclosed")

    def test_keyword_match(self):
        feed = CuratedFeed("at://f/app.bsky.feed.generator/kw", FeedRule(keywords=frozenset({"ramen"})))
        assert feed.matches(make_post("1", "best ramen in tokyo", 0))
        assert not feed.matches(make_post("2", "best sushi in tokyo", 0))

    def test_language_constraint(self):
        rule = FeedRule(keywords=frozenset({"ramen"}), languages=frozenset({"ja"}))
        feed = CuratedFeed("at://f/app.bsky.feed.generator/ja", rule)
        assert not feed.matches(make_post("1", "ramen", 0, langs=("en",)))
        assert feed.matches(make_post("2", "ramen", 0, langs=("ja",)))

    def test_language_only_feed(self):
        rule = FeedRule(languages=frozenset({"he"}))
        feed = CuratedFeed("at://f/app.bsky.feed.generator/hebrew", rule)
        assert feed.matches(make_post("1", "anything", 0, langs=("he",)))

    def test_author_feed(self):
        rule = FeedRule(authors=frozenset({"did:plc:" + "a" * 24}))
        feed = CuratedFeed("at://f/app.bsky.feed.generator/me", rule)
        assert feed.matches(make_post("1", "hi", 0))
        assert not feed.matches(make_post("1", "hi", 0, author="did:plc:" + "b" * 24))

    def test_regex_filter(self):
        rule = FeedRule(whole_network=True, regex=r"\bcat(s)?\b")
        feed = CuratedFeed("at://f/app.bsky.feed.generator/cats", rule)
        assert feed.matches(make_post("1", "my cats are great", 0))
        assert not feed.matches(make_post("2", "catastrophe", 0))

    def test_label_exclusion(self):
        rule = FeedRule(whole_network=True, exclude_label_values=frozenset({"spam"}))
        feed = CuratedFeed("at://f/app.bsky.feed.generator/clean", rule)
        spammy = PostFeatures(
            uri="at://x/app.bsky.feed.post/1",
            author="did:plc:" + "a" * 24,
            time_us=0,
            text="buy now",
            langs=("en",),
            tokens=frozenset({"buy", "now"}),
            labels=frozenset({"spam"}),
        )
        assert not feed.matches(spammy)


class TestRetention:
    def test_count_limited(self):
        feed = CuratedFeed(
            "at://f/app.bsky.feed.generator/l", FeedRule(whole_network=True), RetentionPolicy.last(3)
        )
        for i in range(10):
            feed.ingest(make_post(str(i), "p", i))
        assert feed.post_count(now_us=100) == 3
        assert feed.total_ingested == 10

    def test_age_limited(self):
        feed = CuratedFeed(
            "at://f/app.bsky.feed.generator/t",
            FeedRule(whole_network=True),
            RetentionPolicy.days(1),
        )
        feed.ingest(make_post("old", "p", 0))
        feed.ingest(make_post("new", "p", 2 * DAY_US))
        assert feed.post_count(now_us=2 * DAY_US + 1) == 1

    def test_unlimited(self):
        feed = CuratedFeed("at://f/app.bsky.feed.generator/u", FeedRule(whole_network=True))
        for i in range(5):
            feed.ingest(make_post(str(i), "p", i))
        assert feed.post_count(now_us=10 * DAY_US) == 5


class TestSkeleton:
    def make_feed(self, n=10):
        feed = CuratedFeed("at://f/app.bsky.feed.generator/s", FeedRule(whole_network=True))
        for i in range(n):
            feed.ingest(make_post(str(i), "post %d" % i, i * HOUR_US))
        return feed

    def test_newest_first(self):
        feed = self.make_feed()
        skeleton = feed.skeleton(None, now_us=DAY_US, limit=3)
        uris = [item["post"] for item in skeleton["feed"]]
        assert uris[0].endswith("/9")
        assert len(uris) == 3

    def test_cursor_pagination(self):
        feed = self.make_feed()
        first = feed.skeleton(None, now_us=DAY_US, limit=4)
        second = feed.skeleton(None, now_us=DAY_US, limit=4, cursor=first["cursor"])
        all_uris = [i["post"] for i in first["feed"]] + [i["post"] for i in second["feed"]]
        assert len(set(all_uris)) == 8

    def test_cursor_exhaustion(self):
        feed = self.make_feed(3)
        page = feed.skeleton(None, now_us=DAY_US, limit=10)
        assert page["cursor"] is None


class TestPersonalizedFeed:
    def test_empty_for_anonymous(self):
        feed = PersonalizedFeed("at://f/app.bsky.feed.generator/algo")
        assert feed.skeleton(None, now_us=0)["feed"] == []

    def test_viewer_specific_content(self):
        source = {"did:plc:" + "v" * 24: [("at://x/app.bsky.feed.post/1", 10)]}
        feed = PersonalizedFeed(
            "at://f/app.bsky.feed.generator/algo", lambda viewer: source.get(viewer, [])
        )
        assert len(feed.skeleton("did:plc:" + "v" * 24, now_us=20)["feed"]) == 1
        assert feed.skeleton("did:plc:" + "e" * 24, now_us=20)["feed"] == []


class TestHost:
    def test_skeleton_dispatch(self):
        host = FeedGeneratorHost("did:web:feeds.test", "https://feeds.test")
        feed = CuratedFeed("at://c/app.bsky.feed.generator/f1", FeedRule(whole_network=True))
        feed.ingest(make_post("1", "x", 0))
        host.add_feed(feed)
        result = host.xrpc_getFeedSkeleton(feed="at://c/app.bsky.feed.generator/f1")
        assert len(result["feed"]) == 1

    def test_unknown_feed(self):
        host = FeedGeneratorHost("did:web:feeds.test", "https://feeds.test")
        with pytest.raises(XrpcError):
            host.xrpc_getFeedSkeleton(feed="at://c/app.bsky.feed.generator/ghost")

    def test_duplicate_feed_rejected(self):
        host = FeedGeneratorHost("did:web:feeds.test", "https://feeds.test")
        feed = CuratedFeed("at://c/app.bsky.feed.generator/f1", FeedRule(whole_network=True))
        host.add_feed(feed)
        with pytest.raises(FeedError):
            host.add_feed(CuratedFeed("at://c/app.bsky.feed.generator/f1", FeedRule(whole_network=True)))

    def test_describe(self):
        host = FeedGeneratorHost("did:web:feeds.test", "https://feeds.test")
        host.add_feed(CuratedFeed("at://c/app.bsky.feed.generator/f1", FeedRule(whole_network=True)))
        description = host.xrpc_describeFeedGenerator()
        assert description["did"] == "did:web:feeds.test"
        assert description["feeds"] == [{"uri": "at://c/app.bsky.feed.generator/f1"}]


class TestRouter:
    def test_keyword_routing(self):
        router = FeedRouter()
        ramen = CuratedFeed("at://c/app.bsky.feed.generator/ramen", FeedRule(keywords=frozenset({"ramen"})))
        art = CuratedFeed("at://c/app.bsky.feed.generator/art", FeedRule(keywords=frozenset({"art"})))
        router.register(ramen)
        router.register(art)
        delivered = router.route(make_post("1", "fresh ramen tonight", 0))
        assert delivered == 1
        assert ramen.total_ingested == 1
        assert art.total_ingested == 0

    def test_whole_network_gets_everything(self):
        router = FeedRouter()
        everything = CuratedFeed("at://c/app.bsky.feed.generator/all", FeedRule(whole_network=True))
        router.register(everything)
        for i in range(5):
            router.route(make_post(str(i), "post %d" % i, i))
        assert everything.total_ingested == 5

    def test_language_routing(self):
        router = FeedRouter()
        hebrew = CuratedFeed("at://c/app.bsky.feed.generator/he", FeedRule(languages=frozenset({"he"})))
        router.register(hebrew)
        router.route(make_post("1", "shalom", 0, langs=("he",)))
        router.route(make_post("2", "hello", 0, langs=("en",)))
        assert hebrew.total_ingested == 1

    def test_post_matching_multiple_feeds(self):
        router = FeedRouter()
        a = CuratedFeed("at://c/app.bsky.feed.generator/a", FeedRule(keywords=frozenset({"cats"})))
        b = CuratedFeed("at://c/app.bsky.feed.generator/b", FeedRule(whole_network=True))
        router.register(a)
        router.register(b)
        assert router.route(make_post("1", "cats!", 0)) == 2


class TestFeedServicePlatforms:
    def test_table5_profiles_exist(self):
        names = {profile.name for profile in ALL_PROFILES}
        assert names == {"Skyfeed", "Bluefeed", "Blueskyfeeds", "Goodfeeds", "Blueskyfeedcreator"}

    def test_only_skyfeed_has_regex(self):
        for profile in ALL_PROFILES:
            assert profile.supports(FILTER_REGEX_TEXT) == (profile.name == "Skyfeed")

    def test_skyfeed_accepts_regex_feed(self):
        platform = FeedServicePlatform(SKYFEED_PROFILE, "did:web:skyfeed.test", "https://skyfeed.test")
        feed = platform.create_feed(
            "did:plc:" + "c" * 24,
            "at://did:plc:%s/app.bsky.feed.generator/cats" % ("c" * 24),
            FeedRule(whole_network=True, regex=r"\bcats\b"),
        )
        assert feed.rule.regex is not None

    def test_bluefeed_rejects_regex_feed(self):
        platform = FeedServicePlatform(BLUEFEED_PROFILE, "did:web:bluefeed.test", "https://bluefeed.test")
        with pytest.raises(FeedError):
            platform.create_feed(
                "did:plc:" + "c" * 24,
                "at://x/app.bsky.feed.generator/f",
                FeedRule(whole_network=True, regex=r"x"),
            )

    def test_goodfeeds_rejects_keyword_feed(self):
        platform = FeedServicePlatform(GOODFEEDS_PROFILE, "did:web:goodfeeds.test", "https://goodfeeds.test")
        with pytest.raises(FeedError):
            platform.create_feed(
                "did:plc:" + "c" * 24,
                "at://x/app.bsky.feed.generator/f",
                FeedRule(keywords=frozenset({"art"})),
            )

    def test_platform_tracks_creators(self):
        platform = FeedServicePlatform(SKYFEED_PROFILE, "did:web:skyfeed.test", "https://skyfeed.test")
        creator = "did:plc:" + "c" * 24
        for i in range(3):
            platform.create_feed(
                creator,
                "at://%s/app.bsky.feed.generator/f%d" % (creator, i),
                FeedRule(whole_network=True),
            )
        assert len(platform.feeds_by_creator(creator)) == 3
        assert platform.creator_of("at://%s/app.bsky.feed.generator/f0" % creator) == creator

    def test_rule_required_features(self):
        rule = FeedRule(keywords=frozenset({"a"}), languages=frozenset({"en"}), regex="x")
        needed = rule_required_features(rule)
        assert "input:tags" in needed
        assert "filter:language" in needed
        assert "filter:regex-text" in needed

    def test_feature_matrix_table(self):
        table = feature_matrix_table()
        assert table["filter:regex-text"]["Skyfeed"]
        assert not table["filter:regex-text"]["Goodfeeds"]
        assert table["other:paid-plans"]["Blueskyfeedcreator"]

"""Smoke tests: every example script runs to completion.

(`run_study.py` is exercised indirectly through the pipeline tests; its
default scale is sized for humans, not CI.)
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_labeler.py",
    "feed_service_platform.py",
    "identity_migration.py",
    "whitewind_blog.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "examples must narrate what they do"


def test_run_study_example_with_tiny_scale(capsys):
    sys.path.insert(0, EXAMPLES_DIR)
    try:
        import run_study

        exit_code = run_study.main(["--scale", "60000"])
    finally:
        sys.path.remove(EXAMPLES_DIR)
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Figure 12" in out

"""Tests for the deterministic fault-injection subsystem."""

import pytest

from repro.netsim.faults import (
    DEFAULT_RETRY_POLICY,
    TARGET_DNS,
    TARGET_IDENTITY,
    TRANSIENT_STATUSES,
    Disconnect,
    FaultInjector,
    FaultPlan,
    FlakyRule,
    Outage,
    RetryPolicy,
    SlowHost,
    call_with_retries,
)
from repro.services.xrpc import ServiceDirectory, XrpcError, XrpcService

US = 1_000_000
HOUR = 3600 * US
RELAY = "https://relay.test"


class EchoService(XrpcService):
    """Answers every call; counts how many got through the fault gate."""

    def __init__(self):
        self.calls = 0

    def xrpc_ping(self, **params):
        self.calls += 1
        return {"ok": True, **params}


def wired(plan=None):
    services = ServiceDirectory()
    echo = EchoService()
    services.register(RELAY, echo)
    if plan is not None:
        services.fault_injector = FaultInjector(plan)
    return services, echo


class TestOutage:
    def test_calls_fail_inside_window_only(self):
        plan = FaultPlan(outages=(Outage(RELAY, start_us=HOUR, end_us=2 * HOUR),))
        services, echo = wired(plan)
        services.now_us = 0
        assert services.call(RELAY, "x.ping")["ok"]
        services.now_us = HOUR + 1
        with pytest.raises(XrpcError) as excinfo:
            services.call(RELAY, "x.ping")
        assert excinfo.value.status == 0
        services.now_us = 2 * HOUR  # end is exclusive: service is back
        assert services.call(RELAY, "x.ping")["ok"]
        assert echo.calls == 2

    def test_outage_matches_by_prefix(self):
        plan = FaultPlan(outages=(Outage("https://other.test", 0, HOUR),))
        services, echo = wired(plan)
        assert services.call(RELAY, "x.ping")["ok"]  # different host unaffected


class TestFlaky:
    def test_probability_zero_never_fires(self):
        plan = FaultPlan(flaky=(FlakyRule(url=RELAY, probability=0.0),))
        services, _ = wired(plan)
        for _ in range(50):
            assert services.call(RELAY, "x.ping")["ok"]

    def test_probability_one_always_fires_with_listed_status(self):
        plan = FaultPlan(flaky=(FlakyRule(url=RELAY, probability=1.0, statuses=(429,)),))
        services, echo = wired(plan)
        for _ in range(5):
            with pytest.raises(XrpcError) as excinfo:
                services.call(RELAY, "x.ping")
            assert excinfo.value.status == 429
        assert echo.calls == 0

    def test_stats_account_injections(self):
        plan = FaultPlan(flaky=(FlakyRule(url=RELAY, probability=1.0, statuses=(503,)),))
        services, _ = wired(plan)
        for _ in range(3):
            with pytest.raises(XrpcError):
                services.call(RELAY, "x.ping")
        stats = services.fault_injector.stats
        assert stats.injected_by_kind["flaky"] == 3
        assert stats.injected_by_status[503] == 3
        assert stats.calls_seen == 3

    def test_pseudo_target_raise_transient(self):
        plan = FaultPlan(
            flaky=(FlakyRule(url=TARGET_IDENTITY, probability=1.0, statuses=(500,)),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(XrpcError):
            injector.raise_transient(TARGET_IDENTITY, now_us=0)
        injector.raise_transient(TARGET_DNS, now_us=0)  # unmatched: no raise


class TestSlowHost:
    def test_latency_charged_and_readable(self):
        plan = FaultPlan(slow_hosts=(SlowHost(RELAY, base_latency_us=250_000),))
        services, _ = wired(plan)
        assert services.call(RELAY, "x.ping")["ok"]
        assert services.last_call_latency_us == 250_000
        assert services.injected_latency_us == 250_000

    def test_guaranteed_timeout(self):
        plan = FaultPlan(
            slow_hosts=(SlowHost(RELAY, base_latency_us=100, timeout_probability=1.0),)
        )
        services, echo = wired(plan)
        with pytest.raises(XrpcError) as excinfo:
            services.call(RELAY, "x.ping")
        assert excinfo.value.status == 408
        assert echo.calls == 0

    def test_timeout_charges_its_wait(self):
        # A timed-out call still burned the timeout window: the error
        # carries that latency and the directory charges it.
        plan = FaultPlan(
            slow_hosts=(
                SlowHost(RELAY, base_latency_us=100, timeout_probability=1.0,
                         timeout_us=30 * US),
            )
        )
        services, _ = wired(plan)
        with pytest.raises(XrpcError) as excinfo:
            services.call(RELAY, "x.ping")
        assert excinfo.value.latency_us == 30 * US
        assert services.last_call_latency_us == 30 * US

    def test_unreachable_host_charges_no_fault_latency(self):
        # Reachability is decided before the fault gate: a connection
        # that never opens cannot be slow, and the injector never sees
        # the dispatch.
        plan = FaultPlan(slow_hosts=(SlowHost(RELAY, base_latency_us=250_000),))
        services, _ = wired(plan)
        services.set_down(RELAY)
        with pytest.raises(XrpcError) as excinfo:
            services.call(RELAY, "x.ping")
        assert excinfo.value.latency_us == 0
        assert services.last_call_latency_us == 0
        assert services.injected_latency_us == 0
        assert services.fault_injector.stats.calls_seen == 0
        with pytest.raises(XrpcError):
            services.call("https://nowhere.test", "x.ping")
        assert services.last_call_latency_us == 0
        assert services.fault_injector.stats.calls_seen == 0


class TestDisconnectWindows:
    def test_plan_reports_disconnected(self):
        plan = FaultPlan(disconnects=(Disconnect(HOUR, 2 * HOUR),))
        assert not plan.is_disconnected(HOUR - 1)
        assert plan.is_disconnected(HOUR)
        assert plan.is_disconnected(2 * HOUR - 1)
        assert not plan.is_disconnected(2 * HOUR)


class TestRetryPolicy:
    def test_transient_statuses_retryable(self):
        policy = RetryPolicy()
        for status in TRANSIENT_STATUSES:
            assert policy.is_retryable(status)
        assert not policy.is_retryable(404)
        assert not policy.is_retryable(501)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_us=US, multiplier=2.0, max_backoff_us=5 * US)
        waits = [policy.backoff_us(attempt) for attempt in (1, 2, 3, 4, 5)]
        assert waits == [US, 2 * US, 4 * US, 5 * US, 5 * US]

    def test_jitter_is_deterministic_per_seed(self):
        import random

        policy = RetryPolicy()
        a = [policy.backoff_us(i, random.Random(7)) for i in (1, 2, 3)]
        b = [policy.backoff_us(i, random.Random(7)) for i in (1, 2, 3)]
        assert a == b


class TestCallWithRetries:
    def test_transient_errors_absorbed(self):
        # Flaky with p=1 for the first window only; the retry clock walks
        # the call out of the window and it then succeeds.
        plan = FaultPlan(
            flaky=(FlakyRule(url=RELAY, probability=1.0, statuses=(503,), end_us=2 * US),)
        )
        services, echo = wired(plan)
        result, t = call_with_retries(
            services, RELAY, "x.ping", now_us=0, policy=DEFAULT_RETRY_POLICY
        )
        assert result["ok"]
        assert echo.calls == 1
        assert t >= 2 * US  # backoff time was accounted for

    def test_exhausted_retries_reraise(self):
        plan = FaultPlan(flaky=(FlakyRule(url=RELAY, probability=1.0, statuses=(503,)),))
        services, _ = wired(plan)
        from collections import Counter

        counters = Counter()
        with pytest.raises(XrpcError):
            call_with_retries(services, RELAY, "x.ping", now_us=0, counters=counters)
        assert counters["attempts"] == DEFAULT_RETRY_POLICY.max_attempts
        assert counters["retries"] == DEFAULT_RETRY_POLICY.max_attempts - 1

    def test_non_retryable_fails_fast(self):
        services, _ = wired()
        from collections import Counter

        counters = Counter()
        with pytest.raises(XrpcError):
            call_with_retries(
                services, RELAY, "x.nosuchmethod", now_us=0, counters=counters
            )
        assert counters["attempts"] == 1  # 501 is not transient

    def test_result_time_includes_injected_latency(self):
        plan = FaultPlan(slow_hosts=(SlowHost(RELAY, base_latency_us=300_000),))
        services, _ = wired(plan)
        _, t = call_with_retries(services, RELAY, "x.ping", now_us=1000)
        assert t == 1000 + 300_000


class TestPlanDeterminism:
    def test_recoverable_plan_reproducible(self):
        a = FaultPlan.recoverable(7, 0, 30 * 24 * HOUR)
        b = FaultPlan.recoverable(7, 0, 30 * 24 * HOUR)
        assert a == b
        c = FaultPlan.recoverable(8, 0, 30 * 24 * HOUR)
        assert a != c

    def test_recoverable_plan_is_recoverable(self):
        start, end = 0, 55 * 24 * HOUR
        plan = FaultPlan.recoverable(2024, start, end)
        for window in plan.disconnects:
            assert window.end_us - window.start_us <= 8 * HOUR  # « 3-day retention
            assert window.end_us < end
        for outage in plan.outages:
            assert outage.end_us < end

    def test_injector_draw_sequence_reproducible(self):
        plan = FaultPlan(flaky=(FlakyRule(url=RELAY, probability=0.5, statuses=(429, 503)),))

        def outcomes():
            services, _ = wired(plan)
            seen = []
            for _ in range(40):
                try:
                    services.call(RELAY, "x.ping")
                    seen.append("ok")
                except XrpcError as exc:
                    seen.append(exc.status)
            return seen

        assert outcomes() == outcomes()

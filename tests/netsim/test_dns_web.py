"""Tests for the simulated DNS and web layers."""

import pytest

from repro.netsim.dns import (
    DnsRecordType,
    DnsResolver,
    DnsZone,
    NxDomain,
    ServFail,
)
from repro.netsim.web import WebError, WebHostRegistry


class TestDns:
    def test_txt_lookup(self):
        zone = DnsZone()
        zone.add("_atproto.example.com", DnsRecordType.TXT, "did=did:plc:abc")
        resolver = DnsResolver(zone)
        assert resolver.lookup_txt("_atproto.example.com") == ["did=did:plc:abc"]

    def test_case_insensitive(self):
        zone = DnsZone()
        zone.add("Example.COM", DnsRecordType.A, "192.0.2.1")
        assert DnsResolver(zone).lookup("example.com.", DnsRecordType.A) == ["192.0.2.1"]

    def test_nxdomain(self):
        resolver = DnsResolver(DnsZone())
        with pytest.raises(NxDomain):
            resolver.lookup("missing.example.com", DnsRecordType.TXT)

    def test_multiple_records(self):
        zone = DnsZone()
        zone.set("multi.example.com", DnsRecordType.TXT, ["a", "b"])
        assert sorted(DnsResolver(zone).lookup_txt("multi.example.com")) == ["a", "b"]

    def test_cname_chasing(self):
        zone = DnsZone()
        zone.add("alias.example.com", DnsRecordType.CNAME, "target.example.com")
        zone.add("target.example.com", DnsRecordType.A, "192.0.2.9")
        assert DnsResolver(zone).lookup("alias.example.com", DnsRecordType.A) == ["192.0.2.9"]

    def test_cname_loop_detected(self):
        zone = DnsZone()
        zone.add("a.example.com", DnsRecordType.CNAME, "b.example.com")
        zone.add("b.example.com", DnsRecordType.CNAME, "a.example.com")
        with pytest.raises(ServFail):
            DnsResolver(zone).lookup("a.example.com", DnsRecordType.A)

    def test_servfail_injection(self):
        zone = DnsZone()
        zone.add("flaky.example.com", DnsRecordType.TXT, "x")
        zone.mark_failing("flaky.example.com")
        with pytest.raises(ServFail):
            DnsResolver(zone).lookup_txt("flaky.example.com")

    def test_try_lookup_swallows_failures(self):
        resolver = DnsResolver(DnsZone())
        assert resolver.try_lookup_txt("missing.example.com") is None

    def test_query_counting(self):
        resolver = DnsResolver(DnsZone())
        resolver.try_lookup_txt("a.example.com")
        resolver.try_lookup_txt("b.example.com")
        assert resolver.query_count == 2

    def test_remove(self):
        zone = DnsZone()
        zone.add("x.example.com", DnsRecordType.TXT, "v")
        zone.remove("x.example.com")
        assert not zone.name_exists("x.example.com")


class TestWeb:
    def test_serve_and_get(self):
        web = WebHostRegistry()
        web.serve("example.com", "/.well-known/atproto-did", "did:plc:abc")
        assert web.get("example.com", "/.well-known/atproto-did") == "did:plc:abc"

    def test_host_case_insensitive(self):
        web = WebHostRegistry()
        web.serve("Example.COM", "/x", "body")
        assert web.get("example.com", "/x") == "body"

    def test_404(self):
        web = WebHostRegistry()
        web.serve("example.com", "/a", "x")
        with pytest.raises(WebError) as info:
            web.get("example.com", "/b")
        assert info.value.status == 404

    def test_unknown_host(self):
        with pytest.raises(WebError):
            WebHostRegistry().get("nowhere.com", "/")

    def test_host_down(self):
        web = WebHostRegistry()
        web.serve("example.com", "/a", "x")
        web.set_down("example.com")
        with pytest.raises(WebError):
            web.get("example.com", "/a")
        web.set_down("example.com", False)
        assert web.get("example.com", "/a") == "x"

    def test_json_round_trip(self):
        web = WebHostRegistry()
        web.serve_json("example.com", "/doc", {"k": [1, 2]})
        assert web.get_json("example.com", "/doc") == {"k": [1, 2]}

    def test_try_get(self):
        web = WebHostRegistry()
        assert web.try_get("nope.com", "/") is None

    def test_remove_path(self):
        web = WebHostRegistry()
        web.serve("example.com", "/a", "x")
        web.remove("example.com", "/a")
        assert web.try_get("example.com", "/a") is None

    def test_request_counting(self):
        web = WebHostRegistry()
        web.try_get("a.com", "/")
        web.try_get("b.com", "/")
        assert web.request_count == 2

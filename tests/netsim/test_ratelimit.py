"""Tests for the crawl rate limiter."""

import pytest

from repro.netsim.ratelimit import TokenBucket, crawl_duration_days

US = 1_000_000


class TestTokenBucket:
    def test_burst_passes_immediately(self):
        bucket = TokenBucket(rate_per_second=1.0, burst=5)
        t = 1_000 * US
        for _ in range(5):
            assert bucket.acquire(t) == t

    def test_past_burst_requests_are_scheduled(self):
        bucket = TokenBucket(rate_per_second=2.0, burst=1)
        t = 1_000 * US
        first = bucket.acquire(t)
        second = bucket.acquire(t)
        assert first == t
        assert second == t + US // 2  # 2 rps -> 0.5s spacing

    def test_steady_state_rate(self):
        bucket = TokenBucket(rate_per_second=10.0, burst=1)
        t = 0
        for _ in range(100):
            t = bucket.acquire(t)
        # 100 requests at 10 rps: ~9.9 seconds after the free first token.
        assert 9.5 * US <= t <= 10.5 * US

    def test_refill_after_idle(self):
        bucket = TokenBucket(rate_per_second=1.0, burst=3)
        t = bucket.acquire(0)
        bucket.acquire(t)
        bucket.acquire(t)
        # Fully drained; 10 idle seconds refill to burst again.
        later = 10 * US
        assert bucket.acquire(later) == later

    def test_request_counter(self):
        bucket = TokenBucket(rate_per_second=5.0)
        for _ in range(7):
            bucket.acquire(0)
        assert bucket.total_requests == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_second=0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_second=1.0, burst=0)

    def test_schedule_duration(self):
        bucket = TokenBucket(rate_per_second=10.0, burst=10)
        assert bucket.schedule_duration_us(10) == 0
        assert bucket.schedule_duration_us(110) == 10 * US

    def test_long_run_rate_never_exceeds_negotiated(self):
        """Over a long crawl the realized rate must stay at or below the
        negotiated one.  Fractional waits must round *up*: truncation lets
        sub-microsecond credits accumulate and quietly push the effective
        rate above the agreement (the paper's 6.4 rps ethics commitment).
        """
        # 6.4 is the paper's getRepo rate; 3.0 and 7.3 have waits that do
        # not divide a microsecond evenly, where truncation bites hardest.
        for rate in (6.4, 3.0, 7.3):
            bucket = TokenBucket(rate_per_second=rate, burst=1)
            t = 0
            n = 20_000
            for _ in range(n):
                t = bucket.acquire(t)
            elapsed_s = t / US
            realized = (n - 1) / elapsed_s  # first token is free (burst)
            assert realized <= rate + 1e-9, "rate %.1f exceeded" % rate

    def test_ceil_rounding_each_wait(self):
        """Every scheduled wait covers the full deficit (no early grants)."""
        bucket = TokenBucket(rate_per_second=3.0, burst=1)
        t = bucket.acquire(0)
        previous = t
        for _ in range(100):
            t = bucket.acquire(t)
            # 1/3 s spacing must never be truncated down to 333_333 us.
            assert t - previous >= 333_334
            previous = t


class TestCrawlDuration:
    def test_paper_repo_crawl_rate(self):
        """5.52M repos over 10 days implies ~6.4 requests per second."""
        days = crawl_duration_days(5_523_919, 6.4)
        assert 9.5 < days < 10.5

    def test_dataset_records_virtual_duration(self, study_datasets):
        repos = study_datasets.repositories
        assert repos.crawl_duration_us > 0
        # At the agreed 6.4 rps the tiny crawl takes under an hour...
        assert repos.crawl_duration_us < 3600 * US
        # ...but scaled to the paper's population it is about 10 days.
        implied_days = crawl_duration_days(5_523_919, 6.4)
        assert round(implied_days) == 10

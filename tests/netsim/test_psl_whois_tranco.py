"""Tests for PSL, WHOIS/registrars, Tranco ranking, and hosting classes."""

import pytest

from repro.netsim.hosting import HostingClass, IpAllocator
from repro.netsim.psl import PslError, PublicSuffixList, default_psl
from repro.netsim.tranco import TrancoList
from repro.netsim.whois import (
    PAPER_REGISTRARS,
    Registrar,
    RegistrarDatabase,
    WhoisService,
    cctld_registrars,
    long_tail_registrars,
)


class TestPsl:
    def test_simple_tld(self):
        psl = default_psl()
        assert psl.public_suffix("alice.example.com") == "com"
        assert psl.registered_domain("alice.example.com") == "example.com"

    def test_multi_label_suffix(self):
        psl = default_psl()
        assert psl.public_suffix("shop.example.co.uk") == "co.uk"
        assert psl.registered_domain("shop.example.co.uk") == "example.co.uk"

    def test_domain_equal_to_suffix(self):
        psl = default_psl()
        assert psl.registered_domain("com") is None
        assert psl.is_public_suffix("co.uk")

    def test_unknown_tld_behaves_as_suffix(self):
        psl = default_psl()
        assert psl.registered_domain("foo.bar.unknowntld") == "bar.unknowntld"

    def test_private_section_excluded_by_default(self):
        # Paper counts github.io pages as subdomains of one registered domain.
        psl = default_psl()
        assert psl.registered_domain("alice.github.io") == "github.io"

    def test_private_section_opt_in(self):
        psl = default_psl()
        # With the private section, each user site is its own registrable name.
        assert (
            psl.registered_domain("alice.github.io", include_private=True)
            == "alice.github.io"
        )
        assert (
            psl.registered_domain("blog.alice.github.io", include_private=True)
            == "alice.github.io"
        )

    def test_wildcard_rule(self):
        psl = default_psl()
        assert psl.public_suffix("example.foo.ck") == "foo.ck"

    def test_exception_rule(self):
        psl = default_psl()
        assert psl.registered_domain("www.ck") == "www.ck"

    def test_empty_domain_raises(self):
        with pytest.raises(PslError):
            default_psl().registered_domain("")

    def test_empty_label_raises(self):
        with pytest.raises(PslError):
            default_psl().registered_domain("a..b.com")

    def test_normalization(self):
        psl = default_psl()
        assert psl.registered_domain("  Alice.Example.COM. ") == "example.com"


class TestRegistrars:
    def test_paper_registrars_have_real_iana_ids(self):
        by_name = {r.name: r for r in PAPER_REGISTRARS}
        assert by_name["NameCheap, Inc."].iana_id == 1068
        assert by_name["CloudFlare, Inc."].iana_id == 1910
        assert by_name["GoDaddy.com, LLC"].iana_id == 146

    def test_database(self):
        db = RegistrarDatabase()
        assert db.get("Porkbun, LLC").iana_id == 1861
        db.add(Registrar(9999, "Test Registrar"))
        assert len(db) == len(PAPER_REGISTRARS) + 1

    def test_long_tail_factory(self):
        tail = long_tail_registrars(10)
        assert len({r.iana_id for r in tail}) == 10

    def test_cctld_registrars_have_no_iana_id(self):
        for registrar in cctld_registrars(3):
            assert registrar.iana_id is None
            assert not registrar.icann_accredited


class TestWhois:
    def make_service(self):
        db = RegistrarDatabase()
        return WhoisService(db), db

    def test_register_and_query(self):
        service, db = self.make_service()
        service.register("example.com", db.get("NameCheap, Inc."))
        record = service.query("example.com")
        assert record.iana_id == 1068
        assert record.registrar_name == "NameCheap, Inc."

    def test_cctld_registrar_omits_iana_id(self):
        service, _ = self.make_service()
        cctld = cctld_registrars(1)[0]
        service.register("example.de", cctld)
        assert service.query("example.de").iana_id is None
        assert service.query("example.de").registrar_name == cctld.name

    def test_redaction_flag(self):
        service, db = self.make_service()
        service.register("hidden.com", db.get("GoDaddy.com, LLC"), redact_iana_id=True)
        assert service.query("hidden.com").iana_id is None

    def test_unresponsive_domain(self):
        service, db = self.make_service()
        service.register("slow.com", db.get("Porkbun, LLC"))
        service.mark_unresponsive("slow.com")
        assert service.query("slow.com") is None

    def test_unknown_domain(self):
        service, _ = self.make_service()
        assert service.query("unregistered.com") is None

    def test_query_counter(self):
        service, _ = self.make_service()
        service.query("a.com")
        service.query("b.com")
        assert service.query_count == 2


class TestTranco:
    def test_seed_domains_ranked(self):
        ranking = TrancoList()
        assert ranking.in_top("cloudflare.com")
        assert ranking.rank("amazonaws.com") is not None

    def test_unranked_domain(self):
        assert TrancoList().rank("my-small-blog.example") is None

    def test_append_is_idempotent(self):
        ranking = TrancoList()
        first = ranking.append("newdomain.com")
        second = ranking.append("newdomain.com")
        assert first == second

    def test_rank_ordering(self):
        ranking = TrancoList(domains=["first.com", "second.com"])
        assert ranking.rank("first.com") < ranking.rank("second.com")

    def test_top_n_cut(self):
        ranking = TrancoList(domains=["a.com", "b.com", "c.com"])
        assert ranking.in_top("a.com", top_n=1)
        assert not ranking.in_top("c.com", top_n=1)

    def test_cap(self):
        ranking = TrancoList(domains=[], size_cap=2)
        ranking.append("a.com")
        ranking.append("b.com")
        with pytest.raises(ValueError):
            ranking.append("c.com")


class TestHosting:
    def test_allocation_and_classification(self):
        allocator = IpAllocator()
        address = allocator.allocate("labeler.example.com", HostingClass.CLOUD)
        assert IpAllocator.classify(address.ip) == HostingClass.CLOUD

    def test_allocation_is_stable(self):
        allocator = IpAllocator()
        first = allocator.allocate("x.com", HostingClass.RESIDENTIAL)
        second = allocator.allocate("x.com", HostingClass.RESIDENTIAL)
        assert first == second

    def test_distinct_hosts_distinct_ips(self):
        allocator = IpAllocator()
        a = allocator.allocate("a.com", HostingClass.PROXY)
        b = allocator.allocate("b.com", HostingClass.PROXY)
        assert a.ip != b.ip

    def test_unknown_ip_classifies_none(self):
        assert IpAllocator.classify("8.8.8.8") is None

    def test_address_of(self):
        allocator = IpAllocator()
        assert allocator.address_of("ghost.com") is None
        allocator.allocate("ghost.com", HostingClass.CLOUD)
        assert allocator.address_of("ghost.com") is not None

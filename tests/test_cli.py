"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import ARTEFACTS, main


class TestCli:
    def test_single_artefact(self, capsys):
        exit_code = main(["table1", "--scale", "60000", "--feed-scale", "1200", "--quiet"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Repo Commit" in out

    def test_table5_is_static(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Skyfeed" in out

    def test_artefact_registry_complete(self):
        # 21 dynamic artefacts + table5 handled separately.
        assert len(ARTEFACTS) == 21
        assert "fig12" in ARTEFACTS and "table6" in ARTEFACTS
        assert "health" in ARTEFACTS
        assert "integrity" in ARTEFACTS
        assert "slo" in ARTEFACTS

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_lint_subcommand_dispatches(self, capsys):
        # `lint` hands over to the determinism analyzer before the study
        # parser (which would reject its flags) sees the argv.
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "unsorted-set-iter" in out
        assert "repro: allow(" in out

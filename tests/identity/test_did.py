"""Tests for DID syntax and DID documents."""

import pytest

from repro.identity.did import (
    LABELER_SERVICE_ID,
    PDS_SERVICE_ID,
    DidDocument,
    DidError,
    ServiceEndpoint,
    did_method,
    did_web_to_fqdn,
    is_valid_did,
)


class TestDidSyntax:
    def test_valid_plc(self):
        assert is_valid_did("did:plc:ewvi7nxzyoun6zhxrhs64oiz")

    def test_plc_suffix_must_be_24_base32_chars(self):
        assert not is_valid_did("did:plc:short")
        assert not is_valid_did("did:plc:" + "A" * 24)  # uppercase not allowed

    def test_valid_web(self):
        assert is_valid_did("did:web:example.com")

    def test_unknown_method(self):
        assert not is_valid_did("did:ion:something")

    def test_did_method(self):
        assert did_method("did:web:example.com") == "web"
        with pytest.raises(DidError):
            did_method("not-a-did")

    def test_did_web_to_fqdn(self):
        assert did_web_to_fqdn("did:web:Example.COM") == "example.com"

    def test_did_web_path_rejected(self):
        with pytest.raises(DidError):
            did_web_to_fqdn("did:web:example.com:user:alice")


class TestDidDocument:
    def make_doc(self):
        doc = DidDocument(
            did="did:plc:ewvi7nxzyoun6zhxrhs64oiz",
            handle="alice.bsky.social",
            signing_key="did:key:zQ3shokFTS3brHcDQrn82RUDfCZESWL1ZdCEJwekUDPQiYBme",
        )
        doc.set_service(
            ServiceEndpoint(PDS_SERVICE_ID, "AtprotoPersonalDataServer", "https://pds.test")
        )
        return doc

    def test_invalid_did_rejected(self):
        with pytest.raises(DidError):
            DidDocument(did="nope")

    def test_also_known_as(self):
        assert self.make_doc().also_known_as == ["at://alice.bsky.social"]

    def test_pds_endpoint(self):
        assert self.make_doc().pds_endpoint == "https://pds.test"

    def test_labeler_endpoint_absent(self):
        assert self.make_doc().labeler_endpoint is None

    def test_set_service_replaces(self):
        doc = self.make_doc()
        doc.set_service(
            ServiceEndpoint(PDS_SERVICE_ID, "AtprotoPersonalDataServer", "https://pds2.test")
        )
        assert doc.pds_endpoint == "https://pds2.test"
        assert len(doc.services) == 1

    def test_labeler_service(self):
        doc = self.make_doc()
        doc.set_service(ServiceEndpoint(LABELER_SERVICE_ID, "AtprotoLabeler", "https://lab.test"))
        assert doc.labeler_endpoint == "https://lab.test"

    def test_json_round_trip(self):
        doc = self.make_doc()
        restored = DidDocument.from_json(doc.to_json())
        assert restored.did == doc.did
        assert restored.handle == doc.handle
        assert restored.pds_endpoint == doc.pds_endpoint
        assert restored.signing_key == doc.signing_key

    def test_from_json_requires_id(self):
        with pytest.raises(DidError):
            DidDocument.from_json({"alsoKnownAs": []})

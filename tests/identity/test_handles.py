"""Tests for handle resolution and did:web resolution."""

import pytest

from repro.atproto.keys import HmacKeypair
from repro.identity.did import DidDocument, PDS_SERVICE_ID, ServiceEndpoint
from repro.identity.handles import (
    MECHANISM_DNS,
    MECHANISM_WELL_KNOWN,
    HandleError,
    HandleResolver,
    is_valid_handle,
    publish_dns_proof,
    publish_well_known_proof,
)
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver, publish_did_web_document
from repro.netsim.dns import DnsResolver, DnsZone
from repro.netsim.web import WebHostRegistry


@pytest.fixture()
def zone():
    return DnsZone()


@pytest.fixture()
def web():
    return WebHostRegistry()


@pytest.fixture()
def resolver(zone, web):
    return HandleResolver(DnsResolver(zone), web)


DID = "did:plc:ewvi7nxzyoun6zhxrhs64oiz"


class TestHandleSyntax:
    def test_valid(self):
        assert is_valid_handle("alice.bsky.social")
        assert is_valid_handle("sub.domain.example.co.uk")

    def test_invalid(self):
        assert not is_valid_handle("no-dots")
        assert not is_valid_handle(".starts.with.dot")
        assert not is_valid_handle("has space.com")

    def test_probe_rejects_invalid(self, resolver):
        with pytest.raises(HandleError):
            resolver.probe("not a handle")


class TestDnsMechanism:
    def test_resolves_via_txt(self, zone, resolver):
        publish_dns_proof(zone, "alice.example.com", DID)
        probe = resolver.probe("alice.example.com")
        assert probe.did == DID
        assert probe.mechanism == MECHANISM_DNS

    def test_missing_record_returns_none(self, resolver):
        probe = resolver.probe("ghost.example.com")
        assert probe.did is None and probe.mechanism is None

    def test_malformed_txt_ignored(self, zone, resolver):
        from repro.netsim.dns import DnsRecordType

        zone.set("_atproto.alice.example.com", DnsRecordType.TXT, ["something-else"])
        assert resolver.probe("alice.example.com").did is None


class TestWellKnownMechanism:
    def test_resolves_via_well_known(self, web, resolver):
        publish_well_known_proof(web, "bob.example.com", DID)
        probe = resolver.probe("bob.example.com")
        assert probe.did == DID
        assert probe.mechanism == MECHANISM_WELL_KNOWN

    def test_dns_takes_priority(self, zone, web, resolver):
        publish_dns_proof(zone, "both.example.com", DID)
        publish_well_known_proof(web, "both.example.com", "did:plc:" + "x" * 24)
        assert resolver.probe("both.example.com").mechanism == MECHANISM_DNS

    def test_garbage_body_ignored(self, web, resolver):
        from repro.netsim.web import WELL_KNOWN_ATPROTO_DID

        web.serve("bad.example.com", WELL_KNOWN_ATPROTO_DID, "<html>not a did</html>")
        assert resolver.probe("bad.example.com").did is None


class TestBidirectionalVerification:
    def test_verified(self, zone, resolver):
        publish_dns_proof(zone, "alice.example.com", DID)
        doc = DidDocument(did=DID, handle="alice.example.com")
        assert resolver.verify_bidirectional("alice.example.com", lambda d: doc)

    def test_document_disagrees(self, zone, resolver):
        publish_dns_proof(zone, "alice.example.com", DID)
        doc = DidDocument(did=DID, handle="other.example.com")
        assert not resolver.verify_bidirectional("alice.example.com", lambda d: doc)

    def test_unresolvable_document(self, zone, resolver):
        publish_dns_proof(zone, "alice.example.com", DID)
        assert not resolver.verify_bidirectional("alice.example.com", lambda d: None)


class TestDidWebResolution:
    def test_resolve_did_web(self, web):
        did_resolver = DidResolver(PlcDirectory(), web)
        doc = DidDocument(did="did:web:example.com", handle="example.com")
        doc.set_service(
            ServiceEndpoint(PDS_SERVICE_ID, "AtprotoPersonalDataServer", "https://pds.x")
        )
        publish_did_web_document(web, doc)
        resolved = did_resolver.resolve("did:web:example.com")
        assert resolved is not None
        assert resolved.handle == "example.com"
        assert resolved.pds_endpoint == "https://pds.x"

    def test_did_web_must_self_identify(self, web):
        did_resolver = DidResolver(PlcDirectory(), web)
        doc = DidDocument(did="did:web:other.com")
        # Served at the wrong host for its id.
        web.serve_json("example.com", "/.well-known/did.json", doc.to_json())
        assert did_resolver.resolve("did:web:example.com") is None

    def test_missing_host_resolves_none(self, web):
        did_resolver = DidResolver(PlcDirectory(), web)
        assert did_resolver.resolve("did:web:nowhere.com") is None

    def test_plc_path(self, web):
        plc = PlcDirectory()
        rotation = HmacKeypair.from_seed(b"r")
        did = plc.create(rotation, "did:key:zfake", "u.bsky.social", "https://pds")
        did_resolver = DidResolver(plc, web)
        assert did_resolver.resolve(did).handle == "u.bsky.social"

    def test_invalid_did_resolves_none(self, web):
        did_resolver = DidResolver(PlcDirectory(), web)
        assert did_resolver.resolve("garbage") is None

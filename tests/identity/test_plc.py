"""Tests for the PLC directory."""

import pytest

from repro.atproto.keys import HmacKeypair
from repro.identity.plc import PlcDirectory, PlcError


@pytest.fixture()
def directory():
    return PlcDirectory()


@pytest.fixture()
def rotation_key():
    return HmacKeypair.from_seed(b"rotation")


@pytest.fixture()
def signing_key():
    return HmacKeypair.from_seed(b"signing").did_key()


def create_account(directory, rotation_key, signing_key, handle="alice.bsky.social"):
    return directory.create(
        rotation_keypair=rotation_key,
        signing_key=signing_key,
        handle=handle,
        pds_endpoint="https://pds.bsky.network",
    )


class TestCreate:
    def test_creates_valid_plc_did(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        assert did.startswith("did:plc:")
        assert len(did) == len("did:plc:") + 24
        assert did in directory

    def test_did_is_deterministic_in_genesis(self, rotation_key, signing_key):
        a = create_account(PlcDirectory(), rotation_key, signing_key)
        b = create_account(PlcDirectory(), rotation_key, signing_key)
        assert a == b

    def test_different_handles_different_dids(self, directory, rotation_key, signing_key):
        a = create_account(directory, rotation_key, signing_key, "alice.bsky.social")
        b = create_account(directory, rotation_key, signing_key, "bob.bsky.social")
        assert a != b

    def test_resolve_document(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        doc = directory.resolve(did)
        assert doc.handle == "alice.bsky.social"
        assert doc.pds_endpoint == "https://pds.bsky.network"
        assert doc.signing_key == signing_key

    def test_unknown_did_resolves_none(self, directory):
        assert directory.resolve("did:plc:" + "a" * 24) is None


class TestUpdate:
    def test_handle_change(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        directory.update(did, rotation_key, handle="alice.example.com")
        assert directory.resolve(did).handle == "alice.example.com"
        assert len(directory.audit_log(did)) == 2

    def test_pds_migration(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        directory.update(did, rotation_key, pds_endpoint="https://selfhosted.example.com")
        assert directory.resolve(did).pds_endpoint == "https://selfhosted.example.com"

    def test_labeler_endpoint_announcement(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        directory.update(did, rotation_key, labeler_endpoint="https://labeler.example.com")
        assert directory.resolve(did).labeler_endpoint == "https://labeler.example.com"

    def test_update_requires_rotation_key(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        attacker = HmacKeypair.from_seed(b"attacker")
        with pytest.raises(PlcError):
            directory.update(did, attacker, handle="evil.example.com")

    def test_update_unknown_did(self, directory, rotation_key):
        with pytest.raises(PlcError):
            directory.update("did:plc:" + "a" * 24, rotation_key, handle="x.com")

    def test_audit_log_links_prev_hashes(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        directory.update(did, rotation_key, handle="h1.example.com")
        directory.update(did, rotation_key, handle="h2.example.com")
        log = directory.audit_log(did)
        assert log[1].prev == log[0].op_hash()
        assert log[2].prev == log[1].op_hash()


class TestTombstone:
    def test_tombstone_hides_document(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        directory.tombstone(did, rotation_key)
        assert directory.is_tombstoned(did)
        assert directory.resolve(did) is None

    def test_tombstoned_cannot_update(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        directory.tombstone(did, rotation_key)
        with pytest.raises(PlcError):
            directory.update(did, rotation_key, handle="back.example.com")

    def test_tombstone_requires_rotation_key(self, directory, rotation_key, signing_key):
        did = create_account(directory, rotation_key, signing_key)
        with pytest.raises(PlcError):
            directory.tombstone(did, HmacKeypair.from_seed(b"other"))


class TestSnapshot:
    def test_export_snapshot(self, directory, rotation_key, signing_key):
        dids = [
            create_account(directory, rotation_key, signing_key, "user%d.bsky.social" % i)
            for i in range(5)
        ]
        directory.tombstone(dids[0], rotation_key)
        snapshot = directory.export_snapshot()
        assert len(snapshot) == 4
        assert dids[0] not in snapshot
        assert snapshot[dids[1]]["id"] == dids[1]

"""Crash-safe checkpoint/resume: the resume-determinism acceptance tests.

The criterion from the issue: a study killed by a :class:`CrashPlan` at
seeded points and restarted with ``resume=True`` must produce artefacts
byte-identical to an uninterrupted run with the same simulation seed —
through a chain of three crashes, and also with an adversarial plan
active across the crash boundary.
"""

import filecmp
import json
import os
import pickle

import pytest

from repro.atproto.cid import Cid, cid_for_raw
from repro.core.atomicio import atomic_write_bytes, atomic_write_csv, atomic_write_json
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    StudyCheckpointer,
    state_guard,
)
from repro.core.export import export_artefacts
from repro.core.pipeline import run_study
from repro.netsim.faults import CrashPlan, StudyCrashed
from repro.simulation.config import SimulationConfig

CRASH_POINTS = (900, 900, 900)  # per-process ticks: three crash/resume cycles


def run_crash_chain(checkpoint_dir: str, adversarial_plan=None):
    """Kill the study three times, resuming after each, then finish."""
    for index, point in enumerate(CRASH_POINTS):
        with pytest.raises(StudyCrashed):
            run_study(
                SimulationConfig.tiny(),
                adversarial_plan=adversarial_plan,
                checkpoint_dir=checkpoint_dir,
                resume=index > 0,
                crash_plan=CrashPlan(points=(point,)),
            )
    return run_study(
        SimulationConfig.tiny(),
        adversarial_plan=adversarial_plan,
        checkpoint_dir=checkpoint_dir,
        resume=True,
    )


def deterministic_events(path: str) -> list[str]:
    """The resume-comparable projection of an exported ``events.jsonl``.

    The artefact carries dual clocks and volatile process-local events by
    design; only the deterministic stream (volatile lines dropped, the
    forensic ``wall_us`` stripped) is promised identical across a resume.
    """
    out = []
    with open(path) as fh:
        for line in fh:
            event = json.loads(line)
            if event.get("volatile"):
                continue
            event.pop("wall_us", None)
            out.append(json.dumps(event, sort_keys=True))
    return out


def assert_exports_identical(datasets_a, datasets_b, tmp_path):
    dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")
    paths_a = export_artefacts(datasets_a, dir_a)
    paths_b = export_artefacts(datasets_b, dir_b)
    names = [os.path.basename(p) for p in paths_a]
    assert names == [os.path.basename(p) for p in paths_b]
    byte_identical = [n for n in names if n != "events.jsonl"]
    match, mismatch, errors = filecmp.cmpfiles(
        dir_a, dir_b, byte_identical, shallow=False
    )
    assert not errors
    assert mismatch == [], "artefacts differ after resume: %s" % mismatch
    assert len(match) == len(byte_identical)
    if "events.jsonl" in names:
        assert deterministic_events(
            os.path.join(dir_a, "events.jsonl")
        ) == deterministic_events(os.path.join(dir_b, "events.jsonl"))


class TestAtomicWrites:
    def test_bytes_then_no_temp_left(self, tmp_path):
        path = str(tmp_path / "artefact.bin")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as fh:
            assert fh.read() == b"payload"
        assert os.listdir(str(tmp_path)) == ["artefact.bin"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = str(tmp_path / "artefact.json")
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        with open(path) as fh:
            assert '"v": 2' in fh.read()
        assert os.listdir(str(tmp_path)) == ["artefact.json"]

    def test_failed_publish_leaves_no_temp(self, tmp_path):
        # A destination we cannot replace (it is a directory): the publish
        # step fails, and the temp file must be cleaned up.
        target = tmp_path / "artefact.bin"
        target.mkdir()
        with pytest.raises(OSError):
            atomic_write_bytes(str(target), b"x")
        assert os.listdir(str(tmp_path)) == ["artefact.bin"]
        assert os.path.isdir(str(target))

    def test_csv_render(self, tmp_path):
        path = str(tmp_path / "rows.csv")
        atomic_write_csv(path, ("a", "b"), [(1, 2), (3, 4)])
        with open(path) as fh:
            assert fh.read().splitlines() == ["a,b", "1,2", "3,4"]


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        assert not journal.exists()
        journal.save({"cursor": 42, "frontier": {"did:plc:x"}})
        assert journal.exists()
        state = journal.load()
        assert state["cursor"] == 42
        assert state["frontier"] == {"did:plc:x"}

    def test_save_is_atomic_on_disk(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.save({"n": 1})
        journal.save({"n": 2})
        # Only the journal file itself remains — no temp debris.
        assert os.listdir(str(tmp_path)) == ["study.ckpt"]
        assert journal.load()["n"] == 2

    def test_version_mismatch_rejected(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.save({"n": 1})
        path = os.path.join(str(tmp_path), "study.ckpt")
        with open(path, "rb") as fh:
            state = pickle.load(fh)
        state["__version__"] = 999
        with open(path, "wb") as fh:
            pickle.dump(state, fh)
        with pytest.raises(CheckpointError):
            journal.load()

    def test_clear(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        journal.save({"n": 1})
        journal.clear()
        assert not journal.exists()

    def test_load_without_checkpoint_returns_none(self, tmp_path):
        # Resuming with no journal on disk starts a fresh run.
        assert CheckpointJournal(str(tmp_path)).load() is None

    def test_cid_pickle_round_trip(self):
        cid = cid_for_raw(b"block")
        clone = pickle.loads(pickle.dumps(cid))
        assert clone == cid
        assert isinstance(clone, Cid)
        assert clone.digest == cid.digest


class TestCheckpointer:
    def test_crash_is_abrupt_no_save(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        ckpt = StudyCheckpointer(journal, CrashPlan(points=(3,)), save_every=1)
        ckpt.bind(lambda: {"progress": ckpt.ticks})
        ckpt.tick("a")
        ckpt.tick("b")
        with pytest.raises(StudyCrashed) as info:
            ckpt.tick("c")
        assert info.value.tick == 3
        assert info.value.label == "c"
        # Ticks a and b were journaled; the crashing tick was not.
        assert journal.load()["progress"] == 2

    def test_done_set_round_trips(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path))
        ckpt = StudyCheckpointer(journal)
        ckpt.bind(lambda: {})
        ckpt.mark_done("repo-snapshot@100")
        ckpt.save()
        fresh = StudyCheckpointer(journal)
        fresh.restore()
        assert fresh.is_done("repo-snapshot@100")
        assert not fresh.is_done("repo-snapshot@200")

    def test_state_guard(self):
        state_guard({"seed": 1}, "seed", 1)
        with pytest.raises(CheckpointError):
            state_guard({"seed": 1}, "seed", 2)

    def test_seeded_crash_plan_deterministic(self):
        assert CrashPlan.seeded(5).points == CrashPlan.seeded(5).points
        assert CrashPlan.seeded(5, n_points=3).points != ()
        lo, hi = 50, 2000
        for point in CrashPlan.seeded(12, n_points=5, lo=lo, hi=hi).points:
            assert lo <= point <= hi


@pytest.mark.slow
class TestResumeDeterminism:
    """The tentpole acceptance test: three kills, three resumes, zero drift."""

    @pytest.fixture(scope="class")
    def resumed(self, tmp_path_factory):
        checkpoint_dir = str(tmp_path_factory.mktemp("ckpt-clean"))
        return run_crash_chain(checkpoint_dir)

    def test_chain_reaches_completion(self, resumed):
        _, datasets = resumed
        assert sum(datasets.firehose.event_counts.values()) > 0
        assert datasets.repositories.repo_count > 0
        assert len(datasets.active.handle_probes) >= 0

    def test_artefacts_byte_identical_to_uninterrupted_run(
        self, resumed, study_datasets, tmp_path
    ):
        _, datasets = resumed
        assert_exports_identical(study_datasets, datasets, tmp_path)

    def test_core_datasets_match_uninterrupted_run(self, resumed, study_datasets):
        _, datasets = resumed
        assert dict(datasets.firehose.event_counts) == dict(
            study_datasets.firehose.event_counts
        )
        assert dict(datasets.firehose.op_counts) == dict(study_datasets.firehose.op_counts)
        assert (
            datasets.repositories.records_per_repo
            == study_datasets.repositories.records_per_repo
        )
        assert set(datasets.did_documents.documents) == set(
            study_datasets.did_documents.documents
        )
        assert datasets.labels.announced_count() == study_datasets.labels.announced_count()
        assert [r.handle for r in datasets.active.handle_probes] == [
            r.handle for r in study_datasets.active.handle_probes
        ]


@pytest.mark.slow
class TestResumeUnderAdversary:
    """Crash/resume composes with Byzantine hosts: the quarantine ledger
    and every artefact stay byte-identical across the crash boundary."""

    def test_adversarial_chain_matches_uninterrupted(self, tmp_path_factory, tmp_path):
        from tests.core.test_integrity import adversarial_plan

        checkpoint_dir = str(tmp_path_factory.mktemp("ckpt-adv"))
        _, resumed = run_crash_chain(checkpoint_dir, adversarial_plan=adversarial_plan())
        _, baseline = run_study(
            SimulationConfig.tiny(), adversarial_plan=adversarial_plan()
        )
        assert resumed.integrity.to_jsonable() == baseline.integrity.to_jsonable()
        assert dict(resumed.adversary.tampered) == dict(baseline.adversary.tampered)
        assert_exports_identical(baseline, resumed, tmp_path)

"""End-to-end telemetry: determinism, resume-exactness, CLI artefacts.

The acceptance criteria from the issue:

* two same-seed runs — including a faulted + adversarial run — write
  byte-identical ``metrics.json`` snapshots;
* a crash/resume chain's final metrics equal the uninterrupted run's for
  every virtual-time series;
* ``--trace-out`` produces a trace_event document that provably loads in
  chrome://tracing, and ``--metrics-out`` a valid snapshot;
* the ``telemetry`` report section renders, and ``--no-telemetry``
  degrades every surface to a cheap no-op.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.core import report
from repro.core.export import export_artefacts
from repro.core.pipeline import run_study
from repro.netsim.faults import FaultPlan
from repro.obs.telemetry import Telemetry
from repro.obs.trace import validate_trace
from repro.simulation.config import (
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    SimulationConfig,
)
from tests.core.test_checkpoint_resume import run_crash_chain
from tests.core.test_integrity import adversarial_plan

FAULT_SEED = 11


def faulted_study():
    plan = FaultPlan.recoverable(
        FAULT_SEED, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
    )
    return run_study(
        SimulationConfig.tiny(), fault_plan=plan, adversarial_plan=adversarial_plan()
    )


class TestDeterminism:
    def test_same_seed_runs_byte_identical_metrics(self, study_datasets):
        _, datasets = run_study(SimulationConfig.tiny())
        assert datasets.telemetry.metrics_json() == study_datasets.telemetry.metrics_json()

    @pytest.mark.slow
    def test_faulted_adversarial_runs_byte_identical_metrics(self):
        _, first = faulted_study()
        _, second = faulted_study()
        snapshot = first.telemetry.metrics_json()
        assert snapshot == second.telemetry.metrics_json()
        # The faults actually registered in the snapshot.
        counters = json.loads(snapshot)["counters"]
        assert any(k.startswith("faults_injected") for k in json.loads(snapshot)["gauges"])
        assert any("outcome=injected-" in key for key in counters)

    def test_snapshot_reflects_study_series(self, study_datasets):
        snapshot = json.loads(study_datasets.telemetry.metrics_json())
        counters = snapshot["counters"]
        assert counters["sim_days_total"] > 0
        assert counters["sim_commits_total"] > 0
        assert any(key.startswith("firehose_events_total") for key in counters)
        assert any(key.startswith("xrpc_calls_total") for key in counters)
        assert any(key.startswith("phase_runs_total") for key in counters)
        # Wall-clock families never leak into the deterministic snapshot.
        assert not any(key.startswith("phase_wall_us_total") for key in counters)


@pytest.mark.slow
class TestResumeExactness:
    def test_resumed_metrics_equal_uninterrupted(
        self, study_datasets, tmp_path_factory
    ):
        checkpoint_dir = str(tmp_path_factory.mktemp("ckpt-telemetry"))
        _, resumed = run_crash_chain(checkpoint_dir)
        assert (
            resumed.telemetry.metrics_json()
            == study_datasets.telemetry.metrics_json()
        )


class TestPhaseProfile:
    def test_phase_rows_cover_the_pipeline(self, study_datasets):
        rows = {name: (runs, virtual, wall)
                for name, runs, virtual, wall in study_datasets.telemetry.phase_rows()}
        assert "simulation" in rows
        assert "post:active-probes" in rows
        assert rows["simulation"][0] == 1  # reset_phase: replay counted once
        for _name, (runs, _virtual, wall) in rows.items():
            assert runs >= 1
            assert wall >= 0

    def test_report_section_renders(self, study_datasets):
        section = report.render_telemetry(study_datasets)
        assert "phase" in section
        assert "simulation" in section
        assert "top hosts" in section
        assert "call outcomes" in section

    def test_health_section_names_failure_causes(self, study_datasets):
        section = report.render_collection_health(study_datasets)
        assert "failed calls by cause" in section


class TestExportArtefacts:
    def test_export_writes_metrics_snapshot(self, study_datasets, tmp_path):
        paths = export_artefacts(study_datasets, str(tmp_path))
        names = [os.path.basename(p) for p in paths]
        assert "metrics.json" in names
        assert "trace.json" not in names  # tracing was off for this study
        with open(tmp_path / "metrics.json") as fh:
            assert json.load(fh)["schema"] == "repro-metrics-v1"


class TestCli:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        metrics_path = str(tmp_path / "metrics.json")
        trace_path = str(tmp_path / "trace.json")
        exit_code = main(
            ["telemetry", "--scale", "60000", "--feed-scale", "1200", "--quiet",
             "--metrics-out", metrics_path, "--trace-out", trace_path]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Telemetry" in out and "phase" in out
        with open(metrics_path) as fh:
            assert json.load(fh)["schema"] == "repro-metrics-v1"
        with open(trace_path) as fh:
            document = json.load(fh)
        assert validate_trace(document) == []
        assert len(document["traceEvents"]) > 2

    def test_no_telemetry_conflicts_with_outputs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--no-telemetry", "--metrics-out", str(tmp_path / "m.json")])


class TestDisabledTelemetry:
    @pytest.fixture(scope="class")
    def disabled_run(self):
        return run_study(
            SimulationConfig.tiny(), telemetry=Telemetry.disabled()
        )

    def test_pipeline_runs_and_datasets_match(self, disabled_run, study_datasets):
        _, datasets = disabled_run
        assert not datasets.telemetry.enabled
        # Telemetry off never changes the study itself.
        assert dict(datasets.firehose.event_counts) == dict(
            study_datasets.firehose.event_counts
        )

    def test_report_and_export_degrade_cleanly(self, disabled_run, tmp_path):
        _, datasets = disabled_run
        section = report.render_telemetry(datasets)
        assert "disabled" in section
        paths = export_artefacts(datasets, str(tmp_path))
        assert "metrics.json" not in [os.path.basename(p) for p in paths]

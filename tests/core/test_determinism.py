"""Regression guard for the commit-pipeline fast path.

The samplers, memoized MST layers, cached commit blocks, and lazy wire
frames are all supposed to be *invisible* to the simulation: two runs
with the same seed must produce the same firehose (Table 1 inputs) and
the same signed repository heads on the relay.  A perturbation anywhere
in the RNG stream or in commit encoding shows up here first.
"""

import pytest

from repro.core.pipeline import run_study
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def twin_runs():
    first = run_study(SimulationConfig.tiny(seed=2024))
    second = run_study(SimulationConfig.tiny(seed=2024))
    return first, second


class TestSeededReproducibility:
    def test_table1_event_counts_identical(self, twin_runs):
        (_, a), (_, b) = twin_runs
        assert dict(a.firehose.event_counts) == dict(b.firehose.event_counts)
        assert dict(a.firehose.op_counts) == dict(b.firehose.op_counts)

    def test_firehose_bytes_identical(self, twin_runs):
        (_, a), (_, b) = twin_runs
        assert a.firehose.bytes_received == b.firehose.bytes_received

    def test_relay_heads_identical(self, twin_runs):
        (world_a, _), (world_b, _) = twin_runs

        def heads(world):
            result = {}
            for did in world.relay.known_dids():
                repo = world.relay.cached_repo(did)
                if repo is not None and repo.head is not None:
                    result[did] = str(repo.head)
            return result

        heads_a = heads(world_a)
        assert heads_a  # the relay must actually have crawled repos
        assert heads_a == heads(world_b)

    def test_repo_revs_identical(self, twin_runs):
        (world_a, _), (world_b, _) = twin_runs
        revs_a = {
            did: world_a.relay.cached_repo(did).rev
            for did in world_a.relay.known_dids()
            if world_a.relay.cached_repo(did) is not None
        }
        revs_b = {
            did: world_b.relay.cached_repo(did).rev
            for did in world_b.relay.known_dids()
            if world_b.relay.cached_repo(did) is not None
        }
        assert revs_a == revs_b

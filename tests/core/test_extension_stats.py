"""Tests for the extension statistics (Gini, handle ping-pong)."""

import pytest

from repro.core.analysis import activity, identity


class TestActivityConcentration:
    def test_bounds(self, study_datasets):
        stats = activity.activity_concentration(study_datasets)
        assert 0.0 <= stats.gini <= 1.0
        assert 0.0 < stats.top_percentile_share <= 1.0
        assert stats.accounts > 0

    def test_heavy_tailed_activity(self, study_datasets):
        """Engagement is lognormal, so activity concentrates."""
        stats = activity.activity_concentration(study_datasets)
        assert stats.gini > 0.2

    def test_top_share_exceeds_uniform(self, study_datasets):
        stats = activity.activity_concentration(study_datasets)
        uniform_share = max(1, stats.accounts // 100) / stats.accounts
        assert stats.top_percentile_share > uniform_share

    def test_empty_dataset(self):
        from repro.core.collect.repos import RepositoriesDataset
        from repro.core.pipeline import StudyDatasets

        empty = StudyDatasets(
            identifiers=None, did_documents=None,
            repositories=RepositoriesDataset(), firehose=None,
            feed_generators=None, labels=None, active=None,
        )
        stats = activity.activity_concentration(empty)
        assert stats.gini == 0.0 and stats.accounts == 0


class TestHandlePingPong:
    def test_counts_revisits(self):
        from repro.core.collect.firehose import FirehoseDataset
        from repro.core.pipeline import StudyDatasets

        firehose = FirehoseDataset()
        did = "did:plc:" + "p" * 24
        firehose.handle_updates = [
            (1, did, "a.example.com"),
            (2, did, "b.example.com"),
            (3, did, "a.example.com"),  # switched back
            (4, "did:plc:" + "q" * 24, "c.example.com"),
        ]
        datasets = StudyDatasets(
            identifiers=None, did_documents=None, repositories=None,
            firehose=firehose, feed_generators=None, labels=None, active=None,
        )
        stats = identity.handle_update_stats(datasets)
        assert stats.total_updates == 4
        assert stats.unique_dids == 2
        assert stats.unique_handles == 3
        assert stats.ping_pong_users == 1

    def test_study_consistency(self, study_datasets):
        stats = identity.handle_update_stats(study_datasets)
        assert stats.ping_pong_users <= stats.unique_dids
        assert stats.unique_handles <= stats.total_updates or stats.total_updates == 0

"""Tests for the analysis modules (paper tables and figures)."""

import pytest

from repro.core.analysis import activity, feeds, graph, identity, moderation, summary
from repro.core.analysis.langid import detect_language
from repro.simulation.config import PAPER


class TestTable1:
    def test_rows_complete(self, study_datasets):
        rows = summary.table1_firehose_event_types(study_datasets)
        assert len(rows) == 4
        assert rows[0].event_type == "Repo Commit"

    def test_shares_sum_to_100(self, study_datasets):
        rows = summary.table1_firehose_event_types(study_datasets)
        assert sum(r.share_pct for r in rows) == pytest.approx(100.0, abs=0.1)

    def test_commit_share_dominates(self, study_datasets):
        rows = summary.table1_firehose_event_types(study_datasets)
        assert rows[0].share_pct > 90

    def test_dataset_overview(self, study_datasets):
        overview = summary.dataset_overview(study_datasets)
        assert overview.labelers_announced == 62
        assert overview.identifiers >= overview.repositories


class TestFigure1:
    def test_series_aligned(self, study_datasets):
        fig = activity.daily_activity(study_datasets)
        assert fig.days == sorted(fig.days)
        assert set(fig.ops_by_type) == {"posts", "likes", "reposts", "follows", "blocks"}

    def test_growth_shape(self, study_datasets):
        """Active users in April 2024 far exceed early 2023."""
        fig = activity.daily_activity(study_datasets)
        early = [fig.active_users[d] for d in fig.days if d < "2023-07"]
        late = [fig.active_users[d] for d in fig.days if d.startswith("2024-04")]
        if early and late:
            assert max(late) > max(early)

    def test_likes_exceed_posts_daily(self, study_datasets):
        dailies = activity.steady_state_dailies(study_datasets)
        assert dailies["likes"] > dailies["posts"]
        assert dailies["posts"] > dailies["reposts"]

    def test_active_users_positive_in_window(self, study_datasets):
        dailies = activity.steady_state_dailies(study_datasets)
        assert dailies["active_users"] > 0


class TestFigure2:
    def test_language_assignment(self, study_datasets):
        fig = activity.language_communities(study_datasets)
        assert set(fig.users_per_language) <= {"en", "ja", "pt", "de", "ko", "fr"}

    def test_english_and_japanese_lead(self, study_datasets):
        fig = activity.language_communities(study_datasets)
        ranked = [lang for lang, _ in fig.users_per_language.most_common(2)]
        assert "en" in ranked and "ja" in ranked

    def test_daily_series_counts_users(self, study_datasets):
        fig = activity.language_communities(study_datasets)
        for lang, series in fig.daily_active_by_lang.items():
            total_users = fig.users_per_language[lang]
            assert all(count <= total_users for count in series.values())


class TestSection4Text:
    def test_operation_totals_ordering(self, study_datasets):
        totals = activity.operation_totals(study_datasets)
        assert totals["likes"] > totals["posts"] > totals["reposts"] > totals["blocks"]

    def test_most_followed_is_official(self, study_datasets, study_world):
        pop = activity.account_popularity(study_datasets)
        official = next(u for u in study_world.users if u.spec.is_official)
        assert pop.top_followed[0][0] == official.did

    def test_impersonators_most_blocked(self, study_datasets, study_world):
        pop = activity.account_popularity(study_datasets)
        impersonators = {u.did for u in study_world.users if u.spec.is_impersonator}
        top_blocked = {did for did, _ in pop.top_blocked[:3]}
        assert impersonators & top_blocked

    def test_non_bsky_content_is_rare(self, study_datasets):
        content = activity.non_bsky_content(study_datasets)
        assert content.share_of_events < 0.05
        if content.firehose_ops:
            assert "com.whtwnd.blog.entry" in content.firehose_ops


class TestSection5Identity:
    def test_handle_concentration(self, study_datasets):
        conc = identity.handle_concentration(study_datasets)
        assert conc.bsky_share > 0.95
        assert conc.total_handles == conc.bsky_social + conc.non_bsky

    def test_subdomain_distribution_excludes_bsky(self, study_datasets):
        fig = identity.subdomain_distribution(study_datasets)
        assert "bsky.social" not in fig.handles_per_domain

    def test_identity_methods(self, study_datasets):
        methods = identity.identity_methods(study_datasets)
        assert methods.plc > methods.web
        assert methods.web <= 6

    def test_ownership_mechanisms(self, study_datasets):
        mechanisms = identity.ownership_mechanisms(study_datasets)
        assert mechanisms.dns_txt >= mechanisms.well_known

    def test_tranco_share_small(self, study_datasets):
        cross = identity.tranco_cross_reference(study_datasets)
        # At least one organisation domain is ranked (the pinned floor);
        # with enough domains, ranked ones stay a small minority.
        assert cross.ranked >= 1
        if cross.registered_domains >= 10:
            assert cross.ranked_share <= 0.5

    def test_handle_updates_consistent(self, study_datasets):
        stats = identity.handle_update_stats(study_datasets)
        assert stats.unique_dids <= stats.total_updates
        assert stats.final_bsky + stats.final_custom == stats.unique_dids

    def test_table2_shares(self, study_datasets):
        rows = identity.table2_registrars(study_datasets)
        if rows:
            assert sum(r.share_pct for r in rows) <= 100.0 + 1e-6
            assert rows == sorted(rows, key=lambda r: -r.total)


class TestSection6Moderation:
    def test_official_labeler_found(self, study_datasets, study_world):
        did = moderation.find_official_labeler_did(study_datasets)
        assert did == study_world.official_labeler().did

    def test_label_growth_community_overtakes(self, study_datasets):
        official = moderation.find_official_labeler_did(study_datasets)
        growth = moderation.label_growth(study_datasets, official)
        # After the March 2024 opening, community labels dominate (88.7%
        # in the paper's April).
        assert growth.community_share("2024-04") > 0.5

    def test_labeler_count_monotonic(self, study_datasets):
        official = moderation.find_official_labeler_did(study_datasets)
        growth = moderation.label_growth(study_datasets, official)
        counts = [growth.labeler_count_by_month[m] for m in growth.months]
        assert counts == sorted(counts)

    def test_table3_excludes_official(self, study_datasets):
        official = moderation.find_official_labeler_did(study_datasets)
        rows = moderation.table3_top_community_labelers(study_datasets, official)
        assert all(r.did != official for r in rows)
        assert [r.applied for r in rows] == sorted([r.applied for r in rows], reverse=True)

    def test_table4_posts_dominate(self, study_datasets):
        rows = moderation.table4_label_targets(study_datasets)
        assert rows[0].object_type == "post"
        assert rows[0].share_pct > 90

    def test_reaction_times_automated_vs_manual(self, study_datasets):
        rows = moderation.labeler_reaction_times(study_datasets)
        assert rows
        # Figure 5's relationship: the busiest labelers react fastest.
        busiest = rows[0]
        assert busiest.reaction.median_s < 60
        slow = [r for r in rows if r.reaction.median_s > 3600]
        if slow:
            assert all(r.total < busiest.total for r in slow)

    def test_table6_share_sums(self, study_datasets):
        rows = moderation.labeler_reaction_times(study_datasets)
        assert sum(r.share_pct for r in rows) <= 100.0 + 1e-6

    def test_value_reaction_rows(self, study_datasets):
        rows = moderation.value_reaction_times(study_datasets)
        assert rows == sorted(rows, key=lambda r: -r.count)

    def test_label_statistics(self, study_datasets):
        official = moderation.find_official_labeler_did(study_datasets)
        stats = moderation.label_statistics(study_datasets, official)
        assert stats.distinct_values_clean <= stats.distinct_values_raw
        assert stats.rescinded < stats.total_interactions
        assert stats.multi_labeler_share < 0.2

    def test_hosting_classes(self, study_datasets):
        hosting = moderation.labeler_hosting(study_datasets)
        assert hosting.total == 62
        assert hosting.cloud_or_proxied == 40
        assert hosting.residential == 6
        assert hosting.unreachable == 16


class TestSection7Feeds:
    def test_feed_growth_cumulative(self, study_datasets):
        growth = feeds.feed_growth(study_datasets)
        values = [growth.cumulative_feeds[d] for d in growth.days]
        assert values == sorted(values)

    def test_description_words_include_themes(self, study_datasets):
        words = dict(feeds.description_word_frequencies(study_datasets, top_n=40))
        assert "feed" in words or "art" in words

    def test_description_languages(self, study_datasets):
        langs = feeds.description_languages(study_datasets)
        assert langs
        assert langs.most_common(1)[0][0] in ("en", "ja")

    def test_posts_vs_likes_points(self, study_datasets):
        points = feeds.posts_vs_likes(study_datasets)
        assert len(points) == len(study_datasets.feed_generators.reachable())

    def test_scatter_summary(self, study_datasets):
        stats = feeds.posts_vs_likes_summary(study_datasets)
        assert stats.never_posted <= stats.total_feeds
        assert -1.0 <= stats.correlation <= 1.0

    def test_provider_shares_sum(self, study_datasets):
        rows = feeds.provider_shares(study_datasets)
        assert sum(r.feed_share for r in rows) == pytest.approx(1.0, abs=1e-6)
        assert rows == sorted(rows, key=lambda r: -r.feeds)

    def test_skyfeed_dominates_feed_share(self, study_datasets):
        rows = feeds.provider_shares(study_datasets)
        assert rows[0].provider == "did:web:skyfeed.me"
        assert rows[0].feed_share > 0.5

    def test_top3_concentration(self, study_datasets):
        top3 = feeds.top_provider_concentration(study_datasets)
        assert top3 > 0.7

    def test_feed_activity_stats(self, study_datasets, study_world):
        stats = feeds.feed_activity_stats(study_datasets, study_world.config.end_us)
        assert stats.never_posted <= stats.reachable
        assert stats.inactive_last_month <= stats.reachable

    def test_feeds_per_account(self, study_datasets):
        stats = feeds.feeds_per_account(study_datasets)
        # Single-feed managers are the most common kind (62.1% in the
        # paper; looser here because tiny worlds have ~10 managers).
        assert stats.one_feed_share >= 0.3
        assert stats.max_feeds >= 1
        assert stats.one_feed_share + stats.two_to_ten_share <= 1.0 + 1e-9

    def test_popularity_correlations(self, study_datasets):
        corr = feeds.popularity_correlations(study_datasets)
        if corr.creators < 20:
            pytest.skip("too few feed creators at test scale for stable r")
        # Paper: likes on feeds correlate with followers (r=0.533), the
        # *number* of feeds does not (r=0.005).
        assert corr.feed_likes_vs_followers > corr.feed_count_vs_followers - 0.05

    def test_popularity_correlation_bounds(self, study_datasets):
        corr = feeds.popularity_correlations(study_datasets)
        assert -1.0 <= corr.feed_count_vs_followers <= 1.0
        assert -1.0 <= corr.feed_likes_vs_followers <= 1.0

    def test_table5_matrix(self):
        matrix = feeds.table5_feature_matrix()
        assert matrix["filter:regex-text"]["Skyfeed"]
        assert not matrix["filter:regex-text"]["Bluefeed"]

    def test_feed_label_analysis(self, study_datasets):
        stats = feeds.feed_label_analysis(study_datasets)
        assert stats.heavily_labeled <= stats.feeds_with_any_label <= stats.feeds_examined


class TestFigure11:
    def test_degree_distributions(self, study_datasets):
        analysis = graph.degree_distributions(study_datasets)
        assert analysis.accounts > 0
        assert sum(analysis.in_degree.histogram.values()) == analysis.accounts

    def test_creators_skew_popular(self, study_datasets):
        analysis = graph.degree_distributions(study_datasets)
        if analysis.creators >= 5:
            assert analysis.creators_skew_popular()

    def test_creator_histogram_subset(self, study_datasets):
        analysis = graph.degree_distributions(study_datasets)
        for degree, count in analysis.in_degree.creator_histogram.items():
            assert count <= analysis.in_degree.histogram[degree]


class TestLangId:
    def test_detects_generated_languages(self):
        from repro.simulation.vocab import make_post_text
        import random

        rng = random.Random(4)
        for lang in ("en", "ja", "de", "pt", "fr", "ko"):
            text = make_post_text(rng, lang)
            assert detect_language(text) == lang

    def test_empty_text(self):
        assert detect_language("") is None

    def test_unknown_words_default_english(self):
        assert detect_language("zzz qqq xxx") == "en"


class TestPearson:
    def test_perfect_correlation(self):
        assert feeds.pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anti_correlation(self):
        assert feeds.pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_degenerate(self):
        assert feeds.pearson([1, 1, 1], [1, 2, 3]) == 0.0
        assert feeds.pearson([], []) == 0.0
        assert feeds.pearson([1], [1]) == 0.0

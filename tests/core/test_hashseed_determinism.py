"""Cross-interpreter determinism: artefacts must not depend on PYTHONHASHSEED.

String hashes are randomized per interpreter, so any hash-order-dependent
iteration (set visits, dict views built from unions, ...) shows up as a
fingerprint difference between interpreters launched with different
``PYTHONHASHSEED`` values.  This is the invariant the
``repro.devtools.lint`` rules (``unsorted-set-iter``, ``id-hash-order``)
exist to protect statically; this test protects it end to end.
"""

import os
import subprocess
import sys

import pytest

_CHILD = """\
import json
from repro.atproto.cid import cid_for_cbor
from repro.atproto.mst import Mst, mst_diff
from repro.core.export import firehose_frame_observer, study_fingerprint
from repro.core.pipeline import MeasurementPipeline
from repro.simulation.config import SimulationConfig
from repro.simulation.world import World

# The tiny study's single fingerprint over every externally visible
# artefact (Table 1, metrics registry, firehose counters + wire frames).
world = World(SimulationConfig.tiny())
digest = firehose_frame_observer(world)
datasets = MeasurementPipeline(world).run()

# The historical offender: mst_diff's returned dict order (satellite
# regression, cross-interpreter flavor).
old, new = Mst(), Mst()
for i in range(50):
    old.set("coll/k%03d" % i, cid_for_cbor({"i": i}))
    if i % 3:
        new.set("coll/k%03d" % i, cid_for_cbor({"i": i, "v": 2}))
diff_keys = list(mst_diff(old, new))

print(json.dumps({
    "fingerprint": study_fingerprint(datasets, digest),
    "diff_keys": diff_keys,
    "hash_probe": hash("did:plc:hash-probe"),
}))
"""


def _run_child(hashseed: str):
    env = dict(os.environ)  # repro: allow(env-read) -- test harness must thread PYTHONPATH/PYTHONHASHSEED into the child
    env["PYTHONHASHSEED"] = hashseed
    src_dir = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    import json

    return json.loads(proc.stdout)


@pytest.mark.slow
def test_study_fingerprint_identical_across_hash_seeds():
    run_a = _run_child("0")
    run_b = _run_child("1")
    # Sanity: the two interpreters really do hash strings differently —
    # otherwise identical artefacts would prove nothing.
    assert run_a["hash_probe"] != run_b["hash_probe"]
    assert run_a["fingerprint"] == run_b["fingerprint"]
    assert run_a["diff_keys"] == run_b["diff_keys"]
    assert run_a["diff_keys"] == sorted(run_a["diff_keys"])

"""Resilient collection under a seeded fault plan.

The acceptance criterion for fault injection: a *recoverable* plan (every
outage shorter than the retry horizon, every disconnect shorter than the
relay's retention window) must not change what the study measures.  The
faulted run completes, reports how many faults it absorbed, and its
Table 1 statistics are identical to the fault-free run with the same
simulation seed.
"""

import pytest

from repro.atproto.cid import cid_for_raw
from repro.atproto.events import CommitEvent, CommitOp
from repro.core.collect.firehose import FirehoseCollector
from repro.core.pipeline import run_study
from repro.core.report import render_collection_health
from repro.netsim.faults import FaultPlan
from repro.simulation.config import (
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    SimulationConfig,
)

FAULT_SEED = 7


def recoverable_plan():
    return FaultPlan.recoverable(
        FAULT_SEED, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
    )


@pytest.fixture(scope="module")
def faulted_datasets():
    """One tiny study run under the seeded recoverable fault plan."""
    _, datasets = run_study(SimulationConfig.tiny(), fault_plan=recoverable_plan())
    return datasets


class TestLabelerTracking:
    """Satellite: deletes of app.bsky.labeler.service must retire the DID."""

    LABELER = "app.bsky.labeler.service/self"
    DID = "did:plc:" + "l" * 24

    def commit(self, seq, action, record=None):
        cid = None if action == "delete" else cid_for_raw(b"labeler")
        return CommitEvent(
            seq=seq,
            did=self.DID,
            time_us=seq,
            rev="rev%d" % seq,
            ops=(CommitOp(action=action, path=self.LABELER, cid=cid, record=record),),
        )

    def test_create_then_delete_retires_did(self):
        collector = FirehoseCollector()
        collector.consume(self.commit(1, "create", {"$type": "app.bsky.labeler.service"}))
        assert self.DID in collector.dataset.labeler_service_dids
        collector.consume(self.commit(2, "delete"))
        assert self.DID not in collector.dataset.labeler_service_dids

    def test_update_keeps_did(self):
        collector = FirehoseCollector()
        collector.consume(self.commit(1, "create", {"$type": "app.bsky.labeler.service"}))
        collector.consume(self.commit(2, "update", {"$type": "app.bsky.labeler.service"}))
        assert self.DID in collector.dataset.labeler_service_dids


class TestFaultedStudy:
    def test_run_completes_and_reports_faults(self, faulted_datasets):
        faults = faulted_datasets.faults
        assert faults is not None
        assert faults.calls_seen > 0
        assert faults.total_injected() > 0

    def test_firehose_survived_disconnects(self, faulted_datasets):
        firehose = faulted_datasets.firehose
        assert firehose.disconnects > 0
        assert firehose.reconnects == firehose.disconnects
        assert firehose.replayed_events > 0
        # Recoverable plan: every disconnect fits inside retention.
        assert firehose.gaps == []
        assert firehose.dropped_events == 0

    def test_table1_matches_fault_free_run(self, faulted_datasets, study_datasets):
        """The headline criterion: same seed, same Table 1, faults or not."""
        faulted, clean = faulted_datasets.firehose, study_datasets.firehose
        assert dict(faulted.event_counts) == dict(clean.event_counts)
        assert dict(faulted.op_counts) == dict(clean.op_counts)
        assert faulted.bytes_received == clean.bytes_received
        assert faulted.end_us == clean.end_us

    def test_downstream_datasets_match_fault_free_run(
        self, faulted_datasets, study_datasets
    ):
        """Retries hide the faults from every collector, not just Table 1."""
        assert (
            faulted_datasets.repositories.repo_count
            == study_datasets.repositories.repo_count
        )
        assert faulted_datasets.repositories.failed_dids == set()
        assert len(faulted_datasets.repositories.posts) == len(
            study_datasets.repositories.posts
        )
        assert len(faulted_datasets.did_documents.documents) == len(
            study_datasets.did_documents.documents
        )
        assert faulted_datasets.labels.announced_count() == (
            study_datasets.labels.announced_count()
        )

    def test_same_plan_same_seed_is_deterministic(self, faulted_datasets):
        _, again = run_study(SimulationConfig.tiny(), fault_plan=recoverable_plan())
        assert dict(again.firehose.event_counts) == dict(
            faulted_datasets.firehose.event_counts
        )
        assert again.faults.total_injected() == faulted_datasets.faults.total_injected()
        assert dict(again.faults.injected_by_kind) == dict(
            faulted_datasets.faults.injected_by_kind
        )
        assert again.firehose.disconnects == faulted_datasets.firehose.disconnects
        assert (
            again.repositories.transient_retries
            == faulted_datasets.repositories.transient_retries
        )


class TestHealthReport:
    def test_renders_for_faulted_run(self, faulted_datasets):
        text = render_collection_health(faulted_datasets)
        assert "Collection health" in text
        assert "injected faults" in text.lower() or "Injected faults" in text

    def test_renders_for_fault_free_run(self, study_datasets):
        text = render_collection_health(study_datasets)
        assert "Collection health" in text

"""Tests for the measurement pipeline's schedule and wiring."""

import pytest

from repro.core.pipeline import MeasurementPipeline, run_study
from repro.simulation.config import (
    FIREHOSE_COLLECT_START_US,
    LABEL_SNAPSHOT_US,
    REPO_SNAPSHOT_US,
    SimulationConfig,
)
from repro.simulation.world import World


class TestSchedule:
    def test_actions_registered_before_run(self):
        world = World(SimulationConfig.tiny())
        MeasurementPipeline(world)
        times = [t for t, _ in world.scheduled_actions]
        assert any(t == REPO_SNAPSHOT_US for t in times)
        # Daily labeler reconnects: dozens of scheduled actions.
        assert len(times) > 50

    def test_snapshot_happens_mid_run(self, study_datasets):
        # The repo snapshot must reflect April 24, not the end of the
        # simulation: no record may postdate the snapshot time.
        repos = study_datasets.repositories
        for row in repos.posts:
            if row.created_us is not None and row.created_us > 0:
                assert row.created_us <= repos.time_us

    def test_identifier_crawls_precede_snapshot(self, study_datasets):
        crawl_times = [s.time_us for s in study_datasets.identifiers.snapshots]
        assert min(crawl_times) >= FIREHOSE_COLLECT_START_US
        assert crawl_times == sorted(crawl_times)

    def test_labels_cut_at_snapshot_date(self, study_datasets):
        assert all(l.cts <= LABEL_SNAPSHOT_US for l in study_datasets.labels.labels)

    def test_datasets_accessor_matches_run_result(self):
        world = World(SimulationConfig.tiny(seed=123))
        pipeline = MeasurementPipeline(world)
        result = pipeline.run()
        again = pipeline.datasets()
        assert result.repositories is again.repositories
        assert result.labels is again.labels

    def test_run_study_convenience(self):
        world, datasets = run_study(SimulationConfig.tiny(seed=5))
        assert world._ran
        assert datasets.firehose.total_events() > 0

    def test_study_is_deterministic(self):
        _, a = run_study(SimulationConfig.tiny(seed=77))
        _, b = run_study(SimulationConfig.tiny(seed=77))
        assert a.firehose.total_events() == b.firehose.total_events()
        assert len(a.labels.labels) == len(b.labels.labels)
        assert a.repositories.operation_totals() == b.repositories.operation_totals()

    def test_different_seeds_differ(self):
        _, a = run_study(SimulationConfig.tiny(seed=1))
        _, b = run_study(SimulationConfig.tiny(seed=2))
        assert a.firehose.total_events() != b.firehose.total_events()


class TestCrossDatasetConsistency:
    def test_firehose_posts_subset_of_network(self, study_world, study_datasets):
        """Every post the firehose saw was indexed by the appview (unless
        later deleted)."""
        appview_posts = set(study_world.appview.index.posts)
        firehose_posts = set(study_datasets.firehose.post_created_us)
        deleted = sum(
            count
            for (collection, action), count in study_datasets.firehose.op_counts.items()
            if collection == "app.bsky.feed.post" and action == "delete"
        )
        missing = firehose_posts - appview_posts
        assert len(missing) <= deleted + 5

    def test_feedgen_records_agree_between_sources(self, study_datasets):
        from_repos = {row.uri for row in study_datasets.repositories.feed_generators}
        discovered = study_datasets.feed_generators.discovered
        assert from_repos <= discovered

    def test_labeler_dids_resolvable(self, study_world, study_datasets):
        for did, _ in study_datasets.repositories.labeler_services[:10]:
            assert study_world.plc.resolve(did) is not None

    def test_observed_feed_posts_exist_in_repo_dataset_or_later(self, study_datasets):
        """Feed-crawled posts correlate with the repositories dataset (the
        paper's Feed Post Dataset method), modulo posts created after the
        repo snapshot."""
        repo_posts = {
            "at://%s/app.bsky.feed.post/%s" % (p.did, p.rkey)
            for p in study_datasets.repositories.posts
        }
        observed = [
            uri
            for posts in study_datasets.feed_generators.feed_posts.values()
            for uri in posts
        ]
        if observed:
            matched = sum(1 for uri in observed if uri in repo_posts)
            assert matched / len(observed) > 0.3

"""Tests for the dataset collectors against the shared tiny study."""

import pytest

from repro.atproto.events import KIND_COMMIT
from repro.simulation.config import (
    FIREHOSE_COLLECT_START_US,
    LABEL_SNAPSHOT_US,
    REPO_SNAPSHOT_US,
)


class TestIdentifierDataset:
    def test_weekly_snapshots_taken(self, study_datasets):
        # ~8 weeks of collection window plus the repo-snapshot crawl.
        assert len(study_datasets.identifiers.snapshots) >= 8

    def test_snapshots_grow(self, study_datasets):
        sizes = [len(s) for s in study_datasets.identifiers.snapshots]
        assert sizes[-1] >= sizes[0]

    def test_identifiers_superset_of_latest(self, study_datasets):
        ids = study_datasets.identifiers
        assert set(ids.latest().repos) <= ids.all_dids()

    def test_changed_between_detects_activity(self, study_datasets):
        ids = study_datasets.identifiers
        if len(ids.snapshots) >= 2:
            changed = ids.changed_between(0, len(ids.snapshots) - 1)
            assert changed  # an active network always advances revs

    def test_revs_are_tids(self, study_datasets):
        from repro.atproto.tid import Tid

        snapshot = study_datasets.identifiers.latest()
        for did, (head, rev) in list(snapshot.repos.items())[:10]:
            assert Tid.is_valid(rev)
            assert head.startswith("b")  # base32 CID


class TestDidDocumentDataset:
    def test_documents_for_most_identifiers(self, study_datasets):
        docs = study_datasets.did_documents
        total = len(docs) + len(docs.failed)
        assert len(docs) > 0.9 * total

    def test_handles_extracted(self, study_datasets):
        handles = study_datasets.did_documents.handles()
        assert handles
        assert all("." in h for h in handles)

    def test_did_web_rows_detected(self, study_datasets):
        for row in study_datasets.did_documents.did_web_rows():
            assert row.did.startswith("did:web:")

    def test_pds_endpoints_present(self, study_datasets):
        rows = list(study_datasets.did_documents.documents.values())
        assert all(row.pds_endpoint for row in rows[:20])


class TestRepositoriesDataset:
    def test_snapshot_covers_live_repos(self, study_datasets):
        repos = study_datasets.repositories
        assert repos.repo_count > 0
        assert repos.time_us >= REPO_SNAPSHOT_US

    def test_operation_totals_ordering(self, study_datasets):
        """The paper's ordering: likes > posts > follows > reposts > blocks."""
        totals = study_datasets.repositories.operation_totals()
        assert totals["likes"] > totals["posts"]
        assert totals["posts"] > totals["reposts"]
        assert totals["follows"] > totals["blocks"]

    def test_posts_have_parseable_timestamps(self, study_datasets):
        posts = study_datasets.repositories.posts
        parsed = [p for p in posts if p.created_us is not None]
        assert len(parsed) == len(posts)

    def test_follow_subjects_are_dids(self, study_datasets):
        for row in study_datasets.repositories.follows[:50]:
            assert row.subject.startswith("did:")

    def test_feed_generator_records_extracted(self, study_datasets):
        rows = study_datasets.repositories.feed_generators
        assert rows
        for row in rows[:10]:
            assert row.service_did.startswith("did:")
            assert row.uri.startswith("at://")

    def test_labeler_services_with_announce_times(self, study_datasets):
        services = study_datasets.repositories.labeler_services
        assert len(services) >= 40
        assert any(created is not None for _, created in services)

    def test_non_bsky_collections_observed(self, study_datasets):
        other = study_datasets.repositories.other_collections
        assert other.get("com.whtwnd.blog.entry", 0) >= 1

    def test_commit_signatures_verified_end_to_end(self, study_datasets):
        repos = study_datasets.repositories
        assert repos.signature_failures == 0
        assert repos.verified_signatures == repos.repo_count


class TestFirehoseDataset:
    def test_window_start_respected(self, study_datasets):
        assert study_datasets.firehose.start_us == FIREHOSE_COLLECT_START_US

    def test_commits_dominate(self, study_datasets):
        shares = study_datasets.firehose.event_shares()
        assert shares.get(KIND_COMMIT, 0) > 0.9

    def test_post_creation_times_recorded(self, study_datasets):
        posts = study_datasets.firehose.post_created_us
        assert posts
        assert all(uri.startswith("at://") for uri in list(posts)[:10])
        assert all(t >= FIREHOSE_COLLECT_START_US for t in posts.values())

    def test_op_counts_by_collection(self, study_datasets):
        ops = study_datasets.firehose.op_counts
        assert ops[("app.bsky.feed.like", "create")] > 0
        assert ops[("app.bsky.feed.post", "create")] > 0

    def test_deletions_observed(self, study_datasets):
        ops = study_datasets.firehose.op_counts
        deletes = sum(count for (_, action), count in ops.items() if action == "delete")
        assert deletes > 0


class TestLabelerDataset:
    def test_paper_counts(self, study_datasets):
        labels = study_datasets.labels
        assert labels.announced_count() == 62
        assert labels.functional_count() == 46
        assert labels.active_count() == 36

    def test_no_future_labels(self, study_datasets):
        assert all(l.cts <= LABEL_SNAPSHOT_US for l in study_datasets.labels.labels)

    def test_historic_backfill(self, study_datasets):
        """Labels from before the collection window are recovered."""
        early = [
            l
            for l in study_datasets.labels.labels
            if l.cts < FIREHOSE_COLLECT_START_US
        ]
        assert early  # official labeler ran since April 2023

    def test_labels_sorted_within_source(self, study_datasets):
        by_src = study_datasets.labels.labels_by_source()
        for src, labels in by_src.items():
            seqs = [l.seq for l in labels]
            assert seqs == sorted(seqs)

    def test_unreachable_labelers_have_no_labels(self, study_datasets):
        for status in study_datasets.labels.statuses.values():
            if not status.reachable:
                assert status.label_count == 0

    def test_ips_resolved_for_reachable(self, study_datasets):
        reachable = [s for s in study_datasets.labels.statuses.values() if s.reachable]
        assert all(s.ip is not None for s in reachable)


class TestFeedGeneratorDataset:
    def test_discovery(self, study_datasets):
        feeds = study_datasets.feed_generators
        assert feeds.discovered_count() > 20

    def test_metadata_fetched(self, study_datasets):
        feeds = study_datasets.feed_generators
        assert len(feeds.metadata) + len(feeds.no_metadata) >= feeds.discovered_count() * 0.95

    def test_reachable_subset(self, study_datasets):
        feeds = study_datasets.feed_generators
        assert len(feeds.reachable()) <= feeds.discovered_count()

    def test_observed_posts_exist(self, study_datasets):
        assert study_datasets.feed_generators.total_observed_posts() > 50

    def test_observations_have_authors(self, study_datasets):
        for posts in study_datasets.feed_generators.feed_posts.values():
            for observation in list(posts.values())[:3]:
                assert observation.author.startswith("did:")
            break

    def test_multiple_crawls_happened(self, study_datasets):
        assert len(study_datasets.feed_generators.crawl_times) >= 2


class TestActiveMeasurements:
    def test_probes_cover_non_bsky_handles(self, study_datasets):
        probes = study_datasets.active.handle_probes
        assert all(not p.handle.endswith(".bsky.social") for p in probes)

    def test_dns_mechanism_dominates(self, study_datasets):
        counts = study_datasets.active.mechanism_counts()
        total = sum(counts.values())
        if total >= 10:
            assert counts.get("dns-txt", 0) / total > 0.8

    def test_registered_domains_extracted(self, study_datasets):
        domains = study_datasets.active.registered_domains
        assert all("." in d for d in domains)

    def test_whois_rows_match_domains(self, study_datasets):
        active = study_datasets.active
        assert len(active.whois_rows) == len(active.registered_domains)

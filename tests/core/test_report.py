"""Tests for the report renderers (every artefact renders on real data)."""

import pytest

from repro.core import report


class TestFormatting:
    def test_format_table_alignment(self):
        text = report.format_table(("A", "Long header"), [(1, "x"), (22, "yy")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_empty(self):
        text = report.format_table(("A",), [])
        assert "A" in text

    def test_sparkline_empty(self):
        assert report.sparkline([]) == "(empty)"

    def test_sparkline_peak_is_full_block(self):
        line = report.sparkline([0, 1, 2, 4])
        assert line[-1] == "█"

    def test_sparkline_compresses_long_series(self):
        line = report.sparkline(list(range(500)), width=40)
        assert len(line) == 40

    def test_sparkline_all_zero(self):
        assert set(report.sparkline([0, 0, 0])) <= {" "}


ARTEFACT_RENDERERS = [
    report.render_table1,
    report.render_fig1,
    report.render_fig2,
    report.render_fig3,
    report.render_table2,
    report.render_fig4,
    report.render_table3,
    report.render_table4,
    report.render_fig5,
    report.render_fig6,
    report.render_table6,
    report.render_fig7,
    report.render_fig8,
    report.render_fig9,
    report.render_fig10,
    report.render_fig11,
    report.render_fig12,
]


@pytest.mark.parametrize("renderer", ARTEFACT_RENDERERS, ids=lambda fn: fn.__name__)
def test_every_artefact_renders(study_datasets, renderer):
    text = renderer(study_datasets)
    assert isinstance(text, str)
    assert text.strip()
    # The first line names the artefact (Table N / Figure N).
    assert text.splitlines()[0].startswith(("Table", "Figure"))


def test_table5_renders_static():
    text = report.render_table5()
    assert "Skyfeed" in text and "regex" in text


def test_full_report_contains_all_sections(study_datasets):
    text = report.full_report(study_datasets)
    for marker in ("Table 1", "Figure 1", "Figure 12", "Table 5", "Table 6"):
        assert marker in text
    assert text.count("=" * 72) == 20  # 21 sections, 20 separators
    assert "Collection health" in text

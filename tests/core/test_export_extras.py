"""Tests for the CSV/JSON export and the extended graph analysis."""

import csv
import json
import os

import pytest

from repro.core.analysis.graph_extras import (
    build_follow_graph,
    degree_slope,
    graph_summary,
)
from repro.core.export import export_artefacts


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory, study_datasets):
        directory = str(tmp_path_factory.mktemp("artefacts"))
        paths = export_artefacts(study_datasets, directory)
        return directory, paths

    def test_all_artefacts_written(self, exported):
        directory, paths = exported
        names = {os.path.basename(p) for p in paths}
        expected = {
            "table1_firehose_events.csv",
            "fig1_daily_activity.csv",
            "fig2_language_activity.csv",
            "fig3_handles_per_domain.csv",
            "table2_registrars.csv",
            "fig4_label_growth.csv",
            "table3_top_labelers.csv",
            "table4_label_targets.csv",
            "table6_labeler_reactions.csv",
            "fig6_value_reactions.csv",
            "fig7_feed_growth.csv",
            "fig8_description_words.csv",
            "fig9_feed_labels.csv",
            "fig10_posts_vs_likes.csv",
            "fig11_in_degree.csv",
            "fig11_out_degree.csv",
            "fig12_providers.csv",
            "table5_features.json",
            "dataset_overview.json",
        }
        assert expected <= names
        for path in paths:
            assert os.path.getsize(path) > 0

    def test_csv_parses_with_headers(self, exported):
        directory, _ = exported
        with open(os.path.join(directory, "fig1_daily_activity.csv")) as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        assert set(rows[0]) == {
            "day", "active_users", "posts", "likes", "reposts", "follows", "blocks",
        }

    def test_overview_json_matches_dataset(self, exported, study_datasets):
        directory, _ = exported
        with open(os.path.join(directory, "dataset_overview.json")) as handle:
            overview = json.load(handle)
        assert overview["labelers_announced"] == 62
        assert overview["repositories"] == study_datasets.repositories.repo_count

    def test_fig12_shares_sum_to_one(self, exported):
        directory, _ = exported
        with open(os.path.join(directory, "fig12_providers.csv")) as handle:
            rows = list(csv.DictReader(handle))
        assert sum(float(r["feed_share"]) for r in rows) == pytest.approx(1.0, abs=0.01)


class TestGraphExtras:
    def test_graph_builds(self, study_datasets):
        graph = build_follow_graph(study_datasets)
        unique_edges = {
            (r.did, r.subject)
            for r in study_datasets.repositories.follows
            if r.subject
        }
        assert graph.number_of_edges() == len(unique_edges)

    def test_summary_measures(self, study_datasets):
        summary = graph_summary(study_datasets)
        assert summary.nodes > 0
        assert 0.0 <= summary.reciprocity <= 1.0
        assert summary.weakly_connected_components >= 1
        assert 0.0 < summary.giant_component_share <= 1.0
        assert len(summary.top_pagerank) <= 10

    def test_official_account_ranks_high(self, study_datasets, study_world):
        summary = graph_summary(study_datasets)
        official = next(u for u in study_world.users if u.spec.is_official)
        top_dids = [did for did, _ in summary.top_pagerank[:5]]
        assert official.did in top_dids

    def test_degree_slope_negative_for_heavy_tail(self, study_datasets):
        graph = build_follow_graph(study_datasets)
        slope = degree_slope([d for _, d in graph.in_degree()])
        assert slope < 0  # more low-degree than high-degree accounts

    def test_degree_slope_degenerate_inputs(self):
        assert degree_slope([]) == 0.0
        assert degree_slope([1, 1]) == 0.0

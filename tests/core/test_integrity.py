"""Byzantine-data hardening: the adversarial end-to-end acceptance tests.

The criterion from the issue: with an :class:`AdversarialPlan` poisoning
three or more hosts, the study still completes; the integrity report
attributes every quarantined item to a host and a corruption kind; and
the datasets for *clean* hosts are byte-identical to a fault-free run
with the same simulation seed.
"""

import pickle

import pytest

from repro.core.pipeline import run_study
from repro.netsim.faults import (
    ALL_CORRUPTION_KINDS,
    CORRUPT_CAR_BITFLIP,
    CORRUPT_COMMIT_KEY,
    CORRUPT_FRAME,
    CORRUPT_HANDLE,
    Adversary,
    AdversarialPlan,
    CorruptionRule,
)
from repro.simulation.config import SimulationConfig

ADVERSARY_SEED = 11
POISONED_PDSES = (
    "https://shard00.pds.bsky.network",
    "https://shard01.pds.bsky.network",
    "https://shard02.pds.bsky.network",
)
DECOY_PDS = "https://shard03.pds.bsky.network"
RELAY = "https://bsky.network"
FORGED_DOMAINS = ("cnn.com",)


def adversarial_plan() -> AdversarialPlan:
    return AdversarialPlan.poison(
        ADVERSARY_SEED,
        pds_hosts=POISONED_PDSES,
        relay_url=RELAY,
        handle_domains=FORGED_DOMAINS,
        decoy_pds=DECOY_PDS,
    )


@pytest.fixture(scope="module")
def adversarial_study():
    """(world, datasets) for a tiny study with ≥3 poisoned hosts."""
    return run_study(SimulationConfig.tiny(), adversarial_plan=adversarial_plan())


@pytest.fixture(scope="module")
def adversarial_datasets(adversarial_study):
    return adversarial_study[1]


def host_of(world, did: str) -> str:
    pds = world.relay.hosting_pds(did)
    return pds.url if pds is not None else world.relay.url


class TestPlan:
    def test_poison_covers_every_corruption_mode(self):
        plan = adversarial_plan()
        kinds = {rule.kind for rule in plan.rules}
        assert kinds == set(ALL_CORRUPTION_KINDS)
        assert set(POISONED_PDSES) <= set(plan.hosts())

    def test_empty_plan(self):
        assert AdversarialPlan().is_empty()
        assert not adversarial_plan().is_empty()

    def test_draws_are_stateless_and_seeded(self):
        plan = AdversarialPlan(
            seed=3, rules=(CorruptionRule(host="https://a", kind=CORRUPT_FRAME, probability=0.5),)
        )
        one, two = Adversary(plan), Adversary(plan)
        frames_one = [one.corrupt_frame(seq, "https://a") for seq in range(200)]
        frames_two = [two.corrupt_frame(seq, "https://a") for seq in range(200)]
        assert frames_one == frames_two  # same plan → same draws, any order
        assert any(f is not None for f in frames_one)
        assert any(f is None for f in frames_one)

    def test_forged_handle_answer_is_deterministic(self):
        plan = AdversarialPlan(
            seed=9, rules=(CorruptionRule(host="cnn.com", kind=CORRUPT_HANDLE),)
        )
        adversary = Adversary(plan)
        forged = adversary.forge_handle_answer("alice.cnn.com")
        assert forged is not None and forged.startswith("did:plc:")
        assert forged == Adversary(plan).forge_handle_answer("alice.cnn.com")
        assert adversary.forge_handle_answer("alice.example.com") is None


class TestAdversarialStudy:
    def test_study_completes_with_data(self, adversarial_datasets):
        data = adversarial_datasets
        assert sum(data.firehose.event_counts.values()) > 0
        assert data.repositories.repo_count > 0
        assert len(data.did_documents.documents) > 0
        assert data.integrity is not None
        assert data.adversary is not None

    def test_adversary_actually_tampered(self, adversarial_datasets):
        stats = adversarial_datasets.adversary
        assert stats.total() > 0
        tampered_hosts = {host for host, _ in stats.tampered}
        # At least the three poisoned PDSes and the relay acted up.
        assert set(POISONED_PDSES) <= tampered_hosts
        assert RELAY in tampered_hosts

    def test_every_quarantined_item_is_attributed(self, adversarial_datasets):
        report = adversarial_datasets.integrity
        assert report.total_quarantined() > 0
        for item in report.quarantined:
            assert item.host
            assert item.kind
            assert item.item
            assert item.detail

    def test_quarantines_match_counters(self, adversarial_datasets):
        report = adversarial_datasets.integrity
        assert sum(report.counts.values()) == len(report.quarantined)
        for (host, kind), count in report.counts.items():
            matching = [
                q for q in report.quarantined if q.host == host and q.kind == kind
            ]
            assert len(matching) == count

    def test_quarantines_confined_to_byzantine_hosts(
        self, adversarial_datasets, study_datasets
    ):
        """Adversary-caused quarantines name only poisoned hosts.

        The clean run's quarantines (e.g. bidirectional-verification
        failures from organically stale handles) are the baseline; any
        quarantine beyond that baseline must be attributed to a host the
        plan poisons.
        """
        baseline = {
            (q.host, q.kind, q.item) for q in study_datasets.integrity.quarantined
        }
        byzantine = set(POISONED_PDSES) | {RELAY} | set(FORGED_DOMAINS)
        extra = [
            q
            for q in adversarial_datasets.integrity.quarantined
            if (q.host, q.kind, q.item) not in baseline
        ]
        assert extra, "the adversary must cause quarantines beyond the baseline"
        for q in extra:
            assert q.host in byzantine, "unattributed quarantine: %r" % (q,)

    def test_nothing_tampered_escapes_quarantine(
        self, adversarial_datasets, study_datasets
    ):
        """Tampered-item count equals adversary-caused quarantines.

        Corrupting one item (CAR, frame, DID document, handle answer)
        must produce exactly one quarantine entry — nothing slips
        through, nothing is double-counted.
        """
        baseline = len(study_datasets.integrity.quarantined)
        caused = len(adversarial_datasets.integrity.quarantined) - baseline
        assert caused == adversarial_datasets.adversary.total()

    def test_report_is_deterministic(self, adversarial_datasets):
        _, again = run_study(SimulationConfig.tiny(), adversarial_plan=adversarial_plan())
        assert again.integrity.to_jsonable() == adversarial_datasets.integrity.to_jsonable()
        assert dict(again.adversary.tampered) == dict(adversarial_datasets.adversary.tampered)


class TestCleanHostIsolation:
    """Data from unpoisoned hosts must be byte-identical to a clean run."""

    def test_clean_host_repositories_identical(
        self, adversarial_study, study_datasets
    ):
        world, adversarial = adversarial_study

        def clean_rows(datasets):
            return [
                row
                for row in datasets.repositories.posts
                if host_of(world, row.did) not in POISONED_PDSES
            ]

        clean_run, adv_run = clean_rows(study_datasets), clean_rows(adversarial)
        assert len(clean_run) > 0
        assert pickle.dumps(clean_run) == pickle.dumps(adv_run)

    def test_clean_host_record_counts_identical(self, adversarial_study, study_datasets):
        world, adversarial = adversarial_study
        for did, count in study_datasets.repositories.records_per_repo.items():
            if host_of(world, did) in POISONED_PDSES:
                continue
            assert adversarial.repositories.records_per_repo[did] == count

    def test_poisoned_repos_quarantined_not_polluting(
        self, adversarial_study, study_datasets
    ):
        world, adversarial = adversarial_study
        quarantined_dids = {
            q.item
            for q in adversarial.integrity.quarantined
            if q.kind in ("block-digest", "commit-signature", "mst-invalid", "car-malformed")
        }
        assert quarantined_dids
        for did in quarantined_dids:
            assert host_of(world, did) in POISONED_PDSES
            assert did in adversarial.repositories.failed_dids
            assert "quarantined" in adversarial.repositories.failure_reasons[did]
            # None of its rows made it into the analysis datasets.
            assert all(row.did != did for row in adversarial.repositories.posts)

    def test_firehose_statistics_survive_relay_garbling(
        self, adversarial_datasets, study_datasets
    ):
        """Garbage frames are quarantined and replayed via the cursor, so
        the firehose dataset converges to the clean run's statistics."""
        adv, clean = adversarial_datasets.firehose, study_datasets.firehose
        assert dict(adv.event_counts) == dict(clean.event_counts)
        assert dict(adv.op_counts) == dict(clean.op_counts)
        assert adv.end_us == clean.end_us

    def test_clean_host_handle_probes_identical(
        self, adversarial_study, study_datasets
    ):
        """Probes for users hosted on clean PDSes are unchanged.

        (Users on poisoned shards lose their DID document to quarantine,
        so their handles legitimately drop out of the probe list.)
        """
        world, adversarial = adversarial_study
        clean_docs = {
            row.handle
            for row in study_datasets.did_documents.documents.values()
            if row.handle and host_of(world, row.did) not in POISONED_PDSES
        }

        def clean_rows(datasets):
            return [
                (r.handle, r.did, r.mechanism)
                for r in datasets.active.handle_probes
                if r.handle in clean_docs
            ]

        assert clean_rows(study_datasets) == clean_rows(adversarial)


class TestHandleBidiCheck:
    """Unit coverage for the bidirectional handle verification gate."""

    def make_monitor(self):
        from repro.core.integrity import IntegrityMonitor

        return IntegrityMonitor(directory=None)

    def make_doc(self, did="did:plc:" + "a" * 24, handle="alice.cnn.com"):
        from repro.identity.did import DidDocument

        return DidDocument(did=did, handle=handle)

    def test_honest_answer_passes(self):
        monitor = self.make_monitor()
        doc = self.make_doc()
        assert monitor.check_handle_bidi("cnn.com", "alice.cnn.com", doc.did, doc)
        assert monitor.report.total_quarantined() == 0

    def test_forged_did_fails_and_is_attributed_to_domain(self):
        monitor = self.make_monitor()
        doc = self.make_doc(handle="someone.else.example")
        assert not monitor.check_handle_bidi("cnn.com", "alice.cnn.com", doc.did, doc)
        (item,) = monitor.report.quarantined
        assert item.host == "cnn.com"
        assert item.kind == "handle-bidi"
        assert item.item == "alice.cnn.com"

    def test_missing_document_fails(self):
        monitor = self.make_monitor()
        assert not monitor.check_handle_bidi(
            "cnn.com", "alice.cnn.com", "did:plc:" + "b" * 24, None
        )
        assert monitor.report.total_quarantined() == 1

    def test_quarantine_is_idempotent(self):
        monitor = self.make_monitor()
        doc = self.make_doc(handle="someone.else.example")
        for _ in range(3):  # redone work after a crash/resume
            monitor.check_handle_bidi("cnn.com", "alice.cnn.com", doc.did, doc)
        assert monitor.report.total_quarantined() == 1


class TestReportRendering:
    def test_integrity_section_lists_hosts_and_kinds(self, adversarial_datasets):
        from repro.core.report import render_integrity

        text = render_integrity(adversarial_datasets)
        assert "quarantined" in text
        for host in POISONED_PDSES:
            assert host in text

    def test_integrity_json_round_trips(self, adversarial_datasets, tmp_path):
        import json

        from repro.core.export import export_artefacts

        paths = export_artefacts(adversarial_datasets, str(tmp_path))
        integrity_path = [p for p in paths if p.endswith("integrity.json")]
        assert integrity_path
        with open(integrity_path[0]) as fh:
            payload = json.load(fh)
        assert payload["quarantined_total"] == len(
            adversarial_datasets.integrity.quarantined
        )
        assert payload["quarantined_by_host_kind"]

"""Fuzz tests for the CAR parser: malformed input must raise CarError.

Every mutation here is deterministic (seeded ``random.Random``), so a
failure reproduces exactly.  The contract under test: ``read_car`` and
``iter_car_blocks`` either return verified blocks or raise
:class:`CarError` (or its :class:`BlockDigestError` subclass) — they
never raise anything else and never return tampered payloads.
"""

import hashlib
import random

import pytest

from repro.atproto.car import BlockDigestError, CarError, iter_car_blocks, read_car, write_car
from repro.atproto.cbor import cbor_encode
from repro.atproto.cid import Cid, cid_for_raw
from repro.atproto.varint import encode_varint


def sample_car(n_blocks: int = 8) -> bytes:
    blocks = []
    for i in range(n_blocks):
        payload = b"block payload %d " % i + bytes(range(i, i + 16))
        blocks.append((cid_for_raw(payload), payload))
    return write_car(blocks[0][0], blocks)


def exhaust(data: bytes):
    """Run both parsers to completion on the same bytes."""
    read_car(data)
    list(iter_car_blocks(data))


class TestStructuralGarbage:
    def test_trailing_garbage_rejected(self):
        car = sample_car()
        for junk in (b"\x00", b"\xff", b"extra bytes after the last section"):
            with pytest.raises(CarError):
                exhaust(car + junk)

    def test_every_truncation_point_rejected_or_clean(self):
        # A CAR cut anywhere must either parse a shorter prefix of intact
        # sections or raise CarError — never crash some other way.
        car = sample_car(3)
        for cut in range(len(car)):
            try:
                exhaust(car[:cut])
            except CarError:
                pass

    def test_overlong_varint_section_length(self):
        car = sample_car(1)
        # 10 continuation bytes exceed the 9-byte varint cap.
        with pytest.raises(CarError):
            exhaust(car + b"\x80" * 10 + b"\x01")

    def test_redundant_varint_encoding_rejected(self):
        car = sample_car(1)
        # 0x81 0x00 is a non-minimal encoding of 1.
        with pytest.raises(CarError):
            exhaust(car + b"\x81\x00" + b"x")

    def test_zero_length_section_rejected(self):
        car = sample_car(1)
        with pytest.raises(CarError):
            exhaust(car + encode_varint(0))

    def test_header_claiming_version_2(self):
        header = cbor_encode({"version": 2, "roots": []})
        with pytest.raises(CarError):
            exhaust(encode_varint(len(header)) + header)

    def test_header_without_root_list(self):
        header = cbor_encode({"version": 1, "roots": "nope"})
        with pytest.raises(CarError):
            exhaust(encode_varint(len(header)) + header)

    def test_header_is_not_cbor(self):
        with pytest.raises(CarError):
            exhaust(encode_varint(4) + b"\xff\xff\xff\xff")

    def test_empty_input(self):
        with pytest.raises(CarError):
            exhaust(b"")


class TestDigestMismatch:
    def test_flipped_payload_byte_caught(self):
        car = bytearray(sample_car(4))
        # Flip a byte near the end — inside the last block's payload.
        car[-3] ^= 0xFF
        with pytest.raises(BlockDigestError):
            read_car(bytes(car))
        with pytest.raises(BlockDigestError):
            list(iter_car_blocks(bytes(car)))

    def test_verify_digests_off_accepts_same_bytes(self):
        car = bytearray(sample_car(4))
        car[-3] ^= 0xFF
        read_car(bytes(car), verify_digests=False)
        list(iter_car_blocks(bytes(car), verify_digests=False))

    def test_wrong_digest_cid_caught(self):
        payload = b"honest payload"
        lying_cid = Cid(1, 0x55, hashlib.sha256(b"different payload").digest())
        car = write_car(lying_cid, [(lying_cid, payload)])
        with pytest.raises(BlockDigestError):
            read_car(car)


class TestSeededMutations:
    """Byte-level fuzzing with fixed seeds: no mutation may escape CarError."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_byte_flips(self, seed):
        rng = random.Random(10_000 + seed)
        car = bytearray(sample_car())
        for _ in range(rng.randint(1, 6)):
            car[rng.randrange(len(car))] ^= 1 << rng.randrange(8)
        self._must_parse_or_reject(bytes(car))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_truncations_and_splices(self, seed):
        rng = random.Random(20_000 + seed)
        car = bytearray(sample_car())
        choice = rng.randrange(3)
        if choice == 0:
            mutated = car[: rng.randrange(len(car))]
        elif choice == 1:
            mutated = car + bytes(rng.randrange(256) for _ in range(rng.randint(1, 32)))
        else:
            cut = rng.randrange(len(car))
            mutated = car[:cut] + car[cut + rng.randint(1, 16):]
        self._must_parse_or_reject(bytes(mutated))

    @pytest.mark.parametrize("seed", range(10))
    def test_pure_noise(self, seed):
        rng = random.Random(30_000 + seed)
        noise = bytes(rng.randrange(256) for _ in range(rng.randint(1, 512)))
        self._must_parse_or_reject(noise)

    @staticmethod
    def _must_parse_or_reject(data: bytes):
        for parse in (read_car, lambda d: list(iter_car_blocks(d))):
            try:
                result = parse(data)
            except CarError:
                continue
            # Parsed fine: then every surviving block must verify.
            blocks = result[1].items() if isinstance(result, tuple) else result
            for cid, body in blocks:
                assert hashlib.sha256(body).digest() == cid.digest

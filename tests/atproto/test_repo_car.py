"""Tests for repositories and CAR export/import."""

import pytest

from repro.atproto.car import CarError, read_car, write_car
from repro.atproto.cid import cid_for_raw
from repro.atproto.keys import HmacKeypair, Secp256k1Keypair
from repro.atproto.lexicon import FOLLOW, LIKE, POST
from repro.atproto.repo import Repo, RepoError, WriteOp, import_car


def make_repo(fast=True) -> Repo:
    keypair = HmacKeypair.from_seed(b"repo") if fast else Secp256k1Keypair.from_seed(b"repo")
    return Repo("did:plc:testuser123", keypair)


def post_record(text: str) -> dict:
    return {"$type": POST, "text": text, "createdAt": "2024-04-01T00:00:00Z"}


class TestWriteOps:
    def test_create_requires_record(self):
        with pytest.raises(RepoError):
            WriteOp("create", POST, "rkey")

    def test_delete_rejects_record(self):
        with pytest.raises(RepoError):
            WriteOp("delete", POST, "rkey", {"$type": POST})

    def test_unknown_action(self):
        with pytest.raises(RepoError):
            WriteOp("upsert", POST, "rkey", {})


class TestRepoCrud:
    def test_create_and_get(self):
        repo = make_repo()
        meta = repo.create_record(POST, post_record("hello"), now_us=1000)
        action, path, cid = meta.ops[0]
        assert action == "create"
        rkey = path.split("/")[1]
        assert repo.get_record(POST, rkey)["text"] == "hello"
        assert repo.get_record_cid(POST, rkey) == cid

    def test_auto_rkey_is_tid(self):
        from repro.atproto.tid import Tid

        repo = make_repo()
        meta = repo.create_record(POST, post_record("x"), now_us=999)
        rkey = meta.ops[0][1].split("/")[1]
        assert Tid.is_valid(rkey)

    def test_explicit_rkey(self):
        repo = make_repo()
        repo.create_record(POST, post_record("x"), now_us=1, rkey="self")
        assert repo.get_record(POST, "self") is not None

    def test_duplicate_create_rejected(self):
        repo = make_repo()
        repo.create_record(POST, post_record("x"), now_us=1, rkey="self")
        with pytest.raises(RepoError):
            repo.create_record(POST, post_record("y"), now_us=2, rkey="self")

    def test_update(self):
        repo = make_repo()
        repo.create_record(POST, post_record("v1"), now_us=1, rkey="self")
        repo.update_record(POST, "self", post_record("v2"), now_us=2)
        assert repo.get_record(POST, "self")["text"] == "v2"

    def test_update_missing_rejected(self):
        repo = make_repo()
        with pytest.raises(RepoError):
            repo.update_record(POST, "ghost", post_record("x"), now_us=1)

    def test_delete(self):
        repo = make_repo()
        repo.create_record(POST, post_record("x"), now_us=1, rkey="self")
        repo.delete_record(POST, "self", now_us=2)
        assert repo.get_record(POST, "self") is None
        assert repo.record_count() == 0

    def test_identical_records_share_block(self):
        repo = make_repo()
        record = {"$type": LIKE, "subject": {"uri": "at://x/app.bsky.feed.post/1"},
                  "createdAt": "2024-01-01T00:00:00Z"}
        repo.create_record(LIKE, dict(record), now_us=1, rkey="a")
        repo.create_record(LIKE, dict(record), now_us=2, rkey="b")
        repo.delete_record(LIKE, "a", now_us=3)
        # The shared block must survive deleting one referent.
        assert repo.get_record(LIKE, "b") is not None

    def test_list_records_by_collection(self):
        repo = make_repo()
        repo.create_record(POST, post_record("p"), now_us=1)
        repo.create_record(
            FOLLOW,
            {"$type": FOLLOW, "subject": "did:plc:other", "createdAt": "2024-01-01T00:00:00Z"},
            now_us=2,
        )
        posts = list(repo.list_records(POST))
        assert len(posts) == 1
        assert set(repo.collections()) == {POST, FOLLOW}

    def test_batch_write_is_one_commit(self):
        repo = make_repo()
        writes = [
            WriteOp("create", POST, "a", post_record("1")),
            WriteOp("create", POST, "b", post_record("2")),
        ]
        meta = repo.apply_writes(writes, now_us=10)
        assert len(meta.ops) == 2
        assert len(repo.commits) == 1

    def test_empty_batch_rejected(self):
        with pytest.raises(RepoError):
            make_repo().apply_writes([], now_us=1)


class TestCommits:
    def test_rev_advances(self):
        repo = make_repo()
        first = repo.create_record(POST, post_record("1"), now_us=100)
        second = repo.create_record(POST, post_record("2"), now_us=200)
        assert second.rev > first.rev
        assert repo.rev == second.rev

    def test_commit_cid_changes_with_content(self):
        repo = make_repo()
        first = repo.create_record(POST, post_record("1"), now_us=100)
        second = repo.create_record(POST, post_record("2"), now_us=200)
        assert first.commit_cid != second.commit_cid

    def test_commit_history_recorded(self):
        repo = make_repo()
        repo.create_record(POST, post_record("1"), now_us=100)
        repo.delete_record(POST, repo.commits[0].ops[0][1].split("/")[1], now_us=200)
        assert [m.ops[0][0] for m in repo.commits] == ["create", "delete"]


class TestCarRoundTrip:
    def test_export_import(self):
        repo = make_repo()
        for i in range(25):
            repo.create_record(POST, post_record("post %d" % i), now_us=1000 + i)
        car = repo.export_car()
        snapshot = import_car(car)
        assert snapshot.did == repo.did
        assert snapshot.rev == repo.rev
        assert len(dict(snapshot.list_records(POST))) == 25

    def test_import_verifies_signature(self):
        repo = make_repo()
        repo.create_record(POST, post_record("x"), now_us=1)
        car = repo.export_car()
        snapshot = import_car(car, verify_key=repo.keypair.public_key)
        assert snapshot.did == repo.did

    def test_import_rejects_wrong_key(self):
        repo = make_repo()
        repo.create_record(POST, post_record("x"), now_us=1)
        car = repo.export_car()
        wrong = HmacKeypair.from_seed(b"other").public_key
        with pytest.raises(RepoError):
            import_car(car, verify_key=wrong)

    def test_secp256k1_repo_round_trip(self):
        repo = make_repo(fast=False)
        repo.create_record(POST, post_record("signed for real"), now_us=1)
        snapshot = import_car(repo.export_car(), verify_key=repo.keypair.public_key)
        assert list(snapshot.list_records(POST))[0][1]["text"] == "signed for real"

    def test_export_requires_commit(self):
        with pytest.raises(RepoError):
            make_repo().export_car()

    def test_snapshot_collections(self):
        repo = make_repo()
        repo.create_record(POST, post_record("x"), now_us=1)
        snapshot = import_car(repo.export_car())
        assert snapshot.collections() == [POST]


class TestCarFormat:
    def test_round_trip(self):
        cid_a = cid_for_raw(b"block a")
        cid_b = cid_for_raw(b"block b")
        car = write_car(cid_a, [(cid_a, b"block a"), (cid_b, b"block b")])
        roots, blocks = read_car(car)
        assert roots == [cid_a]
        assert blocks[cid_b] == b"block b"

    def test_empty_car_rejected(self):
        with pytest.raises(CarError):
            read_car(b"")

    def test_truncated_section_rejected(self):
        cid = cid_for_raw(b"x")
        car = write_car(cid, [(cid, b"x")])
        with pytest.raises(CarError):
            read_car(car[:-1])

    def test_bad_header_rejected(self):
        from repro.atproto.cbor import cbor_encode
        from repro.atproto.varint import encode_varint

        header = cbor_encode({"version": 2, "roots": []})
        with pytest.raises(CarError):
            read_car(encode_varint(len(header)) + header)

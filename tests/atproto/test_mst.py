"""Tests for the Merkle Search Tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atproto.cid import cid_for_raw
from repro.atproto.mst import (
    Mst,
    MstError,
    build_canonical,
    is_valid_mst_key,
    key_layer,
    load_mst,
    mst_diff,
)


def cid_of(tag: str):
    return cid_for_raw(tag.encode())


def key(i: int) -> str:
    return "app.bsky.feed.post/key%06d" % i


class TestKeyLayer:
    def test_layer_is_deterministic(self):
        assert key_layer("a/b") == key_layer("a/b")

    def test_layers_vary(self):
        layers = {key_layer(key(i)) for i in range(200)}
        assert len(layers) > 1

    def test_expected_distribution(self):
        # Each extra layer should be ~4x rarer (2 bits per layer).
        layers = [key_layer(key(i)) for i in range(4000)]
        zero = sum(1 for l in layers if l == 0)
        one = sum(1 for l in layers if l == 1)
        assert zero > 2 * one  # loose bound on the 4:1 ratio


class TestKeyValidation:
    def test_valid_record_path(self):
        assert is_valid_mst_key("app.bsky.feed.post/3kabc")

    def test_rejects_no_slash(self):
        assert not is_valid_mst_key("nopath")

    def test_rejects_two_slashes(self):
        assert not is_valid_mst_key("a/b/c")

    def test_rejects_empty(self):
        assert not is_valid_mst_key("")
        assert not is_valid_mst_key("/x")
        assert not is_valid_mst_key("x/")

    def test_rejects_bad_chars(self):
        assert not is_valid_mst_key("coll/key with space")

    def test_set_validates(self):
        with pytest.raises(MstError):
            Mst().set("bad key!", cid_of("v"))


class TestBasicOperations:
    def test_empty_tree(self):
        tree = Mst()
        assert len(tree) == 0
        assert tree.get("a/b") is None
        tree.check_invariants()

    def test_set_and_get(self):
        tree = Mst()
        tree.set("coll/a", cid_of("1"))
        assert tree.get("coll/a") == cid_of("1")
        assert "coll/a" in tree

    def test_replace_value(self):
        tree = Mst()
        tree.set("coll/a", cid_of("1"))
        tree.set("coll/a", cid_of("2"))
        assert tree.get("coll/a") == cid_of("2")
        assert len(tree) == 1

    def test_replace_changes_root_cid(self):
        tree = Mst()
        tree.set("coll/a", cid_of("1"))
        before = tree.root_cid()
        tree.set("coll/a", cid_of("2"))
        assert tree.root_cid() != before

    def test_many_inserts_sorted_iteration(self):
        tree = Mst()
        for i in range(300):
            tree.set(key(i), cid_of(str(i)))
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == 300
        tree.check_invariants()

    def test_delete(self):
        tree = Mst()
        for i in range(50):
            tree.set(key(i), cid_of(str(i)))
        tree.delete(key(25))
        assert tree.get(key(25)) is None
        assert len(tree) == 49
        tree.check_invariants()

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            Mst().delete("a/b")

    def test_delete_all_returns_to_empty_root(self):
        tree = Mst()
        empty_cid = tree.root_cid()
        for i in range(30):
            tree.set(key(i), cid_of(str(i)))
        for i in range(30):
            tree.delete(key(i))
        assert len(tree) == 0
        assert tree.root_cid() == empty_cid


class TestCanonicity:
    def test_insertion_order_independence(self):
        items = {key(i): cid_of(str(i)) for i in range(100)}
        forward = Mst()
        for k in sorted(items):
            forward.set(k, items[k])
        backward = Mst()
        for k in sorted(items, reverse=True):
            backward.set(k, items[k])
        assert forward.root_cid() == backward.root_cid()

    def test_incremental_matches_canonical_build(self):
        items = {key(i): cid_of(str(i)) for i in range(150)}
        incremental = Mst()
        for k, v in items.items():
            incremental.set(k, v)
        canonical = build_canonical(items)
        canonical.check_invariants()
        assert incremental.root_cid() == canonical.root_cid()

    def test_delete_matches_fresh_build(self):
        items = {key(i): cid_of(str(i)) for i in range(80)}
        tree = build_canonical(items)
        tree = Mst(tree.root)
        for i in range(0, 80, 3):
            tree.delete(key(i))
            del items[key(i)]
        rebuilt = build_canonical(items)
        assert tree.root_cid() == rebuilt.root_cid()
        tree.check_invariants()


class TestSerialization:
    def test_blocks_and_reload(self):
        items = {key(i): cid_of(str(i)) for i in range(120)}
        tree = build_canonical(items)
        blocks = {cid: data for cid, data in tree.blocks().items()}
        loaded = load_mst(blocks, tree.root_cid())
        assert dict(loaded.items()) == items
        assert loaded.root_cid() == tree.root_cid()
        loaded.check_invariants()

    def test_prefix_compression_round_trip(self):
        tree = Mst()
        tree.set("app.bsky.feed.post/aaaa", cid_of("1"))
        tree.set("app.bsky.feed.post/aaab", cid_of("2"))
        loaded = load_mst(tree.blocks(), tree.root_cid())
        assert loaded.get("app.bsky.feed.post/aaab") == cid_of("2")

    def test_missing_block_raises(self):
        tree = Mst()
        tree.set("coll/a", cid_of("1"))
        with pytest.raises(MstError):
            load_mst({}, tree.root_cid())

    def test_direct_node_encoder_matches_generic(self):
        """The schema-specialized node encoder (the commit-loop fast path)
        must emit byte-identical blocks to cbor_encode(to_data())."""
        from repro.atproto.cbor import cbor_encode

        items = {key(i): cid_of(str(i)) for i in range(300)}
        tree = build_canonical(items)
        for node in tree.root.walk_nodes():
            assert node.to_cbor() == cbor_encode(node.to_data())

    @given(st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_direct_node_encoder_matches_generic_random(self, indices):
        from repro.atproto.cbor import cbor_encode

        tree = Mst()
        for i in indices:
            tree.set(key(i), cid_of(str(i)))
        for node in tree.root.walk_nodes():
            assert node.to_cbor() == cbor_encode(node.to_data())


class TestDiff:
    def test_diff_reports_changes(self):
        old = Mst()
        old.set("coll/a", cid_of("1"))
        old.set("coll/b", cid_of("2"))
        new = Mst()
        new.set("coll/b", cid_of("2x"))
        new.set("coll/c", cid_of("3"))
        diff = mst_diff(old, new)
        assert diff["coll/a"] == (cid_of("1"), None)
        assert diff["coll/b"] == (cid_of("2"), cid_of("2x"))
        assert diff["coll/c"] == (None, cid_of("3"))

    def test_identical_trees_empty_diff(self):
        tree = Mst()
        tree.set("coll/a", cid_of("1"))
        assert mst_diff(tree, tree) == {}

    def test_diff_insertion_order_is_sorted(self):
        # Regression: mst_diff used to iterate `old.keys() | new.keys()`
        # directly, so the returned dict's insertion order (and anything
        # serialized from it) varied with PYTHONHASHSEED.
        old = Mst()
        new = Mst()
        for i in range(60):
            old.set(key(i), cid_of(str(i)))
            if i % 2:
                new.set(key(i), cid_of(str(i) + "x"))
        diff = mst_diff(old, new)
        assert len(diff) == 60
        assert list(diff) == sorted(diff)


_keys = st.integers(min_value=0, max_value=5000).map(key)


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(_keys, st.integers(0, 10).map(lambda i: cid_of(str(i))), max_size=60))
def test_incremental_equals_canonical_property(items):
    tree = Mst()
    for k, v in items.items():
        tree.set(k, v)
    tree.check_invariants()
    assert tree.root_cid() == build_canonical(items).root_cid()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(_keys, st.sampled_from(["set", "delete"])),
        max_size=80,
    )
)
def test_random_ops_match_canonical_property(ops):
    tree = Mst()
    model: dict = {}
    for k, action in ops:
        if action == "set":
            value = cid_of(k)
            tree.set(k, value)
            model[k] = value
        elif k in model:
            tree.delete(k)
            del model[k]
    tree.check_invariants()
    assert tree.root_cid() == build_canonical(model).root_cid()
    assert dict(tree.items()) == model

"""Tests for blob storage and record blob references."""

import pytest
from hypothesis import given, strategies as st

from repro.atproto.blobs import (
    BlobError,
    BlobRef,
    BlobStore,
    extract_blob_refs,
)
from repro.atproto.cid import cid_for_raw


class TestBlobStore:
    def test_upload_and_get(self):
        store = BlobStore()
        ref = store.upload(b"image bytes", "image/png")
        assert store.get(ref.cid) == b"image bytes"
        assert ref.size == len(b"image bytes")
        assert ref.mime_type == "image/png"

    def test_content_addressed(self):
        store = BlobStore()
        a = store.upload(b"same", "image/png")
        b = store.upload(b"same", "image/jpeg")
        assert a.cid == b.cid
        assert store.blob_count() == 1

    def test_cid_matches_content(self):
        ref = BlobStore().upload(b"xyz", "image/png")
        assert ref.cid == cid_for_raw(b"xyz")

    def test_empty_rejected(self):
        with pytest.raises(BlobError):
            BlobStore().upload(b"", "image/png")

    def test_size_cap(self):
        store = BlobStore(max_bytes=10)
        with pytest.raises(BlobError):
            store.upload(b"x" * 11, "image/png")

    def test_unknown_blob_raises(self):
        with pytest.raises(BlobError):
            BlobStore().get(cid_for_raw(b"ghost"))

    def test_refcount_gc(self):
        store = BlobStore()
        ref = store.upload(b"avatar", "image/png")
        store.add_ref(ref.cid)
        store.add_ref(ref.cid)
        store.release(ref.cid)
        assert store.has(ref.cid)
        store.release(ref.cid)
        assert not store.has(ref.cid)

    def test_release_unknown_is_noop(self):
        BlobStore().release(cid_for_raw(b"never"))

    def test_total_bytes(self):
        store = BlobStore()
        store.upload(b"12345", "x")
        store.upload(b"123", "x")
        assert store.total_bytes() == 8


class TestBlobRefs:
    def test_record_field_round_trip(self):
        ref = BlobStore().upload(b"pic", "image/png")
        field = ref.to_record_field()
        restored = BlobRef.from_record_field(field)
        assert restored.cid == ref.cid
        assert restored.mime_type == "image/png"

    def test_from_bad_field(self):
        with pytest.raises(BlobError):
            BlobRef.from_record_field({"$type": "not-blob"})

    def test_extract_nested(self):
        ref = BlobStore().upload(b"img", "image/png")
        record = {
            "$type": "app.bsky.actor.profile",
            "avatar": ref.to_record_field(),
            "extra": {"deep": [{"banner": ref.to_record_field()}]},
        }
        refs = extract_blob_refs(record)
        assert len(refs) == 2
        assert all(r.cid == ref.cid for r in refs)

    def test_extract_none(self):
        assert extract_blob_refs({"$type": "app.bsky.feed.post", "text": "hi"}) == []


class TestPdsBlobIntegration:
    def make_pds_account(self):
        from repro.atproto.keys import HmacKeypair
        from repro.services.pds import Pds

        pds = Pds("https://pds.test")
        keypair = HmacKeypair.from_seed(b"blobuser")
        did = "did:plc:" + "b" * 24
        pds.create_account(did, keypair)
        return pds, did

    def test_profile_with_avatar(self):
        pds, did = self.make_pds_account()
        ref = pds.upload_blob(did, b"avatar png bytes", "image/png")
        record = {
            "$type": "app.bsky.actor.profile",
            "displayName": "Blob User",
            "avatar": ref.to_record_field(),
            "createdAt": "2024-04-13T00:00:00Z",
        }
        pds.create_record(did, "app.bsky.actor.profile", record, 1, rkey="self")
        served = pds.xrpc_getBlob(did=did, cid=str(ref.cid))
        assert served == b"avatar png bytes"

    def test_blob_gc_on_record_delete(self):
        pds, did = self.make_pds_account()
        ref = pds.upload_blob(did, b"temp image", "image/png")
        record = {
            "$type": "app.bsky.feed.post",
            "text": "with image",
            "createdAt": "2024-04-13T00:00:00Z",
            "embed": {"images": [{"alt": "", "image": ref.to_record_field()}]},
        }
        meta = pds.create_record(did, "app.bsky.feed.post", record, 1)
        rkey = meta.ops[0][1].split("/", 1)[1]
        assert pds.blobs.has(ref.cid)
        pds.delete_record(did, "app.bsky.feed.post", rkey, 2)
        assert not pds.blobs.has(ref.cid)

    def test_get_blob_unknown_404(self):
        from repro.services.xrpc import XrpcError

        pds, did = self.make_pds_account()
        with pytest.raises(XrpcError):
            pds.xrpc_getBlob(did=did, cid=str(cid_for_raw(b"nope")))


@given(st.binary(min_size=1, max_size=256))
def test_upload_round_trip_property(data):
    store = BlobStore()
    ref = store.upload(data, "application/octet-stream")
    assert store.get(ref.cid) == data

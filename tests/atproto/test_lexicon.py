"""Tests for the lexicon registry and record validation."""

import pytest

from repro.atproto.lexicon import (
    FEED_GENERATOR,
    FOLLOW,
    LIKE,
    POST,
    WHTWND_ENTRY,
    Field,
    LexiconError,
    RecordSchema,
    default_registry,
)


@pytest.fixture()
def registry():
    return default_registry()


class TestValidation:
    def test_valid_post(self, registry):
        registry.validate(
            POST,
            {"$type": POST, "text": "hello", "createdAt": "2024-04-01T00:00:00Z"},
        )

    def test_missing_required_field(self, registry):
        with pytest.raises(LexiconError):
            registry.validate(POST, {"$type": POST, "text": "no createdAt"})

    def test_wrong_type_field(self, registry):
        with pytest.raises(LexiconError):
            registry.validate(
                POST, {"$type": POST, "text": 42, "createdAt": "2024-04-01T00:00:00Z"}
            )

    def test_type_mismatch(self, registry):
        with pytest.raises(LexiconError):
            registry.validate(POST, {"$type": LIKE, "text": "x", "createdAt": "y"})

    def test_text_too_long(self, registry):
        with pytest.raises(LexiconError):
            registry.validate(
                POST,
                {"$type": POST, "text": "x" * 3001, "createdAt": "2024-04-01T00:00:00Z"},
            )

    def test_like_requires_subject_ref(self, registry):
        with pytest.raises(LexiconError):
            registry.validate(
                LIKE, {"$type": LIKE, "subject": "not-a-ref", "createdAt": "t"}
            )

    def test_follow_subject_is_string_did(self, registry):
        registry.validate(
            FOLLOW, {"$type": FOLLOW, "subject": "did:plc:abc", "createdAt": "t"}
        )

    def test_unknown_collection_passes_through(self, registry):
        registry.validate("com.example.custom.thing", {"$type": "com.example.custom.thing"})

    def test_invalid_collection_nsid_rejected(self, registry):
        with pytest.raises(LexiconError):
            registry.validate("notannsid", {})

    def test_whitewind_entry(self, registry):
        registry.validate(
            WHTWND_ENTRY,
            {"$type": WHTWND_ENTRY, "content": "# my blog", "title": "post"},
        )

    def test_feed_generator_record(self, registry):
        registry.validate(
            FEED_GENERATOR,
            {
                "$type": FEED_GENERATOR,
                "did": "did:web:feeds.example.com",
                "displayName": "My Feed",
                "createdAt": "2024-01-01T00:00:00Z",
            },
        )


class TestRegistry:
    def test_known_collections_include_bsky_core(self, registry):
        known = registry.known_collections()
        for nsid in (POST, LIKE, FOLLOW, FEED_GENERATOR):
            assert nsid in known

    def test_is_bsky_collection(self, registry):
        assert registry.is_bsky_collection(POST)
        assert not registry.is_bsky_collection(WHTWND_ENTRY)

    def test_custom_schema_registration(self, registry):
        schema = RecordSchema(
            "com.example.test.item",
            (Field("value", "integer", required=True),),
        )
        registry.register(schema)
        registry.validate(
            "com.example.test.item", {"$type": "com.example.test.item", "value": 3}
        )
        with pytest.raises(LexiconError):
            registry.validate(
                "com.example.test.item", {"$type": "com.example.test.item", "value": "x"}
            )

    def test_known_values_enforced(self):
        schema = RecordSchema(
            "com.example.test.enum",
            (Field("mode", "string", known_values=("a", "b")),),
        )
        schema.validate({"$type": "com.example.test.enum", "mode": "a"})
        with pytest.raises(LexiconError):
            schema.validate({"$type": "com.example.test.enum", "mode": "c"})

    def test_strict_schema_rejects_extras(self):
        schema = RecordSchema("com.example.test.strict", (), allow_extra=False)
        with pytest.raises(LexiconError):
            schema.validate({"$type": "com.example.test.strict", "extra": 1})

"""Tests for subscription wire framing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atproto.cid import cid_for_cbor, cid_for_raw
from repro.atproto.events import (
    CommitEvent,
    CommitOp,
    HandleEvent,
    IdentityEvent,
    TombstoneEvent,
)
from repro.atproto.frames import (
    FrameError,
    decode_any_frame,
    decode_event_frame,
    decode_label_frame,
    encode_error_frame,
    encode_event_frame,
    encode_label_frame,
    frame_size,
)
from repro.services.labeler import Label

DID = "did:plc:" + "f" * 24
T = 1_713_000_000_000_000


def commit_event(n_ops=2):
    ops = tuple(
        CommitOp(
            action="create",
            path="app.bsky.feed.post/rk%04d" % i,
            cid=cid_for_raw(b"%d" % i),
            record={"$type": "app.bsky.feed.post", "text": "post %d" % i,
                    "createdAt": "2024-04-13T00:00:00Z"},
        )
        for i in range(n_ops)
    )
    return CommitEvent(
        seq=7, did=DID, time_us=T, rev="3kabc2345fghij",
        commit_cid=cid_for_cbor({"c": 1}), ops=ops,
    )


class TestEventFrames:
    def test_commit_round_trip(self):
        event = commit_event()
        decoded = decode_event_frame(encode_event_frame(event))
        assert isinstance(decoded, CommitEvent)
        assert decoded.seq == event.seq
        assert decoded.commit_cid == event.commit_cid
        assert decoded.ops[1].record["text"] == "post 1"
        assert decoded.ops[0].cid == event.ops[0].cid

    def test_identity_round_trip(self):
        event = IdentityEvent(seq=3, did=DID, time_us=T, handle="x.bsky.social")
        decoded = decode_event_frame(encode_event_frame(event))
        assert isinstance(decoded, IdentityEvent)
        assert decoded.handle == "x.bsky.social"

    def test_handle_round_trip(self):
        event = HandleEvent(seq=4, did=DID, time_us=T, handle="new.example.com")
        decoded = decode_event_frame(encode_event_frame(event))
        assert isinstance(decoded, HandleEvent)
        assert decoded.handle == "new.example.com"

    def test_tombstone_round_trip(self):
        event = TombstoneEvent(seq=5, did=DID, time_us=T)
        decoded = decode_event_frame(encode_event_frame(event))
        assert isinstance(decoded, TombstoneEvent)

    def test_delete_op_has_no_record(self):
        event = CommitEvent(
            seq=1, did=DID, time_us=T, rev="3kabc2345fghij",
            commit_cid=cid_for_cbor({"c": 2}),
            ops=(CommitOp("delete", "app.bsky.feed.like/rk", None, None),),
        )
        decoded = decode_event_frame(encode_event_frame(event))
        assert decoded.ops[0].cid is None
        assert decoded.ops[0].record is None

    def test_trailing_bytes_rejected(self):
        with pytest.raises(FrameError):
            decode_event_frame(encode_event_frame(commit_event()) + b"\x00")

    def test_frame_size_matches_encoding(self):
        event = commit_event()
        assert frame_size(event) == len(encode_event_frame(event))

    def test_more_ops_bigger_frame(self):
        assert frame_size(commit_event(5)) > frame_size(commit_event(1))


class TestErrorFrames:
    def test_error_frame_detected(self):
        frame = encode_error_frame("FutureCursor", "cursor is ahead of stream")
        kind, payload = decode_any_frame(frame)
        assert kind == "error"
        assert payload["error"] == "FutureCursor"

    def test_message_frame_detected(self):
        kind, event = decode_any_frame(encode_event_frame(commit_event()))
        assert kind == "event"
        assert event.seq == 7


class TestLabelFrames:
    def make_label(self):
        return Label(seq=9, src=DID, uri="at://x/app.bsky.feed.post/1",
                     val="porn", neg=False, cts=T)

    def test_round_trip(self):
        seq, labels = decode_label_frame(encode_label_frame(self.make_label()))
        assert seq == 9
        assert labels[0]["val"] == "porn"
        assert labels[0]["ctsUs"] == T

    def test_signature_carried(self):
        frame = encode_label_frame(self.make_label(), signature=b"\x01" * 64)
        _, labels = decode_label_frame(frame)
        assert labels[0]["sig"] == b"\x01" * 64

    def test_wrong_frame_type_rejected(self):
        with pytest.raises(FrameError):
            decode_label_frame(encode_event_frame(commit_event()))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=2**40),
    st.integers(min_value=0, max_value=2**50),
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20),
)
def test_identity_frame_property(seq, time_us, handle_word):
    event = IdentityEvent(seq=seq, did=DID, time_us=time_us, handle=handle_word + ".example")
    decoded = decode_event_frame(encode_event_frame(event))
    assert decoded.seq == seq
    assert decoded.time_us == time_us
    assert decoded.handle == handle_word + ".example"

"""Property-based tests for repository state machines.

A repository is a state machine over create/update/delete operations; for
any valid operation sequence, (a) the repo's visible state equals a plain
dict model, (b) the CAR export/import round-trip reproduces exactly that
state, and (c) revs grow strictly monotonically.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atproto.keys import HmacKeypair
from repro.atproto.lexicon import POST
from repro.atproto.repo import Repo, import_car

DID = "did:plc:" + "m" * 24

rkeys = st.integers(min_value=0, max_value=11).map(lambda i: "rk%02d" % i)
ops = st.lists(
    st.tuples(st.sampled_from(["create", "update", "delete"]), rkeys,
              st.integers(min_value=0, max_value=99)),
    min_size=1,
    max_size=40,
)


def record_for(value: int) -> dict:
    return {"$type": POST, "text": "value %d" % value, "createdAt": "2024-04-13T00:00:00Z"}


def apply_sequence(sequence):
    """Drive a repo and a dict model through the same (guarded) ops."""
    repo = Repo(DID, HmacKeypair.from_seed(b"prop"))
    model: dict = {}
    now = 1_700_000_000_000_000
    revs = []
    for index, (action, rkey, value) in enumerate(sequence):
        now += 1000 + index
        exists = rkey in model
        if action == "create" and not exists:
            meta = repo.create_record(POST, record_for(value), now, rkey=rkey)
            model[rkey] = value
        elif action == "update" and exists:
            meta = repo.update_record(POST, rkey, record_for(value), now)
            model[rkey] = value
        elif action == "delete" and exists:
            meta = repo.delete_record(POST, rkey, now)
            del model[rkey]
        else:
            continue
        revs.append(meta.rev)
    return repo, model, revs


@settings(max_examples=40, deadline=None)
@given(ops)
def test_repo_state_matches_model(sequence):
    repo, model, _ = apply_sequence(sequence)
    visible = {
        path.split("/", 1)[1]: record["text"]
        for path, record in repo.list_records(POST)
    }
    expected = {rkey: "value %d" % value for rkey, value in model.items()}
    assert visible == expected
    assert repo.record_count() == len(model)


@settings(max_examples=30, deadline=None)
@given(ops)
def test_car_round_trip_matches_state(sequence):
    repo, model, _ = apply_sequence(sequence)
    if repo.head is None:
        return  # nothing ever committed
    snapshot = import_car(repo.export_car(), verify_key=repo.keypair.public_key)
    restored = {
        path.split("/", 1)[1]: record["text"]
        for path, record in snapshot.list_records(POST)
    }
    assert restored == {rkey: "value %d" % value for rkey, value in model.items()}
    assert snapshot.rev == repo.rev


@settings(max_examples=30, deadline=None)
@given(ops)
def test_revs_strictly_increase(sequence):
    _, _, revs = apply_sequence(sequence)
    assert revs == sorted(revs)
    assert len(set(revs)) == len(revs)


@settings(max_examples=20, deadline=None)
@given(ops, ops)
def test_same_final_state_same_mst_root(first, second):
    """History independence: repos reaching the same record set agree on
    the MST root (and so on the unsigned commit contents)."""
    repo_a, model_a, _ = apply_sequence(first)
    repo_b, model_b, _ = apply_sequence(second)
    if model_a == model_b:
        assert repo_a.mst.root_cid() == repo_b.mst.root_cid()

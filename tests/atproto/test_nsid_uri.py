"""Tests for NSIDs and AT-URIs."""

import pytest

from repro.atproto.nsid import Nsid, NsidError
from repro.atproto.uri import AtUri, AtUriError


class TestNsid:
    def test_parse_bsky_post(self):
        nsid = Nsid("app.bsky.feed.post")
        # Authority is every segment but the name, in DNS (reversed) order.
        assert nsid.authority == "feed.bsky.app"
        assert nsid.name == "post"

    def test_minimum_three_segments(self):
        with pytest.raises(NsidError):
            Nsid("app.bsky")

    def test_name_cannot_start_with_digit(self):
        with pytest.raises(NsidError):
            Nsid("app.bsky.1post")

    def test_authority_allows_hyphens(self):
        assert Nsid.is_valid("com.my-app.record")

    def test_name_rejects_hyphens(self):
        assert not Nsid.is_valid("com.example.my-record")

    def test_equality_with_string(self):
        assert Nsid("app.bsky.feed.post") == "app.bsky.feed.post"

    def test_too_long(self):
        with pytest.raises(NsidError):
            Nsid("a" * 60 + "." + "b" * 60 + "." + "c" * 200)


class TestAtUri:
    def test_full_uri(self):
        uri = AtUri.parse("at://did:plc:abc/app.bsky.feed.post/3kdgeujwlq32y")
        assert uri.authority == "did:plc:abc"
        assert uri.collection == "app.bsky.feed.post"
        assert uri.rkey == "3kdgeujwlq32y"

    def test_collection_only(self):
        uri = AtUri.parse("at://did:plc:abc/app.bsky.feed.post")
        assert uri.rkey is None

    def test_authority_only(self):
        uri = AtUri.parse("at://did:plc:abc")
        assert uri.collection is None and uri.rkey is None

    def test_round_trip(self):
        text = "at://did:plc:abc/app.bsky.feed.like/3kabc2345fghi"
        assert str(AtUri.parse(text)) == text

    def test_rejects_wrong_scheme(self):
        with pytest.raises(AtUriError):
            AtUri.parse("https://example.com")

    def test_rejects_bad_collection(self):
        with pytest.raises(AtUriError):
            AtUri.parse("at://did:plc:abc/notannsid/rkey")

    def test_rejects_rkey_without_collection(self):
        with pytest.raises(AtUriError):
            AtUri("did:plc:abc", None, "rkey")

    def test_rejects_extra_components(self):
        with pytest.raises(AtUriError):
            AtUri.parse("at://did/app.bsky.feed.post/rkey/extra")

    def test_equality_and_hash(self):
        a = AtUri.parse("at://did:plc:x/app.bsky.feed.post/abc")
        b = AtUri.parse("at://did:plc:x/app.bsky.feed.post/abc")
        assert a == b
        assert len({a, b}) == 1
        assert a == "at://did:plc:x/app.bsky.feed.post/abc"

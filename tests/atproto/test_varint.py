"""Tests for unsigned varint encoding."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.atproto.varint import (
    VarintError,
    decode_varint,
    encode_varint,
    read_varint,
)


class TestEncode:
    def test_zero(self):
        assert encode_varint(0) == b"\x00"

    def test_single_byte_boundary(self):
        assert encode_varint(127) == b"\x7f"

    def test_two_byte_boundary(self):
        assert encode_varint(128) == b"\x80\x01"

    def test_known_value(self):
        assert encode_varint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(VarintError):
            encode_varint(-1)


class TestDecode:
    def test_round_trip_samples(self):
        for value in (0, 1, 127, 128, 255, 16384, 2**32, 2**60):
            data = encode_varint(value)
            decoded, offset = decode_varint(data)
            assert decoded == value
            assert offset == len(data)

    def test_offset_decoding(self):
        data = b"\xff" + encode_varint(300)
        value, offset = decode_varint(data, 1)
        assert value == 300
        assert offset == 3

    def test_truncated_raises(self):
        with pytest.raises(VarintError):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(VarintError):
            decode_varint(b"")

    def test_overlong_raises(self):
        with pytest.raises(VarintError):
            decode_varint(b"\x80" * 10 + b"\x01")

    def test_redundant_zero_byte_rejected(self):
        # 0x80 0x00 decodes to 0 but is not the canonical encoding.
        with pytest.raises(VarintError):
            decode_varint(b"\x80\x00")


class TestStream:
    def test_read_from_stream(self):
        stream = io.BytesIO(encode_varint(300) + encode_varint(7))
        assert read_varint(stream) == 300
        assert read_varint(stream) == 7

    def test_eof_at_start(self):
        with pytest.raises(EOFError):
            read_varint(io.BytesIO(b""))

    def test_truncated_mid_varint(self):
        with pytest.raises(VarintError):
            read_varint(io.BytesIO(b"\x80"))


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_round_trip_property(value):
    decoded, offset = decode_varint(encode_varint(value))
    assert decoded == value
    assert offset == len(encode_varint(value))

"""Tests for timestamp identifiers."""

import pytest
from hypothesis import given, strategies as st

from repro.atproto.tid import MAX_CLOCK_ID, MAX_MICROS, Tid, TidClock, TidError


class TestTid:
    def test_length_is_13(self):
        assert len(str(Tid(0, 0))) == 13

    def test_zero(self):
        assert str(Tid(0, 0)) == "2" * 13

    def test_round_trip(self):
        tid = Tid(1_700_000_000_000_000, 42)
        assert Tid.parse(str(tid)) == tid

    def test_string_order_matches_time_order(self):
        earlier = Tid(1000, 5)
        later = Tid(1001, 0)
        assert str(earlier) < str(later)
        assert earlier < later

    def test_clock_id_breaks_ties(self):
        a = Tid(1000, 1)
        b = Tid(1000, 2)
        assert str(a) < str(b)

    def test_out_of_range_micros(self):
        with pytest.raises(TidError):
            Tid(MAX_MICROS + 1, 0)

    def test_out_of_range_clock_id(self):
        with pytest.raises(TidError):
            Tid(0, MAX_CLOCK_ID + 1)

    def test_parse_rejects_wrong_length(self):
        with pytest.raises(TidError):
            Tid.parse("2222")

    def test_parse_rejects_bad_chars(self):
        with pytest.raises(TidError):
            Tid.parse("0" * 13)  # '0' not in sortable alphabet

    def test_is_valid(self):
        assert Tid.is_valid(str(Tid(123, 4)))
        assert not Tid.is_valid("not-a-tid")

    def test_comparison_with_non_tid_returns_notimplemented(self):
        assert Tid.__lt__(Tid(0, 0), "2222222222222") is NotImplemented

    def test_comparison_with_non_tid_raises_typeerror(self):
        with pytest.raises(TypeError):
            Tid(0, 0) < 42
        with pytest.raises(TypeError):
            Tid(0, 0) < "2222222222222"


class TestTidClock:
    def test_monotonic_under_repeated_timestamp(self):
        clock = TidClock()
        tids = [clock.next_tid(1000) for _ in range(5)]
        assert tids == sorted(tids)
        assert len(set(tids)) == 5

    def test_monotonic_under_backwards_time(self):
        clock = TidClock()
        first = clock.next_tid(5000)
        second = clock.next_tid(100)
        assert second > first

    def test_distinct_clock_ids_distinct_tids(self):
        a = TidClock(1).next_tid(777)
        b = TidClock(2).next_tid(777)
        assert a != b

    def test_invalid_clock_id(self):
        with pytest.raises(TidError):
            TidClock(MAX_CLOCK_ID + 1)


@given(
    st.integers(min_value=0, max_value=MAX_MICROS),
    st.integers(min_value=0, max_value=MAX_CLOCK_ID),
)
def test_tid_round_trip_property(micros, clock_id):
    tid = Tid(micros, clock_id)
    parsed = Tid.parse(str(tid))
    assert parsed.micros == micros
    assert parsed.clock_id == clock_id


@given(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_MICROS),
        st.integers(min_value=0, max_value=MAX_CLOCK_ID),
    ),
    st.tuples(
        st.integers(min_value=0, max_value=MAX_MICROS),
        st.integers(min_value=0, max_value=MAX_CLOCK_ID),
    ),
)
def test_string_order_is_value_order(a, b):
    ta, tb = Tid(*a), Tid(*b)
    assert (str(ta) < str(tb)) == (ta.to_int() < tb.to_int())

"""Tests for the secp256k1 implementation and the keypair abstraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atproto.crypto import (
    GX,
    GY,
    N,
    P,
    CryptoError,
    SigningKey,
    VerifyingKey,
    _scalar_mult,
    compress_point,
    decompress_point,
)
from repro.atproto.keys import (
    HmacKeypair,
    Secp256k1Keypair,
    make_keypair,
    public_key_from_did_key,
)


class TestCurve:
    def test_generator_on_curve(self):
        assert (GY * GY - GX * GX * GX - 7) % P == 0

    def test_generator_order(self):
        assert _scalar_mult(N, (GX, GY)) is None

    def test_scalar_mult_distributive(self):
        p5 = _scalar_mult(5, (GX, GY))
        p2 = _scalar_mult(2, (GX, GY))
        p3 = _scalar_mult(3, (GX, GY))
        from repro.atproto.crypto import _from_jacobian, _jacobian_add, _to_jacobian

        assert _from_jacobian(_jacobian_add(_to_jacobian(p2), _to_jacobian(p3))) == p5

    def test_point_compression_round_trip(self):
        point = _scalar_mult(123456789, (GX, GY))
        assert decompress_point(compress_point(point)) == point

    def test_decompress_rejects_off_curve(self):
        # x = 5 has no square root for y² on secp256k1 with prefix tweaks
        # possible; construct an x known to be off-curve.
        bad = b"\x02" + (0).to_bytes(32, "big")
        with pytest.raises(CryptoError):
            decompress_point(bad)


class TestSigning:
    def test_sign_verify(self):
        key = SigningKey.from_seed(b"seed-1")
        sig = key.sign(b"hello world")
        assert key.public_key.verify(b"hello world", sig)

    def test_signature_is_64_bytes_low_s(self):
        key = SigningKey.from_seed(b"seed-2")
        sig = key.sign(b"msg")
        assert len(sig) == 64
        s = int.from_bytes(sig[32:], "big")
        assert s <= N // 2

    def test_deterministic_signatures(self):
        key = SigningKey.from_seed(b"seed-3")
        assert key.sign(b"m") == key.sign(b"m")

    def test_wrong_message_fails(self):
        key = SigningKey.from_seed(b"seed-4")
        sig = key.sign(b"real")
        assert not key.public_key.verify(b"fake", sig)

    def test_wrong_key_fails(self):
        sig = SigningKey.from_seed(b"a").sign(b"m")
        assert not SigningKey.from_seed(b"b").public_key.verify(b"m", sig)

    def test_high_s_rejected(self):
        key = SigningKey.from_seed(b"seed-5")
        sig = key.sign(b"m")
        r = sig[:32]
        s = int.from_bytes(sig[32:], "big")
        high_s = (N - s).to_bytes(32, "big")
        assert not key.public_key.verify(b"m", r + high_s)

    def test_malformed_signature_length(self):
        key = SigningKey.from_seed(b"seed-6")
        assert not key.public_key.verify(b"m", b"\x00" * 63)


class TestScalarRangeRejection:
    """r and s must lie in [1, n-1]; out-of-range values are rejected
    before any curve arithmetic runs (no exceptions, just False)."""

    def setup_method(self):
        self.key = SigningKey.from_seed(b"range-seed")
        self.sig = self.key.sign(b"payload")
        self.r = self.sig[:32]
        self.s = self.sig[32:]

    def verify(self, sig: bytes) -> bool:
        return self.key.public_key.verify(b"payload", sig)

    def test_valid_baseline(self):
        assert self.verify(self.sig)

    def test_r_zero_rejected(self):
        assert not self.verify(b"\x00" * 32 + self.s)

    def test_s_zero_rejected(self):
        assert not self.verify(self.r + b"\x00" * 32)

    def test_r_equal_n_rejected(self):
        assert not self.verify(N.to_bytes(32, "big") + self.s)

    def test_s_equal_n_rejected(self):
        assert not self.verify(self.r + N.to_bytes(32, "big"))

    def test_r_above_n_rejected(self):
        assert not self.verify((N + 1).to_bytes(32, "big") + self.s)

    def test_s_maximum_field_value_rejected(self):
        assert not self.verify(self.r + b"\xff" * 32)

    def test_truncated_signature_rejected(self):
        assert not self.verify(self.sig[:63])
        assert not self.verify(self.sig[:32])
        assert not self.verify(b"")

    def test_oversized_signature_rejected(self):
        assert not self.verify(self.sig + b"\x00")

    def test_non_bytes_signature_rejected(self):
        assert not self.verify(None)
        assert not self.verify(self.sig.hex())

    def test_invalid_private_scalar(self):
        with pytest.raises(CryptoError):
            SigningKey(0)
        with pytest.raises(CryptoError):
            SigningKey(N)


class TestDidKey:
    def test_round_trip(self):
        key = SigningKey.from_seed(b"didkey")
        did_key = key.public_key.to_did_key()
        assert did_key.startswith("did:key:z")
        recovered = VerifyingKey.from_did_key(did_key)
        assert recovered == key.public_key

    def test_rejects_garbage(self):
        with pytest.raises(CryptoError):
            VerifyingKey.from_did_key("did:key:qnope")


class TestKeypairAbstraction:
    def test_secp256k1_keypair(self):
        pair = Secp256k1Keypair.from_seed(b"s")
        sig = pair.sign(b"data")
        assert pair.public_key.verify(b"data", sig)

    def test_hmac_keypair(self):
        pair = HmacKeypair.from_seed(b"s")
        sig = pair.sign(b"data")
        assert len(sig) == 64
        assert pair.public_key.verify(b"data", sig)
        assert not pair.public_key.verify(b"other", sig)

    def test_hmac_keys_differ_by_seed(self):
        assert HmacKeypair.from_seed(b"a").sign(b"m") != HmacKeypair.from_seed(b"b").sign(b"m")

    def test_did_key_round_trip_both_flavours(self):
        for pair in (HmacKeypair.from_seed(b"x"), Secp256k1Keypair.from_seed(b"x")):
            public = public_key_from_did_key(pair.did_key())
            sig = pair.sign(b"payload")
            assert public.verify(b"payload", sig)

    def test_factory_defaults_to_fast(self):
        assert isinstance(make_keypair(b"z"), HmacKeypair)
        assert isinstance(make_keypair(b"z", fast=False), Secp256k1Keypair)

    def test_hmac_secret_must_be_32_bytes(self):
        from repro.atproto.keys import KeyError_

        with pytest.raises(KeyError_):
            HmacKeypair(b"short")


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=1, max_size=32))
def test_sign_verify_property(message):
    key = SigningKey.from_seed(b"prop-seed")
    assert key.public_key.verify(message, key.sign(message))

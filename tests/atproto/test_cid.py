"""Tests for CIDs and TIDs."""

import pytest
from hypothesis import given, strategies as st

from repro.atproto.cid import (
    CODEC_DAG_CBOR,
    CODEC_RAW,
    Cid,
    CidError,
    cid_for_cbor,
    cid_for_raw,
)


class TestCid:
    def test_raw_cid_prefix(self):
        cid = cid_for_raw(b"hello")
        assert str(cid).startswith("bafkrei")  # raw + sha256 CIDv1 prefix

    def test_cbor_cid_prefix(self):
        cid = cid_for_cbor({"a": 1})
        assert str(cid).startswith("bafyrei")  # dag-cbor + sha256 prefix

    def test_round_trip_bytes(self):
        cid = cid_for_cbor([1, 2, 3])
        assert Cid.from_bytes(cid.to_bytes()) == cid

    def test_round_trip_string(self):
        cid = cid_for_raw(b"data")
        assert Cid.parse(str(cid)) == cid

    def test_deterministic(self):
        assert cid_for_cbor({"x": 1}) == cid_for_cbor({"x": 1})
        assert cid_for_cbor({"x": 1}) != cid_for_cbor({"x": 2})

    def test_codec_distinguishes(self):
        data = b"same bytes"
        assert cid_for_raw(data) != Cid(1, CODEC_DAG_CBOR, cid_for_raw(data).digest)

    def test_immutable(self):
        cid = cid_for_raw(b"x")
        with pytest.raises(AttributeError):
            cid.codec = CODEC_RAW

    def test_invalid_version(self):
        with pytest.raises(CidError):
            Cid(0, CODEC_RAW, b"\x00" * 32)

    def test_invalid_digest_length(self):
        with pytest.raises(CidError):
            Cid(1, CODEC_RAW, b"\x00" * 31)

    def test_trailing_bytes_rejected(self):
        cid = cid_for_raw(b"x")
        with pytest.raises(CidError):
            Cid.from_bytes(cid.to_bytes() + b"\x00")

    def test_hashable_and_ordered(self):
        a, b = cid_for_raw(b"a"), cid_for_raw(b"b")
        assert len({a, b, a}) == 2
        assert (a < b) != (b < a)


@given(st.binary(max_size=64))
def test_cid_string_round_trip(data):
    cid = cid_for_raw(data)
    assert Cid.parse(str(cid)) == cid

"""Tests for base32 / base58btc encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.atproto.multibase import (
    MultibaseError,
    base32_decode,
    base32_encode,
    base58btc_decode,
    base58btc_encode,
    multibase_decode,
    multibase_encode,
)


class TestBase32:
    def test_empty(self):
        assert base32_encode(b"") == ""
        assert base32_decode("") == b""

    def test_known_vector(self):
        # RFC 4648 test vector, lowercased and unpadded.
        assert base32_encode(b"foobar") == "mzxw6ytboi"

    def test_invalid_char(self):
        with pytest.raises(MultibaseError):
            base32_decode("abc1")  # '1' is not in the base32 alphabet

    def test_nonzero_padding_rejected(self):
        # 'b' = 1 in the alphabet: a single char leaves non-zero padding bits.
        with pytest.raises(MultibaseError):
            base32_decode("b")


class TestBase58:
    def test_empty(self):
        assert base58btc_encode(b"") == ""
        assert base58btc_decode("") == b""

    def test_known_vector(self):
        assert base58btc_encode(b"hello") == "Cn8eVZg"
        assert base58btc_decode("Cn8eVZg") == b"hello"

    def test_leading_zeros_preserved(self):
        data = b"\x00\x00\x01\x02"
        assert base58btc_decode(base58btc_encode(data)) == data
        assert base58btc_encode(data).startswith("11")

    def test_invalid_char(self):
        with pytest.raises(MultibaseError):
            base58btc_decode("0OIl")


class TestMultibase:
    def test_b_prefix(self):
        assert multibase_decode(multibase_encode("b", b"hi")) == b"hi"

    def test_z_prefix(self):
        assert multibase_decode(multibase_encode("z", b"hi")) == b"hi"

    def test_unknown_prefix(self):
        with pytest.raises(MultibaseError):
            multibase_decode("qabc")

    def test_empty_string(self):
        with pytest.raises(MultibaseError):
            multibase_decode("")


@given(st.binary(max_size=64))
def test_base32_round_trip(data):
    assert base32_decode(base32_encode(data)) == data


@given(st.binary(max_size=64))
def test_base58_round_trip(data):
    assert base58btc_decode(base58btc_encode(data)) == data

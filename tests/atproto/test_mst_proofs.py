"""Tests for MST inclusion proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atproto.cid import cid_for_raw
from repro.atproto.mst import Mst, prove_inclusion, verify_inclusion


def key(i: int) -> str:
    return "app.bsky.feed.post/key%06d" % i


@pytest.fixture(scope="module")
def tree():
    t = Mst()
    for i in range(250):
        t.set(key(i), cid_for_raw(b"%d" % i))
    return t


class TestProofs:
    def test_valid_proof_verifies(self, tree):
        root = tree.root_cid()
        proof = prove_inclusion(tree, key(42))
        assert verify_inclusion(root, key(42), cid_for_raw(b"42"), proof)

    def test_wrong_value_rejected(self, tree):
        proof = prove_inclusion(tree, key(42))
        assert not verify_inclusion(tree.root_cid(), key(42), cid_for_raw(b"43"), proof)

    def test_wrong_key_rejected(self, tree):
        proof = prove_inclusion(tree, key(42))
        assert not verify_inclusion(tree.root_cid(), key(43), cid_for_raw(b"43"), proof)

    def test_missing_key_raises(self, tree):
        with pytest.raises(KeyError):
            prove_inclusion(tree, "app.bsky.feed.post/ghost")

    def test_tampered_block_rejected(self, tree):
        proof = prove_inclusion(tree, key(7))
        tampered = list(proof)
        tampered[0] = tampered[0][:-1] + bytes([tampered[0][-1] ^ 0x01])
        assert not verify_inclusion(tree.root_cid(), key(7), cid_for_raw(b"7"), tampered)

    def test_wrong_root_rejected(self, tree):
        proof = prove_inclusion(tree, key(7))
        other = Mst()
        other.set(key(7), cid_for_raw(b"7"))
        assert not verify_inclusion(other.root_cid(), key(7), cid_for_raw(b"7"), proof)

    def test_truncated_proof_rejected(self, tree):
        proof = prove_inclusion(tree, key(200))
        if len(proof) > 1:
            assert not verify_inclusion(
                tree.root_cid(), key(200), cid_for_raw(b"200"), proof[:-1]
            )

    def test_proof_stale_after_update(self, tree):
        proof = prove_inclusion(tree, key(13))
        mutated = Mst()
        for i in range(250):
            mutated.set(key(i), cid_for_raw(b"%d" % i))
        mutated.set(key(13), cid_for_raw(b"replaced"))
        assert not verify_inclusion(mutated.root_cid(), key(13), cid_for_raw(b"13"), proof)


_CACHE = {}


def _tree_cache():
    if "tree" not in _CACHE:
        t = Mst()
        for i in range(250):
            t.set(key(i), cid_for_raw(b"%d" % i))
        _CACHE["tree"] = t
    return _CACHE["tree"]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=249))
def test_every_key_provable_property(index):
    tree = _tree_cache()
    proof = prove_inclusion(tree, key(index))
    assert verify_inclusion(
        tree.root_cid(), key(index), cid_for_raw(b"%d" % index), proof
    )

"""Tests for the DAG-CBOR codec."""

import pytest
from hypothesis import given, strategies as st

from repro.atproto.cbor import CborError, cbor_decode, cbor_encode
from repro.atproto.cid import cid_for_raw


class TestScalars:
    def test_small_ints(self):
        assert cbor_encode(0) == b"\x00"
        assert cbor_encode(23) == b"\x17"
        assert cbor_encode(24) == b"\x18\x18"

    def test_negative_ints(self):
        assert cbor_encode(-1) == b"\x20"
        assert cbor_decode(b"\x20") == -1
        assert cbor_decode(cbor_encode(-500)) == -500

    def test_large_ints(self):
        for value in (2**16, 2**32, 2**63):
            assert cbor_decode(cbor_encode(value)) == value

    def test_too_large_int(self):
        with pytest.raises(CborError):
            cbor_encode(2**64)

    def test_booleans_and_null(self):
        assert cbor_encode(None) == b"\xf6"
        assert cbor_encode(False) == b"\xf4"
        assert cbor_encode(True) == b"\xf5"
        assert cbor_decode(b"\xf6") is None

    def test_float_always_64bit(self):
        encoded = cbor_encode(1.5)
        assert encoded[0] == 0xFB
        assert len(encoded) == 9
        assert cbor_decode(encoded) == 1.5

    def test_nan_rejected(self):
        with pytest.raises(CborError):
            cbor_encode(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(CborError):
            cbor_encode(float("inf"))


class TestStringsAndBytes:
    def test_text(self):
        assert cbor_decode(cbor_encode("héllo")) == "héllo"

    def test_bytes(self):
        assert cbor_decode(cbor_encode(b"\x00\xff")) == b"\x00\xff"

    def test_invalid_utf8_rejected(self):
        # text string header (major 3, len 1) with invalid UTF-8 byte
        with pytest.raises(CborError):
            cbor_decode(b"\x61\xff")


class TestContainers:
    def test_list(self):
        assert cbor_decode(cbor_encode([1, "a", None])) == [1, "a", None]

    def test_tuple_encodes_as_list(self):
        assert cbor_decode(cbor_encode((1, 2))) == [1, 2]

    def test_map_key_ordering_is_canonical(self):
        # Keys sorted by (length, bytes): 'b' < 'aa'.
        encoded = cbor_encode({"aa": 1, "b": 2})
        assert encoded == cbor_encode({"b": 2, "aa": 1})
        decoded = cbor_decode(encoded)
        assert list(decoded.keys()) == ["b", "aa"]

    def test_non_string_keys_rejected(self):
        with pytest.raises(CborError):
            cbor_encode({1: "x"})

    def test_out_of_order_map_rejected(self):
        good = cbor_encode({"a": 1, "b": 2})
        # Swap the two single-entry bodies to produce out-of-order keys.
        bad = bytes([good[0]]) + good[3:5] + good[1:3]
        with pytest.raises(CborError):
            cbor_decode(bad)

    def test_nesting_limit(self):
        value = []
        for _ in range(200):
            value = [value]
        with pytest.raises(CborError):
            cbor_encode(value)


class TestCidLinks:
    def test_cid_round_trip(self):
        cid = cid_for_raw(b"hello world")
        decoded = cbor_decode(cbor_encode({"link": cid}))
        assert decoded["link"] == cid

    def test_tag_42_payload_must_have_identity_prefix(self):
        cid = cid_for_raw(b"x")
        good = cbor_encode(cid)
        # Corrupt the identity prefix byte (0x00 after the byte-string head).
        bad = bytearray(good)
        # head: 0xd8 0x2a (tag 42), then byte-string head, then 0x00 prefix
        prefix_index = good.index(b"\x00", 2)
        bad[prefix_index] = 0x01
        with pytest.raises(CborError):
            cbor_decode(bytes(bad))

    def test_other_tags_rejected(self):
        # tag 43 with an int payload
        with pytest.raises(CborError):
            cbor_decode(b"\xd8\x2b\x01")


class TestStrictness:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(CborError):
            cbor_decode(cbor_encode(1) + b"\x00")

    def test_truncated_rejected(self):
        with pytest.raises(CborError):
            cbor_decode(cbor_encode("hello")[:-1])

    def test_indefinite_length_rejected(self):
        with pytest.raises(CborError):
            cbor_decode(b"\x9f\x01\xff")  # indefinite array

    def test_non_minimal_int_rejected(self):
        with pytest.raises(CborError):
            cbor_decode(b"\x18\x01")  # 1 encoded with an extra byte


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(json_like)
def test_round_trip_property(value):
    assert cbor_decode(cbor_encode(value)) == value


@given(json_like)
def test_encoding_is_deterministic(value):
    assert cbor_encode(value) == cbor_encode(value)

"""Self-tests for the determinism & shard-safety analyzer.

Fixture-driven: every rule is exercised with (a) a violating snippet it
must flag and (b) the sanctioned pattern it must stay quiet on, plus the
pragma, allowlist, reporter, and CLI behaviors the rollout relies on.
The final class asserts the real tree lints clean — the enforceable
invariant `make lint-determinism` and CI check from this PR onward.
"""

import json
import os
import textwrap

import pytest

from repro.devtools.lint import (
    DEFAULT_CONFIG,
    DEFAULT_REGISTRY,
    LintConfig,
    exit_code,
    lint_paths,
    lint_source,
    module_name_for_path,
    render_json,
    render_text,
)
from repro.devtools.lint.cli import main as lint_main

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))

# Non-allowlisted, non-spawn-critical module: every rule is live, and
# module-level snippet assignments don't trip the spawn-state rule.
SIM_MODULE = "repro.core.pipeline"


def run(source, module=SIM_MODULE, config=None):
    """Lint a dedented snippet as if it were the given module."""
    return lint_source(textwrap.dedent(source), path="snippet.py", module=module, config=config)


def rule_ids(findings, include_suppressed=False):
    return sorted(
        {f.rule_id for f in findings if include_suppressed or not f.suppressed}
    )


class TestUnseededRandom:
    def test_global_call_fires(self):
        findings = run(
            """
            import random
            value = random.randint(1, 6)
            """
        )
        assert rule_ids(findings) == ["unseeded-random"]

    def test_from_import_fires(self):
        findings = run("from random import shuffle\n")
        assert rule_ids(findings) == ["unseeded-random"]

    def test_seeded_instance_quiet(self):
        findings = run(
            """
            import random
            from repro.simulation.sharding import derive_seed
            rng = random.Random(derive_seed(2024, "schedule"))
            value = rng.randint(1, 6)
            rng.shuffle([1, 2, 3])
            """
        )
        assert findings == []


class TestWallclock:
    def test_time_call_fires(self):
        findings = run(
            """
            import time
            started = time.time()
            """
        )
        assert rule_ids(findings) == ["wallclock"]

    def test_perf_counter_import_fires(self):
        findings = run("from time import perf_counter\n")
        assert rule_ids(findings) == ["wallclock"]

    def test_datetime_now_fires(self):
        findings = run(
            """
            import datetime
            stamp = datetime.datetime.now()
            """
        )
        assert rule_ids(findings) == ["wallclock"]

    def test_allowlisted_module_quiet(self):
        findings = run(
            """
            import time
            started = time.perf_counter()
            """,
            module="repro.obs.trace",
        )
        assert findings == []

    def test_time_sleep_quiet(self):
        findings = run(
            """
            import time
            time.sleep(0.1)
            """
        )
        assert findings == []


class TestUnsortedSetIter:
    def test_keys_union_fires(self):
        findings = run(
            """
            def diff(a, b):
                for key in a.keys() | b.keys():
                    yield key
            """
        )
        assert rule_ids(findings) == ["unsorted-set-iter"]

    def test_set_call_in_comprehension_fires(self):
        findings = run("names = [n for n in set(raw)]\n")
        assert rule_ids(findings) == ["unsorted-set-iter"]

    def test_set_literal_fires(self):
        findings = run(
            """
            for tag in {"a", "b", "c"}:
                print(tag)
            """
        )
        assert rule_ids(findings) == ["unsorted-set-iter"]

    def test_get_with_set_default_fires(self):
        # ``mapping.get(key, set())`` iterates a set-valued mapping entry
        # in hash order — the pattern behind the getTimeline tie-break bug.
        findings = run(
            """
            def timeline(following, actor):
                for did in following.get(actor, set()):
                    yield did
            """
        )
        assert rule_ids(findings) == ["unsorted-set-iter"]

    def test_get_with_set_default_in_comprehension_fires(self):
        findings = run("dids = [d for d in follows.get(actor, frozenset())]\n")
        assert rule_ids(findings) == ["unsorted-set-iter"]

    def test_get_with_non_set_default_quiet(self):
        findings = run(
            """
            for uri in posts_by_author.get(did, ()):
                print(uri)
            for uri in posts_by_author.get(did, []):
                print(uri)
            """
        )
        assert findings == []

    def test_get_with_set_default_sorted_quiet(self):
        findings = run(
            """
            for did in sorted(following.get(actor, set())):
                print(did)
            """
        )
        assert findings == []

    def test_sorted_wrapper_quiet(self):
        findings = run(
            """
            def diff(a, b):
                for key in sorted(a.keys() | b.keys()):
                    yield key
            items = [n for n in sorted(set(raw))]
            """
        )
        assert findings == []

    def test_plain_iteration_quiet(self):
        findings = run(
            """
            for item in items:
                print(item)
            for key in mapping:
                print(key)
            """
        )
        assert findings == []


class TestDictPopitem:
    def test_popitem_fires(self):
        findings = run("pair = cache.popitem()\n")
        assert rule_ids(findings) == ["dict-popitem"]

    def test_explicit_pop_quiet(self):
        assert run("value = cache.pop('key')\n") == []


class TestEnvRead:
    def test_environ_get_fires(self):
        findings = run(
            """
            import os
            debug = os.environ.get("REPRO_DEBUG")
            """
        )
        assert rule_ids(findings) == ["env-read"]

    def test_getenv_fires(self):
        findings = run(
            """
            import os
            debug = os.getenv("REPRO_DEBUG")
            """
        )
        assert rule_ids(findings) == ["env-read"]

    def test_allowlisted_cli_quiet(self):
        findings = run(
            """
            import os
            debug = os.environ.get("REPRO_DEBUG")
            """,
            module="repro.__main__",
        )
        assert findings == []


class TestIdHashOrder:
    def test_key_id_fires(self):
        findings = run("ordered = sorted(objects, key=id)\n")
        assert rule_ids(findings) == ["id-hash-order"]

    def test_lambda_hash_fires(self):
        findings = run("objects.sort(key=lambda o: hash(o.name))\n")
        assert rule_ids(findings) == ["id-hash-order"]

    def test_domain_key_quiet(self):
        findings = run(
            """
            ordered = sorted(posts, key=lambda p: (p.time_us, p.uri))
            smallest = min(posts, key=lambda p: p.seq)
            """
        )
        assert findings == []

    def test_key_kwarg_outside_sort_quiet(self):
        assert run("record = dict(key=id)\n") == []


class TestForkStartMethod:
    def test_fork_context_fires(self):
        findings = run(
            """
            import multiprocessing
            ctx = multiprocessing.get_context("fork")
            """
        )
        assert rule_ids(findings) == ["fork-start-method"]

    def test_forkserver_set_start_method_fires(self):
        findings = run(
            """
            import multiprocessing
            multiprocessing.set_start_method("forkserver", force=True)
            """
        )
        assert rule_ids(findings) == ["fork-start-method"]

    def test_spawn_quiet(self):
        findings = run(
            """
            import multiprocessing
            ctx = multiprocessing.get_context("spawn")
            """
        )
        assert findings == []


class TestWorkerClosure:
    def test_lambda_target_fires(self):
        findings = run(
            """
            def start(ctx, conn):
                return ctx.Process(target=lambda: conn.send(1))
            """
        )
        assert rule_ids(findings) == ["worker-closure"]

    def test_nested_function_target_fires(self):
        findings = run(
            """
            def start(ctx):
                def inner(conn):
                    pass
                return ctx.Process(target=inner, args=(None,))
            """
        )
        assert rule_ids(findings) == ["worker-closure"]

    def test_lambda_in_args_fires(self):
        findings = run(
            """
            def start(ctx, worker_main):
                return ctx.Process(target=worker_main, args=(lambda: 1,))
            """
        )
        assert rule_ids(findings) == ["worker-closure"]

    def test_module_level_target_quiet(self):
        findings = run(
            """
            def worker_main(conn, config):
                pass

            def start(ctx, conn, config):
                return ctx.Process(target=worker_main, args=(conn, config))
            """
        )
        assert findings == []


class TestUnboundedRecv:
    def test_bare_recv_fires_in_simulation_tree(self):
        findings = run(
            """
            def collect(conn):
                return conn.recv()
            """,
            module="repro.simulation.workers",
        )
        assert rule_ids(findings) == ["unbounded-recv"]

    def test_poll_guard_in_same_function_quiet(self):
        findings = run(
            """
            def collect(conn):
                while not conn.poll(0.05):
                    pass
                return conn.recv()
            """,
            module="repro.simulation.workers",
        )
        assert findings == []

    def test_poll_without_timeout_is_no_guard(self):
        # poll() with no timeout blocks exactly like recv() does.
        findings = run(
            """
            def collect(conn):
                conn.poll()
                return conn.recv()
            """,
            module="repro.simulation.workers",
        )
        assert rule_ids(findings) == ["unbounded-recv"]

    def test_outside_simulation_tree_quiet(self):
        findings = run(
            """
            def collect(conn):
                return conn.recv()
            """
        )
        assert findings == []

    def test_socket_recv_with_bufsize_quiet(self):
        findings = run(
            """
            def read(sock):
                return sock.recv(4096)
            """,
            module="repro.simulation.workers",
        )
        assert findings == []

    def test_pragma_suppresses_with_reason(self):
        findings = run(
            """
            def worker_loop(conn):
                return conn.recv()  # repro: allow(unbounded-recv) -- worker side: coordinator death raises EOFError
            """,
            module="repro.simulation.workers",
        )
        assert rule_ids(findings) == []
        assert rule_ids(findings, include_suppressed=True) == ["unbounded-recv"]


class TestModuleMutableState:
    def test_module_level_dict_fires_in_spawn_module(self):
        findings = run("CACHE = {}\n", module="repro.simulation.workers")
        assert rule_ids(findings) == ["module-mutable-state"]

    def test_constructor_call_fires(self):
        findings = run(
            """
            from collections import defaultdict
            ROUTES = defaultdict(list)
            """,
            module="repro.simulation.sharding",
        )
        assert rule_ids(findings) == ["module-mutable-state"]

    def test_immutable_constants_quiet(self):
        findings = run(
            """
            RATE_LIKES = 6.0
            SHARD_KEYS = ("a", "b")
            NAMES = frozenset({"x"})
            """,
            module="repro.simulation.engine",
        )
        # frozenset({...}) is a call over a set literal, not iteration.
        assert findings == []

    def test_non_spawn_module_quiet(self):
        assert run("CACHE = {}\n", module="repro.core.report") == []

    def test_dunder_and_function_local_quiet(self):
        findings = run(
            """
            __all__ = ["a"]

            def build():
                local = {}
                return local
            """,
            module="repro.simulation.workers",
        )
        assert findings == []


class TestSwallowedException:
    def test_bare_except_pass_fires(self):
        findings = run(
            """
            try:
                step()
            except:
                pass
            """
        )
        assert rule_ids(findings) == ["swallowed-exception"]

    def test_broad_tuple_continue_fires(self):
        findings = run(
            """
            for item in items:
                try:
                    step(item)
                except (ValueError, Exception):
                    continue
            """
        )
        assert rule_ids(findings) == ["swallowed-exception"]

    def test_narrow_type_quiet(self):
        findings = run(
            """
            try:
                step()
            except BlobError:
                pass
            """
        )
        assert findings == []

    def test_handled_broad_exception_quiet(self):
        findings = run(
            """
            try:
                step()
            except Exception as exc:
                failures.append(exc)
            """
        )
        assert findings == []


class TestPragmaSuppression:
    def test_pragma_suppresses_and_records_reason(self):
        findings = run(
            """
            import time
            t = time.time()  # repro: allow(wallclock) -- progress display only
            """
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].suppression_reason == "progress display only"
        assert exit_code(findings) == 0

    def test_pragma_only_covers_named_rule(self):
        findings = run(
            """
            import time
            t = time.time() and cache.popitem()  # repro: allow(wallclock) -- timing only
            """
        )
        active = rule_ids(findings)
        assert active == ["dict-popitem"]
        assert exit_code(findings) == 1

    def test_multi_rule_pragma(self):
        findings = run(
            "t = time.time() and d.popitem()  "
            "# repro: allow(wallclock, dict-popitem) -- fixture exercising both\n"
        )
        assert rule_ids(findings) == []
        assert len(findings) == 2

    def test_missing_reason_is_malformed(self):
        findings = run("t = 1  # repro: allow(wallclock)\n")
        assert rule_ids(findings) == ["pragma-syntax"]

    def test_unknown_rule_id_is_flagged(self):
        findings = run("t = 1  # repro: allow(no-such-rule) -- whatever\n")
        assert rule_ids(findings) == ["pragma-syntax"]
        assert "no-such-rule" in findings[0].message

    def test_pragma_in_string_is_not_a_pragma(self):
        findings = run(
            'DOC = "example: # repro: allow(wallclock)"\n'
        )
        assert findings == []


class TestFrameworkPlumbing:
    def test_module_name_for_path(self):
        assert (
            module_name_for_path("src/repro/simulation/engine.py")
            == "repro.simulation.engine"
        )
        assert module_name_for_path("src/repro/obs/__init__.py") == "repro.obs"
        assert module_name_for_path("src/repro/__main__.py") == "repro.__main__"
        assert module_name_for_path("tests/core/test_pipeline.py") == "tests.core.test_pipeline"

    def test_select_restricts_rules(self):
        config = LintConfig(select=("dict-popitem",))
        findings = run(
            """
            import time
            t = time.time()
            pair = cache.popitem()
            """,
            config=config,
        )
        assert rule_ids(findings) == ["dict-popitem"]

    def test_unknown_select_raises(self):
        config = LintConfig(select=("nope",))
        with pytest.raises(KeyError):
            run("x = 1\n", config=config)

    def test_syntax_error_is_reported_not_raised(self):
        findings = run("def broken(:\n")
        assert rule_ids(findings) == ["syntax-error"]

    def test_every_rule_documents_itself(self):
        for rule in DEFAULT_REGISTRY.rules():
            assert rule.id and rule.summary and rule.rationale

    def test_default_allowlist_names_known_rules(self):
        for rule_id in DEFAULT_CONFIG.allowlist:
            assert rule_id in DEFAULT_REGISTRY


class TestReporters:
    def _mixed_findings(self):
        return run(
            """
            import time
            a = time.time()
            b = time.time()  # repro: allow(wallclock) -- sanctioned fixture
            """
        )

    def test_text_report_hides_suppressed_by_default(self):
        findings = self._mixed_findings()
        text = render_text(findings)
        assert "1 finding (+1 suppressed by pragma)" in text
        assert "sanctioned fixture" not in text
        verbose = render_text(findings, verbose=True)
        assert "sanctioned fixture" in verbose

    def test_json_report_shape_and_determinism(self):
        findings = self._mixed_findings()
        payload = json.loads(render_json(findings))
        assert payload["summary"] == {
            "total": 2,
            "unsuppressed": 1,
            "suppressed": 1,
            "by_rule": {"wallclock": 1},
        }
        assert [f["line"] for f in payload["findings"]] == [3, 4]
        assert render_json(findings) == render_json(list(findings))

    def test_exit_codes(self):
        assert exit_code([]) == 0
        assert exit_code(self._mixed_findings()) == 1


class TestCli:
    def _write(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return str(path)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "x = 1\n")
        assert lint_main([path]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violation_exits_one_and_json_artefact(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "bad.py",
            """
            import time
            t = time.time()
            """,
        )
        json_out = tmp_path / "lint.json"
        assert lint_main([path, "--json-out", str(json_out)]) == 1
        assert "wallclock" in capsys.readouterr().out
        payload = json.loads(json_out.read_text())
        assert payload["summary"]["unsuppressed"] == 1

    def test_json_format_stdout(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "x = 1\n")
        assert lint_main([path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_REGISTRY.rules():
            assert rule.id in out

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.py", "x = 1\n")
        assert lint_main([path, "--select", "bogus"]) == 2

    def test_missing_path_exits_two(self):
        assert lint_main(["definitely/not/a/path.py"]) == 2

    def test_no_allowlist_audit_mode(self, tmp_path):
        path = self._write(
            tmp_path,
            "src/repro/obs/fake_trace.py".replace("/", "_"),
            """
            import time
            t = time.perf_counter()
            """,
        )
        # The same source linted as an allowlisted module is quiet unless
        # audit mode disables the allowlist.
        source = open(path).read()
        quiet = lint_source(source, module="repro.obs.trace")
        assert quiet == []
        audit = lint_source(
            source,
            module="repro.obs.trace",
            config=LintConfig(allowlist={}, spawn_modules=DEFAULT_CONFIG.spawn_modules),
        )
        assert rule_ids(audit) == ["wallclock"]


class TestTreeLintsClean:
    """The rollout invariant: the repository has zero unsuppressed findings."""

    def test_src_tests_benchmarks_scripts_clean(self):
        paths = [
            os.path.join(REPO_ROOT, name)
            for name in ("src", "tests", "benchmarks", "scripts", "examples")
        ]
        findings = lint_paths([p for p in paths if os.path.exists(p)])
        offending = [f.render() for f in findings if not f.suppressed]
        assert offending == [], "\n".join(offending)

    def test_suppressions_all_carry_reasons(self):
        findings = lint_paths([os.path.join(REPO_ROOT, "src")])
        for finding in findings:
            if finding.suppressed:
                assert finding.suppression_reason

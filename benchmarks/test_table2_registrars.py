"""T2 — Table 2: registrar concentration of handle domains."""

from repro.core.analysis import identity
from repro.core.report import render_table2


def test_table2_registrars(benchmark, bench_datasets, recorder):
    rows = benchmark(identity.table2_registrars, bench_datasets)
    assert rows, "WHOIS scan must yield registrar rows"
    # Paper: NameCheap leads with 20.94%; top-4 hold ~50%.  At bench scale
    # counts are small, so the claim is tie-aware: NameCheap's count must
    # equal the maximum.
    namecheap = next((r for r in rows if r.registrar_name == "NameCheap, Inc."), None)
    assert namecheap is not None
    assert namecheap.total == max(r.total for r in rows)
    recorder.record("T2", "NameCheap share (%)", 20.94, round(namecheap.share_pct, 2))
    conc = identity.registrar_concentration(bench_datasets)
    recorder.record("T2", "top-4 registrar share", 0.50, round(conc.top4_share, 3))
    assert conc.top4_share > 0.3
    active = bench_datasets.active
    recorder.record("T2", "WHOIS response rate", 0.92, round(active.whois_response_rate(), 3))
    recorder.record("T2", "IANA-ID extraction rate", 0.76, round(active.iana_id_rate(), 3))
    # 8% of WHOIS servers never answer; small domain counts add noise.
    assert 0.70 < active.whois_response_rate() <= 1.0
    print()
    print(render_table2(bench_datasets))

"""F3 — Figure 3: subdomain handles per registered domain."""

from repro.core.analysis import identity
from repro.core.report import render_fig3


def test_fig3_handle_domains(benchmark, bench_datasets, recorder):
    fig = benchmark(identity.subdomain_distribution, bench_datasets)
    counts = fig.sorted_counts()
    assert counts, "non-bsky.social handles must exist"
    # Paper: no provider exceeds a few hundred FQDNs (256 for the largest,
    # swifties.social); the distribution is a long tail of mostly-1 counts.
    top = fig.top(3)
    assert top[0][1] < 0.5 * sum(counts)
    ones = sum(1 for c in counts if c == 1)
    recorder.record("F3", "largest provider handle count (scaled)", 256, top[0][1])
    recorder.record("F3", "share of domains with a single handle", 0.9, round(ones / len(counts), 3))
    conc = identity.handle_concentration(bench_datasets)
    recorder.record("F3/S5", "bsky.social handle share", 0.989, round(conc.bsky_share, 4))
    assert conc.bsky_share > 0.97
    print()
    print(render_fig3(bench_datasets))

"""Render bench_comparison.json into the EXPERIMENTS.md comparison table.

Run after a benchmark session::

    pytest benchmarks/ --benchmark-only
    python benchmarks/render_comparison.py > comparison.md
"""

from __future__ import annotations

import json
import os
import sys

EXPERIMENT_TITLES = {
    "T1": "Table 1 — Firehose event types",
    "F1": "Figure 1 — Daily operations and active users",
    "F2": "Figure 2 — Language communities",
    "F3": "Figure 3 — Subdomain handles per registered domain",
    "F3/S5": "Figure 3 / §5 — Handle concentration",
    "T2": "Table 2 — Registrars",
    "F4": "Figure 4 — Label growth by source",
    "T3": "Table 3 — Top community labelers",
    "T4": "Table 4 — Label targets",
    "F5": "Figure 5 — Labels vs reaction time (per labeler)",
    "F6": "Figure 6 — Labels vs reaction time (per value)",
    "T6": "Table 6 — Labeler reaction times",
    "F7": "Figure 7 — Feed-generator growth",
    "F8": "Figure 8 — Feed description words",
    "F9": "Figure 9 — Labels on curated posts",
    "F10": "Figure 10 — Feed posts vs likes",
    "F11": "Figure 11 — Degree distributions",
    "F12": "Figure 12 — Feed hosting providers",
    "T5": "Table 5 — Feed-service features",
    "S4": "Section 4 — User activity",
    "S5": "Section 5 — Identity",
    "S6": "Section 6 — Moderation",
    "S7": "Section 7 — Recommendation",
    "S9": "Section 9 — Scalability",
    "pipeline": "End-to-end pipeline",
    "perf": "Commit-pipeline fast path",
}


def render(path: str) -> str:
    with open(path) as handle:
        rows = json.load(handle)
    by_experiment: dict[str, list[dict]] = {}
    for row in rows:
        by_experiment.setdefault(row["experiment"], []).append(row)
    lines = []
    order = list(EXPERIMENT_TITLES)
    for experiment in sorted(by_experiment, key=lambda e: order.index(e) if e in order else 99):
        title = EXPERIMENT_TITLES.get(experiment, experiment)
        lines.append("### %s" % title)
        lines.append("")
        lines.append("| Metric | Paper | Measured |")
        lines.append("|---|---|---|")
        for row in by_experiment[experiment]:
            lines.append("| %s | %s | %s |" % (row["metric"], row["paper"], row["measured"]))
        lines.append("")
    perf = render_perf()
    if perf:
        lines.append(perf)
    return "\n".join(lines)


def render_perf(path: str | None = None) -> str:
    """Baseline-vs-optimized table from BENCH_perf.json (if it exists)."""
    if path is None:
        path = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")
    if not os.path.exists(path):
        return ""
    with open(path) as handle:
        document = json.load(handle)
    baseline = document.get("baseline", {})
    optimized = document.get("optimized", {})
    speedup = document.get("speedup", {})
    lines = [
        "### Commit-pipeline fast path (BENCH_perf.json)",
        "",
        "| Metric | Baseline | Optimized | Speedup |",
        "|---|---|---|---|",
    ]
    for key in baseline:
        if key not in optimized:
            continue
        factor = speedup.get(key)
        lines.append(
            "| %s | %s | %s | %s |"
            % (
                key,
                _fmt_perf(baseline[key]),
                _fmt_perf(optimized[key]),
                "%.2fx" % factor if factor is not None else "—",
            )
        )
    lines.append("")
    return "\n".join(lines)


def _fmt_perf(value) -> str:
    if isinstance(value, int):
        return str(value)
    return "%.1f" % value if value >= 100 else "%.3f" % value


if __name__ == "__main__":
    default = os.path.join(os.path.dirname(__file__), "..", "bench_comparison.json")
    print(render(sys.argv[1] if len(sys.argv) > 1 else default))

"""Commit-pipeline fast-path benchmarks (perf_opt harness).

Times the hot loop — DAG-CBOR encoding, CID computation, MST insertion,
signed commits, weighted sampling — and the end-to-end tiny study, then
writes ``BENCH_perf.json`` (baseline vs optimized vs speedup) via the
same harness that backs ``python -m repro bench``.

Run with::

    PYTHONPATH=src pytest benchmarks/test_perf_pipeline.py --benchmark-only
"""

import os

from repro import bench

BENCH_PERF_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")


def test_cbor_microbench(benchmark, recorder):
    result = benchmark.pedantic(lambda: bench.bench_cbor(repeats=1), rounds=3, iterations=1)
    ops = result["cbor_encode_ops_per_s"]
    assert ops > bench.BASELINE["cbor_encode_ops_per_s"]
    recorder.record("perf", "cbor encode ops/s", "-", round(ops))


def test_cid_microbench(benchmark, recorder):
    result = benchmark.pedantic(lambda: bench.bench_cbor(repeats=1), rounds=3, iterations=1)
    ops = result["cid_for_cbor_ops_per_s"]
    assert ops > bench.BASELINE["cid_for_cbor_ops_per_s"]
    recorder.record("perf", "cid_for_cbor ops/s", "-", round(ops))


def test_mst_insert_microbench(benchmark, recorder):
    result = benchmark.pedantic(lambda: bench.bench_mst(repeats=1), rounds=3, iterations=1)
    ops = result["mst_insert_with_root_cid_ops_per_s"]
    assert ops > bench.BASELINE["mst_insert_with_root_cid_ops_per_s"]
    recorder.record("perf", "MST insert+root ops/s", "-", round(ops))


def test_commit_sign_microbench(benchmark, recorder):
    result = benchmark.pedantic(lambda: bench.bench_commit(repeats=1), rounds=3, iterations=1)
    ops = result["repo_create_record_ops_per_s"]
    assert ops > bench.BASELINE["repo_create_record_ops_per_s"]
    recorder.record("perf", "signed create_record ops/s", "-", round(ops))


def test_sampling_microbench(benchmark, recorder):
    result = benchmark.pedantic(lambda: bench.bench_sampling(repeats=1), rounds=3, iterations=1)
    ops = result["weighted_sample_ops_per_s"]
    assert ops > bench.BASELINE["weighted_sample_ops_per_s"]
    recorder.record("perf", "weighted samples/s", "-", round(ops))


def test_write_bench_perf_json(benchmark, recorder):
    """Full harness run; regenerates BENCH_perf.json and checks the
    ≥2x end-to-end acceptance bar of the fast-path work."""
    measured = benchmark.pedantic(bench.run_benchmarks, rounds=1, iterations=1)
    document = bench.write_bench_file(os.path.abspath(BENCH_PERF_PATH), measured)
    end_to_end = document["speedup"]["pipeline_tiny_wall_s"]
    # Standalone (``make bench``) the fast path measures >2x; inside the
    # benchmark session other tests share the machine, so guard at 1.5x
    # to stay noise-tolerant while still catching real regressions.
    assert end_to_end >= 1.5, "pipeline fast path regressed (%.2fx)" % end_to_end
    recorder.record("perf", "end-to-end pipeline speedup", "-", "%.2fx" % end_to_end)
    recorder.record(
        "perf", "tiny study events/s", "-", round(measured["pipeline_tiny_events_per_s"])
    )

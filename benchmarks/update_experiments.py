"""Rebuild EXPERIMENTS.md from the latest bench_comparison.json.

Keeps the hand-written header and deviation notes; swaps in the freshly
measured comparison tables.

Run after a benchmark session::

    pytest benchmarks/ --benchmark-only
    python benchmarks/update_experiments.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
EXPERIMENTS = os.path.join(REPO_ROOT, "EXPERIMENTS.md")
COMPARISON = os.path.join(REPO_ROOT, "bench_comparison.json")

BEGIN = "## Comparison tables"
END = "## Known deviations"


def main() -> int:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from render_comparison import render

    with open(EXPERIMENTS) as handle:
        text = handle.read()
    begin = text.index(BEGIN)
    end = text.index(END)
    tables = render(COMPARISON)
    updated = text[:begin] + BEGIN + "\n\n" + tables + "\n" + text[end:]
    with open(EXPERIMENTS, "w") as handle:
        handle.write(updated)
    print("EXPERIMENTS.md updated (%d bytes of tables)" % len(tables))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""S5 — Section 5 text: identity statistics."""

from repro.core.analysis import identity


def test_sec5_identity(benchmark, bench_datasets, recorder):
    mechanisms = benchmark(identity.ownership_mechanisms, bench_datasets)
    # Paper: 98.7% DNS TXT vs 1.3% well-known.
    assert mechanisms.dns_share > 0.9
    recorder.record("S5", "DNS TXT mechanism share", 0.987, round(mechanisms.dns_share, 3))

    methods = identity.identity_methods(bench_datasets)
    recorder.record("S5", "did:web documents", 6, methods.web)
    assert methods.web <= 6
    assert methods.plc > 100 * max(1, methods.web)

    cross = identity.tranco_cross_reference(bench_datasets)
    recorder.record("S5", "Tranco top-1M share", 0.028, round(cross.ranked_share, 3))
    assert cross.ranked_share < 0.25

    updates = identity.handle_update_stats(bench_datasets)
    assert updates.total_updates >= updates.unique_dids
    recorder.record("S5", "handle updates (scaled)", 44456, updates.total_updates)
    recorder.record(
        "S5", "final handle on bsky.social", 0.7574,
        round(updates.final_bsky_share, 3) if updates.unique_dids else None,
    )

    conc = identity.handle_concentration(bench_datasets)
    recorder.record("S5", "bsky.social share", 0.989, round(conc.bsky_share, 4))
    assert conc.bsky_share > 0.97

"""F8 — Figure 8: word frequencies in feed descriptions."""

from repro.core.analysis import feeds
from repro.core.report import render_fig8


def test_fig8_description_words(benchmark, bench_datasets, recorder):
    words = benchmark(feeds.description_word_frequencies, bench_datasets, 40)
    vocabulary = dict(words)
    # Paper's word cloud: the art community dominates ("art", "artists"),
    # and nsfw/sfw tagging appears.
    assert "art" in vocabulary
    assert "feed" in vocabulary or "posts" in vocabulary
    assert "nsfw" in vocabulary
    top10 = [w for w, _ in words[:10]]
    recorder.record("F8", "'art' in top words", True, "art" in top10)
    recorder.record("F8", "'nsfw' present", True, "nsfw" in vocabulary)
    # Artist platform links appear in descriptions (Section 7.1).
    joined = " ".join(
        m.description for m in bench_datasets.feed_generators.metadata.values()
    )
    assert any(site in joined for site in ("tumblr", "deviantart", "pixiv"))
    langs = feeds.description_languages(bench_datasets)
    total = sum(langs.values())
    recorder.record("F8", "en description share", 0.45, round(langs.get("en", 0) / total, 3))
    recorder.record("F8", "ja description share", 0.36, round(langs.get("ja", 0) / total, 3))
    print()
    print(render_fig8(bench_datasets))

"""F1 — Figure 1: daily operation and active-user counts."""

from repro.core.analysis import activity
from repro.core.report import render_fig1


def test_fig1_daily_activity(benchmark, bench_datasets, recorder):
    fig = benchmark(activity.daily_activity, bench_datasets)
    assert fig.days
    # Growth: April 2024 actives dwarf early-2023 actives.
    early = [fig.active_users[d] for d in fig.days if d < "2023-06"]
    april = [fig.active_users[d] for d in fig.days if d.startswith("2024-04")]
    assert april and max(april) > max(early or [0])
    # Post-opening decline: March 2024 > May 2024 average actives.
    march = [fig.active_users[d] for d in fig.days if d.startswith("2024-03")]
    may = [fig.active_users[d] for d in fig.days if d.startswith("2024-04-2")]
    if march and may:
        assert sum(march) / len(march) >= 0.5 * (sum(may) / len(may))
    dailies = activity.steady_state_dailies(bench_datasets)
    # Paper (April 2024): 500K actives, 3M likes, 800K posts, 300K reposts
    # per day → ratios likes/actives=6, posts/actives=1.6, reposts=0.6.
    recorder.record(
        "F1", "daily likes per active", 6.0, round(dailies["likes"] / dailies["active_users"], 2)
    )
    recorder.record(
        "F1", "daily posts per active", 1.6, round(dailies["posts"] / dailies["active_users"], 2)
    )
    recorder.record(
        "F1",
        "daily reposts per active",
        0.6,
        round(dailies["reposts"] / dailies["active_users"], 2),
    )
    print()
    print(render_fig1(bench_datasets))

"""F7 — Figure 7: cumulative feed generators, likes, creator followers."""

from repro.core.analysis import feeds
from repro.core.report import render_fig7


def test_fig7_feedgen_growth(benchmark, bench_datasets, recorder):
    fig = benchmark(feeds.feed_growth, bench_datasets)
    assert fig.days
    for series in (
        fig.cumulative_feeds,
        fig.cumulative_feed_likes,
        fig.cumulative_creator_followers,
    ):
        values = [series[d] for d in fig.days]
        assert values == sorted(values), "cumulative series must be monotone"
    # Feeds only exist after the May 2023 introduction.
    first_feed_day = next(d for d in fig.days if fig.cumulative_feeds[d] > 0)
    assert first_feed_day >= "2023-05"
    # Growth acceleration at the February 2024 public opening.
    jan = fig.cumulative_feeds.get(max((d for d in fig.days if d < "2024-02"), default=fig.days[0]), 0)
    final = fig.cumulative_feeds[fig.days[-1]]
    assert final > jan
    recorder.record("F7", "first feed generator month", "2023-05", first_feed_day[:7])
    recorder.record("F7", "feeds at window end (scaled)", 43063, final)
    print()
    print(render_fig7(bench_datasets))

"""Benchmark fixtures.

One bench-scale world + measurement pipeline is built per session (the
expensive part, a few minutes); each benchmark then times the analysis
that regenerates one table or figure, asserts the paper's qualitative
shape, and records paper-vs-measured values into
``bench_comparison.json`` for EXPERIMENTS.md.
"""

import json
import os

import pytest

from repro.core.pipeline import run_study
from repro.simulation.config import PAPER, SimulationConfig

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "bench_comparison.json")

# Scale used by the benchmark harness; override with REPRO_BENCH_SCALE.
_DENOM = float(os.environ.get("REPRO_BENCH_SCALE_DENOM", "4000"))  # repro: allow(env-read) -- bench-harness scale knob; never reaches simulation state


@pytest.fixture(scope="session")
def bench_study():
    config = SimulationConfig(seed=2024, scale=1 / _DENOM, feed_scale=1 / 250)
    world, datasets = run_study(config)
    return world, datasets


@pytest.fixture(scope="session")
def bench_world(bench_study):
    return bench_study[0]


@pytest.fixture(scope="session")
def bench_datasets(bench_study):
    return bench_study[1]


class ComparisonRecorder:
    """Collects (experiment, metric, paper value, measured value) rows."""

    def __init__(self):
        self.rows = []

    def record(self, experiment: str, metric: str, paper, measured):
        self.rows.append(
            {
                "experiment": experiment,
                "metric": metric,
                "paper": paper,
                "measured": measured,
            }
        )

    def paper(self, key: str):
        return PAPER[key]


@pytest.fixture(scope="session")
def recorder():
    rec = ComparisonRecorder()
    yield rec
    path = os.path.abspath(RESULTS_PATH)
    # Merge with any existing rows so a partial run (e.g. only the perf
    # benchmarks) does not clobber the full comparison table.
    rows = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                rows = {(r["experiment"], r["metric"]): r for r in json.load(handle)}
        except (ValueError, KeyError, TypeError):
            rows = {}
    rows.update({(r["experiment"], r["metric"]): r for r in rec.rows})
    merged = sorted(rows.values(), key=lambda row: (row["experiment"], row["metric"]))
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2)

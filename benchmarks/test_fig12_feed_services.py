"""F12 — Figure 12: feed-generator hosting providers + Pareto."""

from repro.core.analysis import feeds
from repro.core.report import render_fig12


def test_fig12_feed_services(benchmark, bench_datasets, recorder):
    rows = benchmark(feeds.provider_shares, bench_datasets)
    assert rows
    by_provider = {r.provider: r for r in rows}
    skyfeed = by_provider.get("did:web:skyfeed.me")
    goodfeeds = by_provider.get("did:web:goodfeeds.co")
    assert skyfeed is not None and rows[0] is skyfeed
    # Paper: Skyfeed hosts 85.86% of feeds but only 30.3% of posts while
    # drawing 61.2% of likes; Goodfeeds is the reverse (4.36% of feeds,
    # 35.6% of posts, 1.2% of likes).
    recorder.record("F12", "Skyfeed feed share", 0.8586, round(skyfeed.feed_share, 3))
    recorder.record("F12", "Skyfeed post share", 0.303, round(skyfeed.post_share, 3))
    recorder.record("F12", "Skyfeed like share", 0.612, round(skyfeed.like_share, 3))
    assert skyfeed.feed_share > 0.7
    assert skyfeed.post_share < skyfeed.feed_share
    if goodfeeds is not None:
        recorder.record("F12", "Goodfeeds feed share", 0.0436, round(goodfeeds.feed_share, 3))
        recorder.record("F12", "Goodfeeds post share", 0.356, round(goodfeeds.post_share, 3))
        recorder.record("F12", "Goodfeeds like share", 0.012, round(goodfeeds.like_share, 3))
        assert goodfeeds.post_share > goodfeeds.feed_share
        assert goodfeeds.like_share < goodfeeds.post_share
    top3 = feeds.top_provider_concentration(bench_datasets)
    recorder.record("F12", "top-3 provider share", 0.958, round(top3, 3))
    assert top3 > 0.85
    print()
    print(render_fig12(bench_datasets))

"""F10 — Figure 10: feed posts vs likes scatter."""

from repro.core.analysis import feeds
from repro.core.report import render_fig10


def test_fig10_posts_vs_likes(benchmark, bench_datasets, recorder):
    points = benchmark(feeds.posts_vs_likes, bench_datasets)
    assert points
    stats = feeds.posts_vs_likes_summary(bench_datasets)
    # Paper: likes are NOT directly proportional to posts; personalized
    # feeds sit at (0 posts, many likes), aggregators at (many posts, few
    # likes).
    assert stats.correlation < 0.8
    assert stats.never_posted > 0
    recorder.record("F10", "posts-likes correlation", "weak", round(stats.correlation, 3))
    recorder.record(
        "F10", "never-posted share", 0.094, round(stats.never_posted / stats.total_feeds, 3)
    )
    recorder.record("F10", "high-like zero-post feeds", ">0", stats.high_like_no_post)
    top_liked = max(points, key=lambda p: p.likes)
    top_posted = max(points, key=lambda p: p.posts)
    assert top_posted.likes < top_liked.likes or top_posted.uri == top_liked.uri
    print()
    print(render_fig10(bench_datasets))

"""S9 — Discussion: firehose bandwidth per subscriber.

The paper estimates the Firehose already delivers ≈30 GB/day to every
subscribed client.  The simulated stream's measured volume, scaled back up
by the population factor, should land in the same order of magnitude.
"""

from repro.core.analysis import summary


def test_sec9_firehose_bandwidth(benchmark, bench_datasets, bench_world, recorder):
    estimate = benchmark(
        summary.firehose_bandwidth, bench_datasets, bench_world.config.scale
    )
    assert estimate.days_observed > 30  # the ~8-week collection window
    assert estimate.bytes_per_day > 0
    recorder.record(
        "S9", "firehose GB/day (full-scale equivalent)", 30.0,
        round(estimate.full_scale_gb_per_day, 1),
    )
    # Same order of magnitude: a tenth to ten times the paper's estimate.
    assert 3.0 < estimate.full_scale_gb_per_day < 300.0

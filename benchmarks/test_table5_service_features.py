"""T5 — Table 5: feed-service feature matrix.

The matrix is a property of the platform implementations themselves; the
benchmark both regenerates it and *behaviourally* verifies two entries by
attempting to create feeds.
"""

import pytest

from repro.core.analysis import feeds
from repro.core.report import render_table5
from repro.services.feedgen import FeedError, FeedRule
from repro.services.feedservice import (
    BLUEFEED_PROFILE,
    SKYFEED_PROFILE,
    FeedServicePlatform,
)


def test_table5_service_features(benchmark, recorder):
    matrix = benchmark(feeds.table5_feature_matrix)
    # Spot-check against the paper's Table 5.
    assert matrix["filter:regex-text"] == {
        "Skyfeed": True,
        "Bluefeed": False,
        "Blueskyfeeds": False,
        "Goodfeeds": False,
        "Blueskyfeedcreator": False,
    }
    assert matrix["input:whole-network"]["Goodfeeds"]
    assert not matrix["input:whole-network"]["Blueskyfeeds"]
    assert matrix["other:paid-plans"] == {
        "Skyfeed": False,
        "Bluefeed": False,
        "Blueskyfeeds": False,
        "Goodfeeds": False,
        "Blueskyfeedcreator": True,
    }
    recorder.record("T5", "platforms compared", 5, len(matrix["filter:regex-text"]))
    recorder.record("T5", "regex exclusive to Skyfeed", True, True)

    # Behavioural check: the matrix is enforced, not just declared.
    skyfeed = FeedServicePlatform(SKYFEED_PROFILE, "did:web:sf.test", "https://sf.test")
    skyfeed.create_feed(
        "did:plc:" + "c" * 24,
        "at://did:plc:%s/app.bsky.feed.generator/rx" % ("c" * 24),
        FeedRule(whole_network=True, regex=r"\bcats\b"),
    )
    bluefeed = FeedServicePlatform(BLUEFEED_PROFILE, "did:web:bf.test", "https://bf.test")
    with pytest.raises(FeedError):
        bluefeed.create_feed(
            "did:plc:" + "c" * 24,
            "at://did:plc:%s/app.bsky.feed.generator/rx" % ("c" * 24),
            FeedRule(whole_network=True, regex=r"\bcats\b"),
        )
    print()
    print(render_table5())

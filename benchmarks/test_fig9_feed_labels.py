"""F9 — Figure 9: top labels on posts curated by feed generators."""

from repro.core.analysis import feeds
from repro.core.report import render_fig9


def test_fig9_feed_labels(benchmark, bench_datasets, recorder):
    stats = benchmark(feeds.feed_label_analysis, bench_datasets)
    assert stats.feeds_examined > 0
    assert stats.heavily_labeled <= stats.feeds_with_any_label
    # Paper: 12.6% of feeds have some labeled content; 0.53% are ≥10%
    # labeled, dominated by explicit-content labels.
    recorder.record("F9", "feeds with labeled content share", 0.126, round(stats.labeled_share, 3))
    recorder.record(
        "F9", "heavily-labeled feed share", 0.0053, round(stats.heavily_labeled_share, 4)
    )
    if stats.dominant_label_counts:
        dominant = [value for value, _ in stats.dominant_label_counts.most_common(3)]
        explicit = {"porn", "sexual", "nudity", "nsfw", "no-alt-text", "spam"}
        assert explicit & set(dominant)
        recorder.record("F9", "top dominant label", "porn", dominant[0])
    print()
    print(render_fig9(bench_datasets))

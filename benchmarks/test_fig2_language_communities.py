"""F2 — Figure 2: language-community activity."""

from repro.core.analysis import activity
from repro.core.report import render_fig2


def test_fig2_language_communities(benchmark, bench_datasets, recorder):
    fig = benchmark(activity.language_communities, bench_datasets)
    ranked = [lang for lang, _ in fig.users_per_language.most_common()]
    # Paper: English leads (~800K), Japanese close behind (~700K),
    # Portuguese and German next.
    assert ranked[0] in ("en", "ja")
    assert set(ranked[:2]) == {"en", "ja"}
    total = sum(fig.users_per_language.values())
    recorder.record(
        "F2", "en user share", 0.42, round(fig.users_per_language.get("en", 0) / total, 3)
    )
    recorder.record(
        "F2", "ja user share", 0.36, round(fig.users_per_language.get("ja", 0) / total, 3)
    )
    # The Portuguese April surge: actives in April >> March (paper: 3K→30K).
    pt = fig.daily_active_by_lang.get("pt", {})
    march = sum(v for d, v in pt.items() if d.startswith("2024-03"))
    april = sum(v for d, v in pt.items() if d.startswith("2024-04"))
    if march:
        recorder.record("F2", "pt April/March active ratio", 10.0, round(april / march, 2))
        assert april > march
    print()
    print(render_fig2(bench_datasets))

"""F11 — Figure 11: follow degree distributions, creators highlighted."""

from repro.core.analysis import graph
from repro.core.report import render_fig11


def test_fig11_degree_distributions(benchmark, bench_datasets, recorder):
    analysis = benchmark(graph.degree_distributions, bench_datasets)
    assert analysis.accounts > 100
    # Heavy tail: the max in-degree dwarfs the median.
    degrees = sorted(analysis.in_degree.histogram.items())
    max_in = degrees[-1][0]
    assert max_in > 20
    # Paper: feed creators concentrate at high in-degree / low out-degree.
    assert analysis.creators_skew_popular()
    mean_in_all = analysis.in_degree.mean_degree()
    mean_in_creators = analysis.in_degree.mean_degree(creators_only=True)
    recorder.record("F11", "creator/all mean in-degree ratio", ">1", round(mean_in_creators / mean_in_all, 2))
    mean_out_all = analysis.out_degree.mean_degree()
    mean_out_creators = analysis.out_degree.mean_degree(creators_only=True)
    recorder.record(
        "F11", "creator/all mean out-degree ratio", "<~1", round(mean_out_creators / max(0.01, mean_out_all), 2)
    )
    print()
    print(render_fig11(bench_datasets))

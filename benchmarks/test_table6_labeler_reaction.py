"""T6 — Table 6: per-labeler reaction-time table."""

from repro.core.analysis import moderation
from repro.core.report import render_table6


def test_table6_labeler_reaction(benchmark, bench_datasets, bench_world, recorder):
    rows = benchmark(moderation.labeler_reaction_times, bench_datasets)
    assert rows[0].share_pct > 30  # rank 1 dominates (paper: 72.91%)
    shares = sum(r.share_pct for r in rows)
    assert shares <= 100.0 + 1e-6
    by_did = {r.did: r for r in bench_world.labelers if r.did}
    # Rank 1 is the alt-text labeler with sub-second median and tiny IQD.
    top = by_did[rows[0].did]
    assert top.spec.key == "baatl"
    assert rows[0].reaction.median_s < 5
    recorder.record("T6", "rank-1 share (%)", 72.91, round(rows[0].share_pct, 2))
    recorder.record("T6", "rank-1 median RT (s)", 0.58, round(rows[0].reaction.median_s, 2))
    recorder.record("T6", "rank-1 IQD (s)", 0.10, round(rows[0].reaction.iqd_s, 2))
    official_row = next(
        (r for r in rows if by_did.get(r.did) and by_did[r.did].spec.is_official), None
    )
    if official_row is not None:
        recorder.record("T6", "official median RT (s)", 1.76, round(official_row.reaction.median_s, 2))
        assert official_row.reaction.median_s < 60
    print()
    print(render_table6(bench_datasets))

"""F5 — Figure 5: labels produced vs reaction time (per labeler)."""

from repro.core.analysis import feeds as feeds_analysis
from repro.core.analysis import moderation
from repro.core.report import render_fig5

import math


def test_fig5_reaction_time(benchmark, bench_datasets, recorder):
    rows = benchmark(moderation.labeler_reaction_times, bench_datasets)
    assert len(rows) >= 5
    # Paper's relationship: more labels → faster reactions (automation).
    xs = [math.log10(max(1, r.total)) for r in rows]
    ys = [math.log10(max(0.05, r.reaction.median_s)) for r in rows]
    correlation = feeds_analysis.pearson(xs, ys)
    assert correlation < -0.3, "volume and reaction time must anti-correlate"
    recorder.record("F5", "log-volume vs log-median-RT correlation", "negative", round(correlation, 3))
    busiest = rows[0]
    assert busiest.reaction.median_s < 30
    recorder.record("F5", "busiest labeler median RT (s)", 0.58, round(busiest.reaction.median_s, 2))
    slowest = max(rows, key=lambda r: r.reaction.median_s)
    recorder.record("F5", "slowest labeler median RT (s)", 1_585_404.55, round(slowest.reaction.median_s, 1))
    assert slowest.reaction.median_s > 1000
    print()
    print(render_fig5(bench_datasets))

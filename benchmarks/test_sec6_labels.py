"""S6 — Section 6 text: labeler counts, label statistics, hosting."""

from repro.core.analysis import moderation


def test_sec6_labels(benchmark, bench_datasets, recorder):
    official = moderation.find_official_labeler_did(bench_datasets)
    stats = benchmark(moderation.label_statistics, bench_datasets, official)

    labels = bench_datasets.labels
    # Paper: 62 announced, 46 functional, 36 issued ≥1 label.
    assert labels.announced_count() == 62
    assert labels.functional_count() == 46
    assert labels.active_count() == 36
    recorder.record("S6", "labelers announced", 62, labels.announced_count())
    recorder.record("S6", "labelers functional", 46, labels.functional_count())
    recorder.record("S6", "labelers active", 36, labels.active_count())

    # Rescinds: 23,394 of 3,402,009 (0.69%).
    rescind_share = stats.rescinded / max(1, stats.total_interactions)
    recorder.record("S6", "rescinded share", 0.0069, round(rescind_share, 4))
    assert rescind_share < 0.05

    # Distinct values: 222 raw → 196 after cleaning.
    recorder.record("S6", "distinct label values (raw)", 222, stats.distinct_values_raw)
    recorder.record("S6", "distinct label values (clean)", 196, stats.distinct_values_clean)
    assert stats.distinct_values_clean <= stats.distinct_values_raw

    # Overlap: 3.2% multi-labeler objects; 1.8% official+community.
    recorder.record("S6", "multi-labeler object share", 0.032, round(stats.multi_labeler_share, 3))
    recorder.record("S6", "official+community overlap", 0.018, round(stats.overlap_share, 3))
    assert stats.multi_labeler_share < 0.15

    # ~4.21% of April posts carried at least one label.
    if stats.window_posts:
        share = stats.labeled_window_posts / stats.window_posts
        recorder.record("S6", "labeled share of window posts", 0.0421, round(share, 4))

    hosting = moderation.labeler_hosting(bench_datasets)
    recorder.record("S6", "cloud/proxied labelers", 40, hosting.cloud_or_proxied)
    recorder.record("S6", "residential labelers", 6, hosting.residential)
    recorder.record("S6", "unreachable labelers", 16, hosting.unreachable)
    assert (hosting.cloud_or_proxied, hosting.residential, hosting.unreachable) == (40, 6, 16)

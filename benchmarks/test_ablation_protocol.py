"""Ablation benchmarks for the substrate's design choices (DESIGN.md).

* MST maintenance: incremental updates vs full canonical rebuilds — the
  reason repositories stay O(log n) per commit;
* signing scheme: pure-Python secp256k1 vs the HMAC simulation keys — the
  documented substitution that makes million-commit worlds feasible;
* feed routing: inverted-index router vs naive scan over every feed — the
  choice that keeps per-post cost independent of ecosystem size;
* codec round-trips: DAG-CBOR and CARv1 throughput.
"""

import random

from repro.atproto.car import read_car, write_car
from repro.atproto.cbor import cbor_decode, cbor_encode
from repro.atproto.cid import cid_for_raw
from repro.atproto.keys import HmacKeypair, Secp256k1Keypair
from repro.atproto.mst import Mst, build_canonical
from repro.services.feedgen import CuratedFeed, FeedRouter, FeedRule, PostFeatures, tokenize


def _items(n):
    return {
        "app.bsky.feed.post/key%06d" % i: cid_for_raw(b"%d" % i) for i in range(n)
    }


class TestMstAblation:
    N = 400

    def test_mst_incremental_updates(self, benchmark):
        items = _items(self.N)
        base = build_canonical(items)

        def incremental():
            tree = Mst(base.root)
            for i in range(50):
                tree.set("app.bsky.feed.post/new%06d" % i, cid_for_raw(b"n%d" % i))
                tree.root_cid()
            return tree

        tree = benchmark(incremental)
        assert len(tree) == self.N + 50

    def test_mst_full_rebuilds(self, benchmark):
        """The ablated alternative: rebuild the canonical tree per write."""
        items = _items(self.N)

        def rebuild():
            working = dict(items)
            tree = None
            for i in range(50):
                working["app.bsky.feed.post/new%06d" % i] = cid_for_raw(b"n%d" % i)
                tree = build_canonical(working)
                tree.root_cid()
            return tree

        tree = benchmark(rebuild)
        assert len(tree) == self.N + 50


class TestSigningAblation:
    MESSAGE = b"commit bytes " * 8

    def test_hmac_signing(self, benchmark):
        pair = HmacKeypair.from_seed(b"bench")
        sig = benchmark(pair.sign, self.MESSAGE)
        assert pair.public_key.verify(self.MESSAGE, sig)

    def test_secp256k1_signing(self, benchmark):
        pair = Secp256k1Keypair.from_seed(b"bench")
        sig = benchmark(pair.sign, self.MESSAGE)
        assert pair.public_key.verify(self.MESSAGE, sig)


def _make_posts(count):
    rng = random.Random(0)
    topics = ["art", "cats", "ramen", "tech", "music"]
    posts = []
    for index in range(count):
        text = "post %d about %s today" % (index, topics[rng.randrange(len(topics))])
        posts.append(
            PostFeatures(
                uri="at://did:plc:%s/app.bsky.feed.post/%d" % ("u" * 24, index),
                author="did:plc:" + "u" * 24,
                time_us=index,
                text=text,
                langs=("en",),
                tokens=frozenset(tokenize(text)),
            )
        )
    return posts


def _make_feeds(count):
    topics = ["art", "cats", "ramen", "tech", "music"]
    return [
        CuratedFeed(
            "at://c/app.bsky.feed.generator/f%d" % i,
            FeedRule(keywords=frozenset({topics[i % len(topics)], "kw%d" % i})),
        )
        for i in range(count)
    ]


class TestRoutingAblation:
    def test_inverted_index_router(self, benchmark):
        feeds = _make_feeds(300)
        posts = _make_posts(200)

        def route_all():
            router = FeedRouter()
            for feed in feeds:
                router.register(feed)
            delivered = 0
            for post in posts:
                delivered += router.route(post)
            return delivered

        delivered = benchmark(route_all)
        assert delivered > 0

    def test_naive_scan_routing(self, benchmark):
        """The ablated alternative: test every post against every feed."""
        feeds = _make_feeds(300)
        posts = _make_posts(200)

        def route_all():
            delivered = 0
            for post in posts:
                for feed in feeds:
                    if feed.matches(post):
                        delivered += 1
            return delivered

        delivered = benchmark(route_all)
        assert delivered > 0


class TestCodecThroughput:
    RECORD = {
        "$type": "app.bsky.feed.post",
        "text": "a fairly typical post body with some length to it",
        "createdAt": "2024-04-01T12:00:00.000Z",
        "langs": ["en"],
        "embed": {"images": [{"alt": "a description"}]},
    }

    def test_dag_cbor_round_trip(self, benchmark):
        def round_trip():
            return cbor_decode(cbor_encode(self.RECORD))

        assert benchmark(round_trip)["text"] == self.RECORD["text"]

    def test_car_round_trip(self, benchmark):
        blocks = [(cid_for_raw(b"blk%d" % i), b"blk%d" % i * 20) for i in range(100)]
        root = blocks[0][0]

        def round_trip():
            return read_car(write_car(root, blocks))

        roots, parsed = benchmark(round_trip)
        assert roots == [root]
        assert len(parsed) == 100

"""F6 — Figure 6: labels per value vs reaction time."""

from repro.core.analysis import moderation
from repro.core.report import render_fig6


def test_fig6_value_reaction_time(benchmark, bench_datasets, recorder):
    rows = benchmark(moderation.value_reaction_times, bench_datasets)
    by_value = {}
    for row in rows:
        by_value.setdefault(row.value, row)
    # The high-volume automated values sit in the fast corner...
    for value in ("no-alt-text", "porn"):
        if value in by_value:
            assert by_value[value].reaction.median_s < 60
    # ...while the official labeler's deliberated values are slow.
    slow_values = [r for r in rows if r.value in ("spam", "!takedown", "intolerant")]
    for row in slow_values:
        assert row.reaction.median_s > 60, "%s should be manually reviewed" % row.value
    if "no-alt-text" in by_value:
        recorder.record(
            "F6", "no-alt-text median RT (s)", 0.58, round(by_value["no-alt-text"].reaction.median_s, 2)
        )
    if "porn" in by_value:
        recorder.record("F6", "porn median RT (s)", "seconds", round(by_value["porn"].reaction.median_s, 2))
    recorder.record("F6", "distinct (labeler,value) points", ">100", len(rows))
    print()
    print(render_fig6(bench_datasets))

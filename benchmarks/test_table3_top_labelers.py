"""T3 — Table 3: top community labelers."""

from repro.core.analysis import moderation
from repro.core.report import render_table3


def test_table3_top_labelers(benchmark, bench_datasets, bench_world, recorder):
    official = moderation.find_official_labeler_did(bench_datasets)
    rows = benchmark(moderation.table3_top_community_labelers, bench_datasets, official)
    assert len(rows) == 5
    # Paper's #1 community labeler is the alt-text labeler (1.36M labels,
    # 72.9% of everything); ours must likewise lead by a wide margin.
    by_did = {r.did: r for r in bench_world.labelers if r.did}
    top = by_did.get(rows[0].did)
    assert top is not None and top.spec.key == "baatl"
    assert rows[0].applied > 2 * rows[1].applied
    post_times = bench_datasets.firehose.post_created_us
    total_applied = sum(
        1 for l in bench_datasets.labels.labels if not l.neg and l.uri in post_times
    )
    recorder.record(
        "T3", "top labeler share of window labels", 0.729,
        round(rows[0].applied / total_applied, 3),
    )
    recorder.record("T3", "rank-1/rank-2 volume ratio", 1360224 / 76599, round(rows[0].applied / max(1, rows[1].applied), 1))
    print()
    print(render_table3(bench_datasets))

"""S7 — Section 7 text: feed ecosystem statistics."""

from repro.core.analysis import feeds


def test_sec7_feeds(benchmark, bench_datasets, bench_world, recorder):
    stats = benchmark(feeds.feed_activity_stats, bench_datasets, bench_world.config.end_us)
    # Paper: 9.4% never curated; 21.8% inactive in the last month.
    recorder.record("S7", "never-posted share", 0.094, round(stats.never_posted_share, 3))
    recorder.record("S7", "inactive share", 0.218, round(stats.inactive_share, 3))
    assert 0.0 < stats.never_posted_share < 0.35
    # Bogus pre-launch timestamps exist (paper: 2,202 posts, years 1185+).
    recorder.record("S7", "bogus-timestamp posts (scaled)", 2202, stats.bogus_timestamp_posts)

    per_account = feeds.feeds_per_account(bench_datasets)
    recorder.record("S7", "one-feed manager share", 0.621, round(per_account.one_feed_share, 3))
    recorder.record("S7", "max feeds per account (scaled)", 1799, per_account.max_feeds)
    assert per_account.one_feed_share > 0.45
    assert per_account.max_feeds >= 3

    corr = feeds.popularity_correlations(bench_datasets)
    recorder.record("S7", "r(feed count, followers)", 0.005, round(corr.feed_count_vs_followers, 3))
    recorder.record("S7", "r(feed likes, followers)", 0.533, round(corr.feed_likes_vs_followers, 3))
    # The paper's contrast: likes predict followership, raw counts do not.
    assert corr.feed_likes_vs_followers > corr.feed_count_vs_followers

    discovered = bench_datasets.feed_generators.discovered_count()
    reachable = len(bench_datasets.feed_generators.reachable())
    recorder.record("S7", "reachable/discovered", 40398 / 43063, round(reachable / discovered, 3))
    assert reachable / discovered > 0.85

"""End-to-end: build a world and run the full measurement pipeline.

Uses the tiny preset (the bench-scale world is already timed implicitly as
the session fixture); one round is enough for an end-to-end figure.
"""

from repro.core.pipeline import run_study
from repro.simulation.config import SimulationConfig


def test_pipeline_end_to_end(benchmark, recorder):
    def run():
        world, datasets = run_study(SimulationConfig.tiny())
        return datasets

    datasets = benchmark.pedantic(run, rounds=1, iterations=1)
    assert datasets.labels.announced_count() == 62
    assert datasets.repositories.repo_count > 0
    recorder.record("pipeline", "tiny study firehose events", "-", datasets.firehose.total_events())

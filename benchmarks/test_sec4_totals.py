"""S4 — Section 4 text: operation totals, popularity, non-Bluesky content."""

from repro.core.analysis import activity


def test_sec4_totals(benchmark, bench_datasets, bench_world, recorder):
    totals = benchmark(activity.operation_totals, bench_datasets)
    # Paper ordering: 740M likes > 225M posts > 160.9M follows >
    # 77.9M reposts > 10.8M blocks.
    assert totals["likes"] > totals["posts"] > totals["reposts"] > totals["blocks"]
    assert totals["follows"] > totals["reposts"]
    recorder.record("S4", "likes/posts ratio", round(740 / 225, 2), round(totals["likes"] / totals["posts"], 2))
    recorder.record(
        "S4", "follows/posts ratio", round(160.9 / 225, 2), round(totals["follows"] / totals["posts"], 2)
    )
    recorder.record(
        "S4", "blocks/posts ratio", round(10.8 / 225, 3), round(totals["blocks"] / totals["posts"], 3)
    )

    pop = activity.account_popularity(bench_datasets)
    official = next(u for u in bench_world.users if u.spec.is_official)
    assert pop.top_followed[0][0] == official.did
    follower_ratio = pop.top_followed[0][1] / max(1, pop.top_followed[1][1])
    recorder.record("S4", "official/runner-up follower ratio", round(775 / 220, 1), round(follower_ratio, 1))

    impersonators = {u.did for u in bench_world.users if u.spec.is_impersonator}
    top_blocked_dids = {did for did, _ in pop.top_blocked[:3]}
    assert impersonators & top_blocked_dids

    content = activity.non_bsky_content(bench_datasets)
    # Paper: 1,855 of ~280M events (~7e-6) — vanishingly rare.
    assert content.share_of_events < 0.01
    recorder.record("S4", "non-bsky event share", 1855 / 279289739, round(content.share_of_events, 6))
    assert "com.whtwnd.blog.entry" in content.repo_collections

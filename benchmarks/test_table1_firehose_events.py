"""T1 — Table 1: Firehose event-type mix."""

from repro.core.analysis import summary
from repro.core.report import render_table1


def test_table1_firehose_events(benchmark, bench_datasets, recorder):
    rows = benchmark(summary.table1_firehose_event_types, bench_datasets)
    by_type = {row.event_type: row for row in rows}
    # Paper: commits 99.78%, identity 0.19%, handle 0.02%, tombstone 0.01%.
    assert rows[0].event_type == "Repo Commit"
    assert by_type["Repo Commit"].share_pct > 97.0
    assert by_type["Identity Update"].total > by_type["User Handle Update"].total
    recorder.record("T1", "commit share (%)", 99.78, round(by_type["Repo Commit"].share_pct, 2))
    recorder.record(
        "T1", "identity share (%)", 0.19, round(by_type["Identity Update"].share_pct, 2)
    )
    recorder.record(
        "T1", "handle share (%)", 0.02, round(by_type["User Handle Update"].share_pct, 3)
    )
    recorder.record(
        "T1", "tombstone share (%)", 0.01, round(by_type["Repo Tombstone"].share_pct, 3)
    )
    print()
    print(render_table1(bench_datasets))

"""F4 — Figure 4: labels by source per month + labeler count."""

from repro.core.analysis import moderation
from repro.core.report import render_fig4


def test_fig4_label_growth(benchmark, bench_datasets, recorder):
    official = moderation.find_official_labeler_did(bench_datasets)
    fig = benchmark(moderation.label_growth, bench_datasets, official)
    # Before March 2024, only the official labeler exists.
    for month in fig.months:
        if month < "2024-03":
            assert fig.community_by_month.get(month, 0) <= fig.official_by_month.get(month, 0) + 2
    # Paper: community labelers issued 88.7% of April 2024 labels, only
    # two months after the ecosystem opened.
    april_share = fig.community_share("2024-04")
    assert april_share > 0.5
    recorder.record("F4", "community share of April labels", 0.887, round(april_share, 3))
    count_series = [fig.labeler_count_by_month[m] for m in fig.months]
    assert count_series == sorted(count_series)
    recorder.record("F4", "community labelers by 2024-05", 61, count_series[-1])
    print()
    print(render_fig4(bench_datasets))

"""T4 — Table 4: label targets and most-applied labels."""

from repro.core.analysis import moderation
from repro.core.report import render_table4


def test_table4_label_targets(benchmark, bench_datasets, recorder):
    rows = benchmark(moderation.table4_label_targets, bench_datasets)
    by_type = {r.object_type: r for r in rows}
    # Paper: posts 99.63%, accounts 0.23%, banner/avatar 0.14%.
    assert rows[0].object_type == "post"
    assert by_type["post"].share_pct > 90
    recorder.record("T4", "post share (%)", 99.63, round(by_type["post"].share_pct, 2))
    recorder.record("T4", "account share (%)", 0.23, round(by_type["account"].share_pct, 2))
    recorder.record(
        "T4", "banner/avatar share (%)", 0.14, round(by_type["banner/avatar"].share_pct, 2)
    )
    # The dominant post labels: no-alt-text first, then porn / sexual.
    top_post_labels = [value for value, _ in by_type["post"].top_labels]
    assert "no-alt-text" in top_post_labels[:2]
    assert "porn" in top_post_labels[:3]
    recorder.record("T4", "top post label", "no-alt-text", top_post_labels[0])
    print()
    print(render_table4(bench_datasets))

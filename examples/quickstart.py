"""Quickstart: assemble a miniature Bluesky from the library's parts.

Builds the full service stack by hand — PLC directory, a PDS, the Relay
with its Firehose, and the AppView — then walks through the core user
journey: create accounts, post, follow, like, and read a custom feed.

Run:  python examples/quickstart.py
"""

from repro.atproto.keys import HmacKeypair
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.web import WebHostRegistry
from repro.services.appview import AppView
from repro.services.client import Client
from repro.services.feedgen import CuratedFeed, FeedGeneratorHost, FeedRule, PostFeatures, tokenize
from repro.services.pds import Pds
from repro.services.relay import Relay
from repro.services.xrpc import ServiceDirectory


def main() -> None:
    # --- infrastructure -----------------------------------------------------
    plc = PlcDirectory()
    web = WebHostRegistry()
    services = ServiceDirectory()
    resolver = DidResolver(plc, web)

    pds = Pds("https://pds.example")
    relay = Relay("https://relay.example")
    relay.crawl_pds(pds)
    appview = AppView("https://appview.example", resolver, services)
    appview.attach(relay)
    for service in (pds, relay, appview):
        services.register(service.url, service)

    # --- accounts -----------------------------------------------------------
    def create_account(name: str) -> Client:
        keypair = HmacKeypair.from_seed(name.encode())
        did = plc.create(
            rotation_keypair=keypair,
            signing_key=keypair.did_key(),
            handle="%s.bsky.social" % name,
            pds_endpoint=pds.url,
        )
        pds.create_account(did, keypair)
        return Client(did, pds, appview)

    alice = create_account("alice")
    bob = create_account("bob")
    now = 1_713_000_000_000_000  # 2024-04-13, microseconds

    # --- the basic social loop ------------------------------------------------
    meta = alice.post("Hello Bluesky! Loving the open skies here.", now, langs=["en"])
    post_uri = "at://%s/%s" % (alice.did, meta.ops[0][1])
    bob.follow(alice.did, now + 1_000_000)
    bob.like(post_uri, str(meta.ops[0][2]), now + 2_000_000)

    profile = appview.xrpc_getProfile(actor=alice.did)
    print("alice followers:", profile["followersCount"])
    print("post likes:", appview.index.like_counts[post_uri])

    # --- a custom feed generator ----------------------------------------------
    host = FeedGeneratorHost("did:web:feeds.example", "https://feeds.example")
    services.register(host.endpoint, host)
    feed_uri = "at://%s/app.bsky.feed.generator/greetings" % alice.did
    feed = CuratedFeed(feed_uri, FeedRule(keywords=frozenset({"hello"})))
    host.add_feed(feed)
    pds.create_record(
        alice.did,
        "app.bsky.feed.generator",
        {
            "$type": "app.bsky.feed.generator",
            "did": host.service_did,
            "displayName": "Greetings",
            "description": "posts that say hello",
            "createdAt": "2024-04-13T00:00:00Z",
        },
        now + 3_000_000,
        rkey="greetings",
    )
    # Feed generators consume the firehose; here we route the post directly.
    feed.ingest(
        PostFeatures(
            uri=post_uri,
            author=alice.did,
            time_us=now,
            text="Hello Bluesky! Loving the open skies here.",
            langs=("en",),
            tokens=frozenset(tokenize("Hello Bluesky! Loving the open skies here.")),
        )
    )

    view = appview.xrpc_getFeedGenerator(feed=feed_uri)
    print("feed online:", view["isOnline"], "valid:", view["isValid"])
    timeline = bob.view_feed(feed_uri, now + 4_000_000)
    print("bob's view of the Greetings feed:")
    for item in timeline:
        print("  -", item["record"]["text"], "(likes: %d)" % item["likeCount"])

    # --- sync interfaces (what crawlers use) -----------------------------------
    repos = relay.xrpc_listRepos()
    print("relay mirrors %d repos" % len(repos["repos"]))
    events = relay.xrpc_subscribeRepos()
    print("firehose carried %d events" % len(events))


if __name__ == "__main__":
    main()

"""Reproduce the paper end to end.

Builds a calibrated synthetic Bluesky (scaled down from the paper's 5.5M
users), runs the full measurement pipeline on the paper's schedule — live
firehose subscription, weekly listRepos crawls, DID-document and repo
snapshots, bi-weekly feed crawls, daily labeler reconnects, active
DNS/WHOIS probes — and prints every table and figure.

Run:  python examples/run_study.py [--scale DENOM] [--seed N]
(default scale denominator 12000 keeps this under a minute).
"""

import argparse
import sys
import time

from repro.core.pipeline import run_study
from repro.core.report import full_report
from repro.simulation.config import SimulationConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=float, default=12000,
        help="population scale denominator (users = 5.52M / SCALE)",
    )
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args(argv)

    config = SimulationConfig(
        seed=args.seed, scale=1 / args.scale, feed_scale=1 / 500
    )
    print(
        "building a world with %d users, %d feed generators, %d labelers..."
        % (config.n_users, config.n_feed_generators, config.n_labelers)
    )
    started = time.time()  # repro: allow(wallclock) -- progress display only; never reaches study state
    world, datasets = run_study(config, progress=lambda msg: print("  " + msg))
    print("study complete in %.1fs" % (time.time() - started))  # repro: allow(wallclock) -- progress display only; never reaches study state
    print()
    print(full_report(datasets))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Non-Bluesky applications on the shared infrastructure (Section 4).

The AT Protocol is application-neutral: WhiteWind stores long-form blog
posts in the same user repositories and rides the same Relay firehose,
with its own AppView.  This example runs Bluesky and WhiteWind side by
side over one network, then shows the Bluesky AppView counting — but not
indexing — the foreign records, exactly what the paper measured (1,855
non-Bluesky events among ~280M).

Run:  python examples/whitewind_blog.py
"""

from repro.atproto.keys import HmacKeypair
from repro.atproto.lexicon import POST, WHTWND_ENTRY
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.web import WebHostRegistry
from repro.services.appview import AppView
from repro.services.pds import Pds
from repro.services.relay import Relay
from repro.services.whitewind import WhiteWindAppView
from repro.services.xrpc import ServiceDirectory

NOW = 1_713_000_000_000_000


def main() -> None:
    plc = PlcDirectory()
    services = ServiceDirectory()
    pds = Pds("https://pds.example")
    relay = Relay("https://relay.example")
    relay.crawl_pds(pds)

    # Two AppViews, one firehose.
    bluesky = AppView("https://api.bsky.example", DidResolver(plc, WebHostRegistry()), services)
    bluesky.attach(relay)
    whitewind = WhiteWindAppView("https://whtwnd.example")
    whitewind.attach(relay)

    keypair = HmacKeypair.from_seed(b"author")
    did = plc.create(keypair, keypair.did_key(), "author.bsky.social", pds.url)
    pds.create_account(did, keypair)

    # The same account uses both applications.
    pds.create_record(
        did,
        POST,
        {"$type": POST, "text": "short-form for Bluesky", "createdAt": "2024-04-13T00:00:00Z"},
        NOW,
    )
    for index, title in enumerate(("Why decentralize?", "Running my own PDS")):
        pds.create_record(
            did,
            WHTWND_ENTRY,
            {
                "$type": WHTWND_ENTRY,
                "title": title,
                "content": "# %s\n\nlong-form markdown body %d..." % (title, index),
                "createdAt": "2024-04-13T00:00:00Z",
            },
            NOW + 1 + index,
        )

    print("one repo, two applications:")
    repo = pds.repo(did)
    print("  collections in the repo:", sorted(repo.collections()))

    print("\nthe WhiteWind AppView sees:")
    for entry in whitewind.xrpc_listEntries(author=did)["entries"]:
        print("  -", entry["title"])

    print("\nthe Bluesky AppView sees:")
    print("  indexed posts:", len(bluesky.index.posts))
    print("  undecodable non-Bluesky records (counted only):", bluesky.index.non_bsky_records)

    # Both applications survive the user migrating to a self-hosted PDS.
    car = pds.xrpc_getRepo(did=did)
    new_pds = Pds("https://pds.self-hosted.example")
    relay.crawl_pds(new_pds)
    pds.remove_account(did, NOW + 100)
    new_pds.import_account_car(car, keypair, NOW + 200)
    print("\nafter PDS migration:")
    print("  blog entries preserved:", len(list(new_pds.repo(did).list_records(WHTWND_ENTRY))))


if __name__ == "__main__":
    main()

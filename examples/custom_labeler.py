"""Run your own Labeler (Section 6 of the paper, hands-on).

Shows the full labeler lifecycle against a live mini-network:

1. announce the labeler (service record + DID-document endpoint),
2. consume the firehose and label matching posts,
3. let a user subscribe and configure per-label reactions,
4. rescind a label,
5. measure the labeler's reaction time the way the paper does.

Run:  python examples/custom_labeler.py
"""

from repro.atproto.events import CommitEvent
from repro.atproto.keys import HmacKeypair
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.web import WebHostRegistry
from repro.services.appview import AppView
from repro.services.client import Client, LabelAction
from repro.services.feedgen import CuratedFeed, FeedGeneratorHost, FeedRule, PostFeatures, tokenize
from repro.services.labeler import LabelerPolicies, LabelerService
from repro.services.pds import Pds
from repro.services.relay import Relay
from repro.services.xrpc import ServiceDirectory

NOW = 1_713_000_000_000_000


def main() -> None:
    plc = PlcDirectory()
    web = WebHostRegistry()
    services = ServiceDirectory()
    resolver = DidResolver(plc, web)
    pds = Pds("https://pds.example")
    relay = Relay("https://relay.example")
    relay.crawl_pds(pds)
    appview = AppView("https://appview.example", resolver, services)
    appview.attach(relay)
    for service in (pds, relay, appview):
        services.register(service.url, service)

    def account(name):
        keypair = HmacKeypair.from_seed(name.encode())
        did = plc.create(keypair, keypair.did_key(), "%s.bsky.social" % name, pds.url)
        pds.create_account(did, keypair)
        return did, keypair

    # --- 1. announce the labeler -------------------------------------------------
    labeler_did, labeler_key = account("gifpolice")
    labeler = LabelerService(
        labeler_did,
        "https://gifpolice.example",
        LabelerPolicies(("tenor-gif",), {"tenor-gif": {"severity": "inform"}}),
    )
    services.register(labeler.endpoint, labeler)
    pds.create_record(
        labeler_did,
        "app.bsky.labeler.service",
        labeler.service_record("2024-03-15T00:00:00Z"),
        NOW,
        rkey="self",
    )
    plc.update(labeler_did, labeler_key, labeler_endpoint=labeler.endpoint)
    appview.add_labeler(labeler)
    print("labeler announced at", plc.resolve(labeler_did).labeler_endpoint)

    # --- 2. label posts straight off the firehose ---------------------------------
    def automatic_moderator(event):
        if not isinstance(event, CommitEvent):
            return
        for op in event.ops:
            if op.collection != "app.bsky.feed.post" or op.action != "create":
                continue
            record = op.record or {}
            external = (record.get("embed") or {}).get("external", {})
            if "tenor.com" in external.get("uri", ""):
                uri = "at://%s/%s" % (event.did, op.path)
                labeler.emit(uri, "tenor-gif", event.time_us + 350_000)  # ~0.35s

    relay.firehose.subscribe(automatic_moderator)

    poster_did, _ = account("poster")
    poster = Client(poster_did, pds, appview)
    clean = poster.post("a thoughtful text post", NOW + 1_000_000, langs=["en"])
    gif = poster.post(
        "reaction incoming",
        NOW + 2_000_000,
        langs=["en"],
        embed={"external": {"uri": "https://media.tenor.com/funny.gif"}},
    )
    gif_uri = "at://%s/%s" % (poster_did, gif.ops[0][1])
    clean_uri = "at://%s/%s" % (poster_did, clean.ops[0][1])
    appview.sync_labels()
    print("labels on gif post:", [l.val for l in appview.labels_for(gif_uri)])
    print("labels on clean post:", [l.val for l in appview.labels_for(clean_uri)])

    # --- 3. a user subscribes and hides labeled content -----------------------------
    host = FeedGeneratorHost("did:web:feeds.example", "https://feeds.example")
    services.register(host.endpoint, host)
    feed_uri = "at://%s/app.bsky.feed.generator/everything" % poster_did
    feed = CuratedFeed(feed_uri, FeedRule(whole_network=True))
    host.add_feed(feed)
    pds.create_record(
        poster_did,
        "app.bsky.feed.generator",
        {
            "$type": "app.bsky.feed.generator",
            "did": host.service_did,
            "displayName": "everything",
            "createdAt": "2024-04-13T00:00:00Z",
        },
        NOW + 3_000_000,
        rkey="everything",
    )
    for uri, text in ((clean_uri, "a thoughtful text post"), (gif_uri, "reaction incoming")):
        feed.ingest(
            PostFeatures(
                uri=uri, author=poster_did, time_us=NOW, text=text,
                langs=("en",), tokens=frozenset(tokenize(text)),
            )
        )

    reader_did, _ = account("reader")
    reader = Client(reader_did, pds, appview)
    print("feed before subscribing:", len(reader.view_feed(feed_uri, NOW + 4_000_000)), "posts")
    reader.subscribe_labeler(labeler_did)
    reader.set_label_action(labeler_did, "tenor-gif", LabelAction.HIDE)
    print("feed after HIDE rule:   ", len(reader.view_feed(feed_uri, NOW + 4_000_000)), "posts")

    # --- 4. rescind ------------------------------------------------------------------
    labeler.rescind(gif_uri, "tenor-gif", NOW + 5_000_000)
    appview.sync_labels()
    print("after rescind:          ", len(reader.view_feed(feed_uri, NOW + 4_000_000)), "posts")

    # --- 5. measure reaction time like the paper does ---------------------------------
    stream = labeler.xrpc_subscribeLabels(cursor=0)
    applications = [l for l in stream if not l.neg]
    post_times = {gif_uri: NOW + 2_000_000}
    reactions = [
        (l.cts - post_times[l.uri]) / 1e6 for l in applications if l.uri in post_times
    ]
    print("reaction times observed:", ["%.2fs" % r for r in reactions])


if __name__ == "__main__":
    main()

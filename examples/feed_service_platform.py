"""Operate a feed-generator-as-a-service platform (Section 7.2).

Creates a Skyfeed-like platform and a Goodfeeds-like platform, registers
user feeds on each (the feature matrices decide what each can express),
routes a stream of posts through the feed router, and compares what the
paper compares: feed share vs post share vs like share per provider, and
what retention policies do to a crawl.

Run:  python examples/feed_service_platform.py
"""

from repro.services.feedgen import (
    FeedError,
    FeedRouter,
    FeedRule,
    PostFeatures,
    RetentionPolicy,
    tokenize,
)
from repro.services.feedservice import (
    GOODFEEDS_PROFILE,
    SKYFEED_PROFILE,
    FeedServicePlatform,
    rule_required_features,
)

DAY_US = 24 * 3600 * 1_000_000
CREATOR = "did:plc:" + "c" * 24


def main() -> None:
    skyfeed = FeedServicePlatform(SKYFEED_PROFILE, "did:web:skyfeed.example", "https://skyfeed.example")
    goodfeeds = FeedServicePlatform(
        GOODFEEDS_PROFILE, "did:web:goodfeeds.example", "https://goodfeeds.example"
    )
    router = FeedRouter()

    # Skyfeed expresses rich rules — keywords, language filters, regex.
    cats = skyfeed.create_feed(
        CREATOR,
        "at://%s/app.bsky.feed.generator/cats" % CREATOR,
        FeedRule(keywords=frozenset({"cats"}), regex=r"\bcats?\b"),
        RetentionPolicy.days(7),
    )
    german = skyfeed.create_feed(
        CREATOR,
        "at://%s/app.bsky.feed.generator/deutsch" % CREATOR,
        FeedRule(languages=frozenset({"de"})),
        RetentionPolicy.last(100),
    )
    # Goodfeeds can only mirror the whole network or single users.
    mirror = goodfeeds.create_feed(
        CREATOR,
        "at://%s/app.bsky.feed.generator/mirror" % CREATOR,
        FeedRule(whole_network=True),
    )
    try:
        goodfeeds.create_feed(
            CREATOR,
            "at://%s/app.bsky.feed.generator/impossible" % CREATOR,
            FeedRule(keywords=frozenset({"cats"})),
        )
    except FeedError as error:
        print("goodfeeds rejected a keyword feed:", error)
    needed = rule_required_features(FeedRule(keywords=frozenset({"x"}), regex="x"))
    print("a keyword+regex rule needs:", sorted(needed))

    for feed in (cats, german, mirror):
        router.register(feed)

    # A day of traffic.
    posts = [
        ("my two cats are asleep", ("en",)),
        ("der Kaffee ist heute gut", ("de",)),
        ("just a normal tuesday", ("en",)),
        ("cats cats cats", ("en",)),
        ("noch ein Beitrag auf Deutsch", ("de",)),
    ]
    for index, (text, langs) in enumerate(posts * 40):
        router.route(
            PostFeatures(
                uri="at://did:plc:%s/app.bsky.feed.post/p%04d" % ("u" * 24, index),
                author="did:plc:" + "u" * 24,
                time_us=index * 600 * 1_000_000,
                text=text,
                langs=langs,
                tokens=frozenset(tokenize(text)),
            )
        )

    now = 200 * 600 * 1_000_000
    print("\nprovider comparison (the Figure 12 effect):")
    for platform in (skyfeed, goodfeeds):
        posts_served = sum(
            len(feed.skeleton(None, now, limit=10_000)["feed"]) for feed in platform.feeds()
        )
        print(
            "  %-10s feeds=%d posts-served=%d"
            % (platform.profile.name, platform.feed_count(), posts_served)
        )
    print("\nretention at work:")
    print("  cats feed (7-day retention):", cats.post_count(now), "posts visible")
    print("  german feed (last-100):     ", german.post_count(now), "posts visible")
    print("  mirror (unlimited):         ", mirror.post_count(now), "posts visible")

    skeleton = cats.skeleton(None, now, limit=5)
    print("\ncats skeleton page 1:", [item["post"][-6:] for item in skeleton["feed"]])
    page2 = cats.skeleton(None, now, limit=5, cursor=skeleton["cursor"])
    print("cats skeleton page 2:", [item["post"][-6:] for item in page2["feed"]])


if __name__ == "__main__":
    main()

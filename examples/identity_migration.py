"""Decentralized identity in practice (Section 5).

Walks through everything the paper measures about identity:

1. custodial bsky.social handles vs self-managed domains,
2. both ownership-proof mechanisms (DNS TXT and well-known),
3. a did:web identity,
4. migrating a repository to a self-hosted PDS without losing the DID,
5. changing handles and watching the firehose events,
6. the WHOIS + PSL analysis over the resulting domains.

Run:  python examples/identity_migration.py
"""

from repro.atproto.keys import HmacKeypair
from repro.identity.did import DidDocument, PDS_SERVICE_ID, ServiceEndpoint
from repro.identity.handles import (
    HandleResolver,
    publish_dns_proof,
    publish_well_known_proof,
)
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver, publish_did_web_document
from repro.netsim.dns import DnsResolver, DnsZone
from repro.netsim.psl import default_psl
from repro.netsim.web import WebHostRegistry
from repro.netsim.whois import RegistrarDatabase, WhoisService
from repro.services.pds import Pds
from repro.services.relay import Relay

NOW = 1_713_000_000_000_000


def main() -> None:
    plc = PlcDirectory()
    zone = DnsZone()
    dns = DnsResolver(zone)
    web = WebHostRegistry()
    resolver = DidResolver(plc, web)
    handle_resolver = HandleResolver(dns, web)
    registrars = RegistrarDatabase()
    whois = WhoisService(registrars)

    default_pds = Pds("https://pds.bsky.example")
    relay = Relay("https://relay.example")
    relay.crawl_pds(default_pds)

    # --- 1. custodial identity --------------------------------------------------
    alice_key = HmacKeypair.from_seed(b"alice")
    alice = plc.create(alice_key, alice_key.did_key(), "alice.bsky.social", default_pds.url)
    default_pds.create_account(alice, alice_key)
    publish_well_known_proof(web, "alice.bsky.social", alice)
    print("custodial:", alice, "->", plc.resolve(alice).handle)

    # --- 2. self-managed domain with a DNS TXT proof --------------------------------
    whois.register("alice-arts.com", registrars.get("NameCheap, Inc."))
    publish_dns_proof(zone, "alice-arts.com", alice)
    plc.update(alice, alice_key, handle="alice-arts.com")
    relay.publish_handle_event(alice, "alice-arts.com", NOW)
    probe = handle_resolver.probe("alice-arts.com")
    print("self-managed: mechanism=%s did-matches=%s" % (probe.mechanism, probe.did == alice))
    verified = handle_resolver.verify_bidirectional("alice-arts.com", plc.resolve)
    print("bidirectional verification:", verified)

    # --- 3. a did:web identity --------------------------------------------------------
    bob_key = HmacKeypair.from_seed(b"bob")
    bob_doc = DidDocument(
        did="did:web:bob.example.org",
        handle="bob.example.org",
        signing_key=bob_key.did_key(),
    )
    bob_doc.set_service(
        ServiceEndpoint(PDS_SERVICE_ID, "AtprotoPersonalDataServer", default_pds.url)
    )
    publish_did_web_document(web, bob_doc)
    publish_well_known_proof(web, "bob.example.org", "did:web:bob.example.org")
    resolved = resolver.resolve("did:web:bob.example.org")
    print("did:web resolves:", resolved.handle, "pds:", resolved.pds_endpoint)

    # --- 4. migrate to a self-hosted PDS, keeping DID and social graph ------------------
    default_pds.create_record(
        alice,
        "app.bsky.feed.post",
        {"$type": "app.bsky.feed.post", "text": "posted before moving",
         "createdAt": "2024-04-13T00:00:00Z"},
        NOW,
    )
    my_pds = Pds("https://pds.alice-arts.com")
    relay.crawl_pds(my_pds)
    repo = default_pds.repo(alice)
    default_pds._repos.pop(alice)  # transfer out (CAR import/export also works)
    my_pds.import_repo(repo)
    plc.update(alice, alice_key, pds_endpoint=my_pds.url)
    relay.publish_identity_event(alice, NOW + 1)
    print(
        "after migration: pds=%s, old post still there=%s"
        % (
            plc.resolve(alice).pds_endpoint,
            bool(list(my_pds.repo(alice).list_records("app.bsky.feed.post"))),
        )
    )

    # --- 5. the audit log records it all ---------------------------------------------
    log = plc.audit_log(alice)
    print("PLC audit log: %d operations, prev-links intact: %s" % (
        len(log),
        all(log[i + 1].prev == log[i].op_hash() for i in range(len(log) - 1)),
    ))

    # --- 6. the paper's identity analysis over these domains ----------------------------
    psl = default_psl()
    for fqdn in ("alice-arts.com", "bob.example.org", "fan.alice-arts.com"):
        print(
            "registered domain of %-22s -> %s" % (fqdn, psl.registered_domain(fqdn))
        )
    record = whois.query("alice-arts.com")
    print("WHOIS: %s -> %s (IANA %s)" % ("alice-arts.com", record.registrar_name, record.iana_id))


if __name__ == "__main__":
    main()

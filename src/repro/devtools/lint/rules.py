"""Built-in rules: the hazard classes that break byte-identical runs.

Each rule documents the sanctioned pattern in its ``summary`` /
``rationale`` so a finding tells the reader what to write instead.  All
rules register into :data:`~repro.devtools.lint.framework.DEFAULT_REGISTRY`
at import time; ids are stable and double as the pragma / allowlist keys.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator, Optional, Tuple

from repro.devtools.lint.framework import DEFAULT_REGISTRY, ModuleContext, Rule

register = DEFAULT_REGISTRY.register

Hit = Tuple[ast.AST, str]


def _call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target, e.g. ``time.perf_counter``."""
    return _dotted(node.func)


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return base + "." + node.attr if base else None
    return None


# ---------------------------------------------------------------------------
# RNG and clock hygiene
# ---------------------------------------------------------------------------

_MODULE_RNG_FNS = frozenset(
    {
        "betavariate", "binomialvariate", "choice", "choices", "expovariate",
        "gammavariate", "gauss", "getrandbits", "lognormvariate",
        "normalvariate", "paretovariate", "randbytes", "randint", "random",
        "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
        "uniform", "vonmisesvariate", "weibullvariate",
    }
)


@register
class UnseededRandomRule(Rule):
    id = "unseeded-random"
    summary = (
        "module-level random.* call (or import of one); use a seeded "
        "random.Random(derive_seed(...)) stream"
    )
    rationale = (
        "The global random module RNG is process-wide shared state: its "
        "sequence depends on import order, other callers, and the default "
        "OS-entropy seed, so two runs (or two shard workers) diverge. "
        "Every stream in this codebase is an explicit random.Random "
        "seeded via repro.simulation.sharding.derive_seed."
    )
    node_types = (ast.Call, ast.ImportFrom)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name in _MODULE_RNG_FNS:
                        yield (
                            node,
                            "importing random.%s binds the global RNG; "
                            "instantiate random.Random(derive_seed(...)) instead"
                            % alias.name,
                        )
            return
        name = _call_name(node)  # type: ignore[arg-type]
        if name is None:
            return
        if name.startswith("random.") and name.split(".", 1)[1] in _MODULE_RNG_FNS:
            yield (
                node,
                "call to %s uses the unseeded process-global RNG; "
                "use a random.Random(derive_seed(...)) instance" % name,
            )


_WALLCLOCK_TIME_FNS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
    }
)
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


@register
class WallclockRule(Rule):
    id = "wallclock"
    summary = (
        "wallclock read outside allowlisted telemetry/bench modules; "
        "simulation code must use virtual time (world clock / now_us)"
    )
    rationale = (
        "Artefacts must be byte-identical across runs; any wallclock or "
        "monotonic-clock value that reaches simulation, protocol, or "
        "analysis state varies per run.  Telemetry (repro.obs.*) and the "
        "bench harness are allowlisted because their wall-time outputs "
        "are excluded from artefact fingerprints."
    )
    node_types = (ast.Call, ast.ImportFrom)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALLCLOCK_TIME_FNS:
                        yield (
                            node,
                            "importing time.%s exposes a wallclock here; "
                            "read clocks only in allowlisted modules" % alias.name,
                        )
            return
        name = _call_name(node)  # type: ignore[arg-type]
        if name is None:
            return
        parts = name.split(".")
        if parts[0] == "time" and len(parts) == 2 and parts[1] in _WALLCLOCK_TIME_FNS:
            yield (node, "wallclock read %s() in non-telemetry module" % name)
        elif (
            parts[-1] in _WALLCLOCK_DATETIME_FNS
            and len(parts) >= 2
            and parts[-2] in ("datetime", "date")
        ):
            yield (node, "wallclock read %s() in non-telemetry module" % name)


# ---------------------------------------------------------------------------
# Hash-order-dependent iteration
# ---------------------------------------------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHOD_CALLS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_set_valued(node: ast.AST) -> Optional[str]:
    """A short description if ``node`` is syntactically set-valued."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _SET_CONSTRUCTORS:
            return "%s(...)" % name
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHOD_CALLS
        ):
            return ".%s(...)" % node.func.attr
        # ``mapping.get(key, set())``: a set-valued default is the tell
        # that the mapping holds sets, so the lookup result iterates in
        # hash order just like a bare set expression.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and len(node.args) == 2
            and not node.keywords
            and _is_set_valued(node.args[1]) is not None
        ):
            return ".get(..., %s)" % _is_set_valued(node.args[1])
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        for side in (node.left, node.right):
            if _is_keys_call(side) or _is_set_valued(side):
                return "set algebra over dict views/sets"
    return None


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "items")
        and not node.args
        and not node.keywords
    )


@register
class UnsortedSetIterRule(Rule):
    id = "unsorted-set-iter"
    summary = (
        "iteration over a set / set expression without sorted(...); "
        "order follows PYTHONHASHSEED"
    )
    rationale = (
        "Set iteration order depends on element hashes, which for str "
        "and bytes are randomized per interpreter.  Anything derived "
        "from the visit order (dict insertion order, event sequence, "
        "tie-breaks) silently varies with PYTHONHASHSEED.  Wrap the "
        "expression in sorted(...) or iterate a deterministic container."
    )
    node_types = (ast.For, ast.comprehension)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        iter_expr = node.iter  # type: ignore[union-attr]
        what = _is_set_valued(iter_expr)
        if what is not None:
            yield (
                iter_expr,
                "iterating %s; wrap in sorted(...) for a stable order" % what,
            )


@register
class DictPopitemRule(Rule):
    id = "dict-popitem"
    summary = "dict.popitem()/set.pop() removes an order-dependent element"
    rationale = (
        "popitem() takes the most-recently-inserted entry and set.pop() "
        "an arbitrary (hash-order) element; both make control flow "
        "depend on container history in ways that crash/resume and "
        "sharding do not replay.  Pop an explicit key instead."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        func = node.func  # type: ignore[union-attr]
        if isinstance(func, ast.Attribute) and func.attr == "popitem":
            yield (node, "dict.popitem() is order-dependent; pop an explicit key")


@register
class IdHashOrderRule(Rule):
    id = "id-hash-order"
    summary = "ordering by id() or hash(); both vary per interpreter run"
    rationale = (
        "id() is an address and hash() is PYTHONHASHSEED-dependent for "
        "str/bytes, so any sort or min/max keyed on them produces a "
        "per-run order.  Key on a stable domain attribute (did, uri, "
        "seq) instead."
    )
    node_types = (ast.keyword,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        if node.arg != "key":  # type: ignore[union-attr]
            return
        value = node.value  # type: ignore[union-attr]
        parent = ctx.parent(node)
        if not (
            isinstance(parent, ast.Call)
            and (
                _call_name(parent) in ("sorted", "min", "max")
                or (
                    isinstance(parent.func, ast.Attribute)
                    and parent.func.attr == "sort"
                )
            )
        ):
            return
        bad = None
        if isinstance(value, ast.Name) and value.id in ("id", "hash"):
            bad = value.id
        elif isinstance(value, ast.Lambda):
            for sub in ast.walk(value.body):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in ("id", "hash")
                ):
                    bad = sub.func.id
                    break
        if bad is not None:
            yield (value, "ordering key uses %s(); not stable across runs" % bad)


# ---------------------------------------------------------------------------
# Environment and exception hygiene
# ---------------------------------------------------------------------------


@register
class EnvReadRule(Rule):
    id = "env-read"
    summary = "os.environ / os.getenv read in simulation or protocol code"
    rationale = (
        "Environment variables make behavior depend on the invoking "
        "shell and differ between coordinator and spawned workers. "
        "Thread configuration through SimulationConfig instead."
    )
    node_types = (ast.Attribute, ast.Call)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        if isinstance(node, ast.Call):
            if _call_name(node) == "os.getenv":
                yield (node, "os.getenv() read; thread config explicitly instead")
            return
        if _dotted(node) == "os.environ":
            # Only flag the read itself, not e.g. ``os.environ`` inside a
            # larger dotted path already reported via its own Attribute.
            parent = ctx.parent(node)
            if not (isinstance(parent, ast.Attribute)):
                yield (node, "os.environ read; thread config explicitly instead")
            elif parent.attr in ("get", "setdefault", "__getitem__", "copy", "items", "keys", "values", "pop"):
                yield (node, "os.environ.%s read; thread config explicitly instead" % parent.attr)


@register
class SwallowedExceptionRule(Rule):
    id = "swallowed-exception"
    summary = (
        "broad except with pass/continue body; failures must surface "
        "(or use the try_call fault-injection path)"
    )
    rationale = (
        "`except Exception: pass` hides real divergence — a worker that "
        "swallows an error produces different state than one that "
        "doesn't, with no trace.  Catch the narrowest type that the "
        "fault model sanctions, or route through ServiceDirectory."
        "try_call which classifies transport faults explicitly."
    )
    node_types = (ast.ExceptHandler,)

    _BROAD = ("Exception", "BaseException")

    def _is_broad(self, type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return False

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        handler = node  # type: ignore[assignment]
        if not self._is_broad(handler.type):  # type: ignore[union-attr]
            return
        body = handler.body  # type: ignore[union-attr]
        meaningful = [
            stmt
            for stmt in body
            if not (
                isinstance(stmt, (ast.Pass, ast.Continue))
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            )
        ]
        if not meaningful:
            yield (
                handler,
                "broad exception swallowed silently; narrow the type or "
                "surface the failure",
            )


# ---------------------------------------------------------------------------
# Spawn safety for the sharded engine
# ---------------------------------------------------------------------------


@register
class ForkStartMethodRule(Rule):
    id = "fork-start-method"
    summary = "multiprocessing fork/forkserver start method; spawn is required"
    rationale = (
        "fork() copies the parent heap, so a worker could silently "
        "inherit state instead of reconstructing it from SimulationConfig "
        "— hiding exactly the bugs the replica design exists to prevent "
        "(and deadlocking on macOS).  Always get_context('spawn')."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        name = _call_name(node)  # type: ignore[arg-type]
        if name is None or name.split(".")[-1] not in (
            "get_context",
            "set_start_method",
        ):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:  # type: ignore[union-attr]
            if isinstance(arg, ast.Constant) and arg.value in ("fork", "forkserver"):
                yield (
                    node,
                    "start method %r inherits the parent heap; use 'spawn'"
                    % arg.value,
                )


@register
class WorkerClosureRule(Rule):
    id = "worker-closure"
    summary = (
        "lambda/nested function crossing the Process boundary; worker "
        "entry points must be module-level"
    )
    rationale = (
        "Under the spawn start method the target and args are pickled; "
        "lambdas and closures either fail to pickle or smuggle "
        "coordinator state into the worker.  Workers receive only the "
        "picklable config plus scalars."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        func = node.func  # type: ignore[union-attr]
        is_process = (
            isinstance(func, ast.Attribute) and func.attr == "Process"
        ) or (isinstance(func, ast.Name) and func.id == "Process")
        if not is_process:
            return
        nested_funcs = self._nested_function_names(ctx)
        for kw in node.keywords:  # type: ignore[union-attr]
            if kw.arg == "target":
                if isinstance(kw.value, ast.Lambda):
                    yield (kw.value, "Process target is a lambda; not spawn-picklable")
                elif (
                    isinstance(kw.value, ast.Name) and kw.value.id in nested_funcs
                ):
                    yield (
                        kw.value,
                        "Process target %r is a nested function; move it to "
                        "module level" % kw.value.id,
                    )
            if kw.arg == "args":
                for sub in ast.walk(kw.value):
                    if isinstance(sub, ast.Lambda):
                        yield (sub, "lambda in Process args; not spawn-picklable")

    @staticmethod
    def _nested_function_names(ctx: ModuleContext) -> frozenset:
        module_level = set()
        everywhere = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                everywhere.add(node.name)
                if ctx.is_module_level(node):
                    module_level.add(node.name)
        return frozenset(everywhere - module_level)


@register
class UnboundedRecvRule(Rule):
    id = "unbounded-recv"
    summary = (
        "Connection.recv() without a poll(timeout)/deadline guard in "
        "simulation code; a dead or hung peer blocks the study forever"
    )
    rationale = (
        "The coordinator/worker day protocol is lockstep over pipes: a "
        "bare Connection.recv() waits unboundedly, so a worker that "
        "hangs (as opposed to dying, which at least raises EOFError) "
        "wedges the whole study with no diagnosis.  Receive through the "
        "supervised poll()-loop (WorkerPool._recv) which enforces "
        "heartbeat and per-day deadlines, or guard the recv with "
        "poll(timeout) in the same function."
    )
    node_types = (ast.Call,)

    #: The protocol-critical tree; elsewhere (tests, tools) a blocking
    #: recv can be legitimate.
    _SCOPE = ("repro.simulation.*",)

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Hit]:
        if not any(fnmatch.fnmatchcase(ctx.module, p) for p in self._SCOPE):
            return
        func = node.func  # type: ignore[union-attr]
        if not (isinstance(func, ast.Attribute) and func.attr == "recv"):
            return
        if node.args or node.keywords:  # type: ignore[union-attr]
            # socket.recv(bufsize) etc. — not a Connection.recv().
            return
        scope: ast.AST = ctx.enclosing_function(node) or ctx.tree
        for sub in ast.walk(scope):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "poll"
                and (sub.args or sub.keywords)
            ):
                # A poll(timeout) in the same function is the deadline
                # guard; poll() with no timeout blocks just like recv.
                return
        yield (
            node,
            "unbounded Connection.recv(); guard with poll(timeout) + "
            "liveness checks or use the supervised receive path",
        )


_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)


@register
class ModuleMutableStateRule(Rule):
    id = "module-mutable-state"
    summary = (
        "module-level mutable state in a spawn-critical module; workers "
        "rebuild modules from scratch and will not share it"
    )
    rationale = (
        "Spawned workers re-import these modules, so module-level dicts/"
        "lists/sets exist once per process.  Anything mutated through "
        "such a global in the coordinator silently diverges from the "
        "replicas.  Keep per-run state on World/SimProcess instances; "
        "module level is for immutable calibration constants."
    )
    node_types = ()

    def module_scan(self, ctx: ModuleContext) -> Iterator[Hit]:
        if not ctx.config.is_spawn_module(ctx.module):
            return
        for stmt in ctx.tree.body:
            targets: list
            value: Optional[ast.AST]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if value is None or not self._is_mutable(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(name.startswith("__") for name in names):
                continue
            yield (
                stmt,
                "module-level mutable assignment to %s in spawn-critical "
                "module; move onto an instance or make it immutable"
                % ", ".join(names),
            )

    @staticmethod
    def _is_mutable(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            name = _call_name(value)
            return name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
        return False

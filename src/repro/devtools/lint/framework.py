"""Rule framework for the determinism & shard-safety analyzer.

Pure stdlib (``ast`` + ``tokenize``-free line scanning).  The pieces:

* :class:`Rule` — base class; subclasses declare a stable ``id``, the
  AST node types they want, and a ``check`` hook yielding findings.
* :class:`RuleRegistry` — the default registry all built-in rules
  register into at import time; dispatch is one tree walk per module
  with per-node-type fan-out to interested rules.
* :class:`LintConfig` — the module allowlist (rule id → dotted-module
  glob patterns) plus the spawn-critical module set some rules scope
  themselves to.  The repo's sanctioned defaults live in
  :data:`DEFAULT_CONFIG`.
* Suppression pragma — ``# repro: allow(<rule-id>) -- <reason>`` on the
  offending line keeps the finding (reported as suppressed in JSON
  output) but removes it from the exit-code count.  A malformed pragma
  or one naming an unknown rule is itself a finding (``pragma-syntax``),
  so suppressions can't silently rot.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "RuleRegistry",
    "LintConfig",
    "DEFAULT_CONFIG",
    "ModuleContext",
    "PRAGMA_RULE_ID",
    "lint_source",
    "lint_file",
    "lint_paths",
    "module_name_for_path",
]

PRAGMA_RULE_ID = "pragma-syntax"

# Anything after a ``#`` that mentions ``repro:`` is claiming to be a
# pragma; the strict form then validates rule ids and requires a reason.
_PRAGMA_HINT = re.compile(r"#\s*repro\s*:")
_PRAGMA_STRICT = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<ids>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\s*\)"
    r"\s*--\s*(?P<reason>\S.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        note = "  [suppressed: %s]" % self.suppression_reason if self.suppressed else ""
        return "%s:%d:%d: %s %s%s" % (
            self.path,
            self.line,
            self.col,
            self.rule_id,
            self.message,
            note,
        )


@dataclass
class LintConfig:
    """Analyzer configuration: what is sanctioned where.

    ``allowlist`` maps a rule id to dotted-module glob patterns
    (``fnmatch`` style) where the rule stays silent — e.g. telemetry is
    allowed to read wallclocks.  ``spawn_modules`` scopes the
    spawn-safety rules to the modules whose state crosses (or owns) the
    worker boundary.  ``select``, when non-empty, restricts the run to
    those rule ids.
    """

    allowlist: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    spawn_modules: Tuple[str, ...] = ()
    select: Tuple[str, ...] = ()

    def module_allowed(self, rule_id: str, module: str) -> bool:
        for pattern in self.allowlist.get(rule_id, ()):
            if fnmatch.fnmatchcase(module, pattern):
                return True
        return False

    def is_spawn_module(self, module: str) -> bool:
        return any(fnmatch.fnmatchcase(module, p) for p in self.spawn_modules)


# The repo's sanctioned exceptions.  Documented (rule by rule) in the
# "Determinism contract" section of EXPERIMENTS.md — update both together.
DEFAULT_CONFIG = LintConfig(
    allowlist={
        # Telemetry and the bench harness exist to measure wall time;
        # their outputs are either dual-clock (virtual + wall) or
        # explicitly excluded from artefact fingerprints.
        "wallclock": ("repro.obs.*", "repro.bench", "repro.__main__"),
        # The CLI surface may consult the environment (it never reaches
        # simulation or protocol state).
        "env-read": ("repro.__main__", "repro.devtools.*"),
    },
    spawn_modules=(
        "repro.simulation.workers",
        "repro.simulation.engine",
        "repro.simulation.sharding",
    ),
)


class Rule:
    """Base class for one hazard class.

    Subclasses set ``id`` (stable, kebab-case — it is the pragma and
    allowlist key), ``summary`` (one line, shown by ``--list-rules``),
    ``rationale`` (why the hazard breaks reproducibility), and
    ``node_types`` (the AST classes ``check`` wants to see).
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    node_types: Tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: "ModuleContext") -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, message)`` for each violation at ``node``."""
        raise NotImplementedError

    def module_scan(self, ctx: "ModuleContext") -> Iterator[Tuple[ast.AST, str]]:
        """Optional whole-module pass, run once before node dispatch."""
        return iter(())


class RuleRegistry:
    """Rules keyed by id, with a per-node-type dispatch index."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule_cls: type) -> type:
        """Class decorator: instantiate and index a :class:`Rule`."""
        rule = rule_cls()
        if not rule.id:
            raise ValueError("rule %r has no id" % rule_cls.__name__)
        if rule.id in self._rules:
            raise ValueError("duplicate rule id %r" % rule.id)
        self._rules[rule.id] = rule
        return rule_cls

    def rules(self, select: Sequence[str] = ()) -> List[Rule]:
        chosen = self._rules.values()
        if select:
            unknown = set(select) - set(self._rules)
            if unknown:
                raise KeyError("unknown rule id(s): %s" % ", ".join(sorted(unknown)))
            chosen = [self._rules[rule_id] for rule_id in select]
        return sorted(chosen, key=lambda rule: rule.id)

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules


DEFAULT_REGISTRY = RuleRegistry()


class ModuleContext:
    """Everything rules may ask about the module under analysis."""

    def __init__(
        self,
        path: str,
        module: str,
        tree: ast.Module,
        source: str,
        config: LintConfig,
    ) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.source_lines = source.splitlines()
        self.config = config
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def is_module_level(self, node: ast.AST) -> bool:
        return isinstance(self.parent(node), ast.Module)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        cursor = self.parent(node)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return cursor
            cursor = self._parents.get(cursor)
        return None


# ---------------------------------------------------------------------------
# Pragma parsing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Pragma:
    line: int
    rule_ids: Tuple[str, ...]
    reason: str


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str]]:
    """(line, col, text) for every real comment token.

    Tokenizing keeps pragma parsing honest: a pragma example inside a
    docstring or string literal is not a pragma.  Tokenize errors (the
    file already parsed, so only exotic encodings get here) degrade to
    no comments rather than failing the run.
    """
    import io
    import tokenize

    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def _scan_pragmas(
    source: str, path: str, registry: RuleRegistry
) -> Tuple[Dict[int, _Pragma], List[Finding]]:
    """Per-line suppressions plus findings for malformed pragmas."""
    pragmas: Dict[int, _Pragma] = {}
    problems: List[Finding] = []
    for lineno, col0, text in _iter_comments(source):
        hint = _PRAGMA_HINT.search(text)
        if hint is None:
            continue
        col = col0 + hint.start() + 1
        match = _PRAGMA_STRICT.search(text)
        if match is None:
            problems.append(
                Finding(
                    PRAGMA_RULE_ID,
                    path,
                    lineno,
                    col,
                    "malformed pragma; expected "
                    "'# repro: allow(<rule-id>) -- <reason>'",
                )
            )
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        unknown = [rule_id for rule_id in rule_ids if rule_id not in registry]
        if unknown:
            problems.append(
                Finding(
                    PRAGMA_RULE_ID,
                    path,
                    lineno,
                    col,
                    "pragma names unknown rule(s): %s" % ", ".join(unknown),
                )
            )
            continue
        pragmas[lineno] = _Pragma(lineno, rule_ids, match.group("reason").strip())
    return pragmas, problems


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path, rooted at the ``src`` layout.

    ``src/repro/simulation/engine.py`` → ``repro.simulation.engine``;
    ``__init__.py`` maps to its package.  Files outside a recognizable
    root fall back to slash-to-dot of the relative path.
    """
    import os

    parts = os.path.normpath(path).split(os.sep)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    parts = [part for part in parts if part not in ("", ".", "..")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    # ``__main__.py`` keeps its name: ``repro.__main__`` is a real,
    # allowlistable module.
    return ".".join(parts)


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> List[Finding]:
    """Analyze one module's source text; the core entry point."""
    config = config if config is not None else DEFAULT_CONFIG
    registry = registry if registry is not None else DEFAULT_REGISTRY
    module = module if module is not None else module_name_for_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "syntax-error",
                path,
                exc.lineno or 1,
                (exc.offset or 1),
                "could not parse: %s" % exc.msg,
            )
        ]
    ctx = ModuleContext(path, module, tree, source, config)
    pragmas, findings = _scan_pragmas(source, path, registry)

    active = [
        rule
        for rule in registry.rules(config.select)
        if not config.module_allowed(rule.id, module)
    ]
    by_type: Dict[type, List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            by_type.setdefault(node_type, []).append(rule)

    raw: List[Tuple[Rule, ast.AST, str]] = []
    for rule in active:
        for node, message in rule.module_scan(ctx):
            raw.append((rule, node, message))
    for node in ast.walk(tree):
        for rule in by_type.get(type(node), ()):
            for hit_node, message in rule.check(node, ctx):
                raw.append((rule, hit_node, message))

    for rule, node, message in raw:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        pragma = pragmas.get(line)
        suppressed = pragma is not None and rule.id in pragma.rule_ids
        findings.append(
            Finding(
                rule.id,
                path,
                line,
                col,
                message,
                suppressed=suppressed,
                suppression_reason=pragma.reason if suppressed else None,
            )
        )
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: str,
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config, registry=registry)


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    import os

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        else:
            yield path


def lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> List[Finding]:
    """Analyze files and directory trees; deterministic file order."""
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(lint_file(file_path, config=config, registry=registry))
    return findings

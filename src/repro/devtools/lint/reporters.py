"""Text and JSON reporters with CI-friendly exit semantics.

Text output is one ``path:line:col: rule-id message`` per finding (the
format editors and CI log scanners already understand).  JSON output is
deterministic (sorted findings, sorted keys) so it can be diffed and
uploaded as a CI artefact.  The exit code contract:

* 0 — no unsuppressed findings (suppressed ones are reported but pass)
* 1 — at least one unsuppressed finding
* 2 — usage or internal error (bad path, unknown rule id, ...)
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.devtools.lint.framework import Finding

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def unsuppressed(findings: Sequence[Finding]) -> List[Finding]:
    return [finding for finding in findings if not finding.suppressed]


def exit_code(findings: Sequence[Finding]) -> int:
    return EXIT_FINDINGS if unsuppressed(findings) else EXIT_CLEAN


def render_text(findings: Sequence[Finding], verbose: bool = False) -> str:
    """Human/CI-log report; suppressed findings only shown with -v."""
    shown = list(findings) if verbose else unsuppressed(findings)
    lines = [finding.render() for finding in shown]
    active = len(unsuppressed(findings))
    muted = len(findings) - active
    summary = "%d finding%s" % (active, "" if active == 1 else "s")
    if muted:
        summary += " (+%d suppressed by pragma)" % muted
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: stable ordering, stable key order."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        if not finding.suppressed:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "suppressed": finding.suppressed,
                "suppression_reason": finding.suppression_reason,
            }
            for finding in sorted(findings, key=Finding.sort_key)
        ],
        "summary": {
            "total": len(findings),
            "unsuppressed": len(unsuppressed(findings)),
            "suppressed": len(findings) - len(unsuppressed(findings)),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"

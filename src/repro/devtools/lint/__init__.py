"""Determinism & shard-safety static analyzer (stdlib-only, ``ast``-based).

Run it as ``python -m repro lint`` or ``make lint-determinism``.  The
rules, their ids, the suppression pragma, and the module allowlist are
documented in the "Determinism contract" section of EXPERIMENTS.md.

Public API: :func:`lint_source` / :func:`lint_file` / :func:`lint_paths`
return :class:`Finding` lists; importing :mod:`repro.devtools.lint.rules`
(done here) registers the built-in rules.
"""

from repro.devtools.lint.framework import (  # noqa: F401
    DEFAULT_CONFIG,
    DEFAULT_REGISTRY,
    Finding,
    LintConfig,
    ModuleContext,
    Rule,
    RuleRegistry,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for_path,
)
from repro.devtools.lint import rules  # noqa: F401  (registers built-ins)
from repro.devtools.lint.reporters import (  # noqa: F401
    exit_code,
    render_json,
    render_text,
    unsuppressed,
)

__all__ = [
    "DEFAULT_CONFIG",
    "DEFAULT_REGISTRY",
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for_path",
    "exit_code",
    "render_json",
    "render_text",
    "unsuppressed",
]

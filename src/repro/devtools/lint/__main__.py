"""``python -m repro.devtools.lint`` — same CLI as ``python -m repro lint``."""

import sys

from repro.devtools.lint.cli import main

sys.exit(main())

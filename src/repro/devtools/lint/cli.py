"""Command line for the analyzer: ``python -m repro lint [paths...]``.

Also runnable as ``python -m repro.devtools.lint``.  Text report goes to
stdout; ``--json-out`` additionally writes the deterministic JSON report
(the artefact CI uploads).  See reporters.py for the exit-code contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.devtools.lint import rules  # noqa: F401  (registers the rules)
from repro.devtools.lint.framework import (
    DEFAULT_CONFIG,
    DEFAULT_REGISTRY,
    LintConfig,
    lint_paths,
)
from repro.devtools.lint.reporters import (
    EXIT_ERROR,
    exit_code,
    render_json,
    render_text,
)


def _list_rules() -> str:
    lines = ["determinism & shard-safety rules:", ""]
    for rule in DEFAULT_REGISTRY.rules():
        lines.append("  %-22s %s" % (rule.id, rule.summary))
        allowed = DEFAULT_CONFIG.allowlist.get(rule.id)
        if allowed:
            lines.append("  %-22s   allowlisted in: %s" % ("", ", ".join(allowed)))
    lines += [
        "",
        "suppress one finding with:  # repro: allow(<rule-id>) -- <reason>",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static determinism & shard-safety analysis "
        "(stdlib-only, AST-based) for this repository's invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directory trees to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="stdout report format (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="also write the JSON report to PATH (CI artefact)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore the module allowlist (audit mode: every finding shows)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include pragma-suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule id and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    config = DEFAULT_CONFIG
    if args.no_allowlist or args.select:
        select = ()
        if args.select:
            select = tuple(part.strip() for part in args.select.split(",") if part.strip())
        config = LintConfig(
            allowlist={} if args.no_allowlist else dict(DEFAULT_CONFIG.allowlist),
            spawn_modules=DEFAULT_CONFIG.spawn_modules,
            select=select,
        )
    try:
        findings = lint_paths(args.paths, config=config)
    except KeyError as exc:
        print("error: %s" % (exc.args[0],), file=sys.stderr)
        return EXIT_ERROR
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_ERROR

    if args.format == "json":
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings, verbose=args.verbose))
    if args.json_out:
        from repro.core.atomicio import atomic_write_text

        atomic_write_text(args.json_out, render_json(findings))
    return exit_code(findings)


if __name__ == "__main__":
    sys.exit(main())

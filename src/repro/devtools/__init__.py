"""Developer tooling that guards the repo's own invariants.

The load-bearing invariant of this reproduction is byte-identical
artefacts across worker counts, crash/resume cycles, fault seeds, and
``PYTHONHASHSEED`` values.  The runtime determinism suites catch
violations one seed at a time; :mod:`repro.devtools.lint` catches the
hazard *classes* statically — unseeded RNGs, wallclock reads,
hash-order-dependent iteration, spawn-unsafe worker wiring — so a
violation fails CI before it ever reaches a seed.
"""

"""Timestamp identifiers (TIDs).

TIDs are 13-character, lexicographically sortable record keys derived from a
64-bit value: the top bit is zero, the next 53 bits are microseconds since
the Unix epoch, and the low 10 bits are a per-writer "clock identifier" that
keeps concurrently generated TIDs distinct.  They are rendered in the
``base32-sortable`` alphabet ``234567abcdefghijklmnopqrstuvwxyz``.
"""

from __future__ import annotations

SORTABLE_ALPHABET = "234567abcdefghijklmnopqrstuvwxyz"
_SORT_INDEX = {c: i for i, c in enumerate(SORTABLE_ALPHABET)}

TID_LENGTH = 13
_MICROS_BITS = 53
_CLOCK_BITS = 10
MAX_MICROS = (1 << _MICROS_BITS) - 1
MAX_CLOCK_ID = (1 << _CLOCK_BITS) - 1


class TidError(ValueError):
    """Raised on malformed TIDs."""


class Tid:
    """A parsed TID; ordering follows the encoded string (and so time)."""

    __slots__ = ("micros", "clock_id")

    def __init__(self, micros: int, clock_id: int):
        if not 0 <= micros <= MAX_MICROS:
            raise TidError("timestamp out of range: %d" % micros)
        if not 0 <= clock_id <= MAX_CLOCK_ID:
            raise TidError("clock id out of range: %d" % clock_id)
        self.micros = micros
        self.clock_id = clock_id

    def to_int(self) -> int:
        return (self.micros << _CLOCK_BITS) | self.clock_id

    @classmethod
    def from_int(cls, value: int) -> "Tid":
        if not 0 <= value < (1 << 63):
            raise TidError("TID integer out of range")
        return cls(value >> _CLOCK_BITS, value & MAX_CLOCK_ID)

    def __str__(self) -> str:
        value = self.to_int()
        chars = []
        for shift in range(60, -1, -5):
            chars.append(SORTABLE_ALPHABET[(value >> shift) & 0x1F])
        return "".join(chars)

    @classmethod
    def parse(cls, text: str) -> "Tid":
        if len(text) != TID_LENGTH:
            raise TidError("TID must be %d characters, got %d" % (TID_LENGTH, len(text)))
        value = 0
        for char in text:
            if char not in _SORT_INDEX:
                raise TidError("invalid TID character %r" % char)
            value = (value << 5) | _SORT_INDEX[char]
        if value >> 63:
            raise TidError("TID top bit must be zero")
        return cls.from_int(value)

    @classmethod
    def is_valid(cls, text: str) -> bool:
        try:
            cls.parse(text)
        except TidError:
            return False
        return True

    def __repr__(self) -> str:
        return "Tid(%s)" % str(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tid):
            return NotImplemented
        return self.to_int() == other.to_int()

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Tid):
            return NotImplemented
        return self.to_int() < other.to_int()

    def __hash__(self) -> int:
        return hash(self.to_int())


class TidClock:
    """Generates strictly increasing TIDs for one writer.

    Real implementations use the wall clock; the simulator drives this from
    its own clock so runs are reproducible.  If asked for a TID at a
    timestamp not later than the previous one, the clock nudges forward by
    one microsecond, preserving strict monotonicity.
    """

    def __init__(self, clock_id: int = 0):
        if not 0 <= clock_id <= MAX_CLOCK_ID:
            raise TidError("clock id out of range: %d" % clock_id)
        self.clock_id = clock_id
        self._last_micros = -1

    def next_tid(self, now_micros: int) -> Tid:
        if now_micros <= self._last_micros:
            now_micros = self._last_micros + 1
        self._last_micros = now_micros
        return Tid(now_micros, self.clock_id)

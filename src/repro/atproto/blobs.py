"""Blob storage.

Media (avatars, banners, post images) is not stored in repositories —
records reference *blobs* by CID and the hosting PDS stores the bytes.
``com.atproto.sync.getBlob`` serves them; uploads are content-addressed
and deduplicated; blobs are reference-counted so deleting the last
referring record garbage-collects the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atproto.cid import Cid, cid_for_raw

MAX_BLOB_BYTES = 5 * 1024 * 1024  # the real PDS default upload cap


class BlobError(ValueError):
    """Raised on invalid blob operations."""


@dataclass
class BlobRef:
    """The record-side reference: ``{"$type": "blob", "ref": cid, ...}``."""

    cid: Cid
    mime_type: str
    size: int

    def to_record_field(self) -> dict:
        return {
            "$type": "blob",
            "ref": self.cid,
            "mimeType": self.mime_type,
            "size": self.size,
        }

    @classmethod
    def from_record_field(cls, field: dict) -> "BlobRef":
        if field.get("$type") != "blob" or not isinstance(field.get("ref"), Cid):
            raise BlobError("not a blob reference: %r" % (field,))
        return cls(cid=field["ref"], mime_type=field.get("mimeType", ""), size=field.get("size", 0))


@dataclass
class _StoredBlob:
    data: bytes
    mime_type: str
    refs: int


class BlobStore:
    """Content-addressed, reference-counted blob storage for one PDS."""

    def __init__(self, max_bytes: int = MAX_BLOB_BYTES):
        self.max_bytes = max_bytes
        self._blobs: dict[Cid, _StoredBlob] = {}

    def upload(self, data: bytes, mime_type: str) -> BlobRef:
        """Store bytes; returns the reference to embed in a record."""
        if len(data) > self.max_bytes:
            raise BlobError("blob exceeds %d bytes" % self.max_bytes)
        if not data:
            raise BlobError("empty blob")
        cid = cid_for_raw(data)
        existing = self._blobs.get(cid)
        if existing is None:
            # Uploaded blobs start unreferenced; add_ref happens when a
            # record pointing at them is committed.
            self._blobs[cid] = _StoredBlob(data, mime_type, refs=0)
        return BlobRef(cid=cid, mime_type=mime_type, size=len(data))

    def get(self, cid: Cid) -> bytes:
        blob = self._blobs.get(cid)
        if blob is None:
            raise BlobError("unknown blob %s" % cid)
        return blob.data

    def has(self, cid: Cid) -> bool:
        return cid in self._blobs

    def add_ref(self, cid: Cid) -> None:
        blob = self._blobs.get(cid)
        if blob is None:
            raise BlobError("cannot reference unknown blob %s" % cid)
        blob.refs += 1

    def release(self, cid: Cid) -> None:
        """Drop one reference; garbage-collect at zero."""
        blob = self._blobs.get(cid)
        if blob is None:
            return
        blob.refs -= 1
        if blob.refs <= 0:
            del self._blobs[cid]

    def blob_count(self) -> int:
        return len(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob.data) for blob in self._blobs.values())


def extract_blob_refs(record: dict) -> list[BlobRef]:
    """Find every blob reference inside a record (nested dicts/lists)."""
    found: list[BlobRef] = []

    def walk(value) -> None:
        if isinstance(value, dict):
            if value.get("$type") == "blob":
                try:
                    found.append(BlobRef.from_record_field(value))
                    return
                except BlobError:
                    pass
            for child in value.values():
                walk(child)
        elif isinstance(value, list):
            for child in value:
                walk(child)

    walk(record)
    return found

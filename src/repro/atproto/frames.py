"""Wire framing for event streams.

Real ATProto subscriptions deliver each event as two concatenated DAG-CBOR
items: a *header* (``{"op": 1, "t": "#commit"}``, or ``{"op": -1}`` for
errors) followed by the *payload*.  This module implements that framing
for the firehose event types and for label streams, so the simulator's
streams can be serialized to actual bytes — which is also what the
Section 9 bandwidth estimate is grounded in.
"""

from __future__ import annotations

from typing import Optional

from repro.atproto.cbor import CborError, cbor_encode, _Decoder
from repro.atproto.cid import Cid
from repro.atproto.events import (
    KIND_COMMIT,
    KIND_HANDLE,
    KIND_IDENTITY,
    KIND_INFO,
    KIND_TOMBSTONE,
    CommitEvent,
    CommitOp,
    FirehoseEvent,
    HandleEvent,
    IdentityEvent,
    InfoEvent,
    TombstoneEvent,
)


def iso_timestamp(time_us: int) -> str:
    """ISO-8601 rendering with millisecond precision (wire `time` field)."""
    import datetime

    moment = datetime.datetime(1970, 1, 1, tzinfo=datetime.timezone.utc) + datetime.timedelta(
        microseconds=time_us
    )
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "Z"


class FrameError(ValueError):
    """Raised on malformed frames."""


def _decode_two(data: bytes):
    """Decode exactly two concatenated DAG-CBOR items."""
    decoder = _Decoder(data)
    header = decoder.decode_value()
    payload = decoder.decode_value()
    if decoder.pos != len(data):
        raise FrameError("trailing bytes after frame payload")
    return header, payload


def encode_event_frame(event: FirehoseEvent) -> bytes:
    """Serialize a firehose event to its two-item wire frame."""
    header = {"op": 1, "t": event.kind}
    payload: dict = {"seq": event.seq, "repo": event.did, "time": iso_timestamp(event.time_us)}
    payload["timeUs"] = event.time_us
    if isinstance(event, CommitEvent):
        payload["rev"] = event.rev
        payload["commit"] = event.commit_cid
        payload["tooBig"] = event.too_big
        payload["ops"] = [
            {
                "action": op.action,
                "path": op.path,
                "cid": op.cid,
                "record": op.record,
            }
            for op in event.ops
        ]
    elif isinstance(event, (HandleEvent, IdentityEvent)):
        if getattr(event, "handle", None):
            payload["handle"] = event.handle
    elif isinstance(event, InfoEvent):
        payload["name"] = event.name
        payload["message"] = event.message
        if event.oldest_seq is not None:
            payload["oldestSeq"] = event.oldest_seq
        payload["dropped"] = event.dropped
    return cbor_encode(header) + cbor_encode(payload)


def decode_event_frame(data: bytes) -> FirehoseEvent:
    """Parse a wire frame back into a typed event."""
    header, payload = _decode_two(data)
    if not isinstance(header, dict) or header.get("op") != 1:
        raise FrameError("not a message frame: %r" % (header,))
    kind = header.get("t")
    seq = payload["seq"]
    did = payload["repo"]
    time_us = payload["timeUs"]
    if kind == KIND_COMMIT:
        ops = tuple(
            CommitOp(
                action=op["action"],
                path=op["path"],
                cid=op.get("cid"),
                record=op.get("record"),
            )
            for op in payload.get("ops", [])
        )
        return CommitEvent(
            seq=seq,
            did=did,
            time_us=time_us,
            rev=payload.get("rev", ""),
            commit_cid=payload.get("commit"),
            ops=ops,
            too_big=payload.get("tooBig", False),
        )
    if kind == KIND_IDENTITY:
        return IdentityEvent(seq=seq, did=did, time_us=time_us, handle=payload.get("handle"))
    if kind == KIND_HANDLE:
        return HandleEvent(seq=seq, did=did, time_us=time_us, handle=payload.get("handle", ""))
    if kind == KIND_TOMBSTONE:
        return TombstoneEvent(seq=seq, did=did, time_us=time_us)
    if kind == KIND_INFO:
        return InfoEvent(
            seq=seq,
            did=did,
            time_us=time_us,
            name=payload.get("name", ""),
            message=payload.get("message", ""),
            oldest_seq=payload.get("oldestSeq"),
            dropped=payload.get("dropped", 0),
        )
    raise FrameError("unknown event kind %r" % kind)


def encode_error_frame(error: str, message: str = "") -> bytes:
    """The ``op: -1`` error frame subscriptions send before closing."""
    return cbor_encode({"op": -1}) + cbor_encode({"error": error, "message": message})


def decode_any_frame(data: bytes):
    """Decode either a message or an error frame.

    Returns ``("event", event)`` or ``("error", payload_dict)``.
    """
    header, payload = _decode_two(data)
    if not isinstance(header, dict):
        raise FrameError("frame header must be a map")
    if header.get("op") == -1:
        return ("error", payload)
    return ("event", decode_event_frame(data))


def encode_label_frame(label, signature: Optional[bytes] = None) -> bytes:
    """Serialize one label event (``com.atproto.label.subscribeLabels``)."""
    header = {"op": 1, "t": "#labels"}
    body = {
        "seq": label.seq,
        "labels": [
            {
                "src": label.src,
                "uri": label.uri,
                "val": label.val,
                "neg": label.neg,
                "cts": iso_timestamp(label.cts),
                "ctsUs": label.cts,
            }
        ],
    }
    if signature is not None:
        body["labels"][0]["sig"] = signature
    return cbor_encode(header) + cbor_encode(body)


def decode_label_frame(data: bytes):
    """Parse a label frame into (seq, list-of-label-dicts)."""
    header, payload = _decode_two(data)
    if header.get("t") != "#labels":
        raise FrameError("not a label frame")
    return payload["seq"], payload["labels"]


def frame_size(event: FirehoseEvent) -> int:
    """Exact wire size of an event's frame (served from the event's cache)."""
    return event.wire_size()

"""AT-URIs.

Records are addressed as ``at://<authority>/<collection>/<rkey>`` where the
authority is a DID (or handle), the collection an NSID, and the rkey a
record key (commonly a TID).  Shorter forms address a whole collection
(``at://did/collection``) or a whole repository (``at://did``).
"""

from __future__ import annotations

import re

from repro.atproto.nsid import Nsid, NsidError

_RKEY_RE = re.compile(r"^[a-zA-Z0-9._:~-]{1,512}$")


class AtUriError(ValueError):
    """Raised on malformed AT-URIs."""


class AtUri:
    """A parsed AT-URI with optional collection and rkey components."""

    __slots__ = ("authority", "collection", "rkey")

    def __init__(self, authority: str, collection: str | None = None, rkey: str | None = None):
        if not authority:
            raise AtUriError("AT-URI requires an authority")
        if rkey is not None and collection is None:
            raise AtUriError("rkey requires a collection")
        if collection is not None:
            try:
                Nsid(collection)
            except NsidError as exc:
                raise AtUriError("invalid collection NSID: %s" % exc) from exc
        if rkey is not None and not _RKEY_RE.match(rkey):
            raise AtUriError("invalid record key %r" % rkey)
        self.authority = authority
        self.collection = collection
        self.rkey = rkey

    @classmethod
    def parse(cls, text: str) -> "AtUri":
        if not text.startswith("at://"):
            raise AtUriError("AT-URI must start with at://, got %r" % text[:16])
        rest = text[len("at://") :]
        parts = rest.split("/")
        if len(parts) > 3 or (parts and parts[-1] == "" and len(parts) > 1):
            raise AtUriError("too many path components in %r" % text)
        authority = parts[0]
        collection = parts[1] if len(parts) > 1 else None
        rkey = parts[2] if len(parts) > 2 else None
        return cls(authority, collection, rkey)

    def __str__(self) -> str:
        pieces = ["at://", self.authority]
        if self.collection is not None:
            pieces.append("/" + self.collection)
            if self.rkey is not None:
                pieces.append("/" + self.rkey)
        return "".join(pieces)

    def __repr__(self) -> str:
        return "AtUri(%s)" % str(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            return str(self) == other
        if isinstance(other, AtUri):
            return (self.authority, self.collection, self.rkey) == (
                other.authority,
                other.collection,
                other.rkey,
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.authority, self.collection, self.rkey))

"""secp256k1 ECDSA, implemented from scratch.

ATProto signs repository commits and PLC operations with "k256"
(secp256k1) or "p256" keys.  We implement secp256k1: affine/Jacobian curve
arithmetic, deterministic nonces per RFC 6979 (so signatures are
reproducible), low-S normalization (required by ATProto), compact 64-byte
signatures, compressed point encoding, and ``did:key`` rendering with the
``secp256k1-pub`` multicodec (0xe7).

This is a clean-room educational implementation; it is constant-time in no
sense whatsoever and must never guard real secrets.  For the simulator it
provides the real data formats and verification semantics.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.atproto.multibase import base58btc_decode, base58btc_encode
from repro.atproto.varint import decode_varint, encode_varint

# Curve parameters (SEC 2, secp256k1).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8
B = 7

MULTICODEC_SECP256K1_PUB = 0xE7
DID_KEY_PREFIX = "did:key:"


class CryptoError(ValueError):
    """Raised on invalid keys, points, or signatures."""


# ---------------------------------------------------------------------------
# Field and point arithmetic (Jacobian coordinates for speed)
# ---------------------------------------------------------------------------


def _inv(a: int, modulus: int) -> int:
    if a == 0:
        raise CryptoError("no inverse of zero")
    return pow(a, modulus - 2, modulus)


_INFINITY = (0, 0, 0)


def _to_jacobian(point: tuple[int, int] | None):
    if point is None:
        return _INFINITY
    return (point[0], point[1], 1)


def _from_jacobian(point) -> tuple[int, int] | None:
    x, y, z = point
    if z == 0:
        return None
    z_inv = _inv(z, P)
    z_inv2 = z_inv * z_inv % P
    return (x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jacobian_double(point):
    x, y, z = point
    if z == 0 or y == 0:
        return _INFINITY
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = 3 * x * x % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jacobian_add(p1, p2):
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2z2 * z2 % P
    s2 = y2 * z1z1 * z1 % P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jacobian_double(p1)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h * z1 * z2 % P
    return (nx, ny, nz)


def _scalar_mult(k: int, point: tuple[int, int] | None) -> tuple[int, int] | None:
    k %= N
    result = _INFINITY
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


def _is_on_curve(point: tuple[int, int] | None) -> bool:
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B) % P == 0


# ---------------------------------------------------------------------------
# Point serialization
# ---------------------------------------------------------------------------


def compress_point(point: tuple[int, int]) -> bytes:
    x, y = point
    prefix = b"\x03" if y & 1 else b"\x02"
    return prefix + x.to_bytes(32, "big")


def decompress_point(data: bytes) -> tuple[int, int]:
    if len(data) != 33 or data[0] not in (2, 3):
        raise CryptoError("invalid compressed point")
    x = int.from_bytes(data[1:], "big")
    if x >= P:
        raise CryptoError("point x-coordinate out of range")
    y_sq = (pow(x, 3, P) + B) % P
    y = pow(y_sq, (P + 1) // 4, P)
    if y * y % P != y_sq:
        raise CryptoError("point is not on the curve")
    if (y & 1) != (data[0] & 1):
        y = P - y
    return (x, y)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


class SigningKey:
    """A secp256k1 private key with deterministic ECDSA signing."""

    __slots__ = ("secret", "_public")

    def __init__(self, secret: int):
        if not 1 <= secret < N:
            raise CryptoError("private key scalar out of range")
        self.secret = secret
        self._public: VerifyingKey | None = None

    @classmethod
    def from_seed(cls, seed: bytes) -> "SigningKey":
        """Derive a key deterministically from arbitrary seed bytes."""
        counter = 0
        while True:
            digest = hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
            candidate = int.from_bytes(digest, "big")
            if 1 <= candidate < N:
                return cls(candidate)
            counter += 1

    @property
    def public_key(self) -> "VerifyingKey":
        if self._public is None:
            point = _scalar_mult(self.secret, (GX, GY))
            assert point is not None
            self._public = VerifyingKey(point)
        return self._public

    def _rfc6979_nonce(self, digest: bytes) -> int:
        """Deterministic nonce per RFC 6979 (SHA-256 as the HMAC hash)."""
        x = self.secret.to_bytes(32, "big")
        h1 = digest
        v = b"\x01" * 32
        k = b"\x00" * 32
        k = hmac.new(k, v + b"\x00" + x + h1, hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()
        k = hmac.new(k, v + b"\x01" + x + h1, hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()
        while True:
            v = hmac.new(k, v, hashlib.sha256).digest()
            candidate = int.from_bytes(v, "big")
            if 1 <= candidate < N:
                return candidate
            k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
            v = hmac.new(k, v, hashlib.sha256).digest()

    def sign(self, message: bytes) -> bytes:
        """Sign a message; returns a compact 64-byte low-S signature."""
        digest = hashlib.sha256(message).digest()
        z = int.from_bytes(digest, "big") % N
        k = self._rfc6979_nonce(digest)
        while True:
            point = _scalar_mult(k, (GX, GY))
            assert point is not None
            r = point[0] % N
            if r == 0:
                k = (k + 1) % N or 1
                continue
            s = _inv(k, N) * (z + r * self.secret) % N
            if s == 0:
                k = (k + 1) % N or 1
                continue
            if s > N // 2:  # low-S normalization, required by ATProto
                s = N - s
            return r.to_bytes(32, "big") + s.to_bytes(32, "big")


class VerifyingKey:
    """A secp256k1 public key."""

    __slots__ = ("point",)

    def __init__(self, point: tuple[int, int]):
        if not _is_on_curve(point) or point is None:
            raise CryptoError("public key is not on the curve")
        self.point = point

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a compact 64-byte signature; rejects high-S signatures.

        ``r`` and ``s`` must each lie in [1, n-1] — zero or >= n is an
        outright forgery attempt (s = 0 would make ``w`` undefined, and
        values >= n alias a smaller scalar) — and ``s`` must additionally
        be in the low half of the range (ATProto's low-S rule).
        """
        if not isinstance(signature, (bytes, bytearray)) or len(signature) != 64:
            return False
        r = int.from_bytes(signature[:32], "big")
        s = int.from_bytes(signature[32:], "big")
        if not (1 <= r <= N - 1):
            return False
        if not (1 <= s <= N - 1):
            return False
        if s > N // 2:  # valid scalar, but violates low-S normalization
            return False
        digest = hashlib.sha256(message).digest()
        z = int.from_bytes(digest, "big") % N
        w = _inv(s, N)
        u1 = z * w % N
        u2 = r * w % N
        point = _from_jacobian(
            _jacobian_add(
                _to_jacobian(_scalar_mult(u1, (GX, GY))),
                _to_jacobian(_scalar_mult(u2, self.point)),
            )
        )
        if point is None:
            return False
        return point[0] % N == r

    def to_compressed(self) -> bytes:
        return compress_point(self.point)

    @classmethod
    def from_compressed(cls, data: bytes) -> "VerifyingKey":
        return cls(decompress_point(data))

    def to_did_key(self) -> str:
        """Render as ``did:key:z...`` with the secp256k1-pub multicodec."""
        payload = encode_varint(MULTICODEC_SECP256K1_PUB) + self.to_compressed()
        return DID_KEY_PREFIX + "z" + base58btc_encode(payload)

    @classmethod
    def from_did_key(cls, did_key: str) -> "VerifyingKey":
        if not did_key.startswith(DID_KEY_PREFIX + "z"):
            raise CryptoError("not a base58btc did:key: %r" % did_key)
        payload = base58btc_decode(did_key[len(DID_KEY_PREFIX) + 1 :])
        codec, pos = decode_varint(payload)
        if codec != MULTICODEC_SECP256K1_PUB:
            raise CryptoError("unsupported did:key multicodec 0x%02x" % codec)
        return cls.from_compressed(payload[pos:])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VerifyingKey):
            return NotImplemented
        return self.point == other.point

    def __hash__(self) -> int:
        return hash(self.point)

"""Signing-key abstraction used by repositories and PLC operations.

Two interchangeable implementations:

* :class:`Secp256k1Keypair` — real ECDSA over secp256k1
  (:mod:`repro.atproto.crypto`), byte-compatible with ATProto.  Used by the
  protocol-level tests and small scenarios.
* :class:`HmacKeypair` — an HMAC-SHA256 "signature" scheme.  Pure-Python
  ECDSA costs milliseconds per signature, which is prohibitive when a
  simulation signs millions of commits; HMAC keys keep the exact same
  commit/operation formats (a 64-byte signature over the same canonical
  bytes) at microsecond cost.  DESIGN.md records this substitution.

Verification goes through the public key object in both cases, so service
code never branches on the scheme.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.atproto.crypto import SigningKey, VerifyingKey
from repro.atproto.multibase import base58btc_decode, base58btc_encode
from repro.atproto.varint import decode_varint, encode_varint

# Private multicodec from the experimental range, marking simulator-only keys.
MULTICODEC_HMAC_SIM = 0x300101
DID_KEY_PREFIX = "did:key:"


class KeyError_(ValueError):
    """Raised on malformed key material."""


class PublicKey:
    """Common interface: verify a 64-byte signature and render as did:key."""

    def verify(self, message: bytes, signature: bytes) -> bool:
        raise NotImplementedError

    def to_did_key(self) -> str:
        raise NotImplementedError


class Keypair:
    """Common interface: sign bytes, expose the public half."""

    def sign(self, message: bytes) -> bytes:
        raise NotImplementedError

    @property
    def public_key(self) -> PublicKey:
        raise NotImplementedError

    def did_key(self) -> str:
        return self.public_key.to_did_key()


class Secp256k1PublicKey(PublicKey):
    def __init__(self, inner: VerifyingKey):
        self.inner = inner

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.inner.verify(message, signature)

    def to_did_key(self) -> str:
        return self.inner.to_did_key()


class Secp256k1Keypair(Keypair):
    """Real ECDSA keypair; deterministic derivation from a seed."""

    def __init__(self, signing_key: SigningKey):
        self._key = signing_key
        self._public = Secp256k1PublicKey(signing_key.public_key)

    @classmethod
    def from_seed(cls, seed: bytes) -> "Secp256k1Keypair":
        return cls(SigningKey.from_seed(seed))

    def sign(self, message: bytes) -> bytes:
        return self._key.sign(message)

    @property
    def public_key(self) -> PublicKey:
        return self._public


class HmacPublicKey(PublicKey):
    """The 'public' half of an HMAC key.

    HMAC is symmetric, so this object carries the shared secret; within the
    simulator that is acceptable because nothing adversarial runs inside the
    process.  The did:key form tags the key with a private-use multicodec so
    it can never be confused with a real secp256k1 key.
    """

    def __init__(self, secret: bytes):
        self.secret = secret

    def verify(self, message: bytes, signature: bytes) -> bool:
        if len(signature) != 64:
            return False
        expected = _hmac_sig(self.secret, message)
        return hmac.compare_digest(expected, signature)

    def to_did_key(self) -> str:
        payload = encode_varint(MULTICODEC_HMAC_SIM) + self.secret
        return DID_KEY_PREFIX + "z" + base58btc_encode(payload)


def _hmac_sig(secret: bytes, message: bytes) -> bytes:
    first = hmac.new(secret, message, hashlib.sha256).digest()
    second = hmac.new(secret, first + message, hashlib.sha256).digest()
    return first + second


class HmacKeypair(Keypair):
    """Fast simulator keypair producing 64-byte verifiable signatures."""

    def __init__(self, secret: bytes):
        if len(secret) != 32:
            raise KeyError_("HMAC key secret must be 32 bytes")
        self.secret = secret
        self._public = HmacPublicKey(secret)

    @classmethod
    def from_seed(cls, seed: bytes) -> "HmacKeypair":
        return cls(hashlib.sha256(b"hmac-keypair:" + seed).digest())

    def sign(self, message: bytes) -> bytes:
        return _hmac_sig(self.secret, message)

    @property
    def public_key(self) -> PublicKey:
        return self._public


def public_key_from_did_key(did_key: str) -> PublicKey:
    """Parse either key flavour from its did:key rendering."""
    if not did_key.startswith(DID_KEY_PREFIX + "z"):
        raise KeyError_("not a base58btc did:key: %r" % did_key)
    payload = base58btc_decode(did_key[len(DID_KEY_PREFIX) + 1 :])
    codec, pos = decode_varint(payload)
    if codec == MULTICODEC_HMAC_SIM:
        return HmacPublicKey(payload[pos:])
    return Secp256k1PublicKey(VerifyingKey.from_did_key(did_key))


def make_keypair(seed: bytes, fast: bool = True) -> Keypair:
    """Factory used by the simulation: fast HMAC keys by default."""
    if fast:
        return HmacKeypair.from_seed(seed)
    return Secp256k1Keypair.from_seed(seed)

"""DAG-CBOR codec.

Implements the subset of RFC 8949 required by the IPLD DAG-CBOR spec, which
is what ATProto uses to encode repository records, commits, and MST nodes:

* unsigned / negative integers (major types 0 and 1),
* byte strings and text strings (major types 2 and 3),
* arrays and maps (major types 4 and 5),
* tag 42 for CID links (major type 6),
* ``false`` / ``true`` / ``null`` and 64-bit floats (major type 7).

DAG-CBOR is strict: map keys must be strings and are sorted by their UTF-8
encoding (length first, then lexicographic), integers use the shortest
possible encoding, floats are always 64-bit, and indefinite-length items are
forbidden.  The decoder enforces these rules so that every encodable value
round-trips to exactly one byte sequence.
"""

from __future__ import annotations

import math
import struct
from typing import Any

from repro.atproto.cid import Cid

_MAX_NESTING = 128


class CborError(ValueError):
    """Raised on values or bytes that are not valid DAG-CBOR."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _encode_head(major: int, value: int, out: bytearray) -> None:
    if value < 24:
        out.append((major << 5) | value)
    elif value < 0x100:
        out.append((major << 5) | 24)
        out.append(value)
    elif value < 0x10000:
        out.append((major << 5) | 25)
        out.extend(value.to_bytes(2, "big"))
    elif value < 0x100000000:
        out.append((major << 5) | 26)
        out.extend(value.to_bytes(4, "big"))
    elif value < 0x10000000000000000:
        out.append((major << 5) | 27)
        out.extend(value.to_bytes(8, "big"))
    else:
        raise CborError("integer too large for CBOR: %d" % value)


def _map_key_sort_key(key: str) -> tuple[int, bytes]:
    encoded = key.encode("utf-8")
    return (len(encoded), encoded)


# Map-shape cache: most encoded maps are records/commits/MST nodes sharing a
# handful of key tuples, so the canonical key order is memoised per shape
# (bounded; a shape is the tuple of keys in insertion order).
_SHAPE_CACHE: dict[tuple, tuple] = {}
_SHAPE_CACHE_MAX = 4096


def _map_key_order(value: dict) -> tuple:
    shape = tuple(value)
    order = _SHAPE_CACHE.get(shape)
    if order is None:
        for key in shape:
            if not isinstance(key, str):
                raise CborError("DAG-CBOR map keys must be strings, got %r" % (key,))
        order = tuple(sorted(shape, key=_map_key_sort_key))
        if len(_SHAPE_CACHE) < _SHAPE_CACHE_MAX:
            _SHAPE_CACHE[shape] = order
    return order


def _encode_value(value: Any, out: bytearray, depth: int) -> None:
    # Hot path: dispatch on the exact type (the common case by far); exotic
    # values (subclasses, unknown types) fall back to _encode_value_slow,
    # which replicates the full isinstance ladder.
    if depth > _MAX_NESTING:
        raise CborError("value nests deeper than %d levels" % _MAX_NESTING)
    t = value.__class__
    if t is str:
        encoded = value.encode("utf-8")
        size = len(encoded)
        if size < 24:
            out.append(0x60 | size)
        else:
            _encode_head(3, size, out)
        out.extend(encoded)
    elif t is dict:
        size = len(value)
        if size < 24:
            out.append(0xA0 | size)
        else:
            _encode_head(5, size, out)
        for key in _map_key_order(value):
            encoded = key.encode("utf-8")
            key_size = len(encoded)
            if key_size < 24:
                out.append(0x60 | key_size)
            else:
                _encode_head(3, key_size, out)
            out.extend(encoded)
            _encode_value(value[key], out, depth + 1)
    elif t is int:
        if 0 <= value < 24:
            out.append(value)
        elif value >= 0:
            _encode_head(0, value, out)
        else:
            _encode_head(1, -1 - value, out)
    elif value is None:
        out.append(0xF6)
    elif t is bool:
        out.append(0xF5 if value else 0xF4)
    elif t is bytes:
        _encode_head(2, len(value), out)
        out.extend(value)
    elif t is Cid:
        # Tag 42, with the CID bytes prefixed by the multibase identity byte.
        _encode_head(6, 42, out)
        payload = b"\x00" + value.to_bytes()
        _encode_head(2, len(payload), out)
        out.extend(payload)
    elif t is list or t is tuple:
        size = len(value)
        if size < 24:
            out.append(0x80 | size)
        else:
            _encode_head(4, size, out)
        for item in value:
            _encode_value(item, out, depth + 1)
    elif t is float:
        if math.isnan(value) or math.isinf(value):
            raise CborError("DAG-CBOR forbids NaN and infinities")
        out.append(0xFB)
        out.extend(struct.pack(">d", value))
    else:
        _encode_value_slow(value, out, depth)


def _encode_value_slow(value: Any, out: bytearray, depth: int) -> None:
    """Fallback for subclasses of the supported types (and the error case)."""
    if depth > _MAX_NESTING:
        raise CborError("value nests deeper than %d levels" % _MAX_NESTING)
    if value is False:
        out.append(0xF4)
    elif value is True:
        out.append(0xF5)
    elif isinstance(value, int):
        if value >= 0:
            _encode_head(0, value, out)
        else:
            _encode_head(1, -1 - value, out)
    elif isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise CborError("DAG-CBOR forbids NaN and infinities")
        out.append(0xFB)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, bytes):
        _encode_head(2, len(value), out)
        out.extend(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        _encode_head(3, len(encoded), out)
        out.extend(encoded)
    elif isinstance(value, Cid):
        _encode_head(6, 42, out)
        payload = b"\x00" + value.to_bytes()
        _encode_head(2, len(payload), out)
        out.extend(payload)
    elif isinstance(value, (list, tuple)):
        _encode_head(4, len(value), out)
        for item in value:
            _encode_value(item, out, depth + 1)
    elif isinstance(value, dict):
        _encode_head(5, len(value), out)
        for key in value:
            if not isinstance(key, str):
                raise CborError("DAG-CBOR map keys must be strings, got %r" % (key,))
        for key in sorted(value.keys(), key=_map_key_sort_key):
            _encode_value(key, out, depth + 1)
            _encode_value(value[key], out, depth + 1)
    else:
        raise CborError("cannot encode %r as DAG-CBOR" % type(value).__name__)


def cbor_encode(value: Any) -> bytes:
    """Encode a Python value as canonical DAG-CBOR bytes."""
    out = bytearray()
    _encode_value(value, out, 0)
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class _Decoder:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise CborError("truncated CBOR input")
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def _read_head(self) -> tuple[int, int]:
        byte = self._take(1)[0]
        major = byte >> 5
        info = byte & 0x1F
        if info < 24:
            return major, info
        if info == 24:
            value = self._take(1)[0]
            if value < 24:
                raise CborError("non-minimal integer encoding")
            return major, value
        if info == 25:
            value = int.from_bytes(self._take(2), "big")
            if value < 0x100:
                raise CborError("non-minimal integer encoding")
            return major, value
        if info == 26:
            value = int.from_bytes(self._take(4), "big")
            if value < 0x10000:
                raise CborError("non-minimal integer encoding")
            return major, value
        if info == 27:
            value = int.from_bytes(self._take(8), "big")
            if value < 0x100000000:
                raise CborError("non-minimal integer encoding")
            return major, value
        raise CborError("indefinite-length items are forbidden in DAG-CBOR")

    def decode_value(self, depth: int = 0) -> Any:
        if depth > _MAX_NESTING:
            raise CborError("input nests deeper than %d levels" % _MAX_NESTING)
        byte = self.data[self.pos] if self.pos < len(self.data) else None
        if byte is None:
            raise CborError("truncated CBOR input")
        # Simple values and floats share major type 7 but have non-integer
        # heads, so handle them before _read_head's minimality checks.
        if byte >> 5 == 7:
            self.pos += 1
            info = byte & 0x1F
            if info == 20:
                return False
            if info == 21:
                return True
            if info == 22:
                return None
            if info == 27:
                value = struct.unpack(">d", self._take(8))[0]
                if math.isnan(value) or math.isinf(value):
                    raise CborError("DAG-CBOR forbids NaN and infinities")
                return value
            raise CborError("unsupported simple/float head 0x%02x" % byte)
        major, arg = self._read_head()
        if major == 0:
            return arg
        if major == 1:
            return -1 - arg
        if major == 2:
            return self._take(arg)
        if major == 3:
            raw = self._take(arg)
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CborError("invalid UTF-8 in text string") from exc
        if major == 4:
            return [self.decode_value(depth + 1) for _ in range(arg)]
        if major == 5:
            result: dict[str, Any] = {}
            previous: tuple[int, bytes] | None = None
            for _ in range(arg):
                key = self.decode_value(depth + 1)
                if not isinstance(key, str):
                    raise CborError("DAG-CBOR map keys must be strings")
                sort_key = _map_key_sort_key(key)
                if previous is not None and sort_key <= previous:
                    raise CborError("map keys out of canonical order")
                previous = sort_key
                result[key] = self.decode_value(depth + 1)
            return result
        if major == 6:
            if arg != 42:
                raise CborError("only tag 42 (CID) is allowed, got %d" % arg)
            payload = self.decode_value(depth + 1)
            if not isinstance(payload, bytes) or not payload.startswith(b"\x00"):
                raise CborError("tag 42 payload must be identity-multibase CID bytes")
            return Cid.from_bytes(payload[1:])
        raise CborError("unsupported major type %d" % major)


def cbor_decode(data: bytes) -> Any:
    """Decode DAG-CBOR bytes, requiring the input be a single complete item."""
    decoder = _Decoder(data)
    value = decoder.decode_value()
    if decoder.pos != len(data):
        raise CborError("%d trailing bytes after CBOR item" % (len(data) - decoder.pos))
    return value

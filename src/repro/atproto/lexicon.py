"""Lexicon registry and record validation.

ATProto does not fix the record vocabulary; *lexicons* — community-defined
schemas organised under DNS-like NSIDs — do.  This module ships the
``app.bsky`` and ``com.atproto`` record types the paper's measurements rely
on, plus third-party lexicons observed in the wild (WhiteWind long-form
blogging), and a small declarative schema language to validate records.

Unknown collections are allowed through by default, exactly as the real
network behaves: the Firehose relays records that Bluesky's own AppView
cannot decode (Section 4, "Non-Bluesky content").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.atproto.cid import Cid
from repro.atproto.nsid import Nsid


class LexiconError(ValueError):
    """Raised when a record violates its declared lexicon."""


@dataclass(frozen=True)
class Field:
    """One field in a record schema."""

    name: str
    type: str  # "string" | "integer" | "boolean" | "bytes" | "cid" | "dict" | "list" | "ref"
    required: bool = False
    max_length: Optional[int] = None
    known_values: Optional[tuple[str, ...]] = None


@dataclass(frozen=True)
class RecordSchema:
    """Schema for one record collection."""

    nsid: str
    fields: tuple[Field, ...]
    allow_extra: bool = True

    def validate(self, record: dict) -> None:
        if record.get("$type") != self.nsid:
            raise LexiconError(
                "record $type %r does not match collection %r"
                % (record.get("$type"), self.nsid)
            )
        by_name = {f.name: f for f in self.fields}
        for spec in self.fields:
            if spec.required and spec.name not in record:
                raise LexiconError("%s: missing required field %r" % (self.nsid, spec.name))
        for name, value in record.items():
            if name == "$type":
                continue
            spec = by_name.get(name)
            if spec is None:
                if self.allow_extra:
                    continue
                raise LexiconError("%s: unknown field %r" % (self.nsid, name))
            self._check_field(spec, value)

    def _check_field(self, spec: Field, value: Any) -> None:
        checkers: dict[str, Callable[[Any], bool]] = {
            "string": lambda v: isinstance(v, str),
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "bytes": lambda v: isinstance(v, bytes),
            "cid": lambda v: isinstance(v, Cid),
            "dict": lambda v: isinstance(v, dict),
            "list": lambda v: isinstance(v, list),
            "ref": lambda v: isinstance(v, dict) and "uri" in v,
        }
        check = checkers.get(spec.type)
        if check is None:
            raise LexiconError("unknown field type %r in schema" % spec.type)
        if not check(value):
            raise LexiconError(
                "%s: field %r must be %s, got %r"
                % (self.nsid, spec.name, spec.type, type(value).__name__)
            )
        if spec.max_length is not None and isinstance(value, str) and len(value) > spec.max_length:
            raise LexiconError(
                "%s: field %r longer than %d" % (self.nsid, spec.name, spec.max_length)
            )
        if spec.known_values is not None and value not in spec.known_values:
            raise LexiconError("%s: field %r has unknown value %r" % (self.nsid, spec.name, value))


# ---------------------------------------------------------------------------
# Collection NSIDs used throughout the codebase
# ---------------------------------------------------------------------------

POST = "app.bsky.feed.post"
LIKE = "app.bsky.feed.like"
REPOST = "app.bsky.feed.repost"
FOLLOW = "app.bsky.graph.follow"
BLOCK = "app.bsky.graph.block"
PROFILE = "app.bsky.actor.profile"
FEED_GENERATOR = "app.bsky.feed.generator"
LABELER_SERVICE = "app.bsky.labeler.service"
LIST = "app.bsky.graph.list"
LIST_ITEM = "app.bsky.graph.listitem"
WHTWND_ENTRY = "com.whtwnd.blog.entry"

BSKY_COLLECTIONS = (
    POST,
    LIKE,
    REPOST,
    FOLLOW,
    BLOCK,
    PROFILE,
    FEED_GENERATOR,
    LABELER_SERVICE,
    LIST,
    LIST_ITEM,
)


class LexiconRegistry:
    """Maps collection NSIDs to schemas; unknown NSIDs pass through."""

    def __init__(self):
        self._schemas: dict[str, RecordSchema] = {}

    def register(self, schema: RecordSchema) -> None:
        Nsid(schema.nsid)  # validate the NSID itself
        self._schemas[schema.nsid] = schema

    def get(self, nsid: str) -> Optional[RecordSchema]:
        return self._schemas.get(nsid)

    def known_collections(self) -> list[str]:
        return sorted(self._schemas)

    def is_bsky_collection(self, nsid: str) -> bool:
        return nsid.startswith("app.bsky.") or nsid.startswith("chat.bsky.")

    def validate(self, collection: str, record: dict) -> None:
        """Validate a record if its collection is known; else pass through."""
        if not Nsid.is_valid(collection):
            raise LexiconError("invalid collection NSID %r" % collection)
        schema = self._schemas.get(collection)
        if schema is not None:
            schema.validate(record)


def default_registry() -> LexiconRegistry:
    """The registry with all Bluesky lexicons the paper's datasets touch."""
    registry = LexiconRegistry()
    registry.register(
        RecordSchema(
            POST,
            (
                Field("text", "string", required=True, max_length=3000),
                Field("createdAt", "string", required=True),
                Field("langs", "list"),
                Field("reply", "dict"),
                Field("embed", "dict"),
                Field("facets", "list"),
                Field("labels", "dict"),
                Field("tags", "list"),
            ),
        )
    )
    registry.register(
        RecordSchema(
            LIKE,
            (
                Field("subject", "ref", required=True),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            REPOST,
            (
                Field("subject", "ref", required=True),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            FOLLOW,
            (
                Field("subject", "string", required=True),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            BLOCK,
            (
                Field("subject", "string", required=True),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            PROFILE,
            (
                Field("displayName", "string", max_length=640),
                Field("description", "string", max_length=2560),
                Field("avatar", "dict"),
                Field("banner", "dict"),
                Field("createdAt", "string"),
            ),
        )
    )
    registry.register(
        RecordSchema(
            FEED_GENERATOR,
            (
                Field("did", "string", required=True),
                Field("displayName", "string", required=True, max_length=240),
                Field("description", "string", max_length=3000),
                Field("avatar", "dict"),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            LABELER_SERVICE,
            (
                Field("policies", "dict", required=True),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            LIST,
            (
                Field("name", "string", required=True, max_length=64),
                Field("purpose", "string", required=True),
                Field("createdAt", "string", required=True),
                Field("description", "string"),
            ),
        )
    )
    registry.register(
        RecordSchema(
            LIST_ITEM,
            (
                Field("subject", "string", required=True),
                Field("list", "string", required=True),
                Field("createdAt", "string", required=True),
            ),
        )
    )
    registry.register(
        RecordSchema(
            WHTWND_ENTRY,
            (
                Field("content", "string", required=True),
                Field("title", "string", max_length=1000),
                Field("createdAt", "string"),
                Field("visibility", "string"),
            ),
        )
    )
    return registry

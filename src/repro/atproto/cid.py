"""Content identifiers (CIDs).

ATProto uses CIDv1 with the ``dag-cbor`` codec (0x71) and a SHA2-256
multihash (0x12, length 32) for repository blocks, and the ``raw`` codec
(0x55) for blobs.  CIDs are rendered in lowercase base32 with the ``b``
multibase prefix, e.g. ``bafyrei...``.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.atproto.multibase import base32_decode, base32_encode
from repro.atproto.varint import decode_varint, encode_varint

CODEC_DAG_CBOR = 0x71
CODEC_RAW = 0x55
MULTIHASH_SHA2_256 = 0x12
SHA2_256_LENGTH = 32


class CidError(ValueError):
    """Raised on malformed CIDs."""


class Cid:
    """An immutable CIDv1 (version, codec, sha2-256 digest)."""

    __slots__ = ("version", "codec", "digest", "_str", "_bytes")

    def __init__(self, version: int, codec: int, digest: bytes):
        if version != 1:
            raise CidError("only CIDv1 is supported, got version %d" % version)
        if codec not in (CODEC_DAG_CBOR, CODEC_RAW):
            raise CidError("unsupported codec 0x%02x" % codec)
        if len(digest) != SHA2_256_LENGTH:
            raise CidError("sha2-256 digest must be 32 bytes, got %d" % len(digest))
        object.__setattr__(self, "version", version)
        object.__setattr__(self, "codec", codec)
        object.__setattr__(self, "digest", digest)
        object.__setattr__(self, "_str", None)
        object.__setattr__(self, "_bytes", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Cid is immutable")

    def __reduce__(self):
        # The immutability guard (__setattr__ raises) breaks the default
        # pickle path; rebuild from the constructor args instead.  Needed
        # so datasets holding CIDs survive checkpoint/resume journaling.
        return (Cid, (self.version, self.codec, self.digest))

    def to_bytes(self) -> bytes:
        """Binary CID: varint(version) varint(codec) multihash (cached)."""
        cached = self._bytes
        if cached is None:
            cached = (
                encode_varint(self.version)
                + encode_varint(self.codec)
                + encode_varint(MULTIHASH_SHA2_256)
                + encode_varint(SHA2_256_LENGTH)
                + self.digest
            )
            object.__setattr__(self, "_bytes", cached)
        return cached

    @classmethod
    def from_bytes(cls, data: bytes) -> "Cid":
        version, pos = decode_varint(data)
        codec, pos = decode_varint(data, pos)
        hash_fn, pos = decode_varint(data, pos)
        hash_len, pos = decode_varint(data, pos)
        if hash_fn != MULTIHASH_SHA2_256:
            raise CidError("unsupported multihash function 0x%02x" % hash_fn)
        digest = data[pos : pos + hash_len]
        if len(digest) != hash_len:
            raise CidError("truncated multihash digest")
        if pos + hash_len != len(data):
            raise CidError("trailing bytes after CID")
        return cls(version, codec, digest)

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            cached = "b" + base32_encode(self.to_bytes())
            object.__setattr__(self, "_str", cached)
        return cached

    @classmethod
    def parse(cls, text: str) -> "Cid":
        if not text.startswith("b"):
            raise CidError("only base32 multibase CIDs are supported")
        return cls.from_bytes(base32_decode(text[1:]))

    def __repr__(self) -> str:
        return "Cid(%s)" % str(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cid):
            return NotImplemented
        return self.codec == other.codec and self.digest == other.digest

    def __lt__(self, other: "Cid") -> bool:
        return self.to_bytes() < other.to_bytes()

    def __hash__(self) -> int:
        return hash((self.codec, self.digest))


def cid_for_cbor(obj: Any) -> Cid:
    """CID of a value's canonical DAG-CBOR encoding."""
    from repro.atproto.cbor import cbor_encode

    return Cid(1, CODEC_DAG_CBOR, hashlib.sha256(cbor_encode(obj)).digest())


def cid_for_dag_cbor_bytes(block: bytes) -> Cid:
    """CID of already-encoded DAG-CBOR bytes.

    The fused fast path of the commit pipeline: when a block has just been
    serialized for storage, its CID is one sha256 away — re-encoding the
    value (as ``cid_for_cbor`` would) doubles the work for nothing.
    """
    return Cid(1, CODEC_DAG_CBOR, hashlib.sha256(block).digest())


def cid_for_raw(data: bytes) -> Cid:
    """CID of a raw (uninterpreted) byte blob."""
    return Cid(1, CODEC_RAW, hashlib.sha256(data).digest())

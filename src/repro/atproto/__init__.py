"""Low-level AT Protocol building blocks.

This package implements the data-model layer of the Authenticated Transfer
Protocol (ATProto) from scratch: DAG-CBOR encoding, CIDs, timestamp
identifiers (TIDs), AT-URIs, NSIDs, secp256k1 signatures, Merkle Search
Trees, signed repositories, and CARv1 serialization.

Everything here is deterministic and side-effect free; the service layer
(:mod:`repro.services`) composes these primitives into PDSes, Relays, and
the other network components studied in the paper.
"""

from repro.atproto.cbor import cbor_decode, cbor_encode
from repro.atproto.cid import Cid, cid_for_cbor, cid_for_raw
from repro.atproto.tid import Tid, TidClock
from repro.atproto.uri import AtUri
from repro.atproto.nsid import Nsid

__all__ = [
    "AtUri",
    "Cid",
    "Nsid",
    "Tid",
    "TidClock",
    "cbor_decode",
    "cbor_encode",
    "cid_for_cbor",
    "cid_for_raw",
]

"""CARv1 (Content Addressable aRchive) reading and writing.

Repositories are exported over ``com.atproto.sync.getRepo`` as CAR files: a
CBOR header naming the root CID(s), followed by length-prefixed
``CID || block-bytes`` sections.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator

from repro.atproto.cbor import cbor_decode, cbor_encode
from repro.atproto.cid import Cid
from repro.atproto.varint import encode_varint, read_varint

CAR_VERSION = 1


class CarError(ValueError):
    """Raised on malformed CAR data."""


def write_car(root: Cid, blocks: Iterable[tuple[Cid, bytes]]) -> bytes:
    """Serialize blocks into a CARv1 byte string with a single root."""
    out = io.BytesIO()
    header = cbor_encode({"version": CAR_VERSION, "roots": [root]})
    out.write(encode_varint(len(header)))
    out.write(header)
    for cid, data in blocks:
        cid_bytes = cid.to_bytes()
        out.write(encode_varint(len(cid_bytes) + len(data)))
        out.write(cid_bytes)
        out.write(data)
    return out.getvalue()


def read_car(data: bytes) -> tuple[list[Cid], dict[Cid, bytes]]:
    """Parse a CARv1 file into its roots and a CID → block map."""
    stream = io.BytesIO(data)
    try:
        header_len = read_varint(stream)
    except EOFError as exc:
        raise CarError("empty CAR file") from exc
    header_bytes = stream.read(header_len)
    if len(header_bytes) != header_len:
        raise CarError("truncated CAR header")
    header = cbor_decode(header_bytes)
    if not isinstance(header, dict) or header.get("version") != CAR_VERSION:
        raise CarError("unsupported CAR header: %r" % (header,))
    roots = header.get("roots")
    if not isinstance(roots, list) or not all(isinstance(r, Cid) for r in roots):
        raise CarError("CAR header must list root CIDs")
    blocks: dict[Cid, bytes] = {}
    while True:
        try:
            section_len = read_varint(stream)
        except EOFError:
            break
        section = stream.read(section_len)
        if len(section) != section_len:
            raise CarError("truncated CAR section")
        # CIDv1 with sha2-256: varint(1) varint(codec) varint(0x12) varint(32)
        # is at most 4+32 bytes for our codecs; parse by splitting greedily.
        cid, body = _split_cid(section)
        blocks[cid] = body
    return roots, blocks


def _split_cid(section: bytes) -> tuple[Cid, bytes]:
    from repro.atproto.varint import decode_varint

    pos = 0
    _, pos = decode_varint(section, pos)  # version
    _, pos = decode_varint(section, pos)  # codec
    _, pos = decode_varint(section, pos)  # multihash fn
    hash_len, pos = decode_varint(section, pos)
    end = pos + hash_len
    if end > len(section):
        raise CarError("truncated CID in CAR section")
    return Cid.from_bytes(section[:end]), section[end:]


def iter_car_blocks(data: bytes) -> Iterator[tuple[Cid, bytes]]:
    """Stream the block sections of a CAR file without building a dict."""
    stream = io.BytesIO(data)
    header_len = read_varint(stream)
    stream.seek(header_len, io.SEEK_CUR)
    while True:
        try:
            section_len = read_varint(stream)
        except EOFError:
            return
        section = stream.read(section_len)
        if len(section) != section_len:
            raise CarError("truncated CAR section")
        yield _split_cid(section)

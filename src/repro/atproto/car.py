"""CARv1 (Content Addressable aRchive) reading and writing.

Repositories are exported over ``com.atproto.sync.getRepo`` as CAR files: a
CBOR header naming the root CID(s), followed by length-prefixed
``CID || block-bytes`` sections.

Reading is *self-certifying* by default: every block's payload is hashed
and compared against the digest its CID claims, so a PDS (or a relay
cache) serving tampered bytes is caught at the parse boundary instead of
polluting whatever consumes the repository.  Structural garbage —
truncated sections, overlong varints, zero-length sections, trailing
bytes — is rejected as :class:`CarError`.
"""

from __future__ import annotations

import hashlib
import io
from typing import Iterable, Iterator

from repro.atproto.cbor import cbor_decode, cbor_encode
from repro.atproto.cid import Cid
from repro.atproto.varint import VarintError, encode_varint, read_varint

CAR_VERSION = 1


class CarError(ValueError):
    """Raised on malformed CAR data."""


class BlockDigestError(CarError):
    """A block's payload hash does not match the digest its CID claims."""


def write_car(root: Cid, blocks: Iterable[tuple[Cid, bytes]]) -> bytes:
    """Serialize blocks into a CARv1 byte string with a single root."""
    out = io.BytesIO()
    header = cbor_encode({"version": CAR_VERSION, "roots": [root]})
    out.write(encode_varint(len(header)))
    out.write(header)
    for cid, data in blocks:
        cid_bytes = cid.to_bytes()
        out.write(encode_varint(len(cid_bytes) + len(data)))
        out.write(cid_bytes)
        out.write(data)
    return out.getvalue()


def _read_header(stream: io.BytesIO) -> list[Cid]:
    try:
        header_len = read_varint(stream)
    except EOFError as exc:
        raise CarError("empty CAR file") from exc
    except VarintError as exc:
        raise CarError("malformed CAR header length: %s" % exc) from exc
    if header_len == 0:
        raise CarError("zero-length CAR header")
    header_bytes = stream.read(header_len)
    if len(header_bytes) != header_len:
        raise CarError("truncated CAR header")
    try:
        header = cbor_decode(header_bytes)
    except ValueError as exc:
        raise CarError("undecodable CAR header: %s" % exc) from exc
    if not isinstance(header, dict) or header.get("version") != CAR_VERSION:
        raise CarError("unsupported CAR header: %r" % (header,))
    roots = header.get("roots")
    if not isinstance(roots, list) or not all(isinstance(r, Cid) for r in roots):
        raise CarError("CAR header must list root CIDs")
    return roots


def _read_section(stream: io.BytesIO, verify_digest: bool) -> tuple[Cid, bytes] | None:
    try:
        section_len = read_varint(stream)
    except EOFError:
        return None
    except VarintError as exc:
        # Trailing garbage or an overlong varint where a section length
        # should be.
        raise CarError("malformed CAR section length: %s" % exc) from exc
    if section_len == 0:
        raise CarError("zero-length CAR section")
    section = stream.read(section_len)
    if len(section) != section_len:
        raise CarError("truncated CAR section")
    cid, body = _split_cid(section)
    if verify_digest and hashlib.sha256(body).digest() != cid.digest:
        raise BlockDigestError("block payload does not hash to %s" % cid)
    return cid, body


def read_car(data: bytes, verify_digests: bool = True) -> tuple[list[Cid], dict[Cid, bytes]]:
    """Parse a CARv1 file into its roots and a CID → block map.

    ``verify_digests`` (default on) hashes every block payload and raises
    :class:`BlockDigestError` when it disagrees with the claimed CID.
    """
    stream = io.BytesIO(data)
    roots = _read_header(stream)
    blocks: dict[Cid, bytes] = {}
    while True:
        section = _read_section(stream, verify_digests)
        if section is None:
            break
        cid, body = section
        blocks[cid] = body
    return roots, blocks


def _split_cid(section: bytes) -> tuple[Cid, bytes]:
    from repro.atproto.varint import decode_varint

    pos = 0
    try:
        version, pos = decode_varint(section, pos)
        _, pos = decode_varint(section, pos)  # codec
        _, pos = decode_varint(section, pos)  # multihash fn
        hash_len, pos = decode_varint(section, pos)
    except (VarintError, EOFError, IndexError) as exc:
        raise CarError("malformed CID in CAR section: %s" % exc) from exc
    if version != 1:
        raise CarError("unsupported CID version %d in CAR section" % version)
    end = pos + hash_len
    if end > len(section):
        raise CarError("truncated CID in CAR section")
    try:
        cid = Cid.from_bytes(section[:end])
    except ValueError as exc:
        raise CarError("invalid CID in CAR section: %s" % exc) from exc
    return cid, section[end:]


def iter_car_blocks(data: bytes, verify_digests: bool = True) -> Iterator[tuple[Cid, bytes]]:
    """Stream the block sections of a CAR file without building a dict.

    The header is validated (version + root list) exactly as in
    :func:`read_car`, and the same structural / digest checks apply to
    each section.
    """
    stream = io.BytesIO(data)
    _read_header(stream)
    while True:
        section = _read_section(stream, verify_digests)
        if section is None:
            return
        yield section

"""Firehose event frames.

``com.atproto.sync.subscribeRepos`` streams four event kinds, matching the
rows of Table 1 in the paper:

* ``#commit`` — a repository update (record create/update/delete),
* ``#identity`` — a DID document change (cache invalidation),
* ``#handle`` — a handle change (legacy event, still emitted),
* ``#tombstone`` — an account deletion.

Events carry a relay-assigned sequence number and a microsecond timestamp.
The payloads mirror the real lexicon closely enough that a consumer written
against the real stream maps 1:1 onto these classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atproto.cid import Cid

KIND_COMMIT = "#commit"
KIND_IDENTITY = "#identity"
KIND_HANDLE = "#handle"
KIND_TOMBSTONE = "#tombstone"
# Stream-status frame (not a repo event, and not a Table 1 row): the relay
# sends ``#info`` with name ``OutdatedCursor`` when a subscriber resumes
# from a cursor that predates the retention window.
KIND_INFO = "#info"

INFO_OUTDATED_CURSOR = "OutdatedCursor"

# The four repo-event kinds of Table 1 (#info frames are excluded: they
# describe the subscription itself, not the network).
ALL_KINDS = (KIND_COMMIT, KIND_IDENTITY, KIND_HANDLE, KIND_TOMBSTONE)


@dataclass(frozen=True)
class CommitOp:
    """One record-level operation inside a commit event.

    ``record`` is the written record body (None for deletes) — the real
    firehose ships the new blocks inside each commit frame.
    """

    action: str  # "create" | "update" | "delete"
    path: str  # "collection/rkey"
    cid: Optional[Cid]  # None for deletes
    record: Optional[dict] = None

    @property
    def collection(self) -> str:
        return self.path.split("/", 1)[0]

    @property
    def rkey(self) -> str:
        return self.path.split("/", 1)[1]


@dataclass(frozen=True)
class FirehoseEvent:
    """Base frame: sequence number, repo DID, event time.

    Events carry structured data only; the CBOR wire frame is encoded
    lazily (and cached) via :meth:`wire_frame`, since only consumers that
    measure bandwidth — the Section 9 analysis — need actual bytes.
    """

    seq: int
    did: str
    time_us: int

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def wire_frame(self) -> bytes:
        """The event's two-item DAG-CBOR wire frame, encoded on demand.

        The frame is cached on the (frozen) instance so that multiple
        subscribers measuring the same stream share one encoding.
        """
        cached = self.__dict__.get("_wire_frame")
        if cached is None:
            from repro.atproto.frames import encode_event_frame

            cached = encode_event_frame(self)
            object.__setattr__(self, "_wire_frame", cached)
        return cached

    def wire_size(self) -> int:
        """Exact byte size of :meth:`wire_frame` (cached alongside it)."""
        return len(self.wire_frame())


@dataclass(frozen=True)
class CommitEvent(FirehoseEvent):
    rev: str = ""
    commit_cid: Optional[Cid] = None
    ops: tuple[CommitOp, ...] = ()
    too_big: bool = False

    @property
    def kind(self) -> str:
        return KIND_COMMIT


@dataclass(frozen=True)
class IdentityEvent(FirehoseEvent):
    """Signals that the DID document changed and caches must refresh."""

    handle: Optional[str] = None

    @property
    def kind(self) -> str:
        return KIND_IDENTITY


@dataclass(frozen=True)
class HandleEvent(FirehoseEvent):
    """Legacy handle-change notification; carries only the *new* handle."""

    handle: str = ""

    @property
    def kind(self) -> str:
        return KIND_HANDLE


@dataclass(frozen=True)
class TombstoneEvent(FirehoseEvent):
    """The account was deleted and its repo removed."""

    @property
    def kind(self) -> str:
        return KIND_TOMBSTONE


@dataclass(frozen=True)
class InfoEvent(FirehoseEvent):
    """Out-of-band subscription status frame.

    ``OutdatedCursor`` reports that the requested cursor predates the
    retention window: ``oldest_seq`` is the first sequence number still
    buffered and ``dropped`` counts the events that can never be replayed.
    Info frames carry no sequence number on the real wire; here ``seq`` is
    always 0 and ``did`` empty so consumers can tell them apart.
    """

    name: str = INFO_OUTDATED_CURSOR
    message: str = ""
    oldest_seq: Optional[int] = None
    dropped: int = 0

    @property
    def kind(self) -> str:
        return KIND_INFO

"""Namespaced identifiers (NSIDs).

NSIDs name lexicon types, e.g. ``app.bsky.feed.post``.  They are a reversed
domain-name authority followed by a name segment: at least three segments,
ASCII, with the final segment restricted to letters (and digits after the
first character).
"""

from __future__ import annotations

import re

_SEGMENT_RE = re.compile(r"^[a-zA-Z]([a-zA-Z0-9-]{0,61}[a-zA-Z0-9])?$")
_NAME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9]{0,62}$")
MAX_NSID_LENGTH = 317


class NsidError(ValueError):
    """Raised on malformed NSIDs."""


class Nsid:
    """A validated NSID, split into authority and name."""

    __slots__ = ("segments",)

    def __init__(self, text: str):
        if len(text) > MAX_NSID_LENGTH:
            raise NsidError("NSID longer than %d characters" % MAX_NSID_LENGTH)
        segments = text.split(".")
        if len(segments) < 3:
            raise NsidError("NSID needs at least 3 segments: %r" % text)
        for segment in segments[:-1]:
            if not _SEGMENT_RE.match(segment):
                raise NsidError("invalid NSID authority segment %r" % segment)
        if not _NAME_RE.match(segments[-1]):
            raise NsidError("invalid NSID name segment %r" % segments[-1])
        self.segments = tuple(segments)

    @property
    def authority(self) -> str:
        """The domain authority, in normal (non-reversed) order."""
        return ".".join(reversed(self.segments[:-1]))

    @property
    def name(self) -> str:
        return self.segments[-1]

    def __str__(self) -> str:
        return ".".join(self.segments)

    @classmethod
    def is_valid(cls, text: str) -> bool:
        try:
            cls(text)
        except NsidError:
            return False
        return True

    def __repr__(self) -> str:
        return "Nsid(%s)" % str(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            return str(self) == other
        if isinstance(other, Nsid):
            return self.segments == other.segments
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.segments)

"""Multibase-style encodings used across ATProto.

ATProto uses three alphabets:

* lowercase base32 without padding (CIDs, with ``b`` multibase prefix),
* base58btc (did:key material, with ``z`` multibase prefix),
* base32-sortable for TIDs (implemented in :mod:`repro.atproto.tid`).
"""

from __future__ import annotations

BASE32_ALPHABET = "abcdefghijklmnopqrstuvwxyz234567"
BASE58_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

_B32_INDEX = {c: i for i, c in enumerate(BASE32_ALPHABET)}
_B58_INDEX = {c: i for i, c in enumerate(BASE58_ALPHABET)}


class MultibaseError(ValueError):
    """Raised on malformed multibase input."""


def base32_encode(data: bytes) -> str:
    """Encode bytes as unpadded lowercase base32 (RFC 4648 alphabet)."""
    bits = 0
    bit_count = 0
    out = []
    for byte in data:
        bits = (bits << 8) | byte
        bit_count += 8
        while bit_count >= 5:
            bit_count -= 5
            out.append(BASE32_ALPHABET[(bits >> bit_count) & 0x1F])
    if bit_count:
        out.append(BASE32_ALPHABET[(bits << (5 - bit_count)) & 0x1F])
    return "".join(out)


def base32_decode(text: str) -> bytes:
    """Decode unpadded lowercase base32 back to bytes."""
    bits = 0
    bit_count = 0
    out = bytearray()
    for char in text:
        if char not in _B32_INDEX:
            raise MultibaseError("invalid base32 character %r" % char)
        bits = (bits << 5) | _B32_INDEX[char]
        bit_count += 5
        if bit_count >= 8:
            bit_count -= 8
            out.append((bits >> bit_count) & 0xFF)
    if bits & ((1 << bit_count) - 1):
        raise MultibaseError("non-zero padding bits in base32 input")
    return bytes(out)


def base58btc_encode(data: bytes) -> str:
    """Encode bytes in base58btc (Bitcoin alphabet)."""
    leading_zeros = 0
    for byte in data:
        if byte:
            break
        leading_zeros += 1
    num = int.from_bytes(data, "big")
    out = []
    while num:
        num, rem = divmod(num, 58)
        out.append(BASE58_ALPHABET[rem])
    out.extend("1" * leading_zeros)
    return "".join(reversed(out))


def base58btc_decode(text: str) -> bytes:
    """Decode base58btc text back to bytes."""
    num = 0
    for char in text:
        if char not in _B58_INDEX:
            raise MultibaseError("invalid base58 character %r" % char)
        num = num * 58 + _B58_INDEX[char]
    leading_ones = 0
    for char in text:
        if char != "1":
            break
        leading_ones += 1
    body = num.to_bytes((num.bit_length() + 7) // 8, "big") if num else b""
    return b"\x00" * leading_ones + body


def multibase_encode(prefix: str, data: bytes) -> str:
    """Encode with a multibase prefix character (``b`` = base32, ``z`` = base58btc)."""
    if prefix == "b":
        return "b" + base32_encode(data)
    if prefix == "z":
        return "z" + base58btc_encode(data)
    raise MultibaseError("unsupported multibase prefix %r" % prefix)


def multibase_decode(text: str) -> bytes:
    """Decode multibase text, dispatching on its prefix character."""
    if not text:
        raise MultibaseError("empty multibase string")
    prefix, body = text[0], text[1:]
    if prefix == "b":
        return base32_decode(body)
    if prefix == "z":
        return base58btc_decode(body)
    raise MultibaseError("unsupported multibase prefix %r" % prefix)

"""Merkle Search Tree (MST).

ATProto repositories map ``collection/rkey`` paths to record CIDs through an
MST: a deterministic, history-independent search tree.  Each key is assigned
a *layer* — the number of leading zero bits of ``sha256(key)``, counted in
2-bit groups (fanout 4).  A node at layer *h* holds the keys of layer *h*
in sorted order, with subtree pointers (at layer *h-1*) between them.  The
tree shape is a pure function of the key set, so two implementations that
store the same records always agree on the root CID.

The implementation here supports incremental insert/delete (splitting and
merging subtrees as the original algorithm requires) with per-node CID
caching, plus a canonical batch builder used by the property tests to check
that incremental maintenance always converges to the canonical shape.

Node serialization follows the atproto ``com.atproto.repo`` data model::

    {"l": Optional[CID], "e": [{"p": int, "k": bytes, "v": CID, "t": Optional[CID]}]}

where ``p`` is the number of prefix bytes shared with the previous key in
the node and ``k`` is the remaining key suffix.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterator, Optional

from repro.atproto.cbor import _encode_head, cbor_encode
from repro.atproto.cid import Cid, cid_for_dag_cbor_bytes


class MstError(ValueError):
    """Raised on invalid MST operations."""


# Layer memo: the same ``collection/rkey`` keys get their layer recomputed
# on every canonical build, invariant check, and proof — one sha256 each.
# Bounded so pathological key churn cannot grow it without limit.
_LAYER_CACHE: dict[str, int] = {}
_LAYER_CACHE_MAX = 1 << 20


def key_layer(key: str) -> int:
    """Layer of a key: count of leading zero 2-bit groups of sha256(key)."""
    layer = _LAYER_CACHE.get(key)
    if layer is None:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        # Leading zero bits of the 256-bit digest, counted in 2-bit groups.
        layer = (256 - int.from_bytes(digest, "big").bit_length()) // 2
        if len(_LAYER_CACHE) >= _LAYER_CACHE_MAX:
            _LAYER_CACHE.clear()
        _LAYER_CACHE[key] = layer
    return layer


VALID_KEY_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:~-/")


def is_valid_mst_key(key: str) -> bool:
    """MST keys are ``collection/rkey`` paths with a restricted charset."""
    if not key or len(key) > 1024:
        return False
    if key.count("/") != 1:
        return False
    collection, _, rkey = key.partition("/")
    if not collection or not rkey:
        return False
    return all(c in VALID_KEY_CHARS for c in key)


def _append_cid_cbor(out: bytearray, cid: Cid) -> None:
    """Tag 42 + identity-multibase-prefixed CID bytes (DAG-CBOR link)."""
    out.append(0xD8)
    out.append(0x2A)
    payload = b"\x00" + cid.to_bytes()
    _encode_head(2, len(payload), out)
    out.extend(payload)


def _encode_node_block(
    entries: list[tuple[str, Cid]], subtrees: list[Optional["MstNode"]]
) -> bytes:
    """Canonical DAG-CBOR for one node, emitted directly from the schema.

    Byte-for-byte equal to ``cbor_encode(node.to_data())``: map keys are
    written in canonical (len, bytes) order — ``e`` before ``l`` at the
    top, ``k``/``p``/``t``/``v`` per entry — and keys are prefix-compressed
    against their left neighbour exactly as in :meth:`MstNode.to_data`.
    """
    out = bytearray()
    append = out.append
    extend = out.extend
    append(0xA2)
    append(0x61)
    append(0x65)  # "e"
    count = len(entries)
    if count < 24:
        append(0x80 | count)
    else:
        _encode_head(4, count, out)
    previous = b""
    for index, (key, value) in enumerate(entries):
        encoded = key.encode("utf-8")
        prefix_len = 0
        limit = min(len(previous), len(encoded))
        while prefix_len < limit and previous[prefix_len] == encoded[prefix_len]:
            prefix_len += 1
        suffix = encoded[prefix_len:]
        append(0xA4)
        append(0x61)
        append(0x6B)  # "k"
        size = len(suffix)
        if size < 24:
            append(0x40 | size)
        else:
            _encode_head(2, size, out)
        extend(suffix)
        append(0x61)
        append(0x70)  # "p"
        if prefix_len < 24:
            append(prefix_len)
        else:
            _encode_head(0, prefix_len, out)
        append(0x61)
        append(0x74)  # "t"
        right = subtrees[index + 1]
        if right is None:
            append(0xF6)
        else:
            _append_cid_cbor(out, right.cid())
        append(0x61)
        append(0x76)  # "v"
        _append_cid_cbor(out, value)
        previous = encoded
    append(0x61)
    append(0x6C)  # "l"
    left = subtrees[0]
    if left is None:
        append(0xF6)
    else:
        _append_cid_cbor(out, left.cid())
    return bytes(out)


class MstNode:
    """A mutable MST node.  ``entries`` holds (key, value_cid) pairs and
    ``subtrees`` the child pointers: ``subtrees[i]`` sits left of
    ``entries[i]``, and ``subtrees[-1]`` right of the last entry, so
    ``len(subtrees) == len(entries) + 1``.
    """

    __slots__ = ("layer", "entries", "subtrees", "_cid", "_cbor")

    def __init__(
        self,
        layer: int,
        entries: Optional[list[tuple[str, Cid]]] = None,
        subtrees: Optional[list[Optional["MstNode"]]] = None,
    ):
        self.layer = layer
        self.entries: list[tuple[str, Cid]] = entries if entries is not None else []
        if subtrees is None:
            subtrees = [None] * (len(self.entries) + 1)
        if len(subtrees) != len(self.entries) + 1:
            raise MstError("subtrees must have len(entries)+1 slots")
        self.subtrees: list[Optional[MstNode]] = subtrees
        self._cid: Optional[Cid] = None
        self._cbor: Optional[bytes] = None

    # -- serialization ------------------------------------------------------

    def to_data(self) -> dict:
        """Serialize to the wire form with prefix-compressed keys."""
        entries = []
        previous = b""
        for index, (key, value) in enumerate(self.entries):
            encoded = key.encode("utf-8")
            prefix_len = 0
            limit = min(len(previous), len(encoded))
            while prefix_len < limit and previous[prefix_len] == encoded[prefix_len]:
                prefix_len += 1
            right = self.subtrees[index + 1]
            entries.append(
                {
                    "p": prefix_len,
                    "k": encoded[prefix_len:],
                    "v": value,
                    "t": right.cid() if right is not None else None,
                }
            )
            previous = encoded
        left = self.subtrees[0]
        return {"l": left.cid() if left is not None else None, "e": entries}

    def to_cbor(self) -> bytes:
        """Serialized node block; cached until the node is invalidated, so
        unchanged subtrees are never re-encoded across inserts/exports.

        Node blocks are the single hottest encode in the commit loop (every
        record write re-serializes the root path), so the fixed node schema
        is emitted directly instead of going through the generic encoder;
        the bytes are identical to ``cbor_encode(self.to_data())`` (pinned
        by a test).
        """
        cached = self._cbor
        if cached is None:
            cached = self._cbor = _encode_node_block(self.entries, self.subtrees)
        return cached

    def cid(self) -> Cid:
        if self._cid is None:
            # Fused path: one encode, one sha256 — the cbor bytes are kept
            # so exports (blocks(), proofs, CARs) reuse them for free.
            self._cid = cid_for_dag_cbor_bytes(self.to_cbor())
        return self._cid

    def invalidate(self) -> None:
        self._cid = None
        self._cbor = None

    # -- queries ------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.entries and all(s is None for s in self.subtrees)

    def walk(self) -> Iterator[tuple[str, Cid]]:
        """Yield all (key, value) pairs in sorted key order."""
        for index, entry in enumerate(self.entries):
            subtree = self.subtrees[index]
            if subtree is not None:
                yield from subtree.walk()
            yield entry
        last = self.subtrees[-1]
        if last is not None:
            yield from last.walk()

    def walk_nodes(self) -> Iterator["MstNode"]:
        """Yield every node in the tree (pre-order)."""
        yield self
        for subtree in self.subtrees:
            if subtree is not None:
                yield from subtree.walk_nodes()

    def _gap_for(self, key: str) -> int:
        """Index of the subtree gap whose key range contains ``key``."""
        low, high = 0, len(self.entries)
        while low < high:
            mid = (low + high) // 2
            if self.entries[mid][0] < key:
                low = mid + 1
            else:
                high = mid
        return low

    def get(self, key: str) -> Optional[Cid]:
        gap = self._gap_for(key)
        if gap < len(self.entries) and self.entries[gap][0] == key:
            return self.entries[gap][1]
        subtree = self.subtrees[gap]
        if subtree is None:
            return None
        return subtree.get(key)


class Mst:
    """The mutable tree wrapper with insert/update/delete and invariants."""

    def __init__(self, root: Optional[MstNode] = None):
        self.root = root if root is not None else MstNode(0)

    # -- basic operations ---------------------------------------------------

    def get(self, key: str) -> Optional[Cid]:
        return self.root.get(key)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[tuple[str, Cid]]:
        return self.root.walk()

    def keys(self) -> Iterator[str]:
        return (key for key, _ in self.items())

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def root_cid(self) -> Cid:
        return self.root.cid()

    def blocks(self) -> dict[Cid, bytes]:
        """All node blocks of the current tree, keyed by CID."""
        out: dict[Cid, bytes] = {}
        for node in self.root.walk_nodes():
            out[node.cid()] = node.to_cbor()
        return out

    # -- insertion ----------------------------------------------------------

    def set(self, key: str, value: Cid) -> None:
        """Insert a new key or replace the value of an existing one."""
        if not is_valid_mst_key(key):
            raise MstError("invalid MST key %r" % key)
        if self._replace(self.root, key, value):
            return
        layer = key_layer(key)
        while layer > self.root.layer:
            old_root = self.root
            child = None if old_root.is_empty() else old_root
            self.root = MstNode(old_root.layer + 1, [], [child])
        self._insert(self.root, key, value, layer)

    def _replace(self, node: MstNode, key: str, value: Cid) -> bool:
        gap = node._gap_for(key)
        if gap < len(node.entries) and node.entries[gap][0] == key:
            node.entries[gap] = (key, value)
            node.invalidate()
            return True
        subtree = node.subtrees[gap]
        if subtree is not None and self._replace(subtree, key, value):
            node.invalidate()
            return True
        return False

    def _insert(self, node: MstNode, key: str, value: Cid, layer: int) -> None:
        node.invalidate()
        gap = node._gap_for(key)
        if layer == node.layer:
            left_split, right_split = self._split(node.subtrees[gap], key)
            node.entries.insert(gap, (key, value))
            node.subtrees[gap : gap + 1] = [left_split, right_split]
            return
        if layer > node.layer:
            raise MstError("internal error: descended past the key's layer")
        child = node.subtrees[gap]
        if child is None:
            child = MstNode(node.layer - 1)
            node.subtrees[gap] = child
        self._insert(child, key, value, layer)

    def _split(
        self, node: Optional[MstNode], key: str
    ) -> tuple[Optional[MstNode], Optional[MstNode]]:
        """Split a subtree into parts strictly left and right of ``key``."""
        if node is None:
            return None, None
        gap = node._gap_for(key)
        if gap < len(node.entries) and node.entries[gap][0] == key:
            raise MstError("key already present below its own layer")
        left_child, right_child = self._split(node.subtrees[gap], key)
        left = MstNode(node.layer, node.entries[:gap], node.subtrees[:gap] + [left_child])
        right = MstNode(node.layer, node.entries[gap:], [right_child] + node.subtrees[gap + 1 :])
        return (
            left if not left.is_empty() else None,
            right if not right.is_empty() else None,
        )

    # -- deletion -----------------------------------------------------------

    def delete(self, key: str) -> None:
        """Remove a key; raises :class:`KeyError` if absent."""
        if not self._delete(self.root, key):
            raise KeyError(key)
        # Collapse a root that has no entries and a single child chain.
        while (
            not self.root.entries
            and self.root.layer > 0
            and self.root.subtrees[0] is not None
        ):
            self.root = self.root.subtrees[0]
        if not self.root.entries and self.root.subtrees[0] is None and self.root.layer > 0:
            self.root = MstNode(0)

    def _delete(self, node: MstNode, key: str) -> bool:
        gap = node._gap_for(key)
        if gap < len(node.entries) and node.entries[gap][0] == key:
            merged = self._merge(node.subtrees[gap], node.subtrees[gap + 1])
            del node.entries[gap]
            node.subtrees[gap : gap + 2] = [merged]
            node.invalidate()
            return True
        subtree = node.subtrees[gap]
        if subtree is None:
            return False
        if not self._delete(subtree, key):
            return False
        if subtree.is_empty():
            node.subtrees[gap] = None
        node.invalidate()
        return True

    def _merge(
        self, left: Optional[MstNode], right: Optional[MstNode]
    ) -> Optional[MstNode]:
        """Merge two sibling subtrees; every key in ``left`` < keys in ``right``."""
        if left is None:
            return right
        if right is None:
            return left
        middle = self._merge(left.subtrees[-1], right.subtrees[0])
        merged = MstNode(
            left.layer,
            left.entries + right.entries,
            left.subtrees[:-1] + [middle] + right.subtrees[1:],
        )
        return merged

    # -- verification -------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate layer assignment, ordering, and pointer structure."""

        def visit(node: MstNode, lo: Optional[str], hi: Optional[str]) -> None:
            if len(node.subtrees) != len(node.entries) + 1:
                raise MstError("subtree/entry arity mismatch")
            for index, (key, _) in enumerate(node.entries):
                if key_layer(key) != node.layer:
                    raise MstError("key %r stored at wrong layer" % key)
                if lo is not None and key <= lo:
                    raise MstError("key %r out of range" % key)
                if hi is not None and key >= hi:
                    raise MstError("key %r out of range" % key)
                if index and key <= node.entries[index - 1][0]:
                    raise MstError("entries out of order at %r" % key)
            for index, subtree in enumerate(node.subtrees):
                if subtree is None:
                    continue
                if subtree.layer != node.layer - 1:
                    raise MstError("child layer must be parent layer - 1")
                if subtree.is_empty():
                    raise MstError("empty non-root node")
                sub_lo = node.entries[index - 1][0] if index > 0 else lo
                sub_hi = node.entries[index][0] if index < len(node.entries) else hi
                visit(subtree, sub_lo, sub_hi)

        visit(self.root, None, None)


def build_canonical(items: dict[str, Cid]) -> Mst:
    """Build the canonical MST for a key→CID mapping from scratch.

    Used both as a reference implementation for property tests and as a
    fast path when materialising a whole repository at once.
    """
    if not items:
        return Mst()
    keyed = sorted(items.items())
    layers = {key: key_layer(key) for key, _ in keyed}
    top = max(layers.values())

    def build(segment: list[tuple[str, Cid]], layer: int) -> Optional[MstNode]:
        if not segment:
            return None
        if layer < 0:
            raise MstError("internal error: negative layer during build")
        entries = [(k, v) for k, v in segment if layers[k] == layer]
        if not entries and layer > 0:
            # No keys at this layer in this range: the node is elided and the
            # child takes its place conceptually; but atproto trees always
            # step one layer per level, so we create a pass-through node only
            # at the root.  Within build, elide by recursing directly.
            return _wrap(build(segment, layer - 1), layer)
        node = MstNode(layer)
        chunk: list[tuple[str, Cid]] = []
        node_entries: list[tuple[str, Cid]] = []
        subtrees: list[Optional[MstNode]] = []
        for key, value in segment:
            if layers[key] == layer:
                subtrees.append(build(chunk, layer - 1))
                node_entries.append((key, value))
                chunk = []
            else:
                chunk.append((key, value))
        subtrees.append(build(chunk, layer - 1))
        node.entries = node_entries
        node.subtrees = subtrees
        return node

    def _wrap(child: Optional[MstNode], layer: int) -> Optional[MstNode]:
        if child is None:
            return None
        node = MstNode(layer, [], [child])
        return node

    root = build(keyed, top)
    assert root is not None
    return Mst(root)


def prove_inclusion(tree: Mst, key: str) -> list[bytes]:
    """Merkle inclusion proof: the serialized nodes on the path to ``key``.

    The proof is the chain of MST node blocks from the root down to the
    node holding the key.  :func:`verify_inclusion` checks it against a
    root CID without needing the rest of the tree — the mechanism that
    lets ATProto serve verifiable single records (``sync.getRecord``).
    """
    path: list[bytes] = []

    def descend(node: MstNode) -> bool:
        path.append(node.to_cbor())
        gap = node._gap_for(key)
        if gap < len(node.entries) and node.entries[gap][0] == key:
            return True
        child = node.subtrees[gap]
        if child is None:
            return False
        return descend(child)

    if not descend(tree.root):
        raise KeyError(key)
    return path


def verify_inclusion(
    root_cid: Cid, key: str, value: Cid, proof: list[bytes]
) -> bool:
    """Check an inclusion proof against a trusted MST root CID."""
    from repro.atproto.cbor import cbor_decode

    expected = root_cid
    for block in proof:
        if Cid(1, expected.codec, hashlib.sha256(block).digest()) != expected:
            return False
        data = cbor_decode(block)
        # Reconstruct this node's entries (prefix-compressed keys).
        previous = b""
        next_cid: Optional[Cid] = data.get("l")
        for entry in data.get("e", []):
            entry_key = (previous[: entry["p"]] + entry["k"]).decode("utf-8")
            previous = previous[: entry["p"]] + entry["k"]
            if entry_key == key:
                return entry["v"] == value
            if entry_key < key:
                next_cid = entry.get("t")
            else:
                break
        if next_cid is None:
            return False
        expected = next_cid
    return False


def mst_diff(old: Mst, new: Mst) -> dict[str, tuple[Optional[Cid], Optional[Cid]]]:
    """Key-level diff between two trees: key → (old_value, new_value)."""
    old_items = dict(old.items())
    new_items = dict(new.items())
    out: dict[str, tuple[Optional[Cid], Optional[Cid]]] = {}
    # Sorted so the result dict's insertion order (and anything derived
    # from iterating it) is independent of PYTHONHASHSEED.
    for key in sorted(old_items.keys() | new_items.keys()):
        before = old_items.get(key)
        after = new_items.get(key)
        if before != after:
            out[key] = (before, after)
    return out


def load_mst(blocks: dict[Cid, bytes], root_cid: Cid) -> Mst:
    """Reconstruct an MST from a block map (e.g. parsed from a CAR file)."""
    from repro.atproto.cbor import cbor_decode

    def load(cid: Cid, layer_hint: Optional[int]) -> MstNode:
        if cid not in blocks:
            raise MstError("missing MST block %s" % cid)
        data = cbor_decode(blocks[cid])
        entries: list[tuple[str, Cid]] = []
        subtree_cids: list[Optional[Cid]] = [data.get("l")]
        previous = b""
        for entry in data.get("e", []):
            encoded = previous[: entry["p"]] + entry["k"]
            entries.append((encoded.decode("utf-8"), entry["v"]))
            subtree_cids.append(entry.get("t"))
            previous = encoded
        if entries:
            layer = key_layer(entries[0][0])
        elif layer_hint is not None:
            layer = layer_hint
        else:
            layer = 0
        subtrees: list[Optional[MstNode]] = []
        for child_cid in subtree_cids:
            if child_cid is None:
                subtrees.append(None)
            else:
                subtrees.append(load(child_cid, layer - 1))
        node = MstNode(layer, entries, subtrees)
        return node

    return Mst(load(root_cid, None))

"""Signed user data repositories.

A repository is the per-user key-value store of *records* (posts, likes,
follows, ...), organised as ``collection/rkey`` paths in a Merkle Search
Tree and advanced through *signed commits*.  This module implements the v3
commit format::

    {"did": ..., "version": 3, "data": <MST root CID>, "rev": <TID>,
     "prev": None, "sig": <64 bytes>}

plus record CRUD, batched writes, and CAR export/import (the wire format of
``com.atproto.sync.getRepo``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.atproto.car import read_car, write_car
from repro.atproto.cbor import cbor_decode, cbor_encode
from repro.atproto.cid import Cid, cid_for_dag_cbor_bytes
from repro.atproto.keys import Keypair, PublicKey
from repro.atproto.mst import Mst, load_mst
from repro.atproto.tid import Tid, TidClock

COMMIT_VERSION = 3


class RepoError(ValueError):
    """Raised on invalid repository operations."""


class SignatureError(RepoError):
    """The commit signature does not verify against the expected key."""


@dataclass(frozen=True)
class WriteOp:
    """One write in a commit: create, update, or delete a record."""

    action: str  # "create" | "update" | "delete"
    collection: str
    rkey: str
    record: Optional[dict] = None

    def __post_init__(self):
        if self.action not in ("create", "update", "delete"):
            raise RepoError("unknown write action %r" % self.action)
        if self.action == "delete" and self.record is not None:
            raise RepoError("delete ops carry no record")
        if self.action != "delete" and not isinstance(self.record, dict):
            raise RepoError("%s ops require a record dict" % self.action)

    @property
    def path(self) -> str:
        return "%s/%s" % (self.collection, self.rkey)


@dataclass(frozen=True)
class CommitMeta:
    """Metadata of one applied commit, as surfaced on the firehose.

    ``records`` carries the record bodies parallel to ``ops`` (None for
    deletes) — the real firehose likewise ships the written blocks with
    each commit frame so consumers need not fetch them separately.
    """

    did: str
    rev: str
    commit_cid: Cid
    ops: tuple[tuple[str, str, Optional[Cid]], ...]  # (action, path, cid)
    time_us: int
    records: tuple[Optional[dict], ...] = ()


@dataclass
class _RecordEntry:
    cid: Cid
    block: bytes
    refs: int = 1


class Repo:
    """A single user's signed repository."""

    def __init__(self, did: str, keypair: Keypair, clock_id: int = 0):
        self.did = did
        self.keypair = keypair
        self.mst = Mst()
        self._blocks: dict[Cid, _RecordEntry] = {}
        self._tid_clock = TidClock(clock_id)
        self.commits: list[CommitMeta] = []
        self.head: Optional[Cid] = None
        self.rev: Optional[str] = None
        self._head_block: Optional[bytes] = None  # signed commit block cache
        # (head cid, {str(cid): block}) — batched block lookup, valid for
        # exactly one head; rebuilt lazily on the first block fetch after
        # a commit (see block_map / block_map_cached).
        self._block_map: Optional[tuple[Cid, dict]] = None

    # -- record access -------------------------------------------------------

    def get_record(self, collection: str, rkey: str) -> Optional[dict]:
        cid = self.mst.get("%s/%s" % (collection, rkey))
        if cid is None:
            return None
        return cbor_decode(self._blocks[cid].block)

    def get_record_cid(self, collection: str, rkey: str) -> Optional[Cid]:
        return self.mst.get("%s/%s" % (collection, rkey))

    def list_records(self, collection: Optional[str] = None) -> Iterator[tuple[str, dict]]:
        """Yield (path, record) pairs, optionally restricted to a collection."""
        prefix = collection + "/" if collection else None
        for path, cid in self.mst.items():
            if prefix is None or path.startswith(prefix):
                yield path, cbor_decode(self._blocks[cid].block)

    def collections(self) -> list[str]:
        seen: dict[str, None] = {}
        for path in self.mst.keys():
            seen.setdefault(path.split("/", 1)[0], None)
        return list(seen)

    def record_count(self) -> int:
        return len(self.mst)

    # -- writes ---------------------------------------------------------------

    def next_tid(self, now_us: int) -> Tid:
        return self._tid_clock.next_tid(now_us)

    def create_record(
        self, collection: str, record: dict, now_us: int, rkey: Optional[str] = None
    ) -> CommitMeta:
        if rkey is None:
            rkey = str(self.next_tid(now_us))
        return self.apply_writes([WriteOp("create", collection, rkey, record)], now_us)

    def update_record(self, collection: str, rkey: str, record: dict, now_us: int) -> CommitMeta:
        return self.apply_writes([WriteOp("update", collection, rkey, record)], now_us)

    def delete_record(self, collection: str, rkey: str, now_us: int) -> CommitMeta:
        return self.apply_writes([WriteOp("delete", collection, rkey)], now_us)

    def apply_writes(self, writes: list[WriteOp], now_us: int) -> CommitMeta:
        """Apply a batch of writes as a single signed commit."""
        if not writes:
            raise RepoError("empty write batch")
        op_meta: list[tuple[str, str, Optional[Cid]]] = []
        op_records: list[Optional[dict]] = []
        for write in writes:
            path = write.path
            existing = self.mst.get(path)
            if write.action == "create" and existing is not None:
                raise RepoError("record %s already exists" % path)
            if write.action in ("update", "delete") and existing is None:
                raise RepoError("record %s does not exist" % path)
            if write.action == "delete":
                self.mst.delete(path)
                self._release_block(existing)
                op_meta.append(("delete", path, None))
                op_records.append(None)
            else:
                cid = self._store_record(write.record)
                if existing is not None:
                    self._release_block(existing)
                self.mst.set(path, cid)
                op_meta.append((write.action, path, cid))
                op_records.append(write.record)
        return self._commit(op_meta, op_records, now_us)

    def _store_record(self, record: dict) -> Cid:
        block = cbor_encode(record)
        cid = cid_for_dag_cbor_bytes(block)
        entry = self._blocks.get(cid)
        if entry is None:
            self._blocks[cid] = _RecordEntry(cid, block)
        else:
            entry.refs += 1
        return cid

    def _release_block(self, cid: Cid) -> None:
        entry = self._blocks[cid]
        entry.refs -= 1
        if entry.refs == 0:
            del self._blocks[cid]

    def _commit(
        self,
        ops: list[tuple[str, str, Optional[Cid]]],
        records: list[Optional[dict]],
        now_us: int,
    ) -> CommitMeta:
        rev = str(self.next_tid(now_us))
        commit = {
            "did": self.did,
            "version": COMMIT_VERSION,
            "data": self.mst.root_cid(),
            "rev": rev,
            "prev": None,
        }
        # Single-pass encoding: sign the unsigned form, then encode the
        # signed commit exactly once — those bytes serve as both the stored
        # block and the input to the commit CID (no third encode).
        commit["sig"] = self.keypair.sign(cbor_encode(commit))
        block = cbor_encode(commit)
        commit_cid = cid_for_dag_cbor_bytes(block)
        self.head = commit_cid
        self.rev = rev
        self._head_block = block
        meta = CommitMeta(self.did, rev, commit_cid, tuple(ops), now_us, tuple(records))
        self.commits.append(meta)
        return meta

    # -- export / import -------------------------------------------------------

    def signed_commit_block(self) -> tuple[Cid, bytes]:
        if self.head is None:
            raise RepoError("repository has no commits")
        # The block is cached by _commit; every export / verifiable read
        # reuses it instead of re-signing and re-encoding the head.
        return self.head, self._head_block

    def export_car(self) -> bytes:
        """Export the current state as a CAR file rooted at the commit."""
        commit_cid, commit_block = self.signed_commit_block()
        blocks: list[tuple[Cid, bytes]] = [(commit_cid, commit_block)]
        blocks.extend(self.mst.blocks().items())
        blocks.extend((cid, entry.block) for cid, entry in self._blocks.items())
        return write_car(commit_cid, blocks)

    def block_map_cached(self) -> Optional[dict]:
        """The batched block lookup if it is still valid for the current
        head, else None (the caller decides whether to rebuild)."""
        cached = self._block_map
        if cached is not None and cached[0] == self.head:
            return cached[1]
        return None

    def block_map(self) -> dict:
        """``str(cid) -> block bytes`` over every block reachable from the
        current head (signed commit + MST nodes + record blocks).

        One build serves an entire ``getBlocks`` batch — and every later
        batch at the same head — instead of resolving each CID with its
        own tree walk."""
        cached = self.block_map_cached()
        if cached is not None:
            return cached
        commit_cid, commit_block = self.signed_commit_block()
        mapping = {str(commit_cid): commit_block}
        for cid, block in self.mst.blocks().items():
            mapping[str(cid)] = block
        for cid, entry in self._blocks.items():
            mapping[str(cid)] = entry.block
        self._block_map = (commit_cid, mapping)
        return mapping


@dataclass
class RepoSnapshot:
    """A verified, read-only view of an imported repository."""

    did: str
    rev: str
    commit_cid: Cid
    records: dict[str, dict] = field(default_factory=dict)
    record_cids: dict[str, Cid] = field(default_factory=dict)

    def get_record(self, collection: str, rkey: str) -> Optional[dict]:
        return self.records.get("%s/%s" % (collection, rkey))

    def list_records(self, collection: Optional[str] = None) -> Iterator[tuple[str, dict]]:
        prefix = collection + "/" if collection else None
        for path, record in self.records.items():
            if prefix is None or path.startswith(prefix):
                yield path, record

    def collections(self) -> list[str]:
        seen: dict[str, None] = {}
        for path in self.records:
            seen.setdefault(path.split("/", 1)[0], None)
        return list(seen)


def import_car(
    data: bytes,
    verify_key: Optional[PublicKey] = None,
    verify_digests: bool = True,
    check_mst: bool = False,
) -> RepoSnapshot:
    """Parse a repo CAR export, optionally verifying the commit signature.

    ``verify_digests`` hashes every block against its claimed CID (see
    :func:`repro.atproto.car.read_car`); ``check_mst`` additionally runs
    the reconstructed tree through :meth:`Mst.check_invariants`, so an
    import with both enabled plus a ``verify_key`` is a full
    self-certification of the snapshot.  Failure kinds stay
    distinguishable: digest mismatches raise
    :class:`~repro.atproto.car.BlockDigestError`, structural garbage
    :class:`~repro.atproto.car.CarError`, tree violations
    :class:`~repro.atproto.mst.MstError`, and bad signatures
    :class:`SignatureError`.
    """
    roots, blocks = read_car(data, verify_digests=verify_digests)
    if len(roots) != 1:
        raise RepoError("repo CAR must have exactly one root")
    commit = cbor_decode(blocks[roots[0]])
    if not isinstance(commit, dict) or commit.get("version") != COMMIT_VERSION:
        raise RepoError("root block is not a v%d commit" % COMMIT_VERSION)
    if not isinstance(commit.get("did"), str) or not isinstance(commit.get("rev"), str):
        raise RepoError("commit is missing did/rev fields")
    if verify_key is not None:
        sig = commit.get("sig")
        unsigned = {k: v for k, v in commit.items() if k != "sig"}
        if not isinstance(sig, bytes) or not verify_key.verify(cbor_encode(unsigned), sig):
            raise SignatureError("commit signature verification failed")
    mst = load_mst(blocks, commit["data"]) if commit["data"] in blocks else Mst()
    if check_mst:
        mst.check_invariants()
    snapshot = RepoSnapshot(did=commit["did"], rev=commit["rev"], commit_cid=roots[0])
    for path, cid in mst.items():
        if cid not in blocks:
            raise RepoError("record block %s missing from CAR" % cid)
        snapshot.records[path] = cbor_decode(blocks[cid])
        snapshot.record_cids[path] = cid
    return snapshot

"""Unsigned varint (LEB128) encoding, as used by multiformats and CAR files.

The multiformats ``unsigned-varint`` spec caps values at 9 bytes; we enforce
that bound so malformed input cannot make the decoder loop forever.
"""

from __future__ import annotations

MAX_VARINT_BYTES = 9


class VarintError(ValueError):
    """Raised when varint input is malformed."""


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise VarintError("varints encode non-negative integers, got %d" % value)
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise VarintError("truncated varint")
        if pos - offset >= MAX_VARINT_BYTES:
            raise VarintError("varint longer than %d bytes" % MAX_VARINT_BYTES)
        byte = data[pos]
        result |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            if byte == 0 and pos - offset > 1:
                raise VarintError("varint has redundant trailing zero byte")
            return result, pos
        shift += 7


def read_varint(stream) -> int:
    """Read a varint from a binary file-like object.

    Raises :class:`EOFError` if the stream is exhausted before the first
    byte, and :class:`VarintError` on truncation mid-varint.
    """
    result = 0
    shift = 0
    count = 0
    while True:
        chunk = stream.read(1)
        if not chunk:
            if count == 0:
                raise EOFError("end of stream")
            raise VarintError("truncated varint in stream")
        if count >= MAX_VARINT_BYTES:
            raise VarintError("varint longer than %d bytes" % MAX_VARINT_BYTES)
        byte = chunk[0]
        result |= (byte & 0x7F) << shift
        count += 1
        if not byte & 0x80:
            return result
        shift += 7

"""Feed Generators — the content-recommendation services of Section 7.

A Feed Generator is announced by an ``app.bsky.feed.generator`` record in
its creator's repo pointing at a hosting service DID; the service exposes
``app.bsky.feed.getFeedSkeleton`` returning post URIs.  This module
implements:

* :class:`FeedRule` — the declarative selection rules feed builders offer
  (inputs: whole network / keywords / specific users / lists; filters:
  language, regular expressions, label exclusion, media requirements),
* :class:`CuratedFeed` — a materialised feed with a retention policy
  (the paper finds feeds retain 1–7 days or the last N posts, which is why
  its crawl cannot see far into the past),
* :class:`PersonalizedFeed` — viewer-dependent feeds ("the-algorithm",
  "whats-hot") that return *nothing* to the logged-out crawler,
* :class:`FeedGeneratorHost` — one endpoint hosting many feeds,
* :class:`FeedRouter` — the firehose consumer routing posts into feeds via
  keyword/language/author indexes.
"""

from __future__ import annotations

import re
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.obs.metrics import read_cache_counters
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.xrpc import XrpcError, XrpcService

_TOKEN_RE = re.compile(r"[a-z0-9#][a-z0-9'-]*")


def tokenize(text: str) -> set[str]:
    """Lowercase word tokens of a post, hashtags preserved."""
    return set(_TOKEN_RE.findall(text.lower()))


class FeedError(Exception):
    """Raised on invalid feed definitions or operations."""


@dataclass(frozen=True)
class FeedRule:
    """Selection rule for a curated feed."""

    whole_network: bool = False
    keywords: frozenset = frozenset()  # match any token
    authors: frozenset = frozenset()  # match posts by these DIDs
    languages: frozenset = frozenset()  # if set, post must declare one of these
    regex: Optional[str] = None  # if set, must match the post text
    exclude_label_values: frozenset = frozenset()
    require_media: bool = False
    # True when `authors` came from a curation list (the Table 5 "List"
    # input, a distinct platform capability from "Single user").
    from_list: bool = False

    def __post_init__(self):
        if self.regex is not None:
            try:
                re.compile(self.regex)
            except re.error as exc:
                raise FeedError("invalid feed regex %r: %s" % (self.regex, exc)) from exc
        if not (self.whole_network or self.keywords or self.authors or self.languages):
            raise FeedError("feed rule selects nothing: give it a source")

    def compiled_regex(self):
        return re.compile(self.regex) if self.regex is not None else None


@dataclass(frozen=True)
class PostFeatures:
    """The per-post features the router matches rules against."""

    uri: str
    author: str
    time_us: int
    text: str
    langs: tuple[str, ...]
    tokens: frozenset
    has_media: bool = False
    labels: frozenset = frozenset()


@dataclass
class RetentionPolicy:
    """How much history a feed serves (paper: 1–7 days or last-N posts)."""

    max_age_us: Optional[int] = None
    max_count: Optional[int] = None

    @classmethod
    def unlimited(cls) -> "RetentionPolicy":
        return cls()

    @classmethod
    def days(cls, n: float) -> "RetentionPolicy":
        return cls(max_age_us=int(n * 24 * 3600 * 1_000_000))

    @classmethod
    def last(cls, n: int) -> "RetentionPolicy":
        return cls(max_count=n)


class Feed:
    """Base feed: skeleton pagination over whatever entries() yields."""

    def __init__(self, uri: str):
        self.uri = uri
        # (now_us, token, entries): the materialised newest-first entry
        # list, valid for one (crawl instant, ingest version) pair.  A
        # paginated sweep shares one ``now_us`` across its pages, so every
        # page after the first reuses the list; the next day's sweep (new
        # ``now_us``) and any ingest (new token) invalidate it — the
        # day-barrier invalidation rule.
        self._entries_cache: Optional[tuple] = None
        # "hit" / "miss" after a cached skeleton call, None when the feed
        # is uncacheable (viewer-dependent); hosts read this to count.
        self.last_cache_outcome: Optional[str] = None

    def entries(self, viewer: Optional[str], now_us: int) -> list[tuple[str, int]]:
        raise NotImplementedError

    def _cache_token(self, viewer: Optional[str]):
        """Ingest-version token for the entry cache; None disables caching
        (the default — viewer-dependent feeds must not share entries)."""
        return None

    def _cached_entries(self, viewer: Optional[str], now_us: int) -> list[tuple[str, int]]:
        token = self._cache_token(viewer)
        if token is None:
            self.last_cache_outcome = None
            return self.entries(viewer, now_us)
        cached = self._entries_cache
        if cached is not None and cached[0] == now_us and cached[1] == token:
            self.last_cache_outcome = "hit"
            return cached[2]
        self.last_cache_outcome = "miss"
        entries = self.entries(viewer, now_us)
        self._entries_cache = (now_us, token, entries)
        return entries

    def skeleton(
        self,
        viewer: Optional[str],
        now_us: int,
        limit: int = 50,
        cursor: Optional[str] = None,
    ) -> dict:
        entries = self._cached_entries(viewer, now_us)  # newest first
        start = 0
        if cursor is not None:
            cut = int(cursor)
            while start < len(entries) and entries[start][1] >= cut:
                start += 1
        page = entries[start : start + limit]
        next_cursor = str(page[-1][1]) if len(page) == limit else None
        return {"feed": [{"post": uri} for uri, _ in page], "cursor": next_cursor}


class CuratedFeed(Feed):
    """A feed materialised from the firehose by a :class:`FeedRule`."""

    def __init__(self, uri: str, rule: FeedRule, retention: Optional[RetentionPolicy] = None):
        super().__init__(uri)
        self.rule = rule
        self.retention = retention if retention is not None else RetentionPolicy.unlimited()
        # (uri, time_us) kept sorted by time (oldest first); a parallel
        # time list supports bisection for retention cuts and insertion.
        self._entries: list[tuple[str, int]] = []
        self._times: list[int] = []
        self._regex = rule.compiled_regex()
        self.total_ingested = 0
        # If set, the feed stops curating after this time (operator walked
        # away — the paper finds 21.8% of feeds inactive in the last month).
        self.stop_ingest_after_us: Optional[int] = None

    def matches(self, post: PostFeatures) -> bool:
        rule = self.rule
        selected = (
            rule.whole_network
            or (rule.keywords and not rule.keywords.isdisjoint(post.tokens))
            or (rule.authors and post.author in rule.authors)
            or (not rule.keywords and not rule.authors and rule.languages)
        )
        if not selected:
            return False
        if rule.languages and rule.languages.isdisjoint(post.langs):
            return False
        if self._regex is not None and not self._regex.search(post.text):
            return False
        if rule.require_media and not post.has_media:
            return False
        if rule.exclude_label_values and not rule.exclude_label_values.isdisjoint(post.labels):
            return False
        return True

    def ingest(self, post: PostFeatures) -> None:
        if self.stop_ingest_after_us is not None and post.time_us > self.stop_ingest_after_us:
            return
        # Keep time order even when the firehose delivers slightly out of
        # order — skeleton cursors are timestamps and need a sorted feed.
        position = bisect_right(self._times, post.time_us)
        self._times.insert(position, post.time_us)
        self._entries.insert(position, (post.uri, post.time_us))
        self.total_ingested += 1
        if self.retention.max_count is not None and len(self._entries) > self.retention.max_count:
            excess = len(self._entries) - self.retention.max_count
            del self._entries[:excess]
            del self._times[:excess]

    def entries(self, viewer: Optional[str], now_us: int) -> list[tuple[str, int]]:
        items = self._entries
        if self.retention.max_age_us is not None:
            cutoff = now_us - self.retention.max_age_us
            low = bisect_left(self._times, cutoff)
            items = items[low:]
        return list(reversed(items))

    def _cache_token(self, viewer: Optional[str]):
        # Viewer-independent; any ingest (including retention trims, which
        # only happen on ingest) bumps total_ingested and invalidates.
        return self.total_ingested

    def post_count(self, now_us: int) -> int:
        return len(self.entries(None, now_us))


class PersonalizedFeed(Feed):
    """A viewer-dependent feed.

    Mirrors "the-algorithm" / "whats-hot": content is computed from the
    viewer's own likes/network, so an anonymous or empty crawler account
    receives an empty skeleton — the effect behind the highly-liked,
    zero-post corner of Figure 10.
    """

    def __init__(self, uri: str, per_viewer_source=None):
        super().__init__(uri)
        # viewer did -> list of (uri, time_us); injected by the simulation.
        self._per_viewer = per_viewer_source or (lambda viewer: [])

    def entries(self, viewer: Optional[str], now_us: int) -> list[tuple[str, int]]:
        if viewer is None:
            return []
        return list(reversed(self._per_viewer(viewer)))


class FeedGeneratorHost(XrpcService):
    """One feed-generator service endpoint hosting one or more feeds."""

    def __init__(self, service_did: str, endpoint: str, telemetry=None):
        self.service_did = service_did
        self.endpoint = endpoint.rstrip("/")
        self._feeds: dict[str, Feed] = {}
        self.set_telemetry(telemetry if telemetry is not None else NULL_TELEMETRY)

    def set_telemetry(self, telemetry) -> None:
        """(Re)bind the skeleton-cache counter families and the tracer."""
        self.telemetry = telemetry
        self._m_cache_hits, self._m_cache_misses = read_cache_counters(telemetry.registry)

    def add_feed(self, feed: Feed) -> None:
        if feed.uri in self._feeds:
            raise FeedError("feed %s already hosted here" % feed.uri)
        self._feeds[feed.uri] = feed

    def remove_feed(self, uri: str) -> None:
        self._feeds.pop(uri, None)

    def feed(self, uri: str) -> Optional[Feed]:
        return self._feeds.get(uri)

    def feeds(self) -> list[Feed]:
        return list(self._feeds.values())

    def feed_count(self) -> int:
        return len(self._feeds)

    def xrpc_getFeedSkeleton(
        self,
        feed: str,
        limit: int = 50,
        cursor: Optional[str] = None,
        viewer: Optional[str] = None,
        now_us: int = 0,
    ) -> dict:
        target = self._feeds.get(feed)
        if target is None:
            raise XrpcError(404, "unknown feed %s" % feed)
        with self.telemetry.tracer.span("read.getFeedSkeleton", cat="read", sample=True):
            skeleton = target.skeleton(viewer, now_us, limit=limit, cursor=cursor)
        if target.last_cache_outcome == "hit":
            self._m_cache_hits.inc(("feed_skeleton",))
        elif target.last_cache_outcome == "miss":
            self._m_cache_misses.inc(("feed_skeleton",))
        return skeleton

    def xrpc_describeFeedGenerator(self) -> dict:
        return {
            "did": self.service_did,
            "feeds": [{"uri": uri} for uri in self._feeds],
        }


class FeedRouter:
    """Routes firehose posts into curated feeds in near-constant time.

    Feeds register under inverted indexes — keyword → feeds, author →
    feeds, language → feeds, plus small whole-network and regex lists —
    so the per-post cost is proportional to the post's token count, not to
    the number of feeds in the network.
    """

    def __init__(self):
        self._by_keyword: dict[str, list[CuratedFeed]] = {}
        self._by_author: dict[str, list[CuratedFeed]] = {}
        self._by_language: dict[str, list[CuratedFeed]] = {}
        self._whole_network: list[CuratedFeed] = []
        self.routed_count = 0

    def register(self, feed: CuratedFeed) -> None:
        rule = feed.rule
        if rule.whole_network:
            self._whole_network.append(feed)
        elif rule.keywords:
            for keyword in rule.keywords:
                self._by_keyword.setdefault(keyword, []).append(feed)
        elif rule.authors:
            for author in rule.authors:
                self._by_author.setdefault(author, []).append(feed)
        elif rule.languages:
            for lang in rule.languages:
                self._by_language.setdefault(lang, []).append(feed)

    def route(self, post: PostFeatures) -> int:
        """Deliver a post to every matching feed; returns delivery count."""
        candidates: dict[int, CuratedFeed] = {}
        for feed in self._whole_network:
            candidates[id(feed)] = feed
        for token in post.tokens:
            for feed in self._by_keyword.get(token, ()):
                candidates[id(feed)] = feed
        for feed in self._by_author.get(post.author, ()):
            candidates[id(feed)] = feed
        for lang in post.langs:
            for feed in self._by_language.get(lang, ()):
                candidates[id(feed)] = feed
        delivered = 0
        for feed in candidates.values():
            if feed.matches(post):
                feed.ingest(post)
                delivered += 1
        self.routed_count += 1
        return delivered

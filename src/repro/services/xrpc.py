"""XRPC-style service addressing.

Real ATProto services expose XRPC methods (``com.atproto.sync.getRepo`` and
friends) over HTTPS.  In the simulator every service object registers under
its endpoint URL; callers dispatch ``call(url, nsid, **params)`` and the
directory routes to the service's ``xrpc_<name>`` method.  This keeps the
collector code shaped like a real crawler (endpoint URL + method NSID +
query params) while staying in-process.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.telemetry import Telemetry

#: Connection-error taxonomy carried on :class:`XrpcError.reason` so
#: telemetry and the health report can attribute status-0 failures.
REASON_UNKNOWN_HOST = "unknown-host"
REASON_HOST_DOWN = "host-down"
REASON_INJECTED_OUTAGE = "injected-outage"
REASON_INJECTED_TIMEOUT = "injected-timeout"
REASON_INJECTED_FLAKY = "injected-flaky"


class XrpcError(Exception):
    """A failed XRPC call (unknown host, unknown method, upstream error).

    ``injected`` marks errors raised by the fault-injection gate rather
    than the service itself — transient by construction, so best-effort
    callers (:meth:`ServiceDirectory.try_call`) may treat them like
    connection failures instead of semantic errors.

    ``reason`` distinguishes the connection-error flavours that all share
    status 0 on the wire (unknown host vs host marked down vs injected
    outage); ``latency_us`` is virtual time the failed attempt still
    consumed (an injected timeout burns its full budget before failing).
    """

    def __init__(
        self,
        status: int,
        message: str,
        injected: bool = False,
        reason: Optional[str] = None,
        latency_us: int = 0,
    ):
        super().__init__("XRPC %d: %s" % (status, message))
        self.status = status
        self.injected = injected
        self.reason = reason
        self.latency_us = latency_us


class XrpcService:
    """Base class: maps method NSIDs to ``xrpc_`` handler methods."""

    def xrpc_call(self, method: str, **params: Any) -> Any:
        handler_name = "xrpc_" + method.rsplit(".", 1)[-1]
        handler = getattr(self, handler_name, None)
        if handler is None or not callable(handler):
            raise XrpcError(501, "%s not implemented by %s" % (method, type(self).__name__))
        return handler(**params)


class ServiceDirectory:
    """URL → service registry with reachability faults.

    ``set_down`` models services that announce themselves but stop
    responding — the paper finds 26% of announced Labelers and ~7% of Feed
    Generators unreachable, and the collectors must observe those failures
    the same way a real crawler does (as connection errors).

    ``fault_injector`` (a :class:`repro.netsim.faults.FaultInjector`) is
    consulted before every dispatch to a *reachable* host: it may raise
    transient or permanent :class:`XrpcError`\\ s and may charge latency,
    which callers that track virtual time read back from
    ``last_call_latency_us``.  Unreachable hosts (down or unregistered)
    fail before the fault gate — a connection that never opens cannot be
    slow.  ``now_us`` is the directory's notion of current virtual time;
    callers making timed calls set it so time-windowed faults (outages)
    apply correctly.

    Every dispatch attempt counts into the telemetry registry labelled by
    host, method NSID, and outcome; injected latency feeds a per-host
    histogram.  ``call_count`` and ``injected_latency_us`` remain as
    deprecated read-only aliases over those series.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self._services: dict[str, XrpcService] = {}
        self._down: set[str] = set()
        self.fault_injector = None
        self.adversary = None
        self.now_us = 0
        self.last_call_latency_us = 0
        self.set_telemetry(telemetry if telemetry is not None else Telemetry())

    def set_telemetry(self, telemetry: Telemetry) -> None:
        """(Re)bind the registry families this directory counts into."""
        self.telemetry = telemetry
        registry = telemetry.registry
        self._m_calls = registry.counter("xrpc_calls_total", ("host", "method", "outcome"))
        self._m_latency = registry.histogram("xrpc_latency_us", ("host",))
        self._m_method_latency = registry.histogram(
            "xrpc_method_latency_us", ("method",)
        )
        self._m_injected = registry.counter("xrpc_injected_latency_us_total")

    # -- deprecated aliases (pre-registry attribute API) ----------------------

    @property
    def call_count(self) -> int:
        """Deprecated: total dispatch attempts; read ``xrpc_calls_total``."""
        return self._m_calls.total()

    @property
    def injected_latency_us(self) -> int:
        """Deprecated: total injected latency; read the registry series."""
        return self._m_injected.total()

    def register(self, url: str, service: XrpcService) -> None:
        self._services[self._norm(url)] = service

    def unregister(self, url: str) -> None:
        self._services.pop(self._norm(url), None)

    def set_down(self, url: str, down: bool = True) -> None:
        if down:
            self._down.add(self._norm(url))
        else:
            self._down.discard(self._norm(url))

    def is_registered(self, url: str) -> bool:
        return self._norm(url) in self._services

    def is_reachable(self, url: str) -> bool:
        url = self._norm(url)
        return url in self._services and url not in self._down

    def get(self, url: str) -> Optional[XrpcService]:
        url = self._norm(url)
        if url in self._down:
            return None
        return self._services.get(url)

    def call(self, url: str, method: str, **params: Any) -> Any:
        """Dispatch an XRPC call to the service behind ``url``."""
        normalized = self._norm(url)
        self.last_call_latency_us = 0
        tracer = self.telemetry.tracer
        trace_this = tracer.enabled and tracer.sampled("xrpc")
        wall0 = tracer.wall_us() if trace_this else 0.0
        outcome = "ok"
        try:
            if normalized in self._down:
                raise XrpcError(
                    0, "connection to %s failed" % url, reason=REASON_HOST_DOWN
                )
            service = self._services.get(normalized)
            if service is None:
                raise XrpcError(0, "unknown host %s" % url, reason=REASON_UNKNOWN_HOST)
            if self.fault_injector is not None:
                latency = self.fault_injector.before_call(normalized, method, self.now_us)
                if latency:
                    self.last_call_latency_us = latency
                    self._m_injected.inc((), latency)
            result = service.xrpc_call(method, **params)
            if self.adversary is not None:
                # Byzantine hosts answer, but may answer with tampered bytes;
                # the adversary rewrites responses in flight, after the honest
                # service produced them.
                result = self.adversary.after_call(normalized, method, params, result)
            return result
        except XrpcError as exc:
            if exc.latency_us:
                # A failed attempt can still consume virtual time (an
                # injected timeout burns its full budget before erroring).
                self.last_call_latency_us = exc.latency_us
                self._m_injected.inc((), exc.latency_us)
            outcome = exc.reason or ("error-%d" % exc.status)
            if exc.injected:
                # Structured record of every fault-gate hit, correlated
                # to the enclosing pipeline phase.  Deterministic: the
                # injector draws from the seeded plan on virtual time.
                self.telemetry.emit_event(
                    "fault.injected",
                    fields={
                        "host": normalized,
                        "method": method,
                        "reason": outcome,
                        "latency_us": exc.latency_us,
                    },
                )
            raise
        finally:
            self._m_calls.inc((normalized, method, outcome))
            self._m_latency.observe((normalized,), self.last_call_latency_us)
            self._m_method_latency.observe((method,), self.last_call_latency_us)
            if trace_this:
                tracer.complete(
                    method,
                    "xrpc",
                    wall0,
                    args={"host": normalized, "outcome": outcome},
                    virtual_ts_us=self.now_us,
                    virtual_dur_us=self.last_call_latency_us,
                )

    def try_call(self, url: str, method: str, **params: Any) -> Any:
        """Like :meth:`call` but returns None on transport failure.

        Transport errors (status 0) and injected transient faults both
        come back as None; semantic errors raised by the service itself
        (404, 500 from a handler body, ...) still propagate.
        """
        try:
            return self.call(url, method, **params)
        except XrpcError as exc:
            if exc.status == 0 or exc.injected:
                return None
            raise

    @staticmethod
    def _norm(url: str) -> str:
        return url.rstrip("/").lower()

    def urls(self) -> list[str]:
        return list(self._services)

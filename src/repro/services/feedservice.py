"""Feed-generator-as-a-service platforms (Section 7.2, Table 5).

Most feeds are not self-hosted: three platforms (Skyfeed, Bluefeed,
Goodfeeds) host 95.8% of them, with Skyfeed alone at 85.86%.  Each
platform is a :class:`FeedGeneratorHost` plus a *feature matrix* deciding
which inputs and filters its builder UI lets users express; Skyfeed is the
only one offering regular expressions, which the paper credits for its
market share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.services.feedgen import (
    CuratedFeed,
    FeedError,
    FeedGeneratorHost,
    FeedRule,
    RetentionPolicy,
)

# Feature identifiers used in Table 5.
INPUT_WHOLE_NETWORK = "input:whole-network"
INPUT_TAGS = "input:tags"
INPUT_SINGLE_USER = "input:single-user"
INPUT_LIST = "input:list"
INPUT_FEED = "input:feed"
INPUT_SINGLE_POST = "input:single-post"
INPUT_LABELS = "input:labels"
INPUT_TOKEN = "input:token"
INPUT_SEGMENT = "input:segment"
FILTER_ITEM = "filter:item"
FILTER_LABELS = "filter:labels"
FILTER_IMAGE_COUNT = "filter:image-count"
FILTER_LINK_COUNT = "filter:link-count"
FILTER_REPOST_COUNT = "filter:repost-count"
FILTER_EMBED = "filter:embed"
FILTER_DUPLICATE = "filter:duplicate"
FILTER_USER_LIST = "filter:list-of-users"
FILTER_LANGUAGE = "filter:language"
FILTER_REGEX_TEXT = "filter:regex-text"
FILTER_REGEX_IMAGE_ALT = "filter:regex-image-alt"
FILTER_REGEX_LINK = "filter:regex-link"
PAID_PLANS = "other:paid-plans"


@dataclass(frozen=True)
class PlatformProfile:
    """Name + feature matrix + pricing of one platform."""

    name: str
    features: frozenset
    free: bool = True
    paid: bool = False

    def supports(self, feature: str) -> bool:
        return feature in self.features


# Table 5, transcribed.
SKYFEED_PROFILE = PlatformProfile(
    "Skyfeed",
    frozenset(
        {
            INPUT_WHOLE_NETWORK,
            INPUT_TAGS,
            INPUT_SINGLE_USER,
            INPUT_LIST,
            INPUT_FEED,
            INPUT_SINGLE_POST,
            INPUT_LABELS,
            FILTER_ITEM,
            FILTER_LABELS,
            FILTER_IMAGE_COUNT,
            FILTER_LINK_COUNT,
            FILTER_REPOST_COUNT,
            FILTER_EMBED,
            FILTER_DUPLICATE,
            FILTER_USER_LIST,
            FILTER_LANGUAGE,
            FILTER_REGEX_TEXT,
            FILTER_REGEX_IMAGE_ALT,
            FILTER_REGEX_LINK,
        }
    ),
)

BLUEFEED_PROFILE = PlatformProfile(
    "Bluefeed",
    frozenset(
        {
            INPUT_WHOLE_NETWORK,
            INPUT_TAGS,
            INPUT_SINGLE_USER,
            INPUT_FEED,
            INPUT_SINGLE_POST,
            INPUT_LABELS,
            FILTER_LABELS,
        }
    ),
)

BLUESKYFEEDS_PROFILE = PlatformProfile(
    "Blueskyfeeds",
    frozenset(
        {
            INPUT_TAGS,
            INPUT_SINGLE_USER,
            INPUT_LIST,
            INPUT_SINGLE_POST,
            INPUT_TOKEN,
            INPUT_SEGMENT,
            FILTER_LABELS,
            FILTER_USER_LIST,
            FILTER_LANGUAGE,
        }
    ),
)

GOODFEEDS_PROFILE = PlatformProfile(
    "Goodfeeds",
    frozenset({INPUT_WHOLE_NETWORK, INPUT_SINGLE_USER, INPUT_LIST}),
)

BLUESKYFEEDCREATOR_PROFILE = PlatformProfile(
    "Blueskyfeedcreator",
    frozenset(
        {
            INPUT_WHOLE_NETWORK,
            INPUT_TAGS,
            INPUT_SINGLE_USER,
            INPUT_LIST,
            FILTER_ITEM,
            FILTER_LABELS,
            FILTER_USER_LIST,
            FILTER_LANGUAGE,
        }
    ),
    paid=True,
)

ALL_PROFILES = (
    SKYFEED_PROFILE,
    BLUEFEED_PROFILE,
    BLUESKYFEEDS_PROFILE,
    GOODFEEDS_PROFILE,
    BLUESKYFEEDCREATOR_PROFILE,
)


def rule_required_features(rule: FeedRule) -> set[str]:
    """Which platform features a rule needs to be expressible."""
    needed = set()
    if rule.whole_network:
        needed.add(INPUT_WHOLE_NETWORK)
    if rule.keywords:
        needed.add(INPUT_TAGS)
    if rule.authors:
        needed.add(INPUT_LIST if rule.from_list else INPUT_SINGLE_USER)
    if rule.languages:
        needed.add(FILTER_LANGUAGE)
    if rule.regex is not None:
        needed.add(FILTER_REGEX_TEXT)
    if rule.exclude_label_values:
        needed.add(FILTER_LABELS)
    if rule.require_media:
        needed.add(FILTER_IMAGE_COUNT)
    return needed


class FeedServicePlatform(FeedGeneratorHost):
    """A hosted feed-builder platform.

    Feeds created here are served from the *platform's* service DID — the
    reason one account can appear to "own" 1,799 feeds in the paper: the
    hosting association stays with the platform, not the creator.
    """

    def __init__(
        self,
        profile: PlatformProfile,
        service_did: str,
        endpoint: str,
        telemetry=None,
    ):
        super().__init__(service_did, endpoint, telemetry=telemetry)
        self.profile = profile
        self._creators: dict[str, str] = {}  # feed uri -> creator did

    def create_feed(
        self,
        creator_did: str,
        feed_uri: str,
        rule: FeedRule,
        retention: Optional[RetentionPolicy] = None,
    ) -> CuratedFeed:
        """Create a feed if the rule fits the platform's feature set."""
        missing = rule_required_features(rule) - self.profile.features
        if missing:
            raise FeedError(
                "%s does not support: %s" % (self.profile.name, ", ".join(sorted(missing)))
            )
        feed = CuratedFeed(feed_uri, rule, retention)
        self.add_feed(feed)
        self._creators[feed_uri] = creator_did
        return feed

    def create_list_feed(
        self,
        creator_did: str,
        feed_uri: str,
        members,
        retention: Optional[RetentionPolicy] = None,
    ) -> CuratedFeed:
        """Create a feed over a curation list's members (the Table 5
        "List" input; not every platform offers it)."""
        rule = FeedRule(authors=frozenset(members), from_list=True)
        return self.create_feed(creator_did, feed_uri, rule, retention)

    def creator_of(self, feed_uri: str) -> Optional[str]:
        return self._creators.get(feed_uri)

    def feeds_by_creator(self, creator_did: str) -> list[str]:
        return [uri for uri, did in self._creators.items() if did == creator_did]


def feature_matrix_table() -> dict[str, dict[str, bool]]:
    """Table 5 as data: feature → platform → supported."""
    features = sorted(set().union(*(profile.features for profile in ALL_PROFILES)))
    table: dict[str, dict[str, bool]] = {}
    for feature in features:
        table[feature] = {
            profile.name: profile.supports(feature) for profile in ALL_PROFILES
        }
    table[PAID_PLANS] = {profile.name: profile.paid for profile in ALL_PROFILES}
    return table

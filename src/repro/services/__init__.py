"""Network services: the five Bluesky system components.

* :mod:`repro.services.pds` — Personal Data Servers hosting user repos,
* :mod:`repro.services.relay` — the Relay: PDS crawler, repo cache, Firehose,
* :mod:`repro.services.appview` — the AppView: global index + public API,
* :mod:`repro.services.labeler` — Labelers emitting moderation labels,
* :mod:`repro.services.feedgen` — Feed Generators and their rule engine,
* :mod:`repro.services.feedservice` — feed-generator-as-a-service platforms,
* :mod:`repro.services.client` — the client tying a user session together.

Services communicate through :class:`repro.services.xrpc.ServiceDirectory`,
which maps endpoint URLs to in-process service objects, so the measurement
code addresses services exactly as it would over HTTP.
"""

from repro.services.xrpc import ServiceDirectory, XrpcError

__all__ = ["ServiceDirectory", "XrpcError"]

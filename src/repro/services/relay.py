"""The Relay and its Firehose.

The Relay (``bsky.network``) crawls every known PDS, mirrors all repos in a
local cache, and re-publishes every update on the *Firehose* — the single
event stream the AppView, Labelers, Feed Generators, and the paper's own
collectors consume.  Key behaviours modelled here:

* repo cache: ``sync.listRepos`` / ``sync.getRepo`` answer from the cache,
  so crawls do not load the (possibly self-hosted) origin PDSes — the
  property the paper's ethics section relies on;
* sequence numbers: every event gets a monotonically increasing ``seq``;
* retention: the event backlog is pruned to a three-day window, so a
  subscriber that falls further behind loses data (Section 2);
* event kinds: ``#commit``, ``#identity``, ``#handle``, ``#tombstone``
  (Table 1).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional

from repro.atproto.events import (
    INFO_OUTDATED_CURSOR,
    CommitEvent,
    CommitOp,
    FirehoseEvent,
    HandleEvent,
    IdentityEvent,
    InfoEvent,
    TombstoneEvent,
)
from repro.atproto.repo import CommitMeta, Repo
from repro.obs.metrics import read_cache_counters
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.pds import Pds
from repro.services.xrpc import XrpcError, XrpcService

RETENTION_US = 3 * 24 * 60 * 60 * 1_000_000  # three days

#: Exported-CAR cache bound: enough for a crawl's working set without
#: pinning every repo's serialized bytes in memory at paper scale.
CAR_CACHE_MAX = 256


class Firehose:
    """Sequenced event log with live subscribers and bounded retention."""

    def __init__(self, retention_us: int = RETENTION_US):
        self.retention_us = retention_us
        self._events: list[FirehoseEvent] = []
        self._first_index_seq = 1  # seq of _events[0]
        self._next_seq = 1
        self._subscribers: list[Callable[[FirehoseEvent], None]] = []
        self.dropped_total = 0  # events pruned out of the retention window

    def next_seq(self) -> int:
        return self._next_seq

    def publish(self, build_event: Callable[[int], FirehoseEvent]) -> FirehoseEvent:
        """Assign the next seq, buffer the event, fan out to subscribers."""
        event = build_event(self._next_seq)
        self._next_seq += 1
        self._events.append(event)
        self._prune(event.time_us)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def _prune(self, now_us: int) -> None:
        cutoff = now_us - self.retention_us
        dropped = 0
        for event in self._events:
            if event.time_us >= cutoff:
                break
            dropped += 1
        if dropped:
            self._events = self._events[dropped:]
            self._first_index_seq += dropped
            self.dropped_total += dropped

    def subscribe(self, callback: Callable[[FirehoseEvent], None]) -> None:
        """Live subscription: callback runs for every future event."""
        self._subscribers.append(callback)

    def events_since(self, cursor: int = 0, limit: Optional[int] = None) -> list[FirehoseEvent]:
        """Replay buffered events with seq > cursor (subject to retention).

        When the cursor predates the retention window the replay *starts
        with* an ``#info``/``OutdatedCursor`` frame carrying the oldest
        sequence number still available and the number of events that were
        dropped — the consumer learns exactly how large its gap is instead
        of silently receiving a stream with a hole in it.

        ``limit`` caps the number of *frames* returned, gap frame
        included: a consumer that asked for at most N frames must never
        receive N + 1, so the limit is applied after the gap frame is
        prepended (a resume at the retention boundary with ``limit=1``
        yields just the notice; the next page starts the real replay).
        """
        start = max(0, cursor + 1 - self._first_index_seq)
        events: list[FirehoseEvent] = list(self._events[start:])
        gap = self.gap_for_cursor(cursor)
        if gap is not None:
            events.insert(0, gap)
        if limit is not None:
            events = events[:limit]
        return events

    def gap_for_cursor(self, cursor: int) -> Optional[InfoEvent]:
        """The ``OutdatedCursor`` frame a resume from ``cursor`` deserves,
        or None when the cursor is still inside the retention window."""
        if cursor + 1 >= self._first_index_seq:
            return None
        dropped = self._first_index_seq - (cursor + 1)
        oldest = self._events[0].seq if self._events else None
        newest_us = self._events[-1].time_us if self._events else 0
        return InfoEvent(
            seq=0,
            did="",
            time_us=newest_us,
            name=INFO_OUTDATED_CURSOR,
            message="requested cursor %d predates retention; replay resumes at %s "
            "(%d events dropped)" % (cursor, oldest, dropped),
            oldest_seq=oldest,
            dropped=dropped,
        )

    def oldest_available_seq(self) -> Optional[int]:
        if not self._events:
            return None
        return self._events[0].seq

    def backlog_size(self) -> int:
        return len(self._events)


class Relay(XrpcService):
    """The Relay service: PDS aggregator + Firehose publisher + repo cache."""

    def __init__(
        self,
        url: str = "https://bsky.network",
        retention_us: int = RETENTION_US,
        cache_reads: bool = True,
    ):
        self.url = url.rstrip("/")
        self.firehose = Firehose(retention_us)
        self._pdses: list[Pds] = []
        self._repo_locations: dict[str, Pds] = {}  # did -> hosting PDS
        self._tombstoned: set[str] = set()
        # did -> (head cid string, CAR bytes): serialized exports served
        # to repeat getRepo calls at an unchanged head.  Bounded (oldest
        # insertion evicted first — deterministic, no wall clock) and
        # explicitly invalidated by publish_commit / publish_tombstone.
        self.cache_reads = cache_reads
        self._car_cache: dict[str, tuple[str, bytes]] = {}
        self.set_telemetry(NULL_TELEMETRY)
        # did -> (head CID string, rev), maintained on every published
        # commit.  In sharded mode the relay's local PDS replicas hold no
        # records, so the sync surface answers from this map instead of
        # the cached Repo objects.
        self._heads: dict[str, tuple[str, str]] = {}
        # Optional CAR fetcher (did -> bytes | None) installed by the
        # sharded engine: repos live in worker processes, and getRepo
        # fetches them through this hook instead of the local cache.
        self.repo_reader: Optional[Callable[[str], Optional[bytes]]] = None

    def set_telemetry(self, telemetry) -> None:
        """(Re)bind the read-cache counter families and the tracer."""
        self.telemetry = telemetry
        self._m_cache_hits, self._m_cache_misses = read_cache_counters(telemetry.registry)

    def flush_read_caches(self) -> None:
        """Drop cached CAR exports (journal-boundary cache flush)."""
        self._car_cache.clear()

    # -- crawling / federation -------------------------------------------------

    def crawl_pds(self, pds: Pds) -> None:
        """Start consuming a PDS (the `requestCrawl` handshake).

        The legacy push path: the PDS notifies the relay of every commit.
        The sharded engine uses :meth:`register_pds` + explicit
        :meth:`publish_commit` calls instead, so event ordering is decided
        by the deterministic merge, not by callback timing.
        """
        if pds in self._pdses:
            return
        self._pdses.append(pds)
        for did in pds.dids():
            self._repo_locations[did] = pds
        pds.on_commit(lambda did, meta, pds=pds: self.publish_commit(pds, did, meta))
        pds.on_tombstone(self.publish_tombstone)

    def register_pds(self, pds: Pds) -> None:
        """Track a PDS's repos without subscribing to its commit stream.

        Used by the sharded engine, which publishes commits explicitly in
        merged order; behaviourally identical to :meth:`crawl_pds` for
        location bookkeeping (locations update on the first published
        commit either way).
        """
        if pds in self._pdses:
            return
        self._pdses.append(pds)
        for did in pds.dids():
            self._repo_locations[did] = pds

    def publish_commit(self, pds: Pds, did: str, meta: CommitMeta) -> None:
        """Ingest one commit: update cache bookkeeping, emit ``#commit``."""
        self._repo_locations[did] = pds
        self._heads[did] = (str(meta.commit_cid), meta.rev)
        self._car_cache.pop(did, None)  # new head: cached export is stale
        if self.repo_reader is not None:
            # Sharded mode: the hosting PDS replica never saw the write;
            # keep its own sync surface (listRepos) consistent.
            pds.note_remote_head(did, str(meta.commit_cid), meta.rev)
        records = meta.records if meta.records else (None,) * len(meta.ops)
        ops = tuple(
            CommitOp(action, path, cid, record)
            for (action, path, cid), record in zip(meta.ops, records)
        )
        self.firehose.publish(
            lambda seq: CommitEvent(
                seq=seq,
                did=did,
                time_us=meta.time_us,
                rev=meta.rev,
                commit_cid=meta.commit_cid,
                ops=ops,
            )
        )

    def publish_tombstone(self, did: str, now_us: int) -> None:
        """Ingest an account removal: drop the cache entry, emit ``#tombstone``."""
        self._tombstoned.add(did)
        self._car_cache.pop(did, None)
        pds = self._repo_locations.pop(did, None)
        if pds is not None:
            pds.drop_remote_head(did)
        self._heads.pop(did, None)
        self.firehose.publish(
            lambda seq: TombstoneEvent(seq=seq, did=did, time_us=now_us)
        )

    def publish_identity_event(self, did: str, now_us: int, handle: Optional[str] = None) -> None:
        """DID document changed (key rotation, PDS move, ...)."""
        self.firehose.publish(
            lambda seq: IdentityEvent(seq=seq, did=did, time_us=now_us, handle=handle)
        )

    def publish_handle_event(self, did: str, new_handle: str, now_us: int) -> None:
        """Handle change: the legacy #handle event plus nothing else; the
        paper's Table 1 counts these separately from #identity."""
        self.firehose.publish(
            lambda seq: HandleEvent(seq=seq, did=did, time_us=now_us, handle=new_handle)
        )

    # -- cache-backed sync API ----------------------------------------------------

    def hosting_pds(self, did: str) -> Optional[Pds]:
        return self._repo_locations.get(did)

    def cached_repo(self, did: str) -> Optional[Repo]:
        pds = self._repo_locations.get(did)
        if pds is None or not pds.has_account(did):
            return None
        return pds.repo(did)

    def known_dids(self) -> list[str]:
        return list(self._repo_locations)

    def xrpc_listRepos(self, cursor: Optional[str] = None, limit: int = 1000) -> dict:
        """List all repos the relay mirrors, with head commit versions.

        The cursor is the last DID of the previous page.  Resume via
        ``bisect`` on the sorted DID list: if the cursor DID was tombstoned
        between pages it no longer appears in the listing, but pagination
        must continue from where it *would* sort — an exact-match lookup
        would silently end the crawl and drop every remaining repo.
        """
        dids = sorted(self._repo_locations)
        start = bisect_right(dids, cursor) if cursor is not None else 0
        page = dids[start : start + limit]
        repos = []
        if self.repo_reader is not None:
            # Sharded mode: local replicas are empty; the head map carries
            # exactly what publish_commit saw, in merged order.
            for did in page:
                head = self._heads.get(did)
                if head is not None:
                    repos.append({"did": did, "head": head[0], "rev": head[1]})
        else:
            for did in page:
                repo = self.cached_repo(did)
                if repo is not None and repo.head is not None:
                    repos.append({"did": did, "head": str(repo.head), "rev": repo.rev})
        next_cursor = page[-1] if len(page) == limit else None
        return {"repos": repos, "cursor": next_cursor}

    def xrpc_getRepo(self, did: str) -> bytes:
        """Serve a repo CAR from the relay's cache (not the origin PDS).

        Serialized exports are cached per DID and keyed by the head CID,
        so repeat fetches at an unchanged head skip re-serialization (and,
        in sharded mode, the worker round-trip)."""
        with self.telemetry.tracer.span("read.getRepo", cat="read", sample=True):
            head = self._current_head(did)
            if self.cache_reads and head is not None:
                cached = self._car_cache.get(did)
                if cached is not None and cached[0] == head:
                    self._m_cache_hits.inc(("repo_car",))
                    return cached[1]
                self._m_cache_misses.inc(("repo_car",))
            car = self._fetch_car(did)
            if self.cache_reads and head is not None:
                while len(self._car_cache) >= CAR_CACHE_MAX:
                    del self._car_cache[next(iter(self._car_cache))]
                self._car_cache[did] = (head, car)
            return car

    def _current_head(self, did: str) -> Optional[str]:
        """Head CID string of a mirrored repo, or None when unknown."""
        if self.repo_reader is not None:
            head = self._heads.get(did)
            return head[0] if head is not None else None
        repo = self.cached_repo(did)
        if repo is None or repo.head is None:
            return None
        return str(repo.head)

    def _fetch_car(self, did: str) -> bytes:
        if self.repo_reader is not None:
            car = self.repo_reader(did)
            if car is None:
                raise XrpcError(404, "repo %s not mirrored" % did)
            return car
        repo = self.cached_repo(did)
        if repo is None or repo.head is None:
            raise XrpcError(404, "repo %s not mirrored" % did)
        return repo.export_car()

    def xrpc_getBlocks(self, did: str, cids: list) -> dict:
        """Batched block fetch (``com.atproto.sync.getBlocks``): many CIDs
        resolved in one call against a single per-head block map, instead
        of one tree walk per block.  The map is built lazily by the repo
        and reused for every batch at the same head."""
        if self.repo_reader is not None:
            # Worker repos only ship whole CARs (same split as getRecord).
            raise XrpcError(501, "sync.getBlocks is unavailable in sharded mode")
        with self.telemetry.tracer.span("read.getBlocks", cat="read", sample=True):
            repo = self.cached_repo(did)
            if repo is None or repo.head is None:
                raise XrpcError(404, "repo %s not mirrored" % did)
            mapping = repo.block_map_cached()
            if mapping is not None:
                self._m_cache_hits.inc(("repo_blocks",))
            else:
                self._m_cache_misses.inc(("repo_blocks",))
                mapping = repo.block_map()
            blocks = []
            for cid in cids:
                block = mapping.get(str(cid))
                if block is None:
                    raise XrpcError(404, "block %s not in repo %s" % (cid, did))
                blocks.append({"cid": str(cid), "block": block})
            return {"blocks": blocks}

    def xrpc_subscribeRepos(self, cursor: int = 0, limit: Optional[int] = None) -> list:
        """Cursor-based replay of the firehose backlog."""
        return self.firehose.events_since(cursor, limit)

    def xrpc_getLatestCommit(self, did: str) -> dict:
        if self.repo_reader is not None:
            head = self._heads.get(did)
            if head is None:
                raise XrpcError(404, "repo %s not mirrored" % did)
            return {"cid": head[0], "rev": head[1]}
        repo = self.cached_repo(did)
        if repo is None or repo.head is None:
            raise XrpcError(404, "repo %s not mirrored" % did)
        return {"cid": str(repo.head), "rev": repo.rev}

    def xrpc_getRecord(self, did: str, collection: str, rkey: str) -> dict:
        """Verifiable single-record fetch: the record plus the signed
        commit block and the MST inclusion-proof path, so a client can
        check authenticity without downloading the whole repository."""
        from repro.atproto.cbor import cbor_encode
        from repro.atproto.mst import prove_inclusion

        if self.repo_reader is not None:
            # Proof construction needs the live MST; worker repos only ship
            # whole CARs.  Nothing in the measurement pipeline calls this —
            # it exists for the verifiable-reads service surface.
            raise XrpcError(501, "sync.getRecord is unavailable in sharded mode")
        repo = self.cached_repo(did)
        if repo is None or repo.head is None:
            raise XrpcError(404, "repo %s not mirrored" % did)
        record = repo.get_record(collection, rkey)
        if record is None:
            raise XrpcError(404, "record not found")
        key = "%s/%s" % (collection, rkey)
        commit_cid, commit_block = repo.signed_commit_block()
        return {
            "uri": "at://%s/%s" % (did, key),
            "cid": str(repo.get_record_cid(collection, rkey)),
            "value": record,
            "commit": {"cid": str(commit_cid), "block": commit_block},
            "proof": prove_inclusion(repo.mst, key),
        }

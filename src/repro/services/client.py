"""The client: a user session composing PDS + AppView.

Provides the write operations a user performs (post, like, repost, follow,
block, profile), handle management, and the moderation-preference layer:
which Labelers the user subscribes to and how each label value should be
actioned (ignore / warn / hide).  Every user is force-subscribed to the
official Bluesky Labeler, whose ``!``-labels have hardcoded behaviour
(Section 6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.atproto.lexicon import (
    BLOCK,
    FOLLOW,
    LIKE,
    POST,
    PROFILE,
    REPOST,
)
from repro.atproto.repo import CommitMeta
from repro.services.appview import AppView
from repro.services.pds import Pds


def iso_time(time_us: int) -> str:
    """Render simulation microseconds as an ISO-8601 UTC timestamp."""
    import datetime

    moment = datetime.datetime.fromtimestamp(time_us / 1_000_000, datetime.timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "Z"


class LabelAction(enum.Enum):
    IGNORE = "ignore"
    WARN = "warn"
    HIDE = "hide"


# Hardcoded behaviours for globally defined values (cannot be overridden).
FORCED_ACTIONS = {
    "!hide": LabelAction.HIDE,
    "!takedown": LabelAction.HIDE,
    "!warn": LabelAction.WARN,
}


@dataclass
class ModerationPrefs:
    """The user's (private) moderation preferences."""

    subscribed_labelers: set = field(default_factory=set)
    label_actions: dict = field(default_factory=dict)  # (labeler_did, val) -> LabelAction

    def action_for(self, labeler_did: str, val: str, official_did: str) -> LabelAction:
        forced = FORCED_ACTIONS.get(val)
        if forced is not None and labeler_did == official_did:
            return forced
        if labeler_did not in self.subscribed_labelers and labeler_did != official_did:
            return LabelAction.IGNORE
        return self.label_actions.get((labeler_did, val), LabelAction.IGNORE)


class Client:
    """A logged-in user session."""

    def __init__(self, did: str, pds: Pds, appview: Optional[AppView] = None):
        self.did = did
        self.pds = pds
        self.appview = appview
        self.prefs = ModerationPrefs()

    # -- writes ----------------------------------------------------------------

    def post(
        self,
        text: str,
        now_us: int,
        langs: Optional[list[str]] = None,
        reply_to: Optional[str] = None,
        embed: Optional[dict] = None,
    ) -> CommitMeta:
        record = {
            "$type": POST,
            "text": text,
            "createdAt": iso_time(now_us),
        }
        if langs:
            record["langs"] = list(langs)
        if reply_to:
            record["reply"] = {"parent": {"uri": reply_to}, "root": {"uri": reply_to}}
        if embed:
            record["embed"] = embed
        return self.pds.create_record(self.did, POST, record, now_us)

    def like(self, subject_uri: str, subject_cid: str, now_us: int) -> CommitMeta:
        record = {
            "$type": LIKE,
            "subject": {"uri": subject_uri, "cid": subject_cid},
            "createdAt": iso_time(now_us),
        }
        return self.pds.create_record(self.did, LIKE, record, now_us)

    def repost(self, subject_uri: str, subject_cid: str, now_us: int) -> CommitMeta:
        record = {
            "$type": REPOST,
            "subject": {"uri": subject_uri, "cid": subject_cid},
            "createdAt": iso_time(now_us),
        }
        return self.pds.create_record(self.did, REPOST, record, now_us)

    def follow(self, subject_did: str, now_us: int) -> CommitMeta:
        record = {"$type": FOLLOW, "subject": subject_did, "createdAt": iso_time(now_us)}
        return self.pds.create_record(self.did, FOLLOW, record, now_us)

    def block(self, subject_did: str, now_us: int) -> CommitMeta:
        record = {"$type": BLOCK, "subject": subject_did, "createdAt": iso_time(now_us)}
        return self.pds.create_record(self.did, BLOCK, record, now_us)

    def set_profile(
        self, now_us: int, display_name: str = "", description: str = ""
    ) -> CommitMeta:
        record = {
            "$type": PROFILE,
            "displayName": display_name,
            "description": description,
            "createdAt": iso_time(now_us),
        }
        repo = self.pds.repo(self.did)
        if repo.get_record(PROFILE, "self") is None:
            return self.pds.create_record(self.did, PROFILE, record, now_us, rkey="self")
        return self.pds.update_record(self.did, PROFILE, "self", record, now_us)

    def delete_post(self, rkey: str, now_us: int) -> CommitMeta:
        return self.pds.delete_record(self.did, POST, rkey, now_us)

    # -- moderation preferences ------------------------------------------------------

    def subscribe_labeler(self, labeler_did: str) -> None:
        self.prefs.subscribed_labelers.add(labeler_did)
        self._save_prefs()

    def unsubscribe_labeler(self, labeler_did: str, official_did: Optional[str] = None) -> None:
        if official_did is not None and labeler_did == official_did:
            raise ValueError("unsubscribing from the official labeler is not an option")
        self.prefs.subscribed_labelers.discard(labeler_did)
        self._save_prefs()

    def set_label_action(self, labeler_did: str, val: str, action: LabelAction) -> None:
        self.prefs.label_actions[(labeler_did, val)] = action
        self._save_prefs()

    def _save_prefs(self) -> None:
        self.pds.put_preferences(
            self.did,
            {
                "labelers": sorted(self.prefs.subscribed_labelers),
                "label_actions": {
                    "%s/%s" % key: action.value
                    for key, action in self.prefs.label_actions.items()
                },
            },
        )

    # -- reads ------------------------------------------------------------------------

    def home_timeline(self, limit: int = 50) -> list[dict]:
        """The default view: posts from followed accounts, moderated."""
        if self.appview is None:
            raise RuntimeError("client has no AppView configured")
        response = self.appview.xrpc_getTimeline(actor=self.did, limit=limit)
        return self._apply_moderation(response["feed"])

    def view_feed(self, feed_uri: str, now_us: int, limit: int = 50) -> list[dict]:
        """Fetch a feed through the AppView and apply moderation prefs."""
        if self.appview is None:
            raise RuntimeError("client has no AppView configured")
        response = self.appview.xrpc_getFeed(
            feed=feed_uri, limit=limit, viewer=self.did, now_us=now_us
        )
        return self._apply_moderation(response["feed"])

    def _apply_moderation(self, items: list[dict]) -> list[dict]:
        official = self.appview.official_labeler_did or ""
        visible = []
        for item in items:
            post = item["post"]
            action = LabelAction.IGNORE
            for label in post["labels"]:
                candidate = self.prefs.action_for(label["src"], label["val"], official)
                if candidate == LabelAction.HIDE:
                    action = candidate
                    break
                if candidate == LabelAction.WARN:
                    action = candidate
            if action == LabelAction.HIDE:
                continue
            entry = dict(post)
            entry["warning"] = action == LabelAction.WARN
            visible.append(entry)
        return visible

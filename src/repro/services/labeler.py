"""Labelers — the moderation services of Section 6.

A Labeler is a regular account that (1) publishes an
``app.bsky.labeler.service`` record describing the label values it emits,
(2) lists a labeler endpoint in its DID document, and (3) streams signed
labels from that endpoint (``com.atproto.label.subscribeLabels``).

Labels are short strings attached to *subjects*: post URIs, whole accounts
(DIDs), or profile blobs (avatar/banner).  A label is rescinded by emitting
the same value for the same subject with the negation flag set.  Some
values are reserved (``!``-prefixed) and only honoured from the official
Bluesky Labeler; ``porn`` / ``sexual`` / ``graphic-media`` have hardcoded
client behaviour but may come from anyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.services.xrpc import XrpcService

# Subject target classes (Table 4 of the paper).
TARGET_POST = "post"
TARGET_ACCOUNT = "account"
TARGET_PROFILE_MEDIA = "banner/avatar"
TARGET_OTHER = "other"

# The globally defined label values. '!'-prefixed ones are reserved for the
# official Bluesky labeler; the others have hardcoded client behaviour.
RESERVED_LABELS = ("!hide", "!warn", "!takedown", "!no-promote", "!no-unauthenticated")
HARDCODED_BEHAVIOUR_LABELS = ("porn", "sexual", "graphic-media", "nudity")


def classify_subject(uri: str) -> str:
    """Map a label subject to the paper's target classes."""
    if uri.startswith("did:"):
        return TARGET_ACCOUNT
    if "/app.bsky.feed.post/" in uri:
        return TARGET_POST
    if "/app.bsky.actor.profile/" in uri:
        return TARGET_PROFILE_MEDIA
    return TARGET_OTHER


@dataclass(frozen=True)
class Label:
    """One label event, as carried on a labeler's stream."""

    seq: int  # per-labeler stream sequence
    src: str  # labeler DID
    uri: str  # subject: at:// URI or bare DID
    val: str  # label value, e.g. "porn"
    neg: bool  # True = rescind a previous application
    cts: int  # creation timestamp, simulation microseconds
    sig: bytes = b""  # labeler signature over the payload (may be empty)

    @property
    def target_type(self) -> str:
        return classify_subject(self.uri)

    def signed_payload(self) -> bytes:
        """The canonical bytes a labeler signs (and verifiers check)."""
        from repro.atproto.cbor import cbor_encode

        return cbor_encode(
            {
                "src": self.src,
                "uri": self.uri,
                "val": self.val,
                "neg": self.neg,
                "cts": self.cts,
            }
        )


@dataclass(frozen=True)
class LabelerPolicies:
    """The service record payload: declared label values + descriptions."""

    label_values: tuple[str, ...]
    descriptions: dict


class LabelerService(XrpcService):
    """A running labeler endpoint with a replayable label stream.

    When constructed with a ``signing_keypair`` every emitted label is
    signed over its canonical payload, and any consumer holding the
    labeler's DID document can verify the stream end-to-end.
    """

    def __init__(self, did: str, endpoint: str, policies: LabelerPolicies, signing_keypair=None):
        self.did = did
        self.endpoint = endpoint.rstrip("/")
        self.policies = policies
        self.signing_keypair = signing_keypair
        self._labels: list[Label] = []
        self._active: dict[tuple[str, str], bool] = {}  # (uri, val) -> applied?

    # -- emission ---------------------------------------------------------------

    def emit(self, uri: str, val: str, now_us: int, neg: bool = False) -> Label:
        """Emit a label (or a negation of one)."""
        label = Label(
            seq=len(self._labels) + 1,
            src=self.did,
            uri=uri,
            val=val,
            neg=neg,
            cts=now_us,
        )
        if self.signing_keypair is not None:
            label = Label(
                seq=label.seq,
                src=label.src,
                uri=label.uri,
                val=label.val,
                neg=label.neg,
                cts=label.cts,
                sig=self.signing_keypair.sign(label.signed_payload()),
            )
        self._labels.append(label)
        self._active[(uri, val)] = not neg
        return label

    def verify_label(self, label: Label, public_key) -> bool:
        """Check a label's signature against the labeler's public key."""
        if not label.sig:
            return False
        return public_key.verify(label.signed_payload(), label.sig)

    def rescind(self, uri: str, val: str, now_us: int) -> Label:
        return self.emit(uri, val, now_us, neg=True)

    def is_applied(self, uri: str, val: str) -> bool:
        return self._active.get((uri, val), False)

    def label_count(self) -> int:
        return len(self._labels)

    def service_record(self, created_at: str) -> dict:
        """The ``app.bsky.labeler.service`` record for the labeler's repo."""
        return {
            "$type": "app.bsky.labeler.service",
            "policies": {
                "labelValues": list(self.policies.label_values),
                "labelValueDefinitions": dict(self.policies.descriptions),
            },
            "createdAt": created_at,
        }

    # -- stream (XRPC) -------------------------------------------------------------

    def xrpc_subscribeLabels(self, cursor: int = 0, limit: Optional[int] = None) -> list[Label]:
        """Replay the label stream from a cursor.

        Unlike the Firehose, labeler streams retain their full history —
        which is how the paper's collectors obtained labels emitted before
        their measurement window.
        """
        events = [label for label in self._labels if label.seq > cursor]
        if limit is not None:
            events = events[:limit]
        return events

    def xrpc_queryLabels(self, uriPatterns: list, limit: int = 250) -> dict:
        """Point lookup of currently applied labels for given subjects."""
        labels = [
            label
            for label in self._labels
            if label.uri in uriPatterns and self._active.get((label.uri, label.val), False)
            and not label.neg
        ]
        return {"labels": labels[:limit]}

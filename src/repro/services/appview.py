"""The AppView — the global index behind the Bluesky application.

Consumes the Firehose, stores everything in query-friendly indexes, pulls
labels from every known Labeler, and serves the public API the paper's
Feed-Generator collectors use (``getFeedGenerator`` / ``getFeed``).  There
is exactly one AppView, operated by Bluesky PBC — one of the two
centralised choke points the discussion section calls out (the other being
the Relay).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.atproto.events import CommitEvent, FirehoseEvent, HandleEvent, TombstoneEvent
from repro.atproto.lexicon import (
    BLOCK,
    FEED_GENERATOR,
    FOLLOW,
    LABELER_SERVICE,
    LIKE,
    POST,
    PROFILE,
    REPOST,
)
from repro.identity.resolver import DidResolver
from repro.obs.metrics import read_cache_counters
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.labeler import Label, LabelerService
from repro.services.relay import Relay
from repro.services.xrpc import ServiceDirectory, XrpcError, XrpcService


@dataclass
class PostView:
    """Indexed representation of one post."""

    uri: str
    author: str
    time_us: int
    text: str
    langs: tuple[str, ...]
    created_at: str
    has_media: bool = False
    reply_to: Optional[str] = None


@dataclass
class FeedGeneratorInfo:
    """Indexed representation of one app.bsky.feed.generator record."""

    uri: str
    creator: str
    service_did: str
    display_name: str
    description: str
    created_at: str
    time_us: int = 0


@dataclass
class _Indexes:
    posts: dict[str, PostView] = field(default_factory=dict)
    like_counts: Counter = field(default_factory=Counter)
    repost_counts: Counter = field(default_factory=Counter)
    follower_counts: Counter = field(default_factory=Counter)
    following_counts: Counter = field(default_factory=Counter)
    block_counts: Counter = field(default_factory=Counter)
    like_subject_by_path: dict[str, str] = field(default_factory=dict)
    follow_subject_by_path: dict[str, str] = field(default_factory=dict)
    following: dict[str, set] = field(default_factory=dict)  # did -> followed dids
    posts_by_author: dict[str, list] = field(default_factory=dict)  # did -> [uri]
    profiles: dict[str, dict] = field(default_factory=dict)
    feed_generators: dict[str, FeedGeneratorInfo] = field(default_factory=dict)
    labeler_services: dict[str, dict] = field(default_factory=dict)
    handles: dict[str, str] = field(default_factory=dict)
    # token -> post uris, for app.bsky.feed.searchPosts
    search_index: dict[str, list] = field(default_factory=dict)
    # list uri -> member dids (app.bsky.graph.list / listitem)
    list_members: dict[str, set] = field(default_factory=dict)
    non_bsky_records: int = 0


def _uri_author(uri: str) -> str:
    """The author did of an ``at://<did>/<collection>/<rkey>`` uri."""
    return uri[5:].split("/", 1)[0]


class AppView(XrpcService):
    """The single global AppView."""

    def __init__(
        self,
        url: str,
        resolver: DidResolver,
        services: ServiceDirectory,
        official_labeler_did: Optional[str] = None,
        index_posts: bool = True,
        index_search: bool = False,
        index_timelines: bool = True,
        cache_views: bool = True,
        telemetry=None,
    ):
        self.url = url.rstrip("/")
        self.resolver = resolver
        self.services = services
        self.official_labeler_did = official_labeler_did
        self.index_posts = index_posts
        self.index_search = index_search
        # Read-path acceleration knobs.  ``index_timelines`` maintains a
        # per-follower timeline index at ingest (fan-out-on-write) and
        # ``cache_views`` keeps hydrated post/profile views between reads;
        # both are semantics-preserving: responses are byte-identical with
        # either switched off (the scan path stays as the reference).
        self.index_timelines = index_timelines
        self.cache_views = cache_views
        self.index = _Indexes()
        self._labelers: dict[str, LabelerService] = {}
        self._label_cursors: dict[str, int] = {}
        self._labels: list[Label] = []
        self._labels_by_subject: dict[str, list[Label]] = {}
        self._takedowns: set[str] = set()
        self.events_consumed = 0
        # -- read-path state ---------------------------------------------------
        # author did -> follower dids (insertion-ordered set; event order
        # is deterministic, so iteration is too).
        self._tl_followers: dict[str, dict[str, None]] = {}
        # follower did -> [(time_us, uri)] sorted ascending; the timeline
        # index getTimeline walks backwards instead of scanning authors.
        self._timelines: dict[str, list] = {}
        # uri -> hydrated post view; actor did -> profile view.  Explicitly
        # invalidated on like/repost/label/takedown/delete (posts) and on
        # profile/follow/handle/tombstone events (profiles).
        self._post_views: dict[str, dict] = {}
        self._profile_views: dict[str, dict] = {}
        # (q, limit) -> full searchPosts response.  Valid only while no
        # event or label arrives: any ingest clears it wholesale (reads
        # happen between ingest batches, so a crawl sweep repeating a
        # query hits; correctness never depends on finer invalidation).
        self._search_pages: dict[tuple, dict] = {}
        self.set_telemetry(telemetry if telemetry is not None else NULL_TELEMETRY)

    def set_telemetry(self, telemetry) -> None:
        """(Re)bind the read-cache counter families and the tracer."""
        self.telemetry = telemetry
        self._m_cache_hits, self._m_cache_misses = read_cache_counters(telemetry.registry)

    def flush_read_caches(self) -> None:
        """Drop hydrated-view cache contents.

        Called by the pipeline at every journal boundary so cache warmth
        never crosses an action: hit/miss totals after a crash/resume
        equal an uninterrupted run's.  The timeline index is *not* a
        cache (it is maintained at ingest, never repopulated at read
        time) and survives the flush."""
        self._post_views.clear()
        self._profile_views.clear()
        self._search_pages.clear()

    # -- firehose ingestion ---------------------------------------------------

    def attach(self, relay: Relay) -> None:
        """Subscribe to the relay's firehose for live indexing."""
        relay.firehose.subscribe(self.consume_event)

    def consume_event(self, event: FirehoseEvent) -> None:
        self.events_consumed += 1
        if self._search_pages:
            self._search_pages.clear()
        if isinstance(event, CommitEvent):
            for op in event.ops:
                self._consume_op(event.did, event.time_us, op)
        elif isinstance(event, HandleEvent):
            self.index.handles[event.did] = event.handle
            self._profile_views.pop(event.did, None)
        elif isinstance(event, TombstoneEvent):
            self._remove_account(event.did)

    def _consume_op(self, did: str, time_us: int, op) -> None:
        collection = op.collection
        uri = "at://%s/%s" % (did, op.path)
        if op.action == "delete":
            self._consume_delete(did, uri, collection, op.path)
            return
        record = op.record or {}
        if collection == POST:
            if self.index_posts:
                embed = record.get("embed") or {}
                self.index.posts[uri] = PostView(
                    uri=uri,
                    author=did,
                    time_us=time_us,
                    text=record.get("text", ""),
                    langs=tuple(record.get("langs") or ()),
                    created_at=record.get("createdAt", ""),
                    has_media="images" in embed or "video" in embed,
                    reply_to=(record.get("reply") or {}).get("parent", {}).get("uri"),
                )
                self.index.posts_by_author.setdefault(did, []).append(uri)
                if self.index_timelines:
                    # Fan-out-on-write: deliver the post into every
                    # follower's timeline index at ingest time.
                    entry = (time_us, uri)
                    for follower in self._tl_followers.get(did, ()):
                        timeline = self._timelines.setdefault(follower, [])
                        if not timeline or timeline[-1] <= entry:
                            timeline.append(entry)  # common case: in order
                        else:
                            insort(timeline, entry)
                if self.index_search:
                    from repro.services.feedgen import tokenize

                    for token in tokenize(record.get("text", "")):
                        self.index.search_index.setdefault(token, []).append(uri)
        elif collection == LIKE:
            subject = (record.get("subject") or {}).get("uri")
            if subject:
                self.index.like_counts[subject] += 1
                self.index.like_subject_by_path[did + "|" + op.path] = subject
                self._post_views.pop(subject, None)  # likeCount changed
        elif collection == REPOST:
            subject = (record.get("subject") or {}).get("uri")
            if subject:
                self.index.repost_counts[subject] += 1
                self._post_views.pop(subject, None)  # repostCount changed
        elif collection == FOLLOW:
            subject = record.get("subject")
            if subject:
                self.index.follower_counts[subject] += 1
                self.index.following_counts[did] += 1
                self.index.follow_subject_by_path[did + "|" + op.path] = subject
                self.index.following.setdefault(did, set()).add(subject)
                self._profile_views.pop(did, None)
                self._profile_views.pop(subject, None)
                followers = self._tl_followers.setdefault(subject, {})
                if did not in followers:
                    followers[did] = None
                    if self.index_timelines:
                        self._merge_author_timeline(did, subject)
        elif collection == BLOCK:
            subject = record.get("subject")
            if subject:
                self.index.block_counts[subject] += 1
        elif collection == PROFILE:
            self.index.profiles[did] = record
            self._profile_views.pop(did, None)
        elif collection == "app.bsky.graph.listitem":
            list_uri = record.get("list")
            member = record.get("subject")
            if list_uri and member:
                self.index.list_members.setdefault(list_uri, set()).add(member)
        elif collection == FEED_GENERATOR:
            self.index.feed_generators[uri] = FeedGeneratorInfo(
                uri=uri,
                creator=did,
                service_did=record.get("did", ""),
                display_name=record.get("displayName", ""),
                description=record.get("description", ""),
                created_at=record.get("createdAt", ""),
                time_us=time_us,
            )
        elif collection == LABELER_SERVICE:
            self.index.labeler_services[did] = record
        elif not collection.startswith("app.bsky.") and not collection.startswith("chat.bsky."):
            # Records the Bluesky AppView cannot decode (Section 4,
            # "Non-Bluesky content") — counted, not indexed.
            self.index.non_bsky_records += 1

    def _consume_delete(self, did: str, uri: str, collection: str, path: str) -> None:
        if collection == POST:
            view = self.index.posts.pop(uri, None)
            self._post_views.pop(uri, None)
            if view is not None and self.index_timelines:
                entry = (view.time_us, uri)
                for follower in self._tl_followers.get(view.author, ()):
                    timeline = self._timelines.get(follower)
                    if timeline:
                        position = bisect_left(timeline, entry)
                        if position < len(timeline) and timeline[position] == entry:
                            del timeline[position]
        elif collection == LIKE:
            subject = self.index.like_subject_by_path.pop(did + "|" + path, None)
            if subject:
                self.index.like_counts[subject] -= 1
                self._post_views.pop(subject, None)  # likeCount changed
        elif collection == FOLLOW:
            subject = self.index.follow_subject_by_path.pop(did + "|" + path, None)
            if subject:
                self.index.follower_counts[subject] -= 1
                self.index.following_counts[did] -= 1
                self.index.following.get(did, set()).discard(subject)
                self._profile_views.pop(did, None)
                self._profile_views.pop(subject, None)
                followers = self._tl_followers.get(subject)
                if followers is not None:
                    followers.pop(did, None)
                if self.index_timelines:
                    self._drop_author_timeline(did, subject)
        elif collection == FEED_GENERATOR:
            self.index.feed_generators.pop(uri, None)
        elif collection == LABELER_SERVICE:
            self.index.labeler_services.pop(did, None)

    def _remove_account(self, did: str) -> None:
        self.index.profiles.pop(did, None)
        self.index.handles.pop(did, None)
        self.index.labeler_services.pop(did, None)
        self._profile_views.pop(did, None)

    # -- timeline index maintenance ---------------------------------------------

    def _merge_author_timeline(self, follower: str, author: str) -> None:
        """A new follow: merge the author's existing live posts into the
        follower's timeline index."""
        posts = self.index.posts
        entries = [
            (posts[uri].time_us, uri)
            for uri in self.index.posts_by_author.get(author, ())
            if uri in posts  # posts_by_author keeps deleted uris; skip them
        ]
        if entries:
            timeline = self._timelines.setdefault(follower, [])
            timeline.extend(entries)
            timeline.sort()

    def _drop_author_timeline(self, follower: str, author: str) -> None:
        """An unfollow: remove the author's posts from the follower's
        timeline index."""
        timeline = self._timelines.get(follower)
        if timeline:
            self._timelines[follower] = [
                entry for entry in timeline if _uri_author(entry[1]) != author
            ]

    # -- label aggregation ---------------------------------------------------------

    def add_labeler(self, labeler: LabelerService) -> None:
        """Start aggregating a labeler's stream (the AppView subscribes to
        *all* known labelers and must store all labels — the scalability
        concern raised in Section 6.1)."""
        self._labelers[labeler.did] = labeler
        self._label_cursors.setdefault(labeler.did, 0)

    def sync_labels(self) -> int:
        """Pull new labels from every registered labeler; returns count."""
        pulled = 0
        for did, labeler in self._labelers.items():
            cursor = self._label_cursors[did]
            for label in labeler.xrpc_subscribeLabels(cursor=cursor):
                self._ingest_label(label)
                cursor = label.seq
                pulled += 1
            self._label_cursors[did] = cursor
        return pulled

    def _ingest_label(self, label: Label) -> None:
        self._labels.append(label)
        self._labels_by_subject.setdefault(label.uri, []).append(label)
        # Labels (and takedowns, below) are part of the hydrated view.
        self._post_views.pop(label.uri, None)
        if self._search_pages:
            self._search_pages.clear()
        if label.val == "!takedown" and label.src == self.official_labeler_did:
            if label.neg:
                self._takedowns.discard(label.uri)
            else:
                self._takedowns.add(label.uri)

    def labels_for(self, uri: str) -> list[Label]:
        """Currently applied (non-negated) labels for a subject."""
        applied: dict[tuple[str, str], Label] = {}
        for label in self._labels_by_subject.get(uri, ()):
            key = (label.src, label.val)
            if label.neg:
                applied.pop(key, None)
            else:
                applied[key] = label
        return list(applied.values())

    def label_count(self) -> int:
        return len(self._labels)

    def is_taken_down(self, uri: str) -> bool:
        return uri in self._takedowns

    # -- hydration --------------------------------------------------------------

    def _hydrate_post(self, uri: str) -> Optional[dict]:
        """The full hydrated view of one post, or None if the post is
        deleted, never indexed, or taken down.

        Shared by getFeed / getTimeline / searchPosts; with ``cache_views``
        the hydrated dict is cached until an event touching it (like,
        repost, label, takedown, delete) invalidates the entry."""
        if uri in self._takedowns:
            return None
        if self.cache_views:
            cached = self._post_views.get(uri)
            if cached is not None:
                self._m_cache_hits.inc(("post_view",))
                return cached
        view = self.index.posts.get(uri)
        if view is None:
            return None
        post = {
            "uri": view.uri,
            "author": view.author,
            "record": {
                "text": view.text,
                "langs": list(view.langs),
                "createdAt": view.created_at,
            },
            "likeCount": self.index.like_counts.get(uri, 0),
            "repostCount": self.index.repost_counts.get(uri, 0),
            "indexedAt": view.time_us,
            "labels": [{"src": l.src, "val": l.val} for l in self.labels_for(uri)],
        }
        if self.cache_views:
            self._m_cache_misses.inc(("post_view",))
            self._post_views[uri] = post
        return post

    # -- public API -------------------------------------------------------------

    def xrpc_getFeedGenerator(self, feed: str) -> dict:
        info = self.index.feed_generators.get(feed)
        if info is None:
            raise XrpcError(404, "unknown feed generator %s" % feed)
        endpoint = self._feedgen_endpoint(info)
        is_online = endpoint is not None and self.services.is_reachable(endpoint)
        is_valid = False
        if is_online:
            description = self.services.try_call(endpoint, "app.bsky.feed.describeFeedGenerator")
            if description is not None:
                is_valid = any(entry["uri"] == feed for entry in description["feeds"])
        return {
            "view": {
                "uri": info.uri,
                "creator": info.creator,
                "did": info.service_did,
                "displayName": info.display_name,
                "description": info.description,
                "likeCount": self.index.like_counts.get(feed, 0),
                "indexedAt": info.created_at,
            },
            "isOnline": is_online,
            "isValid": is_valid,
        }

    def _feedgen_endpoint(self, info: FeedGeneratorInfo) -> Optional[str]:
        doc = self.resolver.resolve(info.service_did)
        if doc is not None:
            service = doc.service("#bsky_fg") or doc.service("#atproto_feedgen")
            if service is not None:
                return service.endpoint
        # Conventional fallback: did:web service DIDs serve from their FQDN.
        if info.service_did.startswith("did:web:"):
            return "https://" + info.service_did[len("did:web:") :]
        return None

    def xrpc_getFeed(
        self,
        feed: str,
        limit: int = 50,
        cursor: Optional[str] = None,
        viewer: Optional[str] = None,
        now_us: int = 0,
    ) -> dict:
        info = self.index.feed_generators.get(feed)
        if info is None:
            raise XrpcError(404, "unknown feed generator %s" % feed)
        endpoint = self._feedgen_endpoint(info)
        if endpoint is None:
            raise XrpcError(502, "feed generator has no endpoint")
        with self.telemetry.tracer.span("read.getFeed", cat="read", sample=True):
            # Refill: skeleton items can hydrate to nothing (deleted or
            # taken-down posts), so keep paging the skeleton until the
            # response holds ``limit`` posts or the skeleton runs dry —
            # callers no longer see short pages in takedown-heavy feeds.
            hydrated: list = []
            page_cursor = cursor
            while len(hydrated) < limit:
                skeleton = self.services.call(
                    endpoint,
                    "app.bsky.feed.getFeedSkeleton",
                    feed=feed,
                    limit=limit - len(hydrated),
                    cursor=page_cursor,
                    viewer=viewer,
                    now_us=now_us,
                )
                page = skeleton["feed"]
                page_cursor = skeleton.get("cursor")
                for item in page:
                    post = self._hydrate_post(item["post"])
                    if post is not None:
                        hydrated.append({"post": post})
                if page_cursor is None or not page:
                    break
            return {"feed": hydrated, "cursor": page_cursor}

    def xrpc_searchPosts(self, q: str, limit: int = 25) -> dict:
        """Token-based post search (``app.bsky.feed.searchPosts``).

        Requires the AppView to have been built with ``index_search=True``;
        multi-token queries return posts matching every token.
        """
        if not self.index_search:
            raise XrpcError(400, "search indexing is disabled on this AppView")
        from repro.services.feedgen import tokenize

        with self.telemetry.tracer.span("read.searchPosts", cat="read", sample=True):
            if self.cache_views:
                cached = self._search_pages.get((q, limit))
                if cached is not None:
                    self._m_cache_hits.inc(("search_page",))
                    return cached
            tokens = sorted(tokenize(q))
            if not tokens:
                return {"posts": []}
            candidate_lists = [self.index.search_index.get(token, []) for token in tokens]
            if any(not uris for uris in candidate_lists):
                return {"posts": []}
            result_uris = set(candidate_lists[0])
            for uris in candidate_lists[1:]:
                result_uris &= set(uris)
            # Most recent matches first, ordered by (-time_us, uri).  The
            # old code walked matches in uri order and cut at ``limit``
            # before filtering, so takedown-heavy result sets truncated
            # away live matches.
            posts_index = self.index.posts
            ordered = sorted(
                (-posts_index[uri].time_us, uri)
                for uri in result_uris
                if uri in posts_index
            )
            posts = []
            for _neg_time_us, uri in ordered:
                post = self._hydrate_post(uri)
                if post is None:
                    continue  # taken down
                posts.append(
                    {
                        "uri": post["uri"],
                        "author": post["author"],
                        "text": post["record"]["text"],
                        "likeCount": post["likeCount"],
                    }
                )
                if len(posts) >= limit:
                    break
            response = {"posts": posts}
            if self.cache_views:
                self._m_cache_misses.inc(("search_page",))
                self._search_pages[(q, limit)] = response
            return response

    def xrpc_getList(self, list_uri: str) -> dict:
        """Members of a curation list (``app.bsky.graph.getList``)."""
        members = self.index.list_members.get(list_uri)
        if members is None:
            raise XrpcError(404, "unknown list %s" % list_uri)
        return {"uri": list_uri, "items": sorted(members)}

    def xrpc_getTimeline(self, actor: str, limit: int = 50) -> dict:
        """The reverse-chronological home timeline: the ``limit`` most
        recent live posts of everyone ``actor`` follows, ordered by
        ``(-time_us, uri)`` (the client's default view).

        Served from the per-follower timeline index maintained at ingest
        when ``index_timelines`` is on; the author-scan fallback produces
        byte-identical output and stays as the reference semantics."""
        with self.telemetry.tracer.span("read.getTimeline", cat="read", sample=True):
            if self.index_timelines:
                self._m_cache_hits.inc(("timeline_index",))
                selected = self._timeline_from_index(actor, limit)
            else:
                self._m_cache_misses.inc(("timeline_index",))
                selected = self._timeline_from_scan(actor, limit)
            feed = []
            for uri in selected:
                post = self._hydrate_post(uri)
                if post is not None:
                    feed.append({"post": post})
            return {"feed": feed}

    def _timeline_from_index(self, actor: str, limit: int) -> list:
        """Walk the (time-ascending) timeline index backwards, reversing
        each equal-``time_us`` tie group so the result is ordered by
        ``(-time_us, uri)``.  Deleted posts never appear (the index is
        maintained at ingest); takedowns are filtered here because they
        are reversible labels, not index removals."""
        timeline = self._timelines.get(actor, ())
        selected: list = []
        i = len(timeline) - 1
        while i >= 0 and len(selected) < limit:
            time_us = timeline[i][0]
            j = i
            while j >= 0 and timeline[j][0] == time_us:
                j -= 1
            for k in range(j + 1, i + 1):
                uri = timeline[k][1]
                if uri not in self._takedowns:
                    selected.append(uri)
            i = j
        return selected[:limit]

    def _timeline_from_scan(self, actor: str, limit: int) -> list:
        """Reference implementation: scan every followed author.  Live
        posts are filtered *before* the per-author ``[-limit:]`` cut (a
        taken-down post must not push a live one out of the window) and
        authors are visited in sorted order so ties resolve identically
        under any hash seed."""
        followed = self.index.following.get(actor, set())
        posts = self.index.posts
        candidates: list = []
        for did in sorted(followed):
            live = [
                uri
                for uri in self.index.posts_by_author.get(did, ())
                if uri in posts and uri not in self._takedowns
            ]
            for uri in live[-limit:]:
                candidates.append((-posts[uri].time_us, uri))
        candidates.sort()
        return [uri for _neg_time_us, uri in candidates[:limit]]

    def xrpc_getProfile(self, actor: str) -> dict:
        with self.telemetry.tracer.span("read.getProfile", cat="read", sample=True):
            if self.cache_views:
                cached = self._profile_views.get(actor)
                if cached is not None:
                    self._m_cache_hits.inc(("profile_view",))
                    return dict(cached)
                self._m_cache_misses.inc(("profile_view",))
            profile = self.index.profiles.get(actor, {})
            view = {
                "did": actor,
                "handle": self.index.handles.get(actor, ""),
                "displayName": profile.get("displayName", ""),
                "description": profile.get("description", ""),
                "followersCount": self.index.follower_counts.get(actor, 0),
                "followsCount": self.index.following_counts.get(actor, 0),
            }
            if self.cache_views:
                self._profile_views[actor] = view
                return dict(view)
            return view

"""The AppView — the global index behind the Bluesky application.

Consumes the Firehose, stores everything in query-friendly indexes, pulls
labels from every known Labeler, and serves the public API the paper's
Feed-Generator collectors use (``getFeedGenerator`` / ``getFeed``).  There
is exactly one AppView, operated by Bluesky PBC — one of the two
centralised choke points the discussion section calls out (the other being
the Relay).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.atproto.events import CommitEvent, FirehoseEvent, HandleEvent, TombstoneEvent
from repro.atproto.lexicon import (
    BLOCK,
    FEED_GENERATOR,
    FOLLOW,
    LABELER_SERVICE,
    LIKE,
    POST,
    PROFILE,
    REPOST,
)
from repro.identity.resolver import DidResolver
from repro.services.labeler import Label, LabelerService
from repro.services.relay import Relay
from repro.services.xrpc import ServiceDirectory, XrpcError, XrpcService


@dataclass
class PostView:
    """Indexed representation of one post."""

    uri: str
    author: str
    time_us: int
    text: str
    langs: tuple[str, ...]
    created_at: str
    has_media: bool = False
    reply_to: Optional[str] = None


@dataclass
class FeedGeneratorInfo:
    """Indexed representation of one app.bsky.feed.generator record."""

    uri: str
    creator: str
    service_did: str
    display_name: str
    description: str
    created_at: str
    time_us: int = 0


@dataclass
class _Indexes:
    posts: dict[str, PostView] = field(default_factory=dict)
    like_counts: Counter = field(default_factory=Counter)
    repost_counts: Counter = field(default_factory=Counter)
    follower_counts: Counter = field(default_factory=Counter)
    following_counts: Counter = field(default_factory=Counter)
    block_counts: Counter = field(default_factory=Counter)
    like_subject_by_path: dict[str, str] = field(default_factory=dict)
    follow_subject_by_path: dict[str, str] = field(default_factory=dict)
    following: dict[str, set] = field(default_factory=dict)  # did -> followed dids
    posts_by_author: dict[str, list] = field(default_factory=dict)  # did -> [uri]
    profiles: dict[str, dict] = field(default_factory=dict)
    feed_generators: dict[str, FeedGeneratorInfo] = field(default_factory=dict)
    labeler_services: dict[str, dict] = field(default_factory=dict)
    handles: dict[str, str] = field(default_factory=dict)
    # token -> post uris, for app.bsky.feed.searchPosts
    search_index: dict[str, list] = field(default_factory=dict)
    # list uri -> member dids (app.bsky.graph.list / listitem)
    list_members: dict[str, set] = field(default_factory=dict)
    non_bsky_records: int = 0


class AppView(XrpcService):
    """The single global AppView."""

    def __init__(
        self,
        url: str,
        resolver: DidResolver,
        services: ServiceDirectory,
        official_labeler_did: Optional[str] = None,
        index_posts: bool = True,
        index_search: bool = False,
    ):
        self.url = url.rstrip("/")
        self.resolver = resolver
        self.services = services
        self.official_labeler_did = official_labeler_did
        self.index_posts = index_posts
        self.index_search = index_search
        self.index = _Indexes()
        self._labelers: dict[str, LabelerService] = {}
        self._label_cursors: dict[str, int] = {}
        self._labels: list[Label] = []
        self._labels_by_subject: dict[str, list[Label]] = {}
        self._takedowns: set[str] = set()
        self.events_consumed = 0

    # -- firehose ingestion ---------------------------------------------------

    def attach(self, relay: Relay) -> None:
        """Subscribe to the relay's firehose for live indexing."""
        relay.firehose.subscribe(self.consume_event)

    def consume_event(self, event: FirehoseEvent) -> None:
        self.events_consumed += 1
        if isinstance(event, CommitEvent):
            for op in event.ops:
                self._consume_op(event.did, event.time_us, op)
        elif isinstance(event, HandleEvent):
            self.index.handles[event.did] = event.handle
        elif isinstance(event, TombstoneEvent):
            self._remove_account(event.did)

    def _consume_op(self, did: str, time_us: int, op) -> None:
        collection = op.collection
        uri = "at://%s/%s" % (did, op.path)
        if op.action == "delete":
            self._consume_delete(did, uri, collection, op.path)
            return
        record = op.record or {}
        if collection == POST:
            if self.index_posts:
                embed = record.get("embed") or {}
                self.index.posts[uri] = PostView(
                    uri=uri,
                    author=did,
                    time_us=time_us,
                    text=record.get("text", ""),
                    langs=tuple(record.get("langs") or ()),
                    created_at=record.get("createdAt", ""),
                    has_media="images" in embed or "video" in embed,
                    reply_to=(record.get("reply") or {}).get("parent", {}).get("uri"),
                )
                self.index.posts_by_author.setdefault(did, []).append(uri)
                if self.index_search:
                    from repro.services.feedgen import tokenize

                    for token in tokenize(record.get("text", "")):
                        self.index.search_index.setdefault(token, []).append(uri)
        elif collection == LIKE:
            subject = (record.get("subject") or {}).get("uri")
            if subject:
                self.index.like_counts[subject] += 1
                self.index.like_subject_by_path[did + "|" + op.path] = subject
        elif collection == REPOST:
            subject = (record.get("subject") or {}).get("uri")
            if subject:
                self.index.repost_counts[subject] += 1
        elif collection == FOLLOW:
            subject = record.get("subject")
            if subject:
                self.index.follower_counts[subject] += 1
                self.index.following_counts[did] += 1
                self.index.follow_subject_by_path[did + "|" + op.path] = subject
                self.index.following.setdefault(did, set()).add(subject)
        elif collection == BLOCK:
            subject = record.get("subject")
            if subject:
                self.index.block_counts[subject] += 1
        elif collection == PROFILE:
            self.index.profiles[did] = record
        elif collection == "app.bsky.graph.listitem":
            list_uri = record.get("list")
            member = record.get("subject")
            if list_uri and member:
                self.index.list_members.setdefault(list_uri, set()).add(member)
        elif collection == FEED_GENERATOR:
            self.index.feed_generators[uri] = FeedGeneratorInfo(
                uri=uri,
                creator=did,
                service_did=record.get("did", ""),
                display_name=record.get("displayName", ""),
                description=record.get("description", ""),
                created_at=record.get("createdAt", ""),
                time_us=time_us,
            )
        elif collection == LABELER_SERVICE:
            self.index.labeler_services[did] = record
        elif not collection.startswith("app.bsky.") and not collection.startswith("chat.bsky."):
            # Records the Bluesky AppView cannot decode (Section 4,
            # "Non-Bluesky content") — counted, not indexed.
            self.index.non_bsky_records += 1

    def _consume_delete(self, did: str, uri: str, collection: str, path: str) -> None:
        if collection == POST:
            self.index.posts.pop(uri, None)
        elif collection == LIKE:
            subject = self.index.like_subject_by_path.pop(did + "|" + path, None)
            if subject:
                self.index.like_counts[subject] -= 1
        elif collection == FOLLOW:
            subject = self.index.follow_subject_by_path.pop(did + "|" + path, None)
            if subject:
                self.index.follower_counts[subject] -= 1
                self.index.following_counts[did] -= 1
                self.index.following.get(did, set()).discard(subject)
        elif collection == FEED_GENERATOR:
            self.index.feed_generators.pop(uri, None)
        elif collection == LABELER_SERVICE:
            self.index.labeler_services.pop(did, None)

    def _remove_account(self, did: str) -> None:
        self.index.profiles.pop(did, None)
        self.index.handles.pop(did, None)
        self.index.labeler_services.pop(did, None)

    # -- label aggregation ---------------------------------------------------------

    def add_labeler(self, labeler: LabelerService) -> None:
        """Start aggregating a labeler's stream (the AppView subscribes to
        *all* known labelers and must store all labels — the scalability
        concern raised in Section 6.1)."""
        self._labelers[labeler.did] = labeler
        self._label_cursors.setdefault(labeler.did, 0)

    def sync_labels(self) -> int:
        """Pull new labels from every registered labeler; returns count."""
        pulled = 0
        for did, labeler in self._labelers.items():
            cursor = self._label_cursors[did]
            for label in labeler.xrpc_subscribeLabels(cursor=cursor):
                self._ingest_label(label)
                cursor = label.seq
                pulled += 1
            self._label_cursors[did] = cursor
        return pulled

    def _ingest_label(self, label: Label) -> None:
        self._labels.append(label)
        self._labels_by_subject.setdefault(label.uri, []).append(label)
        if label.val == "!takedown" and label.src == self.official_labeler_did:
            if label.neg:
                self._takedowns.discard(label.uri)
            else:
                self._takedowns.add(label.uri)

    def labels_for(self, uri: str) -> list[Label]:
        """Currently applied (non-negated) labels for a subject."""
        applied: dict[tuple[str, str], Label] = {}
        for label in self._labels_by_subject.get(uri, ()):
            key = (label.src, label.val)
            if label.neg:
                applied.pop(key, None)
            else:
                applied[key] = label
        return list(applied.values())

    def label_count(self) -> int:
        return len(self._labels)

    def is_taken_down(self, uri: str) -> bool:
        return uri in self._takedowns

    # -- public API -------------------------------------------------------------

    def xrpc_getFeedGenerator(self, feed: str) -> dict:
        info = self.index.feed_generators.get(feed)
        if info is None:
            raise XrpcError(404, "unknown feed generator %s" % feed)
        endpoint = self._feedgen_endpoint(info)
        is_online = endpoint is not None and self.services.is_reachable(endpoint)
        is_valid = False
        if is_online:
            description = self.services.try_call(endpoint, "app.bsky.feed.describeFeedGenerator")
            if description is not None:
                is_valid = any(entry["uri"] == feed for entry in description["feeds"])
        return {
            "view": {
                "uri": info.uri,
                "creator": info.creator,
                "did": info.service_did,
                "displayName": info.display_name,
                "description": info.description,
                "likeCount": self.index.like_counts.get(feed, 0),
                "indexedAt": info.created_at,
            },
            "isOnline": is_online,
            "isValid": is_valid,
        }

    def _feedgen_endpoint(self, info: FeedGeneratorInfo) -> Optional[str]:
        doc = self.resolver.resolve(info.service_did)
        if doc is not None:
            service = doc.service("#bsky_fg") or doc.service("#atproto_feedgen")
            if service is not None:
                return service.endpoint
        # Conventional fallback: did:web service DIDs serve from their FQDN.
        if info.service_did.startswith("did:web:"):
            return "https://" + info.service_did[len("did:web:") :]
        return None

    def xrpc_getFeed(
        self,
        feed: str,
        limit: int = 50,
        cursor: Optional[str] = None,
        viewer: Optional[str] = None,
        now_us: int = 0,
    ) -> dict:
        info = self.index.feed_generators.get(feed)
        if info is None:
            raise XrpcError(404, "unknown feed generator %s" % feed)
        endpoint = self._feedgen_endpoint(info)
        if endpoint is None:
            raise XrpcError(502, "feed generator has no endpoint")
        skeleton = self.services.call(
            endpoint,
            "app.bsky.feed.getFeedSkeleton",
            feed=feed,
            limit=limit,
            cursor=cursor,
            viewer=viewer,
            now_us=now_us,
        )
        hydrated = []
        for item in skeleton["feed"]:
            uri = item["post"]
            if uri in self._takedowns:
                continue
            view = self.index.posts.get(uri)
            if view is None:
                continue  # post deleted or never indexed
            hydrated.append(
                {
                    "post": {
                        "uri": view.uri,
                        "author": view.author,
                        "record": {
                            "text": view.text,
                            "langs": list(view.langs),
                            "createdAt": view.created_at,
                        },
                        "likeCount": self.index.like_counts.get(uri, 0),
                        "repostCount": self.index.repost_counts.get(uri, 0),
                        "indexedAt": view.time_us,
                        "labels": [
                            {"src": l.src, "val": l.val} for l in self.labels_for(uri)
                        ],
                    }
                }
            )
        return {"feed": hydrated, "cursor": skeleton.get("cursor")}

    def xrpc_searchPosts(self, q: str, limit: int = 25) -> dict:
        """Token-based post search (``app.bsky.feed.searchPosts``).

        Requires the AppView to have been built with ``index_search=True``;
        multi-token queries return posts matching every token.
        """
        if not self.index_search:
            raise XrpcError(400, "search indexing is disabled on this AppView")
        from repro.services.feedgen import tokenize

        tokens = sorted(tokenize(q))
        if not tokens:
            return {"posts": []}
        candidate_lists = [self.index.search_index.get(token, []) for token in tokens]
        if any(not uris for uris in candidate_lists):
            return {"posts": []}
        result_uris = set(candidate_lists[0])
        for uris in candidate_lists[1:]:
            result_uris &= set(uris)
        posts = []
        for uri in sorted(result_uris):
            view = self.index.posts.get(uri)
            if view is None or uri in self._takedowns:
                continue
            posts.append(
                {
                    "uri": view.uri,
                    "author": view.author,
                    "text": view.text,
                    "likeCount": self.index.like_counts.get(uri, 0),
                }
            )
            if len(posts) >= limit:
                break
        return {"posts": posts}

    def xrpc_getList(self, list_uri: str) -> dict:
        """Members of a curation list (``app.bsky.graph.getList``)."""
        members = self.index.list_members.get(list_uri)
        if members is None:
            raise XrpcError(404, "unknown list %s" % list_uri)
        return {"uri": list_uri, "items": sorted(members)}

    def xrpc_getTimeline(self, actor: str, limit: int = 50) -> dict:
        """The reverse-chronological home timeline: the latest posts of
        everyone ``actor`` follows (the client's default view)."""
        followed = self.index.following.get(actor, set())
        candidates: list[PostView] = []
        for did in followed:
            for uri in reversed(self.index.posts_by_author.get(did, ())[-limit:]):
                view = self.index.posts.get(uri)
                if view is not None and uri not in self._takedowns:
                    candidates.append(view)
        candidates.sort(key=lambda view: -view.time_us)
        feed = []
        for view in candidates[:limit]:
            feed.append(
                {
                    "post": {
                        "uri": view.uri,
                        "author": view.author,
                        "record": {
                            "text": view.text,
                            "langs": list(view.langs),
                            "createdAt": view.created_at,
                        },
                        "likeCount": self.index.like_counts.get(view.uri, 0),
                        "repostCount": self.index.repost_counts.get(view.uri, 0),
                        "indexedAt": view.time_us,
                        "labels": [
                            {"src": l.src, "val": l.val} for l in self.labels_for(view.uri)
                        ],
                    }
                }
            )
        return {"feed": feed}

    def xrpc_getProfile(self, actor: str) -> dict:
        profile = self.index.profiles.get(actor, {})
        return {
            "did": actor,
            "handle": self.index.handles.get(actor, ""),
            "displayName": profile.get("displayName", ""),
            "description": profile.get("description", ""),
            "followersCount": self.index.follower_counts.get(actor, 0),
            "followsCount": self.index.following_counts.get(actor, 0),
        }

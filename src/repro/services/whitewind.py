"""An alternative AppView: WhiteWind long-form blogging.

Section 4 of the paper observes records on the firehose that Bluesky
cannot decode — most prominently ``com.whtwnd.blog.entry``, the record
type of the WhiteWind blogging application, which reuses the Bluesky
infrastructure (PDS storage, the Relay's firehose) with its own AppView
and frontend.  This module implements that AppView: it consumes the same
firehose, ignores everything except WhiteWind entries, and serves blog
listings — demonstrating the AT Protocol's application-neutral base layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atproto.events import CommitEvent, FirehoseEvent
from repro.atproto.lexicon import WHTWND_ENTRY
from repro.services.relay import Relay
from repro.services.xrpc import XrpcError, XrpcService


@dataclass
class BlogEntryView:
    uri: str
    author: str
    title: str
    content: str
    time_us: int
    visibility: str = "public"


class WhiteWindAppView(XrpcService):
    """Indexes ``com.whtwnd.blog.entry`` records from the shared firehose."""

    def __init__(self, url: str = "https://whtwnd.example"):
        self.url = url.rstrip("/")
        self._entries: dict[str, BlogEntryView] = {}
        self.events_seen = 0
        self.foreign_records_ignored = 0

    def attach(self, relay: Relay) -> None:
        relay.firehose.subscribe(self.consume_event)

    def consume_event(self, event: FirehoseEvent) -> None:
        self.events_seen += 1
        if not isinstance(event, CommitEvent):
            return
        for op in event.ops:
            uri = "at://%s/%s" % (event.did, op.path)
            if op.collection != WHTWND_ENTRY:
                if op.action == "create":
                    self.foreign_records_ignored += 1
                continue
            if op.action == "delete":
                self._entries.pop(uri, None)
                continue
            record = op.record or {}
            self._entries[uri] = BlogEntryView(
                uri=uri,
                author=event.did,
                title=record.get("title", ""),
                content=record.get("content", ""),
                time_us=event.time_us,
                visibility=record.get("visibility", "public"),
            )

    def entry_count(self) -> int:
        return len(self._entries)

    # -- public API -------------------------------------------------------------

    def xrpc_getEntry(self, uri: str) -> dict:
        entry = self._entries.get(uri)
        if entry is None:
            raise XrpcError(404, "unknown blog entry %s" % uri)
        return {
            "uri": entry.uri,
            "author": entry.author,
            "title": entry.title,
            "content": entry.content,
        }

    def xrpc_listEntries(
        self, author: Optional[str] = None, limit: int = 50
    ) -> dict:
        entries = [
            e
            for e in self._entries.values()
            if (author is None or e.author == author) and e.visibility == "public"
        ]
        entries.sort(key=lambda e: -e.time_us)
        return {
            "entries": [
                {"uri": e.uri, "author": e.author, "title": e.title} for e in entries[:limit]
            ]
        }

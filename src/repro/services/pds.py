"""Personal Data Servers.

A PDS hosts user repositories and (privately) user preferences.  Bluesky
PBC operates the default PDSes; since early 2024 anyone can self-host one
and federate.  The PDS exposes the ``com.atproto.sync.*`` read interface a
Relay crawls, plus account/record management used by clients, and forwards
every commit to the relays that subscribed to it.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.atproto.blobs import BlobStore, extract_blob_refs
from repro.atproto.cid import Cid
from repro.atproto.keys import Keypair
from repro.atproto.lexicon import LexiconRegistry, default_registry
from repro.atproto.repo import CommitMeta, Repo, WriteOp
from repro.services.xrpc import XrpcError, XrpcService


class PdsError(Exception):
    """Raised on invalid PDS operations."""


class Pds(XrpcService):
    """One Personal Data Server hosting many repositories."""

    def __init__(
        self,
        url: str,
        operator: str = "bsky",
        lexicons: Optional[LexiconRegistry] = None,
    ):
        self.url = url.rstrip("/")
        self.operator = operator
        self.lexicons = lexicons if lexicons is not None else default_registry()
        self._repos: dict[str, Repo] = {}
        self._preferences: dict[str, dict] = {}
        self.blobs = BlobStore()
        self._commit_listeners: list[Callable[[str, CommitMeta], None]] = []
        self._tombstone_listeners: list[Callable[[str, int], None]] = []
        self._next_clock_id = 0
        # did -> (head CID string, rev) for repos whose writes happen in
        # another process (the sharded engine's replica worlds).  The
        # relay feeds published heads back here so this PDS's sync
        # surface stays truthful even though the local Repo object holds
        # no records — without it, membership checks against
        # ``listRepos`` would wrongly quarantine every hosted DID.
        self._remote_heads: dict[str, tuple[str, str]] = {}

    # -- account lifecycle -----------------------------------------------------

    def create_account(self, did: str, keypair: Keypair) -> Repo:
        if did in self._repos:
            raise PdsError("account %s already exists on this PDS" % did)
        repo = Repo(did, keypair, clock_id=self._next_clock_id % 1024)
        self._next_clock_id += 1
        self._repos[did] = repo
        return repo

    def import_repo(self, repo: Repo) -> None:
        """Account migration: adopt an existing repository object."""
        if repo.did in self._repos:
            raise PdsError("account %s already exists on this PDS" % repo.did)
        self._repos[repo.did] = repo

    def import_account_car(self, car: bytes, keypair: Keypair, now_us: int) -> Repo:
        """Account migration over the wire: ingest a repo CAR export.

        Verifies the commit signature against the supplied keypair,
        rebuilds the repository, and replays all records as one signed
        migration commit (which also announces the new hosting location
        to subscribed relays).
        """
        from repro.atproto.repo import import_car

        snapshot = import_car(car, verify_key=keypair.public_key)
        if snapshot.did in self._repos:
            raise PdsError("account %s already exists on this PDS" % snapshot.did)
        repo = Repo(snapshot.did, keypair, clock_id=self._next_clock_id % 1024)
        self._next_clock_id += 1
        self._repos[snapshot.did] = repo
        writes = []
        for path, record in snapshot.list_records():
            collection, _, rkey = path.partition("/")
            writes.append(WriteOp("create", collection, rkey, record))
        if writes:
            meta = repo.apply_writes(writes, now_us)
            self._notify(snapshot.did, meta)
        return repo

    def remove_account(self, did: str, now_us: int) -> None:
        """Delete an account (emits a tombstone to subscribed relays)."""
        if did not in self._repos:
            raise PdsError("unknown account %s" % did)
        del self._repos[did]
        self._preferences.pop(did, None)
        for listener in self._tombstone_listeners:
            listener(did, now_us)

    def has_account(self, did: str) -> bool:
        return did in self._repos

    def repo(self, did: str) -> Repo:
        repo = self._repos.get(did)
        if repo is None:
            raise PdsError("unknown account %s" % did)
        return repo

    def dids(self) -> list[str]:
        return list(self._repos)

    def repo_count(self) -> int:
        return len(self._repos)

    # -- record writes ------------------------------------------------------------

    def upload_blob(self, did: str, data: bytes, mime_type: str):
        """Store media bytes; the returned ref is embedded in a record."""
        if did not in self._repos:
            raise PdsError("unknown account %s" % did)
        return self.blobs.upload(data, mime_type)

    def create_record(
        self,
        did: str,
        collection: str,
        record: dict,
        now_us: int,
        rkey: Optional[str] = None,
        validate: bool = True,
    ) -> CommitMeta:
        if validate:
            self.lexicons.validate(collection, record)
        self._reference_blobs(record)
        meta = self.repo(did).create_record(collection, record, now_us, rkey=rkey)
        self._notify(did, meta)
        return meta

    def update_record(
        self, did: str, collection: str, rkey: str, record: dict, now_us: int
    ) -> CommitMeta:
        self.lexicons.validate(collection, record)
        old = self.repo(did).get_record(collection, rkey)
        self._reference_blobs(record)
        meta = self.repo(did).update_record(collection, rkey, record, now_us)
        if old is not None:
            self._release_blobs(old)
        self._notify(did, meta)
        return meta

    def delete_record(self, did: str, collection: str, rkey: str, now_us: int) -> CommitMeta:
        old = self.repo(did).get_record(collection, rkey)
        meta = self.repo(did).delete_record(collection, rkey, now_us)
        if old is not None:
            self._release_blobs(old)
        self._notify(did, meta)
        return meta

    def _reference_blobs(self, record: dict) -> None:
        for ref in extract_blob_refs(record):
            if self.blobs.has(ref.cid):
                self.blobs.add_ref(ref.cid)

    def _release_blobs(self, record: dict) -> None:
        for ref in extract_blob_refs(record):
            self.blobs.release(ref.cid)

    def apply_writes(self, did: str, writes: list[WriteOp], now_us: int) -> CommitMeta:
        for write in writes:
            if write.record is not None:
                self.lexicons.validate(write.collection, write.record)
        meta = self.repo(did).apply_writes(writes, now_us)
        self._notify(did, meta)
        return meta

    def _notify(self, did: str, meta: CommitMeta) -> None:
        for listener in self._commit_listeners:
            listener(did, meta)

    # -- preferences (non-public; Section 2 "User Preferences") -------------------

    def put_preferences(self, did: str, preferences: dict) -> None:
        if did not in self._repos:
            raise PdsError("unknown account %s" % did)
        self._preferences[did] = dict(preferences)

    def get_preferences(self, did: str, authenticated_as: str) -> dict:
        """Preferences are only visible to the authenticated owner."""
        if authenticated_as != did:
            raise PdsError("preferences are private to their owner")
        return dict(self._preferences.get(did, {}))

    # -- subscriptions -------------------------------------------------------------

    def on_commit(self, listener: Callable[[str, CommitMeta], None]) -> None:
        self._commit_listeners.append(listener)

    def on_tombstone(self, listener: Callable[[str, int], None]) -> None:
        self._tombstone_listeners.append(listener)

    # -- remote heads (sharded mode) -----------------------------------------------

    def note_remote_head(self, did: str, head: str, rev: str) -> None:
        """Record the head of a repo written in another process."""
        self._remote_heads[did] = (head, rev)

    def drop_remote_head(self, did: str) -> None:
        self._remote_heads.pop(did, None)

    # -- XRPC surface ----------------------------------------------------------------

    def xrpc_listRepos(self, cursor: Optional[str] = None, limit: int = 500) -> dict:
        # bisect, not .index(): the cursor DID may have been deleted between
        # pages, and pagination must continue from its sort position rather
        # than silently ending the crawl (see Relay.xrpc_listRepos).
        from bisect import bisect_right

        dids = sorted(self._repos)
        start = bisect_right(dids, cursor) if cursor is not None else 0
        page = dids[start : start + limit]
        repos = []
        for did in page:
            repo = self._repos[did]
            if repo.head is not None:
                repos.append({"did": did, "head": str(repo.head), "rev": repo.rev})
            elif did in self._remote_heads:
                head, rev = self._remote_heads[did]
                repos.append({"did": did, "head": head, "rev": rev})
        next_cursor = page[-1] if len(page) == limit else None
        return {"repos": repos, "cursor": next_cursor}

    def xrpc_getRepo(self, did: str) -> bytes:
        repo = self._repos.get(did)
        if repo is None:
            raise XrpcError(404, "repo %s not found" % did)
        if repo.head is None:
            raise XrpcError(404, "repo %s has no commits" % did)
        return repo.export_car()

    def xrpc_getBlob(self, did: str, cid: str) -> bytes:
        """Serve media bytes (``com.atproto.sync.getBlob``)."""
        if did not in self._repos:
            raise XrpcError(404, "unknown account %s" % did)
        from repro.atproto.blobs import BlobError

        try:
            return self.blobs.get(Cid.parse(cid) if isinstance(cid, str) else cid)
        except (BlobError, ValueError) as exc:
            raise XrpcError(404, str(exc)) from exc

    def xrpc_getRecord(self, did: str, collection: str, rkey: str) -> dict:
        repo = self._repos.get(did)
        if repo is None:
            raise XrpcError(404, "repo %s not found" % did)
        record = repo.get_record(collection, rkey)
        if record is None:
            raise XrpcError(404, "record not found")
        return {
            "uri": "at://%s/%s/%s" % (did, collection, rkey),
            "cid": str(repo.get_record_cid(collection, rkey)),
            "value": record,
        }

    def xrpc_listRecords(
        self, did: str, collection: str, limit: int = 100, cursor: Optional[str] = None
    ) -> dict:
        repo = self._repos.get(did)
        if repo is None:
            raise XrpcError(404, "repo %s not found" % did)
        records = []
        started = cursor is None
        next_cursor = None
        for path, record in repo.list_records(collection):
            rkey = path.split("/", 1)[1]
            if not started:
                if rkey == cursor:
                    started = True
                continue
            if len(records) == limit:
                next_cursor = records[-1]["rkey"]
                break
            records.append(
                {
                    "uri": "at://%s/%s" % (did, path),
                    "rkey": rkey,
                    "value": record,
                }
            )
        return {"records": records, "cursor": next_cursor}

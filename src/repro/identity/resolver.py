"""Unified DID resolution across the two supported methods.

``did:plc`` documents come from the (centralised) PLC directory;
``did:web`` documents from ``https://<fqdn>/.well-known/did.json``.
The resolver also exposes the bulk-download entry point the DID-document
collector uses for its weekly snapshot.
"""

from __future__ import annotations

from typing import Optional

from repro.identity.did import DidDocument, DidError, did_method, did_web_to_fqdn
from repro.identity.plc import PlcDirectory
from repro.netsim.web import WELL_KNOWN_DID_JSON, WebHostRegistry


class DidResolver:
    """Resolves any supported DID to its document."""

    def __init__(self, plc: PlcDirectory, web: WebHostRegistry):
        self.plc = plc
        self.web = web
        self.resolution_count = 0

    def resolve(self, did: str) -> Optional[DidDocument]:
        self.resolution_count += 1
        try:
            method = did_method(did)
        except DidError:
            return None
        if method == "plc":
            return self.plc.resolve(did)
        if method == "web":
            return self._resolve_web(did)
        return None

    def _resolve_web(self, did: str) -> Optional[DidDocument]:
        fqdn = did_web_to_fqdn(did)
        body = self.web.try_get(fqdn, WELL_KNOWN_DID_JSON)
        if body is None:
            return None
        import json

        try:
            doc = DidDocument.from_json(json.loads(body))
        except (ValueError, KeyError):
            return None
        if doc.did != did:
            return None  # document must self-identify
        return doc


def publish_did_web_document(web: WebHostRegistry, doc: DidDocument) -> None:
    """Host a did:web document at its well-known location."""
    fqdn = did_web_to_fqdn(doc.did)
    web.serve_json(fqdn, WELL_KNOWN_DID_JSON, doc.to_json())

"""DIDs and DID documents.

A DID document carries everything needed to interact with an account:

* ``alsoKnownAs`` — the handle, as an ``at://`` URI,
* ``verificationMethod`` — the atproto signing key (did:key form),
* ``service`` — endpoints, notably the PDS (``#atproto_pds``) and, for
  labeler accounts, the labeler endpoint (``#atproto_labeler``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

_DID_RE = re.compile(r"^did:(plc|web|key):[a-zA-Z0-9._:%-]+$")
_PLC_SUFFIX_RE = re.compile(r"^[a-z2-7]{24}$")

PDS_SERVICE_ID = "#atproto_pds"
LABELER_SERVICE_ID = "#atproto_labeler"


class DidError(ValueError):
    """Raised on malformed DIDs or documents."""


def is_valid_did(did: str) -> bool:
    """Syntactic check for the DID methods this codebase recognises."""
    if not _DID_RE.match(did):
        return False
    if did.startswith("did:plc:"):
        return bool(_PLC_SUFFIX_RE.match(did[len("did:plc:") :]))
    return True


def did_method(did: str) -> str:
    if not is_valid_did(did):
        raise DidError("invalid DID %r" % did)
    return did.split(":", 2)[1]


def did_web_to_fqdn(did: str) -> str:
    """Extract the FQDN of a did:web (percent-decoded, lowercase)."""
    if not did.startswith("did:web:"):
        raise DidError("not a did:web: %r" % did)
    body = did[len("did:web:") :]
    # did:web allows path components separated by ':'; Bluesky only uses the
    # bare-domain form, and the paper only observed those.
    if ":" in body:
        raise DidError("did:web with path components is not supported")
    return body.replace("%3A", ":").lower()


@dataclass(frozen=True)
class ServiceEndpoint:
    """One ``service`` entry in a DID document."""

    id: str  # fragment, e.g. "#atproto_pds"
    type: str  # e.g. "AtprotoPersonalDataServer"
    endpoint: str  # URL


@dataclass
class DidDocument:
    """A DID document, as served by plc.directory or a did:web host."""

    did: str
    handle: Optional[str] = None
    signing_key: Optional[str] = None  # did:key form
    rotation_keys: tuple[str, ...] = ()
    services: list[ServiceEndpoint] = field(default_factory=list)

    def __post_init__(self):
        if not is_valid_did(self.did):
            raise DidError("invalid DID %r" % self.did)

    @property
    def also_known_as(self) -> list[str]:
        return ["at://" + self.handle] if self.handle else []

    def service(self, service_id: str) -> Optional[ServiceEndpoint]:
        for entry in self.services:
            if entry.id == service_id:
                return entry
        return None

    @property
    def pds_endpoint(self) -> Optional[str]:
        entry = self.service(PDS_SERVICE_ID)
        return entry.endpoint if entry else None

    @property
    def labeler_endpoint(self) -> Optional[str]:
        entry = self.service(LABELER_SERVICE_ID)
        return entry.endpoint if entry else None

    def set_service(self, service: ServiceEndpoint) -> None:
        self.services = [s for s in self.services if s.id != service.id]
        self.services.append(service)

    def to_json(self) -> dict:
        """Render in the W3C DID-document JSON shape."""
        doc: dict = {
            "@context": [
                "https://www.w3.org/ns/did/v1",
                "https://w3id.org/security/multikey/v1",
            ],
            "id": self.did,
            "alsoKnownAs": self.also_known_as,
            "verificationMethod": [],
            "service": [
                {
                    "id": self.did + entry.id,
                    "type": entry.type,
                    "serviceEndpoint": entry.endpoint,
                }
                for entry in self.services
            ],
        }
        if self.signing_key:
            doc["verificationMethod"].append(
                {
                    "id": self.did + "#atproto",
                    "type": "Multikey",
                    "controller": self.did,
                    "publicKeyMultibase": self.signing_key.rsplit(":", 1)[-1],
                }
            )
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "DidDocument":
        did = doc.get("id")
        if not isinstance(did, str):
            raise DidError("DID document missing id")
        handle = None
        for alias in doc.get("alsoKnownAs", []):
            if isinstance(alias, str) and alias.startswith("at://"):
                handle = alias[len("at://") :]
                break
        signing_key = None
        methods = doc.get("verificationMethod") or []
        if methods:
            multibase = methods[0].get("publicKeyMultibase")
            if multibase:
                signing_key = "did:key:" + multibase
        services = []
        for entry in doc.get("service", []):
            fragment = entry["id"]
            if fragment.startswith(did):
                fragment = fragment[len(did) :]
            services.append(
                ServiceEndpoint(fragment, entry.get("type", ""), entry["serviceEndpoint"])
            )
        return cls(did=did, handle=handle, signing_key=signing_key, services=services)

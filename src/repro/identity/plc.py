"""The PLC directory (``plc.directory``).

``did:plc`` identifiers are derived from their *genesis operation*: the DID
suffix is the first 24 characters of the base32-encoded SHA-256 of the
signed genesis operation.  Every later change (new handle, new PDS, new
keys) is a new signed operation appended to the DID's audit log; tombstone
operations deactivate the account.  Bluesky PBC operates the single public
directory, which is exactly the centralization the paper studies.

Operations are signed by a *rotation key*; the directory verifies that each
update is signed by a rotation key listed in the previous operation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.atproto.cbor import cbor_encode
from repro.atproto.keys import Keypair, public_key_from_did_key
from repro.atproto.multibase import base32_encode
from repro.identity.did import (
    LABELER_SERVICE_ID,
    PDS_SERVICE_ID,
    DidDocument,
    ServiceEndpoint,
)


class PlcError(ValueError):
    """Raised on invalid PLC operations."""


@dataclass
class PlcOperation:
    """One signed operation in a DID's audit log."""

    type: str  # "plc_operation" | "plc_tombstone"
    rotation_keys: tuple[str, ...]
    verification_methods: dict  # {"atproto": did:key}
    also_known_as: tuple[str, ...]
    services: dict  # {"atproto_pds": {"type":..., "endpoint":...}, ...}
    prev: Optional[str]  # CID-ish hash of previous op, None for genesis
    sig: bytes = b""

    def unsigned_payload(self) -> dict:
        return {
            "type": self.type,
            "rotationKeys": list(self.rotation_keys),
            "verificationMethods": dict(self.verification_methods),
            "alsoKnownAs": list(self.also_known_as),
            "services": {k: dict(v) for k, v in self.services.items()},
            "prev": self.prev,
        }

    def signed_bytes(self) -> bytes:
        payload = self.unsigned_payload()
        payload["sig"] = self.sig
        return cbor_encode(payload)

    def op_hash(self) -> str:
        """Base32 sha256 of the signed operation (used for prev links)."""
        return base32_encode(hashlib.sha256(self.signed_bytes()).digest())


def sign_operation(op: PlcOperation, rotation_keypair: Keypair) -> PlcOperation:
    op.sig = rotation_keypair.sign(cbor_encode(op.unsigned_payload()))
    return op


def did_for_genesis(op: PlcOperation) -> str:
    """Derive the did:plc from the genesis operation's hash."""
    digest = hashlib.sha256(op.signed_bytes()).digest()
    return "did:plc:" + base32_encode(digest)[:24]


@dataclass
class _PlcEntry:
    operations: list = field(default_factory=list)
    tombstoned: bool = False


class PlcDirectory:
    """The central did:plc registry with audit logs and document export."""

    def __init__(self):
        self._entries: dict[str, _PlcEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, did: str) -> bool:
        return did in self._entries

    # -- writes ---------------------------------------------------------------

    def create(
        self,
        rotation_keypair: Keypair,
        signing_key: str,
        handle: str,
        pds_endpoint: str,
        extra_services: Optional[dict] = None,
    ) -> str:
        """Register a new did:plc; returns the DID."""
        services = {
            "atproto_pds": {
                "type": "AtprotoPersonalDataServer",
                "endpoint": pds_endpoint,
            }
        }
        if extra_services:
            services.update(extra_services)
        op = PlcOperation(
            type="plc_operation",
            rotation_keys=(rotation_keypair.did_key(),),
            verification_methods={"atproto": signing_key},
            also_known_as=("at://" + handle,),
            services=services,
            prev=None,
        )
        sign_operation(op, rotation_keypair)
        did = did_for_genesis(op)
        if did in self._entries:
            raise PlcError("DID already registered: %s" % did)
        self._entries[did] = _PlcEntry(operations=[op])
        return did

    def update(
        self,
        did: str,
        rotation_keypair: Keypair,
        handle: Optional[str] = None,
        pds_endpoint: Optional[str] = None,
        signing_key: Optional[str] = None,
        labeler_endpoint: Optional[str] = None,
    ) -> PlcOperation:
        """Append an update operation, signed by a current rotation key."""
        entry = self._require(did)
        last = entry.operations[-1]
        if last.type == "plc_tombstone":
            raise PlcError("cannot update a tombstoned DID")
        services = {k: dict(v) for k, v in last.services.items()}
        if pds_endpoint is not None:
            services["atproto_pds"] = {
                "type": "AtprotoPersonalDataServer",
                "endpoint": pds_endpoint,
            }
        if labeler_endpoint is not None:
            services["atproto_labeler"] = {
                "type": "AtprotoLabeler",
                "endpoint": labeler_endpoint,
            }
        methods = dict(last.verification_methods)
        if signing_key is not None:
            methods["atproto"] = signing_key
        aka = ("at://" + handle,) if handle is not None else last.also_known_as
        op = PlcOperation(
            type="plc_operation",
            rotation_keys=last.rotation_keys,
            verification_methods=methods,
            also_known_as=aka,
            services=services,
            prev=last.op_hash(),
        )
        sign_operation(op, rotation_keypair)
        self._verify_and_append(did, entry, op, rotation_keypair.did_key())
        return op

    def tombstone(self, did: str, rotation_keypair: Keypair) -> None:
        """Deactivate a DID (account deletion)."""
        entry = self._require(did)
        last = entry.operations[-1]
        op = PlcOperation(
            type="plc_tombstone",
            rotation_keys=(),
            verification_methods={},
            also_known_as=(),
            services={},
            prev=last.op_hash(),
        )
        sign_operation(op, rotation_keypair)
        self._verify_and_append(did, entry, op, rotation_keypair.did_key())
        entry.tombstoned = True

    def _verify_and_append(
        self, did: str, entry: _PlcEntry, op: PlcOperation, signer_did_key: str
    ) -> None:
        last = entry.operations[-1]
        if signer_did_key not in last.rotation_keys:
            raise PlcError("operation not signed by a current rotation key")
        public = public_key_from_did_key(signer_did_key)
        if not public.verify(cbor_encode(op.unsigned_payload()), op.sig):
            raise PlcError("operation signature invalid")
        if op.prev != last.op_hash():
            raise PlcError("operation prev hash does not match log head")
        entry.operations.append(op)

    # -- reads ------------------------------------------------------------------

    def _require(self, did: str) -> _PlcEntry:
        entry = self._entries.get(did)
        if entry is None:
            raise PlcError("unknown DID %s" % did)
        return entry

    def audit_log(self, did: str) -> list[PlcOperation]:
        return list(self._require(did).operations)

    def is_tombstoned(self, did: str) -> bool:
        return self._require(did).tombstoned

    def resolve(self, did: str) -> Optional[DidDocument]:
        """Export the current DID document, or None if unknown/tombstoned."""
        entry = self._entries.get(did)
        if entry is None or entry.tombstoned:
            return None
        op = entry.operations[-1]
        handle = None
        for alias in op.also_known_as:
            if alias.startswith("at://"):
                handle = alias[len("at://") :]
                break
        doc = DidDocument(
            did=did,
            handle=handle,
            signing_key=op.verification_methods.get("atproto"),
            rotation_keys=op.rotation_keys,
        )
        type_by_service = {
            "atproto_pds": (PDS_SERVICE_ID, "AtprotoPersonalDataServer"),
            "atproto_labeler": (LABELER_SERVICE_ID, "AtprotoLabeler"),
        }
        for name, info in op.services.items():
            service_id, default_type = type_by_service.get(name, ("#" + name, info.get("type", "")))
            doc.set_service(
                ServiceEndpoint(service_id, info.get("type", default_type), info["endpoint"])
            )
        return doc

    def all_dids(self) -> list[str]:
        return list(self._entries)

    def export_snapshot(self) -> dict[str, dict]:
        """Bulk export of all live DID documents (the paper's weekly crawl)."""
        out = {}
        for did in self._entries:
            doc = self.resolve(did)
            if doc is not None:
                out[did] = doc.to_json()
        return out

"""Handle ↔ DID verification.

Handles are FQDNs; ownership is proven in one of two ways (Section 2):

1. a DNS TXT record at ``_atproto.<handle>`` containing ``did=<did>``, or
2. an HTTPS file at ``https://<handle>/.well-known/atproto-did`` whose body
   is the DID.

Verification is bidirectional: the handle must resolve to the DID *and*
the DID document must list the handle in ``alsoKnownAs``.  The paper's
active measurement (Section 5, "Validating Handle Ownership") probes both
mechanisms for every non-``bsky.social`` handle; :meth:`HandleResolver.probe`
reports which mechanism answered so the analysis can reproduce the
98.7% DNS / 1.3% well-known split.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.netsim.dns import DnsResolver
from repro.netsim.web import WELL_KNOWN_ATPROTO_DID, WebHostRegistry

_HANDLE_RE = re.compile(
    r"^(?=.{4,253}$)([a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?\.)+[a-z]([a-z0-9-]{0,61}[a-z0-9])?$"
)

MECHANISM_DNS = "dns-txt"
MECHANISM_WELL_KNOWN = "well-known"


class HandleError(ValueError):
    """Raised on malformed handles."""


def is_valid_handle(handle: str) -> bool:
    return bool(_HANDLE_RE.match(handle.lower()))


def publish_dns_proof(resolver_zone, handle: str, did: str) -> None:
    """Install the ``_atproto.`` TXT proof for a handle."""
    from repro.netsim.dns import DnsRecordType

    resolver_zone.set("_atproto." + handle, DnsRecordType.TXT, ["did=" + did])


def publish_well_known_proof(web: WebHostRegistry, handle: str, did: str) -> None:
    """Install the ``/.well-known/atproto-did`` proof for a handle."""
    web.serve(handle, WELL_KNOWN_ATPROTO_DID, did)


@dataclass(frozen=True)
class HandleProbe:
    """Result of actively probing a handle's verification mechanisms."""

    handle: str
    did: Optional[str]
    mechanism: Optional[str]  # MECHANISM_DNS / MECHANISM_WELL_KNOWN / None


class HandleResolver:
    """Resolves handles to DIDs the way Bluesky clients and crawlers do."""

    def __init__(self, dns: DnsResolver, web: WebHostRegistry):
        self.dns = dns
        self.web = web

    def resolve(self, handle: str) -> Optional[str]:
        """Resolve handle → DID, trying DNS first, then the well-known file."""
        probe = self.probe(handle)
        return probe.did

    def probe(self, handle: str) -> HandleProbe:
        """Like :meth:`resolve` but reports which mechanism succeeded."""
        handle = handle.lower()
        if not is_valid_handle(handle):
            raise HandleError("invalid handle %r" % handle)
        records = self.dns.try_lookup_txt("_atproto." + handle)
        if records:
            for record in records:
                if record.startswith("did="):
                    return HandleProbe(handle, record[len("did=") :], MECHANISM_DNS)
        body = self.web.try_get(handle, WELL_KNOWN_ATPROTO_DID)
        if body:
            did = body.strip()
            if did.startswith("did:"):
                return HandleProbe(handle, did, MECHANISM_WELL_KNOWN)
        return HandleProbe(handle, None, None)

    def verify_bidirectional(
        self, handle: str, resolve_did_doc: Callable[[str], Optional[object]]
    ) -> bool:
        """Full verification: handle → DID and DID document → handle."""
        did = self.resolve(handle)
        if did is None:
            return False
        doc = resolve_did_doc(did)
        if doc is None:
            return False
        return getattr(doc, "handle", None) == handle.lower()

"""Decentralized identity: DIDs, DID documents, the PLC directory, handles.

Implements the two DID methods Bluesky recognises — ``did:plc`` (operated
via a central operation-log directory) and ``did:web`` (resolved from a
``/.well-known/did.json`` document) — plus handle↔DID verification through
DNS TXT records and HTTPS well-known files (Section 2 and 5 of the paper).
"""

from repro.identity.did import DidDocument, ServiceEndpoint, is_valid_did
from repro.identity.plc import PlcDirectory
from repro.identity.handles import HandleResolver

__all__ = [
    "DidDocument",
    "HandleResolver",
    "PlcDirectory",
    "ServiceEndpoint",
    "is_valid_did",
]

"""Reproduction of "Looking AT the Blue Skies of Bluesky" (IMC 2024).

A complete, self-contained AT Protocol stack plus the paper's measurement
pipeline and analyses:

* :mod:`repro.atproto` — the protocol data model (DAG-CBOR, CIDs, TIDs,
  MSTs, signed repositories, CAR files, secp256k1),
* :mod:`repro.identity` — DIDs, the PLC directory, handle verification,
* :mod:`repro.netsim` — simulated DNS / HTTPS / PSL / WHOIS / Tranco,
* :mod:`repro.services` — PDS, Relay + Firehose, AppView, Labelers,
  Feed Generators and feed-service platforms, the Client,
* :mod:`repro.simulation` — the calibrated synthetic population and the
  timeline engine,
* :mod:`repro.core` — the five dataset collectors, the active
  measurements, and one analysis per paper table/figure.

Quick start::

    from repro.core.pipeline import run_study
    from repro.core.report import full_report
    from repro.simulation.config import SimulationConfig

    world, datasets = run_study(SimulationConfig.tiny())
    print(full_report(datasets))
"""

__version__ = "1.0.0"

"""A Tranco-style domain popularity ranking.

The paper cross-references registered handle domains against the Tranco
top-1M list and finds only 2.8% of them ranked.  We model the list as a
ranked set seeded with well-known domains (tech companies, media outlets,
universities — the categories the paper calls out) plus synthetic filler.
"""

from __future__ import annotations

from typing import Iterable, Optional

# Domains the paper explicitly mentions finding in the top 1M.
SEED_POPULAR_DOMAINS = (
    "amazonaws.com",
    "microsoft.com",
    "cloudflare.com",
    "cnn.com",
    "nytimes.com",
    "washingtonpost.com",
    "stanford.edu",
    "columbia.edu",
    "github.io",
    "google.com",
    "bsky.social",
    "theguardian.com",
    "bbc.co.uk",
    "wired.com",
    "mit.edu",
    "berkeley.edu",
)


class TrancoList:
    """An ordered ranking; rank 1 is the most popular domain."""

    def __init__(self, domains: Optional[Iterable[str]] = None, size_cap: int = 1_000_000):
        self._ranks: dict[str, int] = {}
        self.size_cap = size_cap
        if domains is None:
            domains = SEED_POPULAR_DOMAINS
        for domain in domains:
            self.append(domain)

    def append(self, domain: str) -> int:
        """Add a domain at the next rank (idempotent); returns its rank."""
        domain = domain.lower()
        existing = self._ranks.get(domain)
        if existing is not None:
            return existing
        rank = len(self._ranks) + 1
        if rank > self.size_cap:
            raise ValueError("ranking is full (cap %d)" % self.size_cap)
        self._ranks[domain] = rank
        return rank

    def rank(self, domain: str) -> Optional[int]:
        return self._ranks.get(domain.lower())

    def in_top(self, domain: str, top_n: int = 1_000_000) -> bool:
        rank = self.rank(domain)
        return rank is not None and rank <= top_n

    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._ranks

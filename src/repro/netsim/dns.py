"""A simulated DNS.

Supports the record types the measurement pipeline needs: TXT (handle
verification via ``_atproto.<handle>``), A (labeler IP analysis), and
CNAME.  Lookups are case-insensitive and return NXDOMAIN for absent names,
letting collector code handle failures exactly as against real DNS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional


class DnsRecordType(enum.Enum):
    A = "A"
    TXT = "TXT"
    CNAME = "CNAME"


class DnsError(Exception):
    """Base class for resolver failures."""


class NxDomain(DnsError):
    """The queried name does not exist."""


class ServFail(DnsError):
    """The authoritative server failed (used for fault injection)."""


def normalize_name(name: str) -> str:
    return name.rstrip(".").lower()


@dataclass
class DnsZone:
    """A flat record store; one global zone is enough for the simulator."""

    records: dict[tuple[str, DnsRecordType], list[str]] = field(default_factory=dict)
    failing_names: set = field(default_factory=set)

    def add(self, name: str, rtype: DnsRecordType, value: str) -> None:
        key = (normalize_name(name), rtype)
        self.records.setdefault(key, []).append(value)

    def set(self, name: str, rtype: DnsRecordType, values: Iterable[str]) -> None:
        self.records[(normalize_name(name), rtype)] = list(values)

    def remove(self, name: str, rtype: Optional[DnsRecordType] = None) -> None:
        name = normalize_name(name)
        keys = [k for k in self.records if k[0] == name and (rtype is None or k[1] == rtype)]
        for key in keys:
            del self.records[key]

    def mark_failing(self, name: str) -> None:
        """Make lookups under this name raise SERVFAIL (fault injection)."""
        self.failing_names.add(normalize_name(name))

    def name_exists(self, name: str) -> bool:
        name = normalize_name(name)
        return any(k[0] == name for k in self.records)


class DnsResolver:
    """Resolver over a zone, with CNAME chasing and a query counter."""

    MAX_CNAME_DEPTH = 8

    def __init__(self, zone: DnsZone):
        self.zone = zone
        self.query_count = 0

    def lookup(self, name: str, rtype: DnsRecordType) -> list[str]:
        """Resolve a name; raises NxDomain / ServFail like real DNS."""
        self.query_count += 1
        name = normalize_name(name)
        depth = 0
        while True:
            if name in self.zone.failing_names:
                raise ServFail(name)
            values = self.zone.records.get((name, rtype))
            if values:
                return list(values)
            cname = self.zone.records.get((name, DnsRecordType.CNAME))
            if cname:
                depth += 1
                if depth > self.MAX_CNAME_DEPTH:
                    raise ServFail("CNAME chain too long at %s" % name)
                name = normalize_name(cname[0])
                continue
            raise NxDomain(name)

    def lookup_txt(self, name: str) -> list[str]:
        return self.lookup(name, DnsRecordType.TXT)

    def try_lookup_txt(self, name: str) -> Optional[list[str]]:
        """TXT lookup returning None instead of raising on failure."""
        try:
            return self.lookup_txt(name)
        except DnsError:
            return None

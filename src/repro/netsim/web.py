"""A simulated HTTPS surface.

Hosts map paths to response bodies.  Used for ``did:web`` documents
(``/.well-known/did.json``) and the well-known handle-verification file
(``/.well-known/atproto-did``).  Hosts can be marked down to exercise the
collectors' error handling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

WELL_KNOWN_ATPROTO_DID = "/.well-known/atproto-did"
WELL_KNOWN_DID_JSON = "/.well-known/did.json"


class WebError(Exception):
    """A failed HTTPS fetch (connection refused, 404, 5xx...)."""

    def __init__(self, status: int, message: str = ""):
        super().__init__("HTTP %d %s" % (status, message))
        self.status = status


@dataclass
class _Host:
    paths: dict[str, str] = field(default_factory=dict)
    down: bool = False


class WebHostRegistry:
    """All simulated HTTPS hosts, addressed by lowercase FQDN."""

    def __init__(self):
        self._hosts: dict[str, _Host] = {}
        self.request_count = 0

    def host(self, fqdn: str) -> _Host:
        return self._hosts.setdefault(fqdn.lower(), _Host())

    def serve(self, fqdn: str, path: str, body: str) -> None:
        self.host(fqdn).paths[path] = body

    def serve_json(self, fqdn: str, path: str, payload: dict) -> None:
        self.serve(fqdn, path, json.dumps(payload, sort_keys=True))

    def remove(self, fqdn: str, path: str) -> None:
        host = self._hosts.get(fqdn.lower())
        if host and path in host.paths:
            del host.paths[path]

    def set_down(self, fqdn: str, down: bool = True) -> None:
        self.host(fqdn).down = down

    def get(self, fqdn: str, path: str) -> str:
        """Fetch https://<fqdn><path>; raises WebError on any failure."""
        self.request_count += 1
        host = self._hosts.get(fqdn.lower())
        if host is None or host.down:
            raise WebError(0, "connection failed to %s" % fqdn)
        body = host.paths.get(path)
        if body is None:
            raise WebError(404, "%s%s" % (fqdn, path))
        return body

    def try_get(self, fqdn: str, path: str) -> Optional[str]:
        try:
            return self.get(fqdn, path)
        except WebError:
            return None

    def get_json(self, fqdn: str, path: str) -> dict:
        return json.loads(self.get(fqdn, path))

"""Public Suffix List.

Implements the PSL matching algorithm (normal, wildcard ``*.``, and
exception ``!`` rules) over an embedded snapshot of the suffixes that
matter for the paper's handle population.  The ICANN and PRIVATE sections
are kept separate: the paper extracts *registered domains* ("effective
second-level domains") with the ICANN rules, which is why e.g. 35 handles
under ``github.io`` count as subdomains of the single registered domain
``github.io`` (Figure 3) rather than as 35 separate registrable names.
"""

from __future__ import annotations

from typing import Optional

# A representative ICANN-section snapshot: generic TLDs plus the ccTLDs and
# multi-label suffixes that appear in the simulated handle population.
ICANN_SUFFIXES = """
com
org
net
io
dev
app
social
cool
me
info
biz
xyz
edu
gov
blue
sky
cloud
online
site
uk
co.uk
org.uk
ac.uk
gov.uk
de
com.de
fr
jp
co.jp
ne.jp
or.jp
ac.jp
br
com.br
net.br
org.br
art.br
pt
nl
it
es
pl
com.pl
se
ca
au
com.au
org.au
nz
co.nz
kr
co.kr
cn
com.cn
us
tv
fm
am
gg
lol
wtf
zone
network
systems
science
engineering
community
gallery
studio
page
work
world
life
live
media
news
email
chat
im
ee
fi
no
dk
ch
at
be
ie
cz
sk
hu
ro
gr
tr
com.tr
mx
com.mx
ar
com.ar
cl
pe
co
com.co
in
co.in
id
co.id
th
co.th
my
com.my
sg
com.sg
hk
com.hk
tw
com.tw
za
co.za
ng
com.ng
ke
co.ke
eg
com.eg
il
co.il
ua
com.ua
ru
com.ru
by
kz
*.ck
!www.ck
"""

# Private-section suffixes (hosting platforms); *excluded* when computing
# the paper's registered domains but available for other analyses.
PRIVATE_SUFFIXES = """
github.io
gitlab.io
netlify.app
vercel.app
pages.dev
web.app
herokuapp.com
glitch.me
neocities.org
"""


class PslError(ValueError):
    """Raised on malformed domain input."""


class PublicSuffixList:
    """PSL matcher with ICANN / PRIVATE sections."""

    def __init__(self, icann_rules: list[str], private_rules: Optional[list[str]] = None):
        self._icann = self._index(icann_rules)
        self._private = self._index(private_rules or [])

    @staticmethod
    def _index(rules: list[str]) -> dict[str, str]:
        indexed: dict[str, str] = {}
        for rule in rules:
            rule = rule.strip().lower()
            if not rule or rule.startswith("//"):
                continue
            if rule.startswith("!"):
                indexed[rule[1:]] = "exception"
            elif rule.startswith("*."):
                indexed[rule[2:]] = "wildcard"
            else:
                indexed[rule] = "normal"
        return indexed

    def _suffix_length(self, labels: list[str], include_private: bool) -> int:
        """Number of labels in the public suffix of a label list."""
        tables = [self._icann] + ([self._private] if include_private else [])
        best = 1  # unknown TLDs behave as single-label suffixes ("*" rule)
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            for table in tables:
                kind = table.get(candidate)
                if kind == "exception":
                    return len(labels) - start - 1
                if kind == "normal":
                    best = max(best, len(labels) - start)
                elif kind == "wildcard":
                    # the rule matches candidate plus one extra label
                    if start > 0:
                        best = max(best, len(labels) - start + 1)
        return best

    def public_suffix(self, domain: str, include_private: bool = False) -> str:
        labels = self._labels(domain)
        length = self._suffix_length(labels, include_private)
        return ".".join(labels[-length:])

    def registered_domain(self, domain: str, include_private: bool = False) -> Optional[str]:
        """The registrable ("effective second-level") domain, or None if the
        input is itself a public suffix."""
        labels = self._labels(domain)
        length = self._suffix_length(labels, include_private)
        if len(labels) <= length:
            return None
        return ".".join(labels[-(length + 1) :])

    def is_public_suffix(self, domain: str, include_private: bool = False) -> bool:
        labels = self._labels(domain)
        return self._suffix_length(labels, include_private) == len(labels)

    @staticmethod
    def _labels(domain: str) -> list[str]:
        domain = domain.strip().rstrip(".").lower()
        if not domain:
            raise PslError("empty domain")
        labels = domain.split(".")
        if any(not label for label in labels):
            raise PslError("empty label in %r" % domain)
        return labels


_DEFAULT: Optional[PublicSuffixList] = None


def default_psl() -> PublicSuffixList:
    """The embedded PSL snapshot (cached singleton)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList(
            ICANN_SUFFIXES.split(), PRIVATE_SUFFIXES.split()
        )
    return _DEFAULT

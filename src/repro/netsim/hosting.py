"""IP addressing and hosting classes.

Section 6.1 of the paper classifies labeler endpoints by their IP
addresses: 65% on cloud/reverse-proxied infrastructure, 10% on residential
ISP addresses, and 26% unreachable.  This module provides the address
allocator and classifier that analysis runs against.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from typing import Optional


class HostingClass(enum.Enum):
    CLOUD = "cloud"
    RESIDENTIAL = "residential"
    PROXY = "proxy"  # reverse-proxied (CDN front); grouped with cloud in §6.1


# Allocation pools per hosting class (documentation/test ranges, so the
# simulated addresses can never collide with real infrastructure).
_POOLS = {
    HostingClass.CLOUD: ipaddress.ip_network("198.51.100.0/24"),
    HostingClass.PROXY: ipaddress.ip_network("203.0.113.0/24"),
    HostingClass.RESIDENTIAL: ipaddress.ip_network("192.0.2.0/24"),
}


@dataclass(frozen=True)
class HostAddress:
    ip: str
    hosting_class: HostingClass


class IpAllocator:
    """Hands out addresses from per-class pools and remembers assignments."""

    def __init__(self):
        self._next_index = {cls: 1 for cls in HostingClass}
        self._by_host: dict[str, HostAddress] = {}

    def allocate(self, hostname: str, hosting_class: HostingClass) -> HostAddress:
        existing = self._by_host.get(hostname)
        if existing is not None:
            return existing
        pool = _POOLS[hosting_class]
        index = self._next_index[hosting_class]
        if index >= pool.num_addresses - 1:
            # Wrap around: the simulation only needs class membership, and
            # pools are /24s while labeler counts are in the dozens.
            index = 1
        self._next_index[hosting_class] = index + 1
        address = HostAddress(str(pool[index]), hosting_class)
        self._by_host[hostname] = address
        return address

    def address_of(self, hostname: str) -> Optional[HostAddress]:
        return self._by_host.get(hostname)

    @staticmethod
    def classify(ip: str) -> Optional[HostingClass]:
        """Classify an IP back into its hosting class (the measurement side)."""
        address = ipaddress.ip_address(ip)
        for hosting_class, pool in _POOLS.items():
            if address in pool:
                return hosting_class
        return None

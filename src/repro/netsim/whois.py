"""Registrars and WHOIS.

Models the behaviour the paper's registrar-concentration measurement
(Table 2) depends on:

* a registrar database keyed by IANA ID (Namecheap 1068, Cloudflare 1910,
  Squarespace 895, GoDaddy 146, Porkbun 1861, Tucows 69, GMO 81/1796, ...),
* per-domain WHOIS records,
* realistic failure modes — some domains return no WHOIS data at all
  (the paper reached 92%), and ccTLD registries often omit the IANA ID
  (IANA IDs were extracted for only 76% of scanned names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Registrar:
    iana_id: Optional[int]
    name: str
    icann_accredited: bool = True


# Registrars named in Table 2 of the paper, with their real IANA IDs, plus a
# long tail used to reach the paper's "249 registrars" diversity.
PAPER_REGISTRARS = (
    Registrar(1068, "NameCheap, Inc."),
    Registrar(1910, "CloudFlare, Inc."),
    Registrar(895, "Squarespace Domains"),
    Registrar(146, "GoDaddy.com, LLC"),
    Registrar(1861, "Porkbun, LLC"),
    Registrar(69, "Tucows Domains Inc."),
    Registrar(1796, "GMO Internet Group"),
)


def long_tail_registrars(count: int) -> list[Registrar]:
    """Synthetic small registrars filling out the distribution's tail."""
    out = []
    for index in range(count):
        out.append(Registrar(3000 + index, "Registrar %03d LLC" % index))
    return out


def cctld_registrars(count: int) -> list[Registrar]:
    """Locally accredited ccTLD registrars that expose no IANA ID."""
    out = []
    for index in range(count):
        out.append(
            Registrar(None, "ccTLD Registry Partner %02d" % index, icann_accredited=False)
        )
    return out


@dataclass
class WhoisRecord:
    domain: str
    registrar_name: Optional[str]
    iana_id: Optional[int]
    created: Optional[str] = None


class RegistrarDatabase:
    """All registrars known to the simulation."""

    def __init__(self, registrars: Optional[list[Registrar]] = None):
        self._by_name: dict[str, Registrar] = {}
        for registrar in registrars or list(PAPER_REGISTRARS):
            self.add(registrar)

    def add(self, registrar: Registrar) -> None:
        self._by_name[registrar.name] = registrar

    def get(self, name: str) -> Optional[Registrar]:
        return self._by_name.get(name)

    def all(self) -> list[Registrar]:
        return list(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)


class WhoisService:
    """Serves WHOIS records for registered domains.

    ``register`` assigns a domain to a registrar; ``query`` models the two
    data-quality failure modes the paper reports: domains with no WHOIS
    response, and responses without an IANA ID (non-ICANN ccTLD registrars
    never publish one; for others the caller can mark redaction).
    """

    def __init__(self, registrars: RegistrarDatabase):
        self.registrars = registrars
        self._records: dict[str, WhoisRecord] = {}
        self._unresponsive: set[str] = set()
        self.query_count = 0

    def register(
        self,
        domain: str,
        registrar: Registrar,
        created: Optional[str] = None,
        redact_iana_id: bool = False,
    ) -> None:
        iana_id = None if (redact_iana_id or not registrar.icann_accredited) else registrar.iana_id
        self._records[domain.lower()] = WhoisRecord(
            domain=domain.lower(),
            registrar_name=registrar.name,
            iana_id=iana_id,
            created=created,
        )

    def mark_unresponsive(self, domain: str) -> None:
        """The WHOIS server for this domain never answers (paper: ~8%)."""
        self._unresponsive.add(domain.lower())

    def query(self, domain: str) -> Optional[WhoisRecord]:
        """WHOIS lookup; None models a failed/timed-out query."""
        self.query_count += 1
        domain = domain.lower()
        if domain in self._unresponsive:
            return None
        return self._records.get(domain)

    def registered_domains(self) -> list[str]:
        return list(self._records)

"""Simulated Internet substrate.

The paper's active measurements (handle verification, WHOIS scans,
Tranco cross-referencing, labeler IP analysis) run against the public
Internet.  This package provides in-process equivalents with the same
query semantics: a DNS resolver with TXT records and NXDOMAIN, an HTTPS
host registry for ``.well-known`` documents, a Public Suffix List
implementation, a registrar/WHOIS database with IANA-ID redaction quirks,
a Tranco-style popularity ranking, and an IP/hosting-class model.
"""

from repro.netsim.dns import DnsRecordType, DnsResolver, DnsZone, NxDomain
from repro.netsim.faults import (
    DEFAULT_RETRY_POLICY,
    Disconnect,
    FaultInjector,
    FaultPlan,
    FaultStats,
    FlakyRule,
    Outage,
    RetryPolicy,
    SlowHost,
    call_with_retries,
)
from repro.netsim.psl import PublicSuffixList, default_psl
from repro.netsim.tranco import TrancoList
from repro.netsim.web import WebHostRegistry, WebError
from repro.netsim.whois import RegistrarDatabase, WhoisService

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "Disconnect",
    "DnsRecordType",
    "DnsResolver",
    "DnsZone",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FlakyRule",
    "NxDomain",
    "Outage",
    "PublicSuffixList",
    "RegistrarDatabase",
    "RetryPolicy",
    "SlowHost",
    "TrancoList",
    "WebError",
    "WebHostRegistry",
    "WhoisService",
    "call_with_retries",
    "default_psl",
]

"""Crawl rate limiting.

The paper's ethics section: *"Prior to initiating our scans, we contacted
the Bluesky team to agree upon a scanning rate that would not disrupt the
normal functioning of their service."*  This module provides the token
bucket the collectors use to honour such an agreement, operating on
simulated time so a crawl's wall-clock footprint can be computed — the
paper's repository snapshot took 10 days at the negotiated rate.
"""

from __future__ import annotations

import math

US_PER_SECOND = 1_000_000


class TokenBucket:
    """A token bucket over microsecond timestamps.

    ``acquire(now_us)`` returns the time at which the request may proceed
    (equal to ``now_us`` when tokens are available, later otherwise), and
    accounts for the spend.  Deterministic and clock-agnostic: callers
    decide whether to sleep, fast-forward, or just record the schedule.
    """

    def __init__(self, rate_per_second: float, burst: float = 1.0):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate = rate_per_second
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated_us = 0
        self.total_requests = 0

    def _refill(self, now_us: int) -> None:
        if now_us > self._updated_us:
            elapsed_s = (now_us - self._updated_us) / US_PER_SECOND
            self._tokens = min(self.burst, self._tokens + elapsed_s * self.rate)
            self._updated_us = now_us

    def acquire(self, now_us: int) -> int:
        """Reserve one token; returns the scheduled execution time."""
        self.total_requests += 1
        self._refill(max(now_us, self._updated_us))
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return max(now_us, self._updated_us)
        deficit = 1.0 - self._tokens
        # Round *up*: truncating schedules requests fractionally early, and
        # over a 10-day crawl the accumulated sub-microsecond credits drift
        # the effective rate above the negotiated one.
        wait_us = math.ceil(deficit / self.rate * US_PER_SECOND)
        self._tokens = 0.0
        self._updated_us = max(now_us, self._updated_us) + wait_us
        return self._updated_us

    def schedule_duration_us(self, n_requests: int) -> int:
        """Time a batch of ``n_requests`` takes from a full bucket."""
        chargeable = max(0, n_requests - int(self.burst))
        return int(chargeable / self.rate * US_PER_SECOND)


def crawl_duration_days(n_requests: int, rate_per_second: float) -> float:
    """How many days a crawl of ``n_requests`` takes at an agreed rate.

    The paper's numbers: 5.52M ``getRepo`` calls over 10 days imply an
    agreed rate of roughly 6.4 requests/second.
    """
    return n_requests / rate_per_second / 86_400.0

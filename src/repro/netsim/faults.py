"""Deterministic fault injection for the collection path.

The paper's datasets came out of long-running crawls against an unreliable
network: a 10-day rate-limited ``getRepo`` snapshot, self-hosted PDSes
that time out or vanish, and a firehose whose three-day retention window
silently drops slow subscribers (Sections 2-3).  This module lets a study
run *rehearse* that unreliability on the simulated clock:

* :class:`FaultPlan` — a frozen, seeded description of what goes wrong
  and when: full outages, transient 429/5xx flakiness, slow hosts that
  sometimes exceed the client timeout, and firehose disconnect windows;
* :class:`FaultInjector` — the runtime that draws from the plan.  The
  :class:`~repro.services.xrpc.ServiceDirectory` consults it before every
  dispatched call, and non-XRPC probes (DID resolution, DNS, WHOIS) ask
  it directly via :meth:`FaultInjector.raise_transient`;
* :class:`RetryPolicy` / :func:`call_with_retries` — the
  backoff-with-jitter policy every collector shares, operating on virtual
  microseconds so a faulted crawl's wall-clock footprint stays computable.

Everything is deterministic: the same plan and seed produce the same
faults in the same order, so a fault-injected study is exactly as
reproducible as a fault-free one — and a *recoverable* plan (every outage
ends, every disconnect is shorter than firehose retention) converges to
the same Table 1 statistics.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.services.xrpc import XrpcError

US_PER_SECOND = 1_000_000
US_PER_MINUTE = 60 * US_PER_SECOND
US_PER_HOUR = 60 * US_PER_MINUTE

#: XRPC statuses worth retrying: transport failure (0), timeout (408),
#: rate limiting (429), and upstream 5xx.  404s and other 4xx are final.
TRANSIENT_STATUSES = (0, 408, 429, 500, 502, 503)

#: Pseudo-targets for fault draws that do not go through the XRPC
#: directory; FlakyRule.url can name these instead of an endpoint URL.
TARGET_IDENTITY = "target:identity"  # DID document resolution
TARGET_DNS = "target:dns"  # handle-verification DNS probes
TARGET_WHOIS = "target:whois"  # WHOIS scans


def _url_matches(pattern: str, url: str) -> bool:
    if pattern == "*":
        return True
    pattern = pattern.rstrip("/").lower()
    url = url.rstrip("/").lower()
    return url == pattern or url.startswith(pattern)


@dataclass(frozen=True)
class Outage:
    """A service is fully unreachable during [start_us, end_us)."""

    url: str
    start_us: int
    end_us: int
    status: int = 0  # 0 = connection refused; 408 = hang until timeout

    def applies(self, url: str, now_us: int) -> bool:
        return self.start_us <= now_us < self.end_us and _url_matches(self.url, url)


@dataclass(frozen=True)
class FlakyRule:
    """A share of calls to matching targets fail with a transient status."""

    url: str = "*"
    probability: float = 0.0
    statuses: tuple[int, ...] = (429, 500, 503)
    start_us: int = 0
    end_us: Optional[int] = None

    def applies(self, url: str, now_us: int) -> bool:
        if now_us < self.start_us:
            return False
        if self.end_us is not None and now_us >= self.end_us:
            return False
        return _url_matches(self.url, url)


@dataclass(frozen=True)
class SlowHost:
    """Added per-call latency; calls past ``timeout_us`` fail with 408.

    Models the paper's self-hosted PDSes "that time out": every call to a
    matching host pays ``base_latency_us`` (plus deterministic jitter),
    and when the drawn latency exceeds the client timeout the call is
    charged the full timeout and fails.
    """

    url: str
    base_latency_us: int = 200_000
    jitter_us: int = 0
    timeout_us: int = 30 * US_PER_SECOND
    timeout_probability: float = 0.0


@dataclass(frozen=True)
class Disconnect:
    """The collector's firehose subscription is dead during the window.

    Events published inside the window are lost on the dead connection;
    the collector notices on the next delivery attempt after ``end_us``
    and resumes via ``subscribeRepos(cursor)``.  A window shorter than the
    firehose retention is fully recoverable; a longer one produces an
    ``OutdatedCursor`` gap with dropped-event accounting.
    """

    start_us: int
    end_us: int

    def covers(self, now_us: int) -> bool:
        return self.start_us <= now_us < self.end_us


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of network faults."""

    seed: int = 0
    outages: tuple[Outage, ...] = ()
    flaky: tuple[FlakyRule, ...] = ()
    slow_hosts: tuple[SlowHost, ...] = ()
    disconnects: tuple[Disconnect, ...] = ()

    def is_disconnected(self, now_us: int) -> bool:
        return any(window.covers(now_us) for window in self.disconnects)

    def is_empty(self) -> bool:
        return not (self.outages or self.flaky or self.slow_hosts or self.disconnects)

    @classmethod
    def recoverable(
        cls,
        seed: int,
        start_us: int,
        end_us: int,
        relay_url: str = "https://bsky.network",
    ) -> "FaultPlan":
        """A moderate, fully recoverable plan over the collection window.

        Every fault heals: outages end well before the collection window
        does, firehose disconnects stay far below the three-day retention,
        and flaky responses are transient — so collectors that retry and
        cursor-resume recover every event and the run converges to the
        fault-free Table 1.
        """
        rng = random.Random(seed ^ 0xFA_07)
        span = max(1, end_us - start_us)
        disconnects = []
        for _ in range(3):
            at = start_us + int(rng.random() * span * 0.8)
            length = int(rng.uniform(1, 8) * US_PER_HOUR)
            disconnects.append(Disconnect(at, at + length))
        outage_at = start_us + int(rng.random() * span * 0.7)
        outages = (
            # The relay drops out entirely for under an hour; crawls that
            # hit the window park failed DIDs on the retry queue.
            Outage(relay_url, outage_at, outage_at + int(rng.uniform(10, 45) * US_PER_MINUTE)),
        )
        flaky = (
            FlakyRule(url=relay_url, probability=0.08, statuses=(429, 503)),
            FlakyRule(url=TARGET_IDENTITY, probability=0.05, statuses=(500,)),
            FlakyRule(url=TARGET_DNS, probability=0.04, statuses=(0,)),
            FlakyRule(url=TARGET_WHOIS, probability=0.04, statuses=(0,)),
        )
        slow_hosts = (
            # Self-hosted PDSes answer slowly and occasionally hang past
            # the client timeout.
            SlowHost(
                "https://pds.",
                base_latency_us=2 * US_PER_SECOND,
                jitter_us=US_PER_SECOND,
                timeout_probability=0.05,
            ),
        )
        return cls(
            seed=seed,
            outages=outages,
            flaky=flaky,
            slow_hosts=slow_hosts,
            disconnects=tuple(sorted(disconnects, key=lambda d: d.start_us)),
        )


@dataclass
class FaultStats:
    """What the injector actually did — reported next to the datasets."""

    injected_by_kind: Counter = field(default_factory=Counter)  # outage/flaky/timeout
    injected_by_status: Counter = field(default_factory=Counter)
    injected_by_target: Counter = field(default_factory=Counter)
    injected_latency_us: int = 0
    calls_seen: int = 0

    def total_injected(self) -> int:
        return sum(self.injected_by_kind.values())


class FaultInjector:
    """Draws faults from a plan, in call order, from one seeded stream."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed ^ 0xFA_175)

    # -- XRPC path (ServiceDirectory.before dispatch) ------------------------

    def before_call(self, url: str, method: str, now_us: int) -> int:
        """Fault gate for one dispatched call.

        Raises :class:`XrpcError` when the call fails; otherwise returns
        the injected latency in microseconds (0 when the host is healthy).
        """
        self.stats.calls_seen += 1
        for outage in self.plan.outages:
            if outage.applies(url, now_us):
                self._count("outage", outage.status, url)
                raise XrpcError(
                    outage.status,
                    "injected outage: %s unreachable (%s)" % (url, method),
                    injected=True,
                )
        latency = 0
        for slow in self.plan.slow_hosts:
            if not _url_matches(slow.url, url):
                continue
            drawn = slow.base_latency_us
            if slow.jitter_us:
                drawn += int(self._rng.random() * slow.jitter_us)
            if slow.timeout_probability and self._rng.random() < slow.timeout_probability:
                self.stats.injected_latency_us += slow.timeout_us
                self._count("timeout", 408, url)
                raise XrpcError(
                    408,
                    "injected timeout: %s took too long (%s)" % (url, method),
                    injected=True,
                )
            latency += min(drawn, slow.timeout_us)
        for rule in self.plan.flaky:
            if rule.probability and rule.applies(url, now_us):
                if self._rng.random() < rule.probability:
                    status = rule.statuses[self._rng.randrange(len(rule.statuses))]
                    self._count("flaky", status, url)
                    raise XrpcError(
                        status,
                        "injected transient %d from %s (%s)" % (status, url, method),
                        injected=True,
                    )
        self.stats.injected_latency_us += latency
        return latency

    # -- non-XRPC probes (resolver, DNS, WHOIS) ------------------------------

    def raise_transient(self, target: str, now_us: int) -> None:
        """Fault gate for probes that bypass the service directory.

        ``target`` is one of the ``TARGET_*`` pseudo-URLs; a matching
        flaky rule may raise a transient :class:`XrpcError`.
        """
        for rule in self.plan.flaky:
            if rule.probability and rule.applies(target, now_us):
                if self._rng.random() < rule.probability:
                    status = rule.statuses[self._rng.randrange(len(rule.statuses))]
                    self._count("flaky", status, target)
                    raise XrpcError(
                        status,
                        "injected transient %d from %s" % (status, target),
                        injected=True,
                    )

    def _count(self, kind: str, status: int, target: str) -> None:
        self.stats.injected_by_kind[kind] += 1
        self.stats.injected_by_status[status] += 1
        self.stats.injected_by_target[target] += 1


# ---------------------------------------------------------------------------
# Retry / backoff policy shared by every collector
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter, in virtual time."""

    max_attempts: int = 5
    base_backoff_us: int = US_PER_SECOND  # first retry waits ~1s
    multiplier: float = 2.0
    max_backoff_us: int = 2 * US_PER_MINUTE
    jitter: float = 0.25  # fraction of the backoff added as jitter

    def is_retryable(self, status: int) -> bool:
        return status in TRANSIENT_STATUSES

    def backoff_us(self, attempt: int, rng: Optional[random.Random] = None) -> int:
        """Wait before retry number ``attempt`` (1-based)."""
        base = self.base_backoff_us * self.multiplier ** (attempt - 1)
        base = min(base, self.max_backoff_us)
        if rng is not None and self.jitter:
            base += base * self.jitter * rng.random()
        return int(base)


#: The default policy collectors share; a fault-free run never consults it.
DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retries(
    services,
    url: str,
    method: str,
    *,
    now_us: int,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    rng: Optional[random.Random] = None,
    counters: Optional[Counter] = None,
    params: Optional[dict] = None,
    **kwargs,
):
    """Dispatch an XRPC call, retrying transient failures with backoff.

    Returns ``(result, now_us)`` where ``now_us`` includes injected
    latency and all backoff waits (virtual time — callers decide whether
    to sleep or just account for it).  Non-retryable errors and retryable
    errors that exhaust the policy re-raise the final :class:`XrpcError`.
    ``counters`` (when given) accumulates ``attempts`` and ``retries``.
    XRPC parameters go in ``**kwargs``, or — when a name collides with
    this function's own keywords (``now_us`` et al.) — in ``params``.
    """
    call_params = dict(params) if params else {}
    call_params.update(kwargs)
    attempt = 0
    while True:
        attempt += 1
        if counters is not None:
            counters["attempts"] += 1
        services.now_us = now_us
        try:
            result = services.call(url, method, **call_params)
        except XrpcError as exc:
            if not policy.is_retryable(exc.status) or attempt >= policy.max_attempts:
                raise
            if counters is not None:
                counters["retries"] += 1
            now_us += policy.backoff_us(attempt, rng)
            continue
        return result, now_us + services.last_call_latency_us

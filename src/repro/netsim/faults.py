"""Deterministic fault injection for the collection path.

The paper's datasets came out of long-running crawls against an unreliable
network: a 10-day rate-limited ``getRepo`` snapshot, self-hosted PDSes
that time out or vanish, and a firehose whose three-day retention window
silently drops slow subscribers (Sections 2-3).  This module lets a study
run *rehearse* that unreliability on the simulated clock:

* :class:`FaultPlan` — a frozen, seeded description of what goes wrong
  and when: full outages, transient 429/5xx flakiness, slow hosts that
  sometimes exceed the client timeout, and firehose disconnect windows;
* :class:`FaultInjector` — the runtime that draws from the plan.  The
  :class:`~repro.services.xrpc.ServiceDirectory` consults it before every
  dispatched call, and non-XRPC probes (DID resolution, DNS, WHOIS) ask
  it directly via :meth:`FaultInjector.raise_transient`;
* :class:`RetryPolicy` / :func:`call_with_retries` — the
  backoff-with-jitter policy every collector shares, operating on virtual
  microseconds so a faulted crawl's wall-clock footprint stays computable.

Everything is deterministic: the same plan and seed produce the same
faults in the same order, so a fault-injected study is exactly as
reproducible as a fault-free one — and a *recoverable* plan (every outage
ends, every disconnect is shorter than firehose retention) converges to
the same Table 1 statistics.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.services.xrpc import (
    REASON_INJECTED_FLAKY,
    REASON_INJECTED_OUTAGE,
    REASON_INJECTED_TIMEOUT,
    XrpcError,
)

US_PER_SECOND = 1_000_000
US_PER_MINUTE = 60 * US_PER_SECOND
US_PER_HOUR = 60 * US_PER_MINUTE

#: XRPC statuses worth retrying: transport failure (0), timeout (408),
#: rate limiting (429), and upstream 5xx.  404s and other 4xx are final.
TRANSIENT_STATUSES = (0, 408, 429, 500, 502, 503)

#: Pseudo-targets for fault draws that do not go through the XRPC
#: directory; FlakyRule.url can name these instead of an endpoint URL.
TARGET_IDENTITY = "target:identity"  # DID document resolution
TARGET_DNS = "target:dns"  # handle-verification DNS probes
TARGET_WHOIS = "target:whois"  # WHOIS scans


def _url_matches(pattern: str, url: str) -> bool:
    if pattern == "*":
        return True
    pattern = pattern.rstrip("/").lower()
    url = url.rstrip("/").lower()
    return url == pattern or url.startswith(pattern)


@dataclass(frozen=True)
class Outage:
    """A service is fully unreachable during [start_us, end_us)."""

    url: str
    start_us: int
    end_us: int
    status: int = 0  # 0 = connection refused; 408 = hang until timeout

    def applies(self, url: str, now_us: int) -> bool:
        return self.start_us <= now_us < self.end_us and _url_matches(self.url, url)


@dataclass(frozen=True)
class FlakyRule:
    """A share of calls to matching targets fail with a transient status."""

    url: str = "*"
    probability: float = 0.0
    statuses: tuple[int, ...] = (429, 500, 503)
    start_us: int = 0
    end_us: Optional[int] = None

    def applies(self, url: str, now_us: int) -> bool:
        if now_us < self.start_us:
            return False
        if self.end_us is not None and now_us >= self.end_us:
            return False
        return _url_matches(self.url, url)


@dataclass(frozen=True)
class SlowHost:
    """Added per-call latency; calls past ``timeout_us`` fail with 408.

    Models the paper's self-hosted PDSes "that time out": every call to a
    matching host pays ``base_latency_us`` (plus deterministic jitter),
    and when the drawn latency exceeds the client timeout the call is
    charged the full timeout and fails.
    """

    url: str
    base_latency_us: int = 200_000
    jitter_us: int = 0
    timeout_us: int = 30 * US_PER_SECOND
    timeout_probability: float = 0.0


@dataclass(frozen=True)
class Disconnect:
    """The collector's firehose subscription is dead during the window.

    Events published inside the window are lost on the dead connection;
    the collector notices on the next delivery attempt after ``end_us``
    and resumes via ``subscribeRepos(cursor)``.  A window shorter than the
    firehose retention is fully recoverable; a longer one produces an
    ``OutdatedCursor`` gap with dropped-event accounting.
    """

    start_us: int
    end_us: int

    def covers(self, now_us: int) -> bool:
        return self.start_us <= now_us < self.end_us


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of network faults."""

    seed: int = 0
    outages: tuple[Outage, ...] = ()
    flaky: tuple[FlakyRule, ...] = ()
    slow_hosts: tuple[SlowHost, ...] = ()
    disconnects: tuple[Disconnect, ...] = ()

    def is_disconnected(self, now_us: int) -> bool:
        return any(window.covers(now_us) for window in self.disconnects)

    def is_empty(self) -> bool:
        return not (self.outages or self.flaky or self.slow_hosts or self.disconnects)

    @classmethod
    def recoverable(
        cls,
        seed: int,
        start_us: int,
        end_us: int,
        relay_url: str = "https://bsky.network",
    ) -> "FaultPlan":
        """A moderate, fully recoverable plan over the collection window.

        Every fault heals: outages end well before the collection window
        does, firehose disconnects stay far below the three-day retention,
        and flaky responses are transient — so collectors that retry and
        cursor-resume recover every event and the run converges to the
        fault-free Table 1.
        """
        rng = random.Random(seed ^ 0xFA_07)
        span = max(1, end_us - start_us)
        disconnects = []
        for _ in range(3):
            at = start_us + int(rng.random() * span * 0.8)
            length = int(rng.uniform(1, 8) * US_PER_HOUR)
            disconnects.append(Disconnect(at, at + length))
        outage_at = start_us + int(rng.random() * span * 0.7)
        outages = (
            # The relay drops out entirely for under an hour; crawls that
            # hit the window park failed DIDs on the retry queue.
            Outage(relay_url, outage_at, outage_at + int(rng.uniform(10, 45) * US_PER_MINUTE)),
        )
        flaky = (
            FlakyRule(url=relay_url, probability=0.08, statuses=(429, 503)),
            FlakyRule(url=TARGET_IDENTITY, probability=0.05, statuses=(500,)),
            FlakyRule(url=TARGET_DNS, probability=0.04, statuses=(0,)),
            FlakyRule(url=TARGET_WHOIS, probability=0.04, statuses=(0,)),
        )
        slow_hosts = (
            # Self-hosted PDSes answer slowly and occasionally hang past
            # the client timeout.
            SlowHost(
                "https://pds.",
                base_latency_us=2 * US_PER_SECOND,
                jitter_us=US_PER_SECOND,
                timeout_probability=0.05,
            ),
        )
        return cls(
            seed=seed,
            outages=outages,
            flaky=flaky,
            slow_hosts=slow_hosts,
            disconnects=tuple(sorted(disconnects, key=lambda d: d.start_us)),
        )


@dataclass
class FaultStats:
    """What the injector actually did — reported next to the datasets."""

    injected_by_kind: Counter = field(default_factory=Counter)  # outage/flaky/timeout
    injected_by_status: Counter = field(default_factory=Counter)
    injected_by_target: Counter = field(default_factory=Counter)
    injected_latency_us: int = 0
    calls_seen: int = 0

    def total_injected(self) -> int:
        return sum(self.injected_by_kind.values())


class FaultInjector:
    """Draws faults from a plan with one seeded stream *per call*.

    Each dispatch draws from an RNG keyed by ``(plan seed, target,
    method, virtual time, occurrence)`` — never by global call order —
    so a crash/resume chain that skips already-completed work cannot
    shift later draws (the same stateless design as
    :class:`AdversarialPlan`).  That is what keeps the observability
    artefacts byte-identical between a resumed and an uninterrupted
    faulted run.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        self._draws: Counter = Counter()

    def _call_rng(self, target: str, method: str, now_us: int) -> random.Random:
        key = (target, method, now_us)
        nth = self._draws[key]
        self._draws[key] = nth + 1
        return random.Random(
            "fault:%d:%s:%s:%d:%d" % (self.plan.seed, target, method, now_us, nth)
        )

    # -- checkpoint support --------------------------------------------------

    def state(self) -> dict:
        """Snapshot for the study checkpoint journal.

        Stats and draw-occurrence counters only mutate inside deferred-
        save action boundaries, so a boundary snapshot plus an exact
        replay of the redone action reproduces them — the resumed run's
        fault accounting equals an uninterrupted run's.
        """
        return {"stats": self.stats, "draws": Counter(self._draws)}

    def adopt_state(self, state: dict) -> None:
        self.stats = state["stats"]
        self._draws = Counter(state["draws"])

    # -- XRPC path (ServiceDirectory.before dispatch) ------------------------

    def before_call(self, url: str, method: str, now_us: int) -> int:
        """Fault gate for one dispatched call.

        Raises :class:`XrpcError` when the call fails; otherwise returns
        the injected latency in microseconds (0 when the host is healthy).
        """
        self.stats.calls_seen += 1
        rng = self._call_rng(url, method, now_us)
        for outage in self.plan.outages:
            if outage.applies(url, now_us):
                self._count("outage", outage.status, url)
                raise XrpcError(
                    outage.status,
                    "injected outage: %s unreachable (%s)" % (url, method),
                    injected=True,
                    reason=REASON_INJECTED_OUTAGE,
                )
        latency = 0
        for slow in self.plan.slow_hosts:
            if not _url_matches(slow.url, url):
                continue
            drawn = slow.base_latency_us
            if slow.jitter_us:
                drawn += int(rng.random() * slow.jitter_us)
            if slow.timeout_probability and rng.random() < slow.timeout_probability:
                self.stats.injected_latency_us += slow.timeout_us
                self._count("timeout", 408, url)
                raise XrpcError(
                    408,
                    "injected timeout: %s took too long (%s)" % (url, method),
                    injected=True,
                    reason=REASON_INJECTED_TIMEOUT,
                    latency_us=slow.timeout_us,
                )
            latency += min(drawn, slow.timeout_us)
        for rule in self.plan.flaky:
            if rule.probability and rule.applies(url, now_us):
                if rng.random() < rule.probability:
                    status = rule.statuses[rng.randrange(len(rule.statuses))]
                    self._count("flaky", status, url)
                    if latency:
                        # Slow-host latency already accrued before the flaky
                        # error hit; the failed attempt still paid for it.
                        self.stats.injected_latency_us += latency
                    raise XrpcError(
                        status,
                        "injected transient %d from %s (%s)" % (status, url, method),
                        injected=True,
                        reason=REASON_INJECTED_FLAKY,
                        latency_us=latency,
                    )
        self.stats.injected_latency_us += latency
        return latency

    # -- non-XRPC probes (resolver, DNS, WHOIS) ------------------------------

    def raise_transient(self, target: str, now_us: int) -> None:
        """Fault gate for probes that bypass the service directory.

        ``target`` is one of the ``TARGET_*`` pseudo-URLs; a matching
        flaky rule may raise a transient :class:`XrpcError`.
        """
        rng = self._call_rng(target, "probe", now_us)
        for rule in self.plan.flaky:
            if rule.probability and rule.applies(target, now_us):
                if rng.random() < rule.probability:
                    status = rule.statuses[rng.randrange(len(rule.statuses))]
                    self._count("flaky", status, target)
                    raise XrpcError(
                        status,
                        "injected transient %d from %s" % (status, target),
                        injected=True,
                        reason=REASON_INJECTED_FLAKY,
                    )

    def _count(self, kind: str, status: int, target: str) -> None:
        self.stats.injected_by_kind[kind] += 1
        self.stats.injected_by_status[status] += 1
        self.stats.injected_by_target[target] += 1


# ---------------------------------------------------------------------------
# Adversarial (Byzantine) data corruption
# ---------------------------------------------------------------------------

#: Corruption modes an :class:`AdversarialPlan` can assign to a host.
CORRUPT_CAR_BITFLIP = "car-bitflip"  # random byte flipped in a repo CAR
CORRUPT_CAR_DIGEST = "car-digest-mismatch"  # block body != claimed CID digest
CORRUPT_COMMIT_KEY = "commit-wrong-key"  # commit re-signed with the wrong key
CORRUPT_FRAME = "frame-garbage"  # truncated/garbage firehose frame
CORRUPT_DIDDOC_PDS = "diddoc-wrong-pds"  # DID document claims the wrong PDS
CORRUPT_HANDLE = "handle-mismatch"  # DNS TXT / well-known answers a wrong DID

#: The modes that tamper with ``getRepo`` CAR responses.
CAR_CORRUPTION_KINDS = (CORRUPT_CAR_BITFLIP, CORRUPT_CAR_DIGEST, CORRUPT_COMMIT_KEY)

ALL_CORRUPTION_KINDS = CAR_CORRUPTION_KINDS + (
    CORRUPT_FRAME,
    CORRUPT_DIDDOC_PDS,
    CORRUPT_HANDLE,
)


def _target_matches(pattern: str, target: str) -> bool:
    """URL-prefix or domain-suffix match (handles are matched by domain)."""
    if pattern == "*":
        return True
    pattern = pattern.rstrip("/").lower()
    target = target.rstrip("/").lower()
    return target == pattern or target.startswith(pattern) or target.endswith("." + pattern)


@dataclass(frozen=True)
class CorruptionRule:
    """One poisoned host: which data it serves corrupted, and how often.

    ``host`` is a URL prefix (PDS / relay endpoints) or a bare domain
    (matched as a suffix, for handle rules).  ``param`` carries
    mode-specific data: the decoy endpoint for ``diddoc-wrong-pds``, the
    forged DID for ``handle-mismatch``.
    """

    host: str
    kind: str
    probability: float = 1.0
    param: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ALL_CORRUPTION_KINDS:
            raise ValueError("unknown corruption kind %r" % self.kind)


@dataclass(frozen=True)
class AdversarialPlan:
    """A seeded, immutable description of Byzantine hosts.

    Unlike :class:`FaultPlan` (which models *transient* unreliability),
    an adversarial plan makes chosen hosts serve data that is well-formed
    enough to reach the collectors but fails self-certification: blocks
    whose bytes do not hash to their CID, commits signed with the wrong
    key, garbage firehose frames, DID documents pointing at the wrong
    PDS, and handle-verification answers naming a DID the handle does
    not own.  Every draw is stateless (seeded per item), so the same plan
    corrupts exactly the same items in every run — and in a resumed one.
    """

    seed: int = 0
    rules: tuple[CorruptionRule, ...] = ()

    def is_empty(self) -> bool:
        return not self.rules

    def hosts(self) -> list[str]:
        seen: dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.host, None)
        return list(seen)

    @classmethod
    def poison(
        cls,
        seed: int,
        pds_hosts: tuple[str, ...] = (),
        relay_url: Optional[str] = None,
        handle_domains: tuple[str, ...] = (),
        decoy_pds: Optional[str] = None,
        frame_probability: float = 0.02,
    ) -> "AdversarialPlan":
        """A standard plan spreading every corruption mode across hosts.

        Each poisoned PDS serves one CAR-corruption mode (cycled) for all
        repos it hosts, plus wrong-PDS DID documents when ``decoy_pds``
        names the endpoint the tampered documents should claim.  The
        relay (when given) garbles a share of live firehose frames, and
        each handle domain answers ownership probes with a forged DID.
        """
        rules: list[CorruptionRule] = []
        for index, host in enumerate(pds_hosts):
            kind = CAR_CORRUPTION_KINDS[index % len(CAR_CORRUPTION_KINDS)]
            rules.append(CorruptionRule(host=host, kind=kind))
            if decoy_pds is not None and decoy_pds != host:
                rules.append(
                    CorruptionRule(host=host, kind=CORRUPT_DIDDOC_PDS, param=decoy_pds)
                )
        if relay_url is not None:
            rules.append(
                CorruptionRule(
                    host=relay_url, kind=CORRUPT_FRAME, probability=frame_probability
                )
            )
        for domain in handle_domains:
            rules.append(CorruptionRule(host=domain, kind=CORRUPT_HANDLE))
        return cls(seed=seed, rules=tuple(rules))


@dataclass
class AdversaryStats:
    """What the adversary actually tampered with during a run."""

    tampered: Counter = field(default_factory=Counter)  # (host, kind) -> count

    def total(self) -> int:
        return sum(self.tampered.values())

    def by_kind(self) -> Counter:
        out: Counter = Counter()
        for (_, kind), count in self.tampered.items():
            out[kind] += count
        return out


class Adversary:
    """Runtime that applies an :class:`AdversarialPlan` to served data.

    ``host_of`` maps a DID to the URL of its *hosting* PDS, so data
    served through the relay cache is still corrupted — and attributed —
    per origin host, the way a misbehaving federated PDS poisons
    everything downstream of it.  All draws are stateless functions of
    ``(plan seed, kind, item)``: deterministic across runs, processes,
    and checkpoint/resume boundaries.
    """

    def __init__(self, plan: AdversarialPlan, host_of=None):
        self.plan = plan
        self.host_of = host_of
        self.stats = AdversaryStats()
        from repro.atproto.keys import make_keypair

        self._wrong_keypair = make_keypair(b"adversary-wrong-key:%d" % plan.seed, fast=True)

    # -- rule / rng plumbing -------------------------------------------------

    def _rng(self, kind: str, item: str) -> random.Random:
        return random.Random("adv:%d:%s:%s" % (self.plan.seed, kind, item))

    def _rule_for(self, kind: str, host: str, item: str) -> Optional[CorruptionRule]:
        for rule in self.plan.rules:
            if rule.kind != kind or not _target_matches(rule.host, host):
                continue
            if rule.probability >= 1.0 or self._rng(kind, item).random() < rule.probability:
                return rule
        return None

    def origin_host(self, did: str, default: str) -> str:
        if self.host_of is not None:
            host = self.host_of(did)
            if host:
                return host
        return default

    def _count(self, host: str, kind: str) -> None:
        self.stats.tampered[(host, kind)] += 1

    # -- XRPC hook (ServiceDirectory, after dispatch) ------------------------

    def after_call(self, url: str, method: str, params: dict, result):
        """Tamper with a successful XRPC result on its way back."""
        if method.endswith("sync.getRepo") and isinstance(result, (bytes, bytearray)):
            did = str(params.get("did", ""))
            return self.corrupt_car(bytes(result), self.origin_host(did, url), did)
        return result

    # -- corruption modes ----------------------------------------------------

    def corrupt_car(self, car: bytes, host: str, did: str) -> bytes:
        """Apply whichever CAR-corruption rule covers this repo's host."""
        for kind in CAR_CORRUPTION_KINDS:
            rule = self._rule_for(kind, host, did)
            if rule is None:
                continue
            if kind == CORRUPT_CAR_BITFLIP:
                car = self._bitflip(car, did)
            elif kind == CORRUPT_CAR_DIGEST:
                car = self._mismatch_digest(car, did)
            else:
                car = self._resign_commit(car)
            self._count(host, kind)
            return car
        return car

    def _bitflip(self, car: bytes, did: str) -> bytes:
        rng = self._rng("bitflip-pos", did)
        # Flip a bit past the header so the damage lands in a block
        # (position and bit are a stateless function of the DID).
        lo = min(len(car) - 1, 64)
        pos = lo + rng.randrange(max(1, len(car) - lo))
        flipped = bytearray(car)
        flipped[pos] ^= 1 << rng.randrange(8)
        return bytes(flipped)

    def _mismatch_digest(self, car: bytes, did: str) -> bytes:
        """Alter one block's payload while keeping its claimed CID."""
        from repro.atproto.car import read_car, write_car

        try:
            roots, blocks = read_car(car, verify_digests=False)
        except ValueError:
            return car
        items = list(blocks.items())
        if len(items) < 2:
            return car
        rng = self._rng("digest-pos", did)
        index = 1 + rng.randrange(len(items) - 1)  # never the root commit
        cid, body = items[index]
        tampered = bytearray(body if body else b"\x00")
        tampered[rng.randrange(len(tampered))] ^= 0xFF
        items[index] = (cid, bytes(tampered))
        return write_car(roots[0], items)

    def _resign_commit(self, car: bytes) -> bytes:
        """Re-sign the root commit with the adversary's key.

        The result is fully self-consistent (every digest matches, the
        MST is intact) — only the signature check against the DID
        document's published key can catch it.
        """
        from repro.atproto.car import read_car, write_car
        from repro.atproto.cbor import cbor_decode, cbor_encode
        from repro.atproto.cid import cid_for_dag_cbor_bytes

        try:
            roots, blocks = read_car(car, verify_digests=False)
            commit = cbor_decode(blocks[roots[0]])
        except (ValueError, KeyError, IndexError):
            return car
        if not isinstance(commit, dict):
            return car
        unsigned = {k: v for k, v in commit.items() if k != "sig"}
        unsigned["sig"] = self._wrong_keypair.sign(cbor_encode(unsigned))
        block = cbor_encode(unsigned)
        new_root = cid_for_dag_cbor_bytes(block)
        rest = [(cid, body) for cid, body in blocks.items() if cid != roots[0]]
        return write_car(new_root, [(new_root, block)] + rest)

    def corrupt_frame(self, seq: int, host: str) -> Optional[bytes]:
        """Garbage bytes replacing a live firehose frame, or None."""
        rule = self._rule_for(CORRUPT_FRAME, host, "seq:%d" % seq)
        if rule is None:
            return None
        rng = self._rng("frame-bytes", "seq:%d" % seq)
        # Lead with a CBOR break byte so the frame can never decode, then
        # a short run of noise (a torn/truncated frame on the wire).
        garbage = b"\xff" + bytes(rng.randrange(256) for _ in range(rng.randrange(0, 24)))
        self._count(host, CORRUPT_FRAME)
        return garbage

    def tamper_diddoc(self, did: str, doc):
        """Return a copy of ``doc`` claiming the wrong PDS, or ``doc``."""
        if doc is None:
            return None
        host = self.origin_host(did, "")
        rule = self._rule_for(CORRUPT_DIDDOC_PDS, host, did)
        if rule is None:
            return doc
        from repro.identity.did import PDS_SERVICE_ID, DidDocument, ServiceEndpoint

        decoy = rule.param or "https://pds.invalid"
        tampered = DidDocument(
            did=doc.did,
            handle=doc.handle,
            signing_key=doc.signing_key,
            rotation_keys=doc.rotation_keys,
            services=list(doc.services),
        )
        tampered.set_service(
            ServiceEndpoint(PDS_SERVICE_ID, "AtprotoPersonalDataServer", decoy)
        )
        self._count(host, CORRUPT_DIDDOC_PDS)
        return tampered

    def forge_handle_answer(self, handle: str) -> Optional[str]:
        """A forged DID for a poisoned handle domain, or None."""
        rule = self._rule_for(CORRUPT_HANDLE, handle, handle)
        if rule is None:
            return None
        self._count(rule.host, CORRUPT_HANDLE)
        if rule.param:
            return rule.param
        rng = self._rng("forged-did", handle)
        return "did:plc:" + "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz234567") for _ in range(24)
        )


# ---------------------------------------------------------------------------
# Worker-fault injection (shard-worker death/hang/slowdown mid-run)
# ---------------------------------------------------------------------------

#: Fault kinds a :class:`WorkerFaultPlan` can schedule for a shard worker.
WORKER_FAULT_KILL = "kill"  # die without cleanup (SIGKILL / os._exit)
WORKER_FAULT_HANG = "hang"  # stay alive but stop responding and heartbeating
WORKER_FAULT_SLOW = "slow"  # keep heartbeating but delay the day's reply


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled fault: worker slot ``worker`` misbehaves at the start
    of simulated day number ``day_index`` (0-based from the run's first
    day tick).  ``slow_s`` is the injected wall-clock delay for ``slow``
    faults; kill and hang ignore it."""

    worker: int
    day_index: int
    kind: str
    slow_s: float = 0.0

    def __post_init__(self):
        if self.kind not in (WORKER_FAULT_KILL, WORKER_FAULT_HANG, WORKER_FAULT_SLOW):
            raise ValueError("unknown worker fault kind %r" % self.kind)


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A seeded, immutable schedule of shard-worker process faults.

    The supervised :class:`~repro.simulation.workers.WorkerPool` ships each
    worker its slice of the plan; faults fire inside the worker at day-tick
    receipt, *before* any state mutation, so a killed or hung worker left
    nothing half-applied and a respawned replica that replays the recorded
    day sequence reconstructs exactly the state the dead one would have
    had.  That is what keeps artefacts byte-identical to a fault-free run
    — the supervisor's restarts are invisible outside the volatile
    ``sim_worker_*`` metrics and ``supervisor.*`` trace spans.

    At most one fault per (worker, day): later duplicates in ``faults``
    are ignored by :meth:`schedule_for`.
    """

    seed: int = 0
    faults: tuple[WorkerFault, ...] = ()

    def is_empty(self) -> bool:
        return not self.faults

    def schedule_for(self, worker: int) -> tuple[WorkerFault, ...]:
        """The worker's faults, day-ordered, first-wins per day."""
        by_day: dict[int, WorkerFault] = {}
        for fault in self.faults:
            if fault.worker == worker:
                by_day.setdefault(fault.day_index, fault)
        return tuple(by_day[day] for day in sorted(by_day))

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        n_days: int,
        n_faults: int = 4,
    ) -> "WorkerFaultPlan":
        """A deterministic chaos schedule over the simulated timeline.

        Fault kinds cycle kill → hang → slow so any plan with at least
        two faults exercises both failure modes the supervisor must
        distinguish.  Days land in the first ~80% of the timeline so
        every recovery is observable before the run ends.
        """
        rng = random.Random(seed ^ 0x50FA)
        workers = max(1, workers)
        horizon = max(1, int(n_days * 0.8))
        kinds = (WORKER_FAULT_KILL, WORKER_FAULT_HANG, WORKER_FAULT_SLOW)
        faults: list[WorkerFault] = []
        used: set = set()
        for index in range(max(0, n_faults)):
            worker = rng.randrange(workers)
            day_index = 1 + rng.randrange(horizon)
            if (worker, day_index) in used:
                continue
            used.add((worker, day_index))
            kind = kinds[index % len(kinds)]
            slow_s = round(rng.uniform(0.02, 0.10), 3) if kind == WORKER_FAULT_SLOW else 0.0
            faults.append(WorkerFault(worker, day_index, kind, slow_s))
        return cls(seed=seed, faults=tuple(sorted(faults, key=lambda f: (f.day_index, f.worker))))


# ---------------------------------------------------------------------------
# Crash injection (process death mid-study)
# ---------------------------------------------------------------------------


class StudyCrashed(RuntimeError):
    """The study was killed at a seeded crash point.

    The checkpoint journal (when enabled) holds the last saved state; a
    rerun with ``resume=True`` continues from it.
    """

    def __init__(self, tick: int, label: str):
        super().__init__("study crashed at tick %d (%s)" % (tick, label))
        self.tick = tick
        self.label = label


@dataclass(frozen=True)
class CrashPlan:
    """Kill the study when the progress-tick counter hits a listed point.

    Ticks count *this process's* collection progress (scheduled actions,
    firehose ingests, per-repo and per-probe steps), so a resumed run
    gets a fresh counter — crash points compose across a chain of
    crash/resume cycles instead of re-firing at the same spot forever.
    """

    points: tuple[int, ...] = ()

    def should_crash(self, tick: int) -> bool:
        return tick in self.points

    @classmethod
    def seeded(cls, seed: int, n_points: int = 1, lo: int = 50, hi: int = 2000) -> "CrashPlan":
        rng = random.Random(seed ^ 0xC4A5)
        return cls(points=tuple(sorted(rng.randrange(lo, hi) for _ in range(n_points))))


# ---------------------------------------------------------------------------
# Retry / backoff policy shared by every collector
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter, in virtual time."""

    max_attempts: int = 5
    base_backoff_us: int = US_PER_SECOND  # first retry waits ~1s
    multiplier: float = 2.0
    max_backoff_us: int = 2 * US_PER_MINUTE
    jitter: float = 0.25  # fraction of the backoff added as jitter

    def is_retryable(self, status: int) -> bool:
        return status in TRANSIENT_STATUSES

    def backoff_us(self, attempt: int, rng: Optional[random.Random] = None) -> int:
        """Wait before retry number ``attempt`` (1-based)."""
        base = self.base_backoff_us * self.multiplier ** (attempt - 1)
        base = min(base, self.max_backoff_us)
        if rng is not None and self.jitter:
            base += base * self.jitter * rng.random()
        return int(base)


#: The default policy collectors share; a fault-free run never consults it.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_jitter_rng(tag: str, now_us: int, extra: str = "") -> random.Random:
    """A replay-stable RNG for retry backoff jitter.

    Keyed by call identity (collector tag, virtual time, optional item)
    instead of process-lifetime draw order, so a checkpoint-resumed run
    that skips completed actions draws the same jitter for the work it
    redoes — the clocks (and with them the deterministic event stream)
    stay byte-identical to an uninterrupted run.
    """
    return random.Random("retry:%s:%d:%s" % (tag, now_us, extra))


def call_with_retries(
    services,
    url: str,
    method: str,
    *,
    now_us: int,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    rng: Optional[random.Random] = None,
    counters: Optional[Counter] = None,
    params: Optional[dict] = None,
    **kwargs,
):
    """Dispatch an XRPC call, retrying transient failures with backoff.

    Returns ``(result, now_us)`` where ``now_us`` includes injected
    latency and all backoff waits (virtual time — callers decide whether
    to sleep or just account for it).  Non-retryable errors and retryable
    errors that exhaust the policy re-raise the final :class:`XrpcError`.
    ``counters`` (when given) accumulates ``attempts`` and ``retries``.
    XRPC parameters go in ``**kwargs``, or — when a name collides with
    this function's own keywords (``now_us`` et al.) — in ``params``.
    """
    call_params = dict(params) if params else {}
    call_params.update(kwargs)
    attempt = 0
    while True:
        attempt += 1
        if counters is not None:
            counters["attempts"] += 1
        services.now_us = now_us
        try:
            result = services.call(url, method, **call_params)
        except XrpcError as exc:
            # Even a failed attempt can consume virtual time (an injected
            # timeout burns its full budget before erroring); account for
            # it so the backoff clock matches what the crawler lived.
            now_us += getattr(services, "last_call_latency_us", 0)
            if not policy.is_retryable(exc.status) or attempt >= policy.max_attempts:
                raise
            if counters is not None:
                counters["retries"] += 1
            now_us += policy.backoff_us(attempt, rng)
            continue
        return result, now_us + services.last_call_latency_us

"""Commit-pipeline performance harness (``python -m repro bench``).

Benchmarks the hot loop of the study — record encoding, CID computation,
MST insertion, signed commits, weighted sampling — plus the end-to-end
tiny-scale pipeline, and writes the results to ``BENCH_perf.json`` next
to the numbers measured at the pre-optimization baseline commit so the
speedup of the fast path is always visible.

The microbenches use best-of-N wall timing (min over repeats) rather than
means: minimum time is the least noisy estimator of the true cost on a
machine with background load.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from typing import Callable, Optional

# Measured at the seed commit (before the fast path: per-call cbor
# re-encoding, unmemoized MST layers, triple commit encoding, eager frame
# encoding, O(n) rng.choices rebuilds) on the same container class that
# runs the suite.  Kept here so every re-run of the harness reports the
# speedup against the same reference point.
BASELINE = {
    "cbor_encode_ops_per_s": 52673.45434357205,
    "cid_for_cbor_ops_per_s": 41816.74058901543,
    "mst_insert_with_root_cid_ops_per_s": 2935.206928749629,
    "repo_create_record_ops_per_s": 1730.1130090527527,
    "weighted_sample_ops_per_s": 59124.93791140566,
    "pipeline_tiny_wall_s": 6.189338619000068,
    "pipeline_tiny_firehose_events": 2888,
    "pipeline_tiny_events_per_s": 466.608821681593,
    # The sharded-engine family is referenced against the same seed-commit
    # single-process wall time: each row answers "how does the tiny
    # pipeline at N workers compare to the unsharded seed engine".  The
    # honest workers-vs-workers scaling number lives in
    # ``pipeline_tiny_workers4_speedup_vs_workers1`` (next to
    # ``cpu_count``: on a single-core container it cannot exceed ~1x and
    # the determinism guardrail is the enforceable property).
    "pipeline_tiny_workers1_wall_s": 6.189338619000068,
    "pipeline_tiny_workers2_wall_s": 6.189338619000068,
    "pipeline_tiny_workers4_wall_s": 6.189338619000068,
    # Read-path reference: the uncached scan paths (seed-commit read
    # semantics, caches off) measured by bench_read_path on the same
    # container class.  The cached columns in BENCH_perf.json read
    # against these, so the index/cache win is always visible.
    "timeline_ops_per_s": 2085.0,
    "getfeed_ops_per_s": 4658.0,
    "search_ops_per_s": 4773.0,
}

# A representative post record (matches what the engine writes).
SAMPLE_RECORD = {
    "$type": "app.bsky.feed.post",
    "text": "lorem ipsum dolor sit amet consectetur adipiscing elit sed do",
    "createdAt": "2024-03-06T12:00:00.000Z",
    "langs": ["en"],
    "embed": {"images": [{"alt": "description of the image"}]},
}


def best_of(fn: Callable[[], object], repeats: int = 5) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def bench_cbor(n: int = 20000, repeats: int = 5) -> dict:
    from repro.atproto.cbor import cbor_encode
    from repro.atproto.cid import cid_for_cbor

    record = dict(SAMPLE_RECORD)
    return {
        "cbor_encode_ops_per_s": n / best_of(
            lambda: [cbor_encode(record) for _ in range(n)], repeats
        ),
        "cid_for_cbor_ops_per_s": n / best_of(
            lambda: [cid_for_cbor(record) for _ in range(n)], repeats
        ),
    }


def bench_mst(n: int = 2000, repeats: int = 3) -> dict:
    from repro.atproto.cid import Cid
    from repro.atproto.mst import Mst

    cids = [Cid(1, 0x71, hashlib.sha256(b"%d" % i).digest()) for i in range(n)]
    keys = ["app.bsky.feed.post/3k%08d" % i for i in range(n)]

    def run():
        tree = Mst()
        for key, cid in zip(keys, cids):
            tree.set(key, cid)
            tree.root_cid()  # per-commit root recomputation, as the repo does

    return {"mst_insert_with_root_cid_ops_per_s": n / best_of(run, repeats)}


def bench_commit(n: int = 2000, repeats: int = 3) -> dict:
    from repro.atproto.keys import make_keypair
    from repro.atproto.repo import Repo

    record = dict(SAMPLE_RECORD)

    def run():
        repo = Repo("did:plc:bench", make_keypair(b"bench"))
        for i in range(n):
            repo.create_record("app.bsky.feed.post", dict(record), i * 1000 + 1)

    return {"repo_create_record_ops_per_s": n / best_of(run, repeats)}


def bench_sampling(pool: int = 5000, rounds: int = 300, k: int = 10, repeats: int = 3) -> dict:
    from repro.simulation.sampling import CumulativeSampler

    population = list(range(pool))
    weights = [random.Random(7).random() + 0.01 for _ in population]
    sampler = CumulativeSampler(population, weights)
    rng = random.Random(42)

    def run():
        for _ in range(rounds):
            sampler.sample_k(rng, k)

    return {"weighted_sample_ops_per_s": rounds * k / best_of(run, repeats)}


def bench_pipeline(repeats: int = 2) -> dict:
    from repro.core.pipeline import run_study
    from repro.simulation.config import SimulationConfig

    wall = None
    events = 0
    phases: dict = {}
    for _ in range(repeats):  # best-of, like the microbenches
        t0 = time.perf_counter()
        _, datasets = run_study(SimulationConfig.tiny())
        elapsed = time.perf_counter() - t0
        events = datasets.firehose.total_events()
        if wall is None or elapsed < wall:
            wall = elapsed
            # Phase-level attribution of the best run: where the wall
            # seconds went (telemetry's per-phase profiler).
            phases = {
                name: round(wall_us / 1e6, 4)
                for name, _runs, _virtual_us, wall_us in datasets.telemetry.phase_rows()
            }
    return {
        "pipeline_tiny_wall_s": wall,
        "pipeline_tiny_firehose_events": events,
        "pipeline_tiny_events_per_s": events / wall,
        "pipeline_phase_wall_s": phases,
    }


def bench_sharded_pipeline(repeats: int = 1) -> dict:
    """Tiny pipeline at 1/2/4 worker processes + determinism guardrail.

    Times the end-to-end tiny study at each worker count and — the part
    that is enforced rather than merely reported — asserts that every
    worker count produces the same artefact fingerprint (Table 1,
    metrics.json, firehose counters, and the wire-frame stream digest)
    as the single-process run.  ``cpu_count`` is recorded alongside the
    wall times so the scaling numbers can be read honestly: on a
    single-core container the 4-worker run cannot beat the 1-worker run.
    """
    import os

    from repro.core.export import firehose_frame_observer, study_fingerprint
    from repro.core.pipeline import MeasurementPipeline
    from repro.simulation.config import SimulationConfig
    from repro.simulation.world import World

    results: dict = {"cpu_count": os.cpu_count() or 1}
    fingerprints: dict[int, str] = {}
    for workers in (1, 2, 4):
        wall = None
        for _ in range(repeats):
            world = World(SimulationConfig.tiny())
            frame_digest = firehose_frame_observer(world)
            pipeline = MeasurementPipeline(world, workers=workers)
            t0 = time.perf_counter()
            datasets = pipeline.run()
            elapsed = time.perf_counter() - t0
            wall = elapsed if wall is None else min(wall, elapsed)
            fingerprints[workers] = study_fingerprint(datasets, frame_digest)
        results["pipeline_tiny_workers%d_wall_s" % workers] = wall
    if len(set(fingerprints.values())) != 1:
        raise AssertionError(
            "sharded determinism guardrail violated: artefact fingerprints "
            "diverge across worker counts: %r" % fingerprints
        )
    results["sharded_artefacts_identical"] = True
    results["pipeline_tiny_workers4_speedup_vs_workers1"] = round(
        results["pipeline_tiny_workers1_wall_s"]
        / results["pipeline_tiny_workers4_wall_s"],
        3,
    )

    # --- supervision legs -------------------------------------------------
    # (a) heartbeats off (the pre-supervision blocking-recv pool): the
    #     reference against which the always-on supervision machinery's
    #     overhead on a fault-free run is judged (guardrail: <5%).
    # (b) worker faults on (SIGKILL + hang, restart-and-replay): the
    #     recovery cost, recorded with its own byte-identity guardrail.
    from repro.netsim.faults import (
        WORKER_FAULT_HANG,
        WORKER_FAULT_KILL,
        WorkerFault,
        WorkerFaultPlan,
    )
    from repro.simulation.workers import SupervisionPolicy

    # Interleave the two legs (and fold the supervised times into the
    # scaling metric's best-of) so slow machine-load drift between legs
    # can't masquerade as supervision overhead.
    supervised_wall = results["pipeline_tiny_workers4_wall_s"]
    legacy_wall = None
    for _ in range(max(2, repeats)):
        for legacy in (False, True):
            world = World(SimulationConfig.tiny())
            pipeline = MeasurementPipeline(
                world,
                workers=4,
                supervision=SupervisionPolicy(heartbeats=False) if legacy else None,
            )
            t0 = time.perf_counter()
            pipeline.run()
            elapsed = time.perf_counter() - t0
            if legacy:
                legacy_wall = (
                    elapsed if legacy_wall is None else min(legacy_wall, elapsed)
                )
            else:
                supervised_wall = min(supervised_wall, elapsed)
    results["pipeline_tiny_workers4_wall_s"] = supervised_wall
    results["pipeline_tiny_workers4_speedup_vs_workers1"] = round(
        results["pipeline_tiny_workers1_wall_s"] / supervised_wall, 3
    )
    results["pipeline_tiny_workers4_nosupervision_wall_s"] = legacy_wall
    results["supervision_overhead_pct"] = round(
        (supervised_wall - legacy_wall) / legacy_wall * 100, 2
    )

    chaos_plan = WorkerFaultPlan(
        seed=0,
        faults=(
            WorkerFault(0, 5, WORKER_FAULT_KILL),
            WorkerFault(1, 9, WORKER_FAULT_HANG),
        ),
    )
    chaos_policy = SupervisionPolicy(
        poll_interval_s=0.02,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.5,
        restart_backoff_s=0.01,
    )
    faulted_wall = None
    faulted_fingerprint = None
    for _ in range(repeats):
        world = World(SimulationConfig.tiny())
        frame_digest = firehose_frame_observer(world)
        pipeline = MeasurementPipeline(
            world, workers=4, worker_fault_plan=chaos_plan, supervision=chaos_policy
        )
        t0 = time.perf_counter()
        datasets = pipeline.run()
        elapsed = time.perf_counter() - t0
        faulted_wall = elapsed if faulted_wall is None else min(faulted_wall, elapsed)
        faulted_fingerprint = study_fingerprint(datasets, frame_digest)
    if faulted_fingerprint != fingerprints[1]:
        raise AssertionError(
            "supervision determinism guardrail violated: faulted workers=4 "
            "fingerprint %r != fault-free workers=1 fingerprint %r"
            % (faulted_fingerprint, fingerprints[1])
        )
    results["sharded_faulted_artefacts_identical"] = True
    results["pipeline_tiny_workers4_faulted_wall_s"] = faulted_wall
    return results


def _build_read_appview(cached: bool):
    """An AppView + whole-network feed host over a synthetic population.

    Returns ``(appview, feed_uri, actor_dids, now_us, registry)``.  The
    same event stream feeds both the ``cached=True`` build (timeline
    index, hydrated-view caches, skeleton cache) and the ``cached=False``
    build (the reference scan paths), so the two sides of every read
    microbenchmark answer byte-identical responses.
    """
    from repro.atproto.events import CommitEvent, CommitOp
    from repro.identity.plc import PlcDirectory
    from repro.identity.resolver import DidResolver
    from repro.netsim.web import WebHostRegistry
    from repro.services.appview import AppView
    from repro.services.feedgen import (
        CuratedFeed,
        FeedGeneratorHost,
        FeedRule,
        PostFeatures,
        tokenize,
    )
    from repro.services.labeler import Label
    from repro.services.xrpc import ServiceDirectory

    n_users, follows_per_user, posts_per_user = 32, 12, 150

    services = ServiceDirectory()
    resolver = DidResolver(PlcDirectory(), WebHostRegistry())
    appview = AppView(
        "https://api.bsky.app",
        resolver,
        services,
        index_search=True,
        index_timelines=cached,
        cache_views=cached,
        telemetry=services.telemetry,
    )
    services.register(appview.url, appview)

    class UncachedFeed(CuratedFeed):
        def _cache_token(self, viewer):
            return None  # force a full entries() rebuild per skeleton call

    host = FeedGeneratorHost(
        "did:web:feeds.bench.example",
        "https://feeds.bench.example",
        telemetry=services.telemetry,
    )
    services.register(host.endpoint, host)
    dids = ["did:plc:bench%04d" % index for index in range(n_users)]
    feed_uri = "at://%s/app.bsky.feed.generator/bench" % dids[0]
    feed_cls = CuratedFeed if cached else UncachedFeed
    feed = feed_cls(feed_uri, FeedRule(whole_network=True))
    host.add_feed(feed)

    seq = 0
    now_us = 1_700_000_000_000_000

    def emit(did, collection, rkey, record):
        nonlocal seq, now_us
        seq += 1
        now_us += 1_000
        op = CommitOp("create", "%s/%s" % (collection, rkey), None, record)
        appview.consume_event(CommitEvent(seq=seq, did=did, time_us=now_us, ops=(op,)))
        return now_us

    emit(
        dids[0],
        "app.bsky.feed.generator",
        "bench",
        {"did": host.service_did, "displayName": "bench", "createdAt": "2024-03-06"},
    )
    for index, did in enumerate(dids):
        for offset in range(1, follows_per_user + 1):
            emit(
                did,
                "app.bsky.graph.follow",
                "f%04d" % offset,
                {"subject": dids[(index + offset) % n_users]},
            )
    label_seq = 0
    for round_no in range(posts_per_user):
        for index, did in enumerate(dids):
            text = "post %d by user %d lorem ipsum dolor sit amet" % (round_no, index)
            if (round_no * n_users + index) % 16 == 0:
                text += " benchtoken"
            time_us = emit(
                did,
                "app.bsky.feed.post",
                "3k%03d%03d" % (round_no, index),
                {"text": text, "createdAt": "2024-03-06", "langs": ["en"]},
            )
            uri = "at://%s/app.bsky.feed.post/3k%03d%03d" % (did, round_no, index)
            feed.ingest(
                PostFeatures(
                    uri=uri,
                    author=did,
                    time_us=time_us,
                    text=text,
                    langs=("en",),
                    tokens=frozenset(tokenize(text)),
                )
            )
            # A few labels per post make hydration realistically label-
            # heavy (the cost the hydrated-view cache amortises).
            for val in ("spam", "rude", "nudity", "gore", "misleading", "graphic-media", "sexual", "intolerant"):
                label_seq += 1
                appview._ingest_label(
                    Label(
                        seq=label_seq,
                        src="did:plc:benchlabeler",
                        uri=uri,
                        val=val,
                        neg=False,
                        cts=time_us,
                    )
                )
    return appview, feed_uri, dids, now_us, services.telemetry.registry


def bench_read_path(repeats: int = 3) -> dict:
    """Timeline / getFeed / searchPosts throughput, cached vs uncached.

    The ``*_ops_per_s`` metrics exercise the index-backed + cached read
    path; the ``*_uncached_ops_per_s`` twins run the reference scan paths
    on an identically-populated AppView.  ``read_cache_counters`` records
    the deterministic hit/miss totals of the cached run (the CI guardrail
    asserts they are present and that cached ≥ 5x uncached).
    """
    from repro.obs.metrics import READ_CACHE_HITS, READ_CACHE_MISSES

    results: dict = {}
    registry = None
    for suffix, cached in (("", True), ("_uncached", False)):
        appview, feed_uri, dids, now_us, reg = _build_read_appview(cached)
        if cached:
            registry = reg
        calls = 400

        def run_timeline():
            for index in range(calls):
                appview.xrpc_getTimeline(dids[index % len(dids)], limit=50)

        def run_getfeed():
            for _ in range(calls):
                appview.xrpc_getFeed(feed_uri, limit=50, now_us=now_us)

        def run_search():
            for _ in range(calls):
                appview.xrpc_searchPosts("benchtoken", limit=25)

        results["timeline%s_ops_per_s" % suffix] = calls / best_of(run_timeline, repeats)
        results["getfeed%s_ops_per_s" % suffix] = calls / best_of(run_getfeed, repeats)
        results["search%s_ops_per_s" % suffix] = calls / best_of(run_search, repeats)
    counters = registry.snapshot()["counters"]
    results["read_cache_counters"] = {
        key: value
        for key, value in counters.items()
        if key.startswith((READ_CACHE_HITS, READ_CACHE_MISSES))
    }
    return results


def bench_telemetry_overhead(repeats: int = 2) -> dict:
    """End-to-end cost of the always-on telemetry (guardrail: <5%).

    Times the tiny pipeline with telemetry disabled and reports the
    relative overhead of the instrumented run measured by
    :func:`bench_pipeline` (which must run first).
    """
    from repro.core.pipeline import run_study
    from repro.obs.telemetry import Telemetry
    from repro.simulation.config import SimulationConfig

    wall = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_study(SimulationConfig.tiny(), telemetry=Telemetry.disabled())
        elapsed = time.perf_counter() - t0
        wall = elapsed if wall is None else min(wall, elapsed)
    return {"pipeline_tiny_no_telemetry_wall_s": wall}


def bench_slo_overhead(repeats: int = 3) -> dict:
    """Cost of the SLO/observability export relative to the study (<5%).

    Runs the tiny pipeline once to get a populated registry + event log,
    then times the full artefact rendering — OpenMetrics exposition,
    ``slo.json`` evaluation, ``events.jsonl`` serialization — against the
    pipeline wall measured in the same process, so the ratio is robust
    to the absolute speed of the machine.  ``scripts/check_bench.py``
    enforces the guardrail on ``slo_overhead_pct``.
    """
    from repro.core.pipeline import run_study
    from repro.obs.slo import slo_json, study_window_days
    from repro.simulation.config import SimulationConfig

    t0 = time.perf_counter()
    _, datasets = run_study(SimulationConfig.tiny())
    pipeline_wall = time.perf_counter() - t0
    telemetry = datasets.telemetry
    window_days = study_window_days()

    def export():
        snapshot = telemetry.registry.snapshot()
        telemetry.metrics_openmetrics()
        slo_json(snapshot, window_days=window_days)
        telemetry.events_jsonl()

    export_wall = best_of(export, repeats)
    return {
        "slo_export_wall_s": export_wall,
        "slo_pipeline_reference_wall_s": pipeline_wall,
        "slo_overhead_pct": round(export_wall / pipeline_wall * 100, 2),
    }


def run_benchmarks(include_pipeline: bool = True, progress=None) -> dict:
    """Run every bench; returns a flat {metric: value} dict."""
    results: dict = {}
    stages = [bench_cbor, bench_mst, bench_commit, bench_sampling, bench_read_path]
    if include_pipeline:
        stages.extend(
            [
                bench_pipeline,
                bench_sharded_pipeline,
                bench_telemetry_overhead,
                bench_slo_overhead,
            ]
        )
    for stage in stages:
        if progress is not None:
            progress("running %s..." % stage.__name__)
        results.update(stage())
    instrumented = results.get("pipeline_tiny_wall_s")
    baseline = results.get("pipeline_tiny_no_telemetry_wall_s")
    if instrumented and baseline:
        results["telemetry_overhead_pct"] = round(
            (instrumented - baseline) / baseline * 100, 2
        )
    return results


def speedups(measured: dict, baseline: Optional[dict] = None) -> dict:
    """Per-metric speedup factors vs the baseline (higher is better)."""
    baseline = BASELINE if baseline is None else baseline
    factors = {}
    for key, base in baseline.items():
        value = measured.get(key)
        if value is None or not base:
            continue
        if key.endswith("_wall_s"):  # lower is better
            factors[key] = base / value
        elif key.endswith("_per_s"):
            factors[key] = value / base
    return factors


def render_report(measured: dict, factors: dict) -> str:
    lines = ["| Metric | Baseline | Now | Speedup |", "|---|---|---|---|"]
    for key, base in BASELINE.items():
        value = measured.get(key)
        if value is None:
            continue
        factor = factors.get(key)
        factor_cell = "%.2fx" % factor if factor is not None else "—"
        lines.append(
            "| %s | %s | %s | %s |" % (key, _fmt(base), _fmt(value), factor_cell)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, int):
        return str(value)
    return "%.1f" % value if value >= 100 else "%.3f" % value


def write_bench_file(path: str, measured: dict) -> dict:
    """Assemble and write the BENCH_perf.json document."""
    factors = speedups(measured)
    document = {
        "generated_with": "python -m repro bench",
        "baseline": BASELINE,
        "optimized": measured,
        "speedup": {k: round(v, 3) for k, v in factors.items()},
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document


def main(out_path: str = "BENCH_perf.json", quiet: bool = False) -> int:
    progress = None if quiet else (lambda msg: print("  " + msg))
    measured = run_benchmarks(progress=progress)
    document = write_bench_file(out_path, measured)
    if not quiet:
        print()
        print(render_report(measured, speedups(measured)))
        print()
        print("wrote %s" % out_path)
    end_to_end = document["speedup"].get("pipeline_tiny_wall_s")
    if end_to_end is not None and not quiet:
        print("end-to-end pipeline speedup: %.2fx" % end_to_end)
    overhead = measured.get("telemetry_overhead_pct")
    if overhead is not None and not quiet:
        print("telemetry overhead: %.2f%% (instrumented vs --no-telemetry)" % overhead)
    slo_overhead = measured.get("slo_overhead_pct")
    if slo_overhead is not None and not quiet:
        print(
            "SLO/export overhead: %.2f%% (metrics.prom + slo.json + "
            "events.jsonl render vs pipeline wall)" % slo_overhead
        )
    if measured.get("sharded_artefacts_identical") and not quiet:
        print(
            "sharded determinism guardrail: artefacts identical at workers "
            "1/2/4 (cpu_count=%d, workers4 vs workers1 wall: %.2fx)"
            % (
                measured.get("cpu_count", 1),
                measured.get("pipeline_tiny_workers4_speedup_vs_workers1", 0.0),
            )
        )
    return 0

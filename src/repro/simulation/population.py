"""The synthetic user population.

Generates per-user specs — signup date, language, engagement, follow
attractiveness, content habits, identity choices — calibrated to
Sections 4 and 5: 98.9% of handles under ``bsky.social``, a long tail of
subdomain providers and self-managed domains, 98.7% DNS-TXT verification,
six ``did:web`` identities, registrar shares per Table 2.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.simulation import vocab
from repro.simulation.clock import US_PER_DAY, date_us
from repro.simulation.config import LANGUAGES, PAPER, PUBLIC_OPENING_US, SimulationConfig

HANDLE_BSKY = "bsky.social"
IDENTITY_PLC = "plc"
IDENTITY_WEB = "web"

# Tranco-ranked organisations whose domains appear as handles (Section 5).
RANKED_ORG_DOMAINS = (
    "amazonaws.com",
    "microsoft.com",
    "cloudflare.com",
    "cnn.com",
    "nytimes.com",
    "washingtonpost.com",
    "stanford.edu",
    "columbia.edu",
)


@dataclass
class UserSpec:
    """Static attributes of one simulated user."""

    index: int
    username: str
    handle: str
    lang: str
    signup_us: int
    identity_method: str = IDENTITY_PLC
    # Behavioural rates.
    engagement: float = 1.0  # daily-activity weight
    attractiveness: float = 1.0  # follow-target weight (power law)
    follow_initial: int = 10  # follows performed shortly after signup
    # Content habits (per-post probabilities).
    media_rate: float = 0.15
    missing_alt_rate: float = 0.55
    nsfw_rate: float = 0.0
    tenor_rate: float = 0.02
    screenshot_rate: float = 0.02
    ai_tag_rate: float = 0.01
    ff14_rate: float = 0.0
    # Identity management.
    custom_domain: Optional[str] = None  # non-bsky.social handles
    registered_domain: Optional[str] = None
    verification_mechanism: str = "dns-txt"  # or "well-known"
    # Lifecycle.
    will_change_handle: bool = False
    handle_changes: int = 0
    final_handle_custom: bool = False
    will_tombstone: bool = False
    # Social role.
    is_official: bool = False
    is_newspaper: bool = False
    is_impersonator: bool = False
    is_whitewind_blogger: bool = False
    profile_description: str = ""

    @property
    def is_bsky_handle(self) -> bool:
        return self.handle.endswith("." + HANDLE_BSKY)


@dataclass
class PopulationPlan:
    """All user specs plus derived registrar/domain assignments."""

    users: list[UserSpec] = field(default_factory=list)
    # registered domain -> (registrar_name, is_cctld)
    domain_registrations: dict[str, tuple[str, bool]] = field(default_factory=dict)
    # running per-registrar counts for quota-based assignment
    registrar_counts: dict[str, int] = field(default_factory=dict)

    def by_signup(self) -> list[UserSpec]:
        return sorted(self.users, key=lambda u: u.signup_us)


# Registrar share targets among IANA-extractable domains (Table 2).
REGISTRAR_SHARES = (
    ("NameCheap, Inc.", 0.2094),
    ("CloudFlare, Inc.", 0.1146),
    ("Squarespace Domains", 0.1130),
    ("GoDaddy.com, LLC", 0.0719),
    ("Porkbun, LLC", 0.0685),
    ("Tucows Domains Inc.", 0.0593),
    ("GMO Internet Group", 0.0456),
)
LONG_TAIL_REGISTRAR_SHARE = 1.0 - sum(share for _, share in REGISTRAR_SHARES)
LONG_TAIL_REGISTRAR_COUNT = 242  # 249 total - 7 named


def _signup_weight_profile(day_us: int, lang: str, brazil_ban: bool = False) -> float:
    """Relative signup intensity by date and language (Figures 1 and 2)."""
    # Base curve: a tiny invite-only start ("mere hundreds" of actives in
    # December 2022), strong growth through spring 2023 reaching hundreds
    # of thousands by July, stagnation, then the public opening bump in
    # February 2024.
    if day_us < date_us("2023-03-01"):
        base = 0.01
    elif day_us < date_us("2023-07-01"):
        ramp = (day_us - date_us("2023-03-01")) / (date_us("2023-07-01") - date_us("2023-03-01"))
        base = 0.3 + 1.2 * ramp
    elif day_us < date_us("2023-08-01"):
        base = 1.8
    elif day_us < PUBLIC_OPENING_US:
        base = 0.5
    elif day_us < date_us("2024-03-01"):
        base = 3.0
    else:
        base = 0.9
    if lang == "ja" and day_us >= PUBLIC_OPENING_US:
        base *= 1.9  # Japanese community grew strongly at the public opening
    if lang == "de" and day_us >= PUBLIC_OPENING_US:
        base *= 0.45  # German community largely unaffected
    if lang == "pt":
        if brazil_ban and day_us >= date_us("2024-08-30"):
            # Footnote 6 / CNBC: after X was banned in Brazil, Bluesky
            # "attract[ed] millions in Brazil" — an order of magnitude
            # beyond the April marketing bump.
            base *= 260.0
        elif date_us("2024-04-01") <= day_us < date_us("2024-05-01"):
            base *= 30.0  # April 2024 Portuguese surge (3K → 30K actives)
        elif day_us >= date_us("2024-05-01"):
            base *= 6.0  # the grown community keeps joining post-surge
        else:
            base *= 0.06
    return base


def sample_signup_us(
    rng: random.Random, lang: str, start_us: int, end_us: int, brazil_ban: bool = False
) -> int:
    """Rejection-sample a signup time from the intensity profile."""
    max_weight = 240.0 if (brazil_ban and lang == "pt") else 30.0
    span_days = (end_us - start_us) // US_PER_DAY
    while True:
        day = rng.randrange(span_days)
        day_us = start_us + day * US_PER_DAY
        weight = min(max_weight, _signup_weight_profile(day_us, lang, brazil_ban))
        if rng.random() * max_weight <= weight:
            return day_us + rng.randrange(US_PER_DAY)


def _pick_language(rng: random.Random) -> str:
    return vocab.pick_weighted(rng, [(tag, share) for tag, share, _ in LANGUAGES])


def _assign_content_habits(rng: random.Random, user: UserSpec) -> None:
    # Rates are calibrated so window label volumes match Table 6 shares:
    # media posts missing alt text ≈ 3.5% of posts (BAATL's 72.9% share),
    # NSFW ≈ 1% (official porn/sexual/nudity ≈ 15%), tenor / screenshots /
    # AI tags each a few per mille (4.0% / 4.1% / 3.0% shares).
    user.media_rate = min(0.9, rng.gammavariate(2.0, 0.06))
    user.missing_alt_rate = rng.uniform(0.15, 0.45)
    if rng.random() < 0.008:
        user.nsfw_rate = rng.uniform(0.3, 0.95)  # dedicated NSFW accounts
    elif rng.random() < 0.04:
        user.nsfw_rate = rng.uniform(0.01, 0.08)
    user.tenor_rate = rng.uniform(0.0, 0.004)
    user.screenshot_rate = rng.uniform(0.0, 0.004)
    user.ai_tag_rate = rng.uniform(0.0, 0.003)
    if user.lang == "ja" and rng.random() < 0.04:
        user.ff14_rate = rng.uniform(0.005, 0.05)


def _assign_handle(
    rng: random.Random,
    user: UserSpec,
    plan: PopulationPlan,
    provider_pool: list[str],
    config: SimulationConfig,
) -> None:
    """Choose bsky.social vs provider subdomain vs self-managed domain."""
    roll = rng.random()
    if roll < PAPER["bsky_social_handle_share"]:
        user.handle = "%s.%s" % (user.username, HANDLE_BSKY)
        return
    # Non-default handle: split between shared providers (~10% of the
    # non-default tail, per the Figure 3 provider counts) and self-managed.
    if provider_pool and rng.random() < 0.10:
        provider = provider_pool[rng.randrange(len(provider_pool))]
        user.handle = "%s.%s" % (user.username, provider)
        user.custom_domain = provider
        user.registered_domain = provider
    elif rng.random() < PAPER["tranco_top1m_share"]:
        domain = RANKED_ORG_DOMAINS[rng.randrange(len(RANKED_ORG_DOMAINS))]
        user.handle = "%s.%s" % (user.username, domain)
        user.custom_domain = domain
        user.registered_domain = domain
        _register_domain(rng, plan, domain, is_cctld=False)
    else:
        tld, is_cctld = _pick_tld(rng)
        domain = "%s.%s" % (user.username, tld)
        if rng.random() < 0.35:
            user.handle = domain  # apex-domain handle
        else:
            user.handle = "me.%s" % domain
        user.custom_domain = domain
        user.registered_domain = domain
        _register_domain(rng, plan, domain, is_cctld)
    mech_roll = rng.random()
    user.verification_mechanism = (
        "dns-txt" if mech_roll < PAPER["dns_txt_mechanism_share"] else "well-known"
    )


def _pick_tld(rng: random.Random) -> tuple[str, bool]:
    point = rng.random() * sum(w for _, w, _ in vocab.SELF_MANAGED_TLDS)
    cumulative = 0.0
    for tld, weight, is_cctld in vocab.SELF_MANAGED_TLDS:
        cumulative += weight
        if point <= cumulative:
            return tld, is_cctld
    return "com", False


def _register_domain(
    rng: random.Random, plan: PopulationPlan, domain: str, is_cctld: bool
) -> None:
    if domain in plan.domain_registrations:
        return
    if is_cctld:
        registrar = "ccTLD Registry Partner %02d" % rng.randrange(12)
    else:
        # Quota-based assignment: pick the registrar furthest below its
        # Table 2 target share, so the shares hold even for the small
        # domain populations produced at test scales.
        # Each long-tail registrar competes with its own (tiny) share, so
        # the named Table 2 registrars fill first, in share order.
        total = sum(plan.registrar_counts.values())
        tail_share = LONG_TAIL_REGISTRAR_SHARE / LONG_TAIL_REGISTRAR_COUNT
        best_name, best_deficit = None, float("-inf")
        for name, share in REGISTRAR_SHARES:
            current = plan.registrar_counts.get(name, 0)
            deficit = share * (total + 1) - current
            if deficit > best_deficit:
                best_deficit = deficit
                best_name = name
        for index in range(LONG_TAIL_REGISTRAR_COUNT):
            name = "Registrar %03d LLC" % index
            deficit = tail_share * (total + 1) - plan.registrar_counts.get(name, 0)
            if deficit > best_deficit:
                best_deficit = deficit
                best_name = name
        registrar = best_name
        plan.registrar_counts[registrar] = plan.registrar_counts.get(registrar, 0) + 1
    plan.domain_registrations[domain] = (registrar, is_cctld)


def build_population(config: SimulationConfig) -> PopulationPlan:
    """Generate the full user population for a configuration."""
    rng = random.Random(config.seed)
    plan = PopulationPlan()
    provider_pool = [name for name, _count in vocab.SUBDOMAIN_PROVIDERS]
    for provider, _ in vocab.SUBDOMAIN_PROVIDERS:
        _register_domain(rng, plan, provider, is_cctld=False)

    n_users = config.n_users
    for index in range(n_users):
        lang = _pick_language(rng)
        username = vocab.make_username(rng, index)
        user = UserSpec(
            index=index,
            username=username,
            handle="",  # assigned below
            lang=lang,
            signup_us=sample_signup_us(
                rng, lang, config.start_us, config.end_us, config.brazil_ban_scenario
            ),
        )
        # Engagement: lognormal daily-activity weight.
        user.engagement = math.exp(rng.gauss(0.0, 1.0))
        # Attractiveness: Pareto tail for the follower distribution.
        user.attractiveness = rng.paretovariate(1.25)
        user.follow_initial = min(200, max(1, int(rng.paretovariate(1.4) * 6)))
        _assign_content_habits(rng, user)
        _assign_handle(rng, user, plan, provider_pool, config)
        # Lifecycle events.
        if rng.random() < PAPER["handle_update_unique_dids"] / PAPER["users"]:
            user.will_change_handle = True
            user.handle_changes = 1 + (rng.random() < 0.3) + (rng.random() < 0.1)
            user.final_handle_custom = rng.random() > PAPER["final_handle_bsky_share"]
        if rng.random() < 0.015:
            user.will_tombstone = True
        if rng.random() < 0.01:
            user.is_whitewind_blogger = True
        plan.users.append(user)

    # Guarantee a couple of handle-changers and WhiteWind bloggers even at
    # tiny test scales (at realistic scales the probabilistic assignment
    # dominates and these floors are already exceeded).
    if sum(1 for u in plan.users if u.will_change_handle) < 2:
        for user in rng.sample(plan.users, k=min(2, len(plan.users))):
            user.will_change_handle = True
            user.handle_changes = 1
            user.final_handle_custom = rng.random() > PAPER["final_handle_bsky_share"]
    if sum(1 for u in plan.users if u.is_whitewind_blogger) < 2:
        # Prefer long-lived, engaged accounts so the blog entries exist by
        # the time the repository snapshot is taken.
        candidates = [
            u
            for u in plan.users
            if u.signup_us < date_us("2024-01-01") and not u.will_tombstone
        ] or list(plan.users)
        candidates.sort(key=lambda u: -u.engagement)
        for user in candidates[:2]:
            user.is_whitewind_blogger = True

    # Keep the official labeler's automated pipeline exercised at any
    # scale: a couple of dedicated NSFW accounts must exist (0.8% of users
    # at full scale, but tiny worlds can roll zero).
    if sum(1 for u in plan.users if u.nsfw_rate > 0.3) < 2:
        candidates = [u for u in plan.users if not u.will_tombstone and not u.is_official]
        candidates.sort(key=lambda u: u.signup_us)
        for user in candidates[: min(2, len(candidates))]:
            user.nsfw_rate = rng.uniform(0.4, 0.9)

    # Keep the Tranco cross-reference exercised at any scale: at least one
    # handle under a top-1M organisation domain (paper: 2.8% of domains).
    if not any(u.registered_domain in RANKED_ORG_DOMAINS for u in plan.users):
        candidates = [u for u in plan.users if u.is_bsky_handle and not u.will_tombstone]
        if candidates:
            user = candidates[rng.randrange(len(candidates))]
            domain = RANKED_ORG_DOMAINS[rng.randrange(len(RANKED_ORG_DOMAINS))]
            user.handle = "%s.%s" % (user.username, domain)
            user.custom_domain = domain
            user.registered_domain = domain
            user.verification_mechanism = "dns-txt"
            _register_domain(rng, plan, domain, is_cctld=False)

    # did:web identities: a fixed, tiny absolute count (paper found six).
    web_users = [u for u in plan.users if u.custom_domain and not u.will_tombstone]
    rng.shuffle(web_users)
    for user in web_users[: min(6, len(web_users))]:
        user.identity_method = IDENTITY_WEB

    _designate_special_accounts(rng, plan, config)
    return plan


def _designate_special_accounts(
    rng: random.Random, plan: PopulationPlan, config: SimulationConfig
) -> None:
    """Official account, newspapers, and the most-blocked impersonators."""
    from repro.simulation.clock import US_PER_DAY

    users = plan.users
    if not users:
        return
    by_attr = sorted(users, key=lambda u: u.attractiveness, reverse=True)
    official = by_attr[0]
    official.is_official = True
    official.attractiveness *= 40.0  # 775K followers, far ahead of #2
    official.profile_description = "The official Bluesky account"
    # The official account exists from the platform's first days.
    official.signup_us = config.start_us + 2 * US_PER_DAY
    # Newspapers / journalists: next few most attractive accounts (200K+).
    for user in by_attr[1:6]:
        user.is_newspaper = True
        user.attractiveness *= 10.0
        user.profile_description = "newsroom account"
    # Most-blocked accounts: celebrity impersonator + propagandist.  Real
    # ones are long-lived (they accumulated ~15K blocks each); pick from
    # the earlier cohorts so blocks have time to pile up.
    cutoff = config.start_us + (config.end_us - config.start_us) // 2
    eligible = [u for u in users if not u.is_official and u.signup_us < cutoff]
    if len(eligible) < 2:
        eligible = [u for u in users if not u.is_official]
    for user in rng.sample(eligible, k=min(2, len(eligible))):
        user.is_impersonator = True
    # Special accounts persist through the study window.
    for user in users:
        if user.is_official or user.is_newspaper or user.is_impersonator:
            user.will_tombstone = False

"""Simulation time.

All timestamps are microseconds since the Unix epoch (matching TIDs).  The
simulation runs on real calendar dates — Bluesky launched in November 2022,
opened to the public in February 2024, and the paper measured through May
2024 — so analysis code can bucket by real months and days.
"""

from __future__ import annotations

import datetime

US_PER_SECOND = 1_000_000
US_PER_MINUTE = 60 * US_PER_SECOND
US_PER_HOUR = 60 * US_PER_MINUTE
US_PER_DAY = 24 * US_PER_HOUR

_EPOCH = datetime.datetime(1970, 1, 1, tzinfo=datetime.timezone.utc)


def date_us(text: str) -> int:
    """Microseconds for an ISO date ('2024-03-06') or datetime."""
    if "T" in text:
        moment = datetime.datetime.fromisoformat(text.replace("Z", "+00:00"))
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=datetime.timezone.utc)
    else:
        parts = [int(p) for p in text.split("-")]
        moment = datetime.datetime(*parts, tzinfo=datetime.timezone.utc)
    return int((moment - _EPOCH).total_seconds() * US_PER_SECOND)


def us_to_datetime(time_us: int) -> datetime.datetime:
    return _EPOCH + datetime.timedelta(microseconds=time_us)


def us_to_date(time_us: int) -> datetime.date:
    return us_to_datetime(time_us).date()


def month_key(time_us: int) -> str:
    """'YYYY-MM' bucket for a timestamp."""
    moment = us_to_datetime(time_us)
    return "%04d-%02d" % (moment.year, moment.month)


def day_key(time_us: int) -> str:
    """'YYYY-MM-DD' bucket for a timestamp."""
    moment = us_to_datetime(time_us)
    return "%04d-%02d-%02d" % (moment.year, moment.month, moment.day)


def iso_timestamp(time_us: int) -> str:
    """ISO-8601 rendering with millisecond precision and Z suffix."""
    moment = us_to_datetime(time_us)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3] + "Z"


def day_range(start_us: int, end_us: int):
    """Yield the start-of-day microsecond for every day in [start, end)."""
    day = (start_us // US_PER_DAY) * US_PER_DAY
    while day < end_us:
        if day >= start_us:
            yield day
        day += US_PER_DAY


class SimClock:
    """A monotonically advancing simulation clock."""

    def __init__(self, start_us: int):
        self._now_us = start_us

    @property
    def now_us(self) -> int:
        return self._now_us

    def advance_to(self, time_us: int) -> int:
        if time_us > self._now_us:
            self._now_us = time_us
        return self._now_us

    def advance(self, delta_us: int) -> int:
        self._now_us += delta_us
        return self._now_us

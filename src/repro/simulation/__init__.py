"""The synthetic Bluesky network.

Builds a complete, running AT Protocol deployment — PLC directory, PDSes,
Relay + Firehose, AppView, 62 Labelers, a feed-generator ecosystem across
five hosting platforms, DNS/WHOIS/web — populated by a generative user
model calibrated to every statistic the paper publishes (growth curve,
language communities, handle concentration, registrar shares, label mix
and reaction times, feed-service market shares).

Entry point: :class:`repro.simulation.world.World`, built from a
:class:`repro.simulation.config.SimulationConfig`.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.world import World

__all__ = ["SimulationConfig", "World"]

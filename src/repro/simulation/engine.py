"""The generative timeline engine, sharded across logical partitions.

Runs the world day by day from launch (November 2022) to the end of the
measurement window (May 2024): signups, daily sessions (posts / likes /
reposts / follows / blocks), feed creation, labeler startups and label
emission, handle changes, tombstones, and identity-churn noise — all
calibrated to the paper's published magnitudes (see config.py).

Execution model (mirrors AT Protocol federation): the population is
partitioned into ``config.sim_shards`` logical shards.  Each shard's day
loop mutates only shard-local state — its users' repositories on their
PDS — and queues everything with cross-shard visibility (firehose
commits, recent-post pool entries, feed routing, label emissions,
viewer-like updates) into a per-day :class:`~repro.simulation.sharding.DayBatch`.
At the barrier between day ticks the coordinator merges all batches with
the deterministic rule ``(virtual time, shard id, intra-shard order)``
and applies them: the relay assigns firehose sequence numbers, the
labeler services assign label sequence numbers, and the exchange pools
advance — all in merged order, so the outcome is independent of how the
shards were scheduled.

Two ways to run the same algorithm:

* ``workers=1`` (default, the in-process path): one :class:`SimProcess`
  owns every shard and runs them serially inside the calling process.
* ``workers=N``: shards are spread over N spawned worker processes (see
  :mod:`repro.simulation.workers`).  Each worker builds a full replica
  world from the picklable config, replays the global timeline (signups,
  labeler/feed starts, tombstones) identically from replicated RNG
  streams, and generates only its own shards' activity.

Because every stream is derived per shard (or replicated globally), and
the merge rule never looks at worker identity, both paths produce
byte-identical artefacts for the same seed.
"""

from __future__ import annotations

import hashlib
import math
import random
import time
from collections import deque
from typing import Optional

from repro.atproto.lexicon import (
    BLOCK,
    FOLLOW,
    LIKE,
    POST,
    PROFILE,
    REPOST,
    WHTWND_ENTRY,
)
from repro.services.feedgen import PostFeatures, tokenize
from repro.simulation import vocab
from repro.simulation.clock import (
    US_PER_DAY,
    US_PER_SECOND,
    date_us,
    day_range,
    iso_timestamp,
)
from repro.simulation.config import (
    LABEL_SNAPSHOT_US,
    PUBLIC_OPENING_US,
    SimulationConfig,
)
from repro.simulation.sampling import CumulativeSampler
from repro.simulation.sharding import (
    K_COMMIT,
    K_LABEL,
    K_POST,
    K_VIEWER_LIKE,
    POPULAR_POOL_MAXLEN,
    RECENT_POOL_MAXLEN,
    DayBatch,
    RecentPost,
    RecentPostPool,
    derive_seed,
    digest_batch,
    merged_items,
    shard_of,
)
from repro.simulation.labelers import (
    TRIGGER_AI,
    TRIGGER_FF14,
    TRIGGER_MISSING_ALT,
    TRIGGER_NSFW,
    TRIGGER_RANDOM,
    TRIGGER_SCREENSHOT,
    TRIGGER_TENOR,
)
from repro.simulation.world import UserState, World

# Daily per-active-user operation rates (April 2024 status: 500K DAU doing
# 3M likes / 800K posts / 300K reposts per day).
RATE_LIKES = 6.0
RATE_POSTS = 1.6
RATE_REPOSTS = 0.6
RATE_FOLLOWS_DAILY = 0.12
RATE_BLOCKS_DAILY = 0.02
FEED_LIKE_SHARE = 0.02  # share of likes that go to feed generators
LABELER_LIKE_SHARE = 0.002  # share of likes that go to labeler services
DELETE_LIKE_RATE = 0.004
DELETE_POST_RATE = 0.002
BOGUS_TIMESTAMP_RATE = 2.5e-4  # posts predating Bluesky (Section 7.1 bug)
WHTWND_RATE = 2e-5  # non-Bluesky records on the firehose (Section 4)
IDENTITY_NOISE_RATE = 0.0017  # identity events per commit (Table 1)

# Posts in the paper's labeler window at full scale, used to convert the
# manual labelers' expected totals (Table 6) into per-post probabilities.
FULL_SCALE_WINDOW_POSTS = 40_000_000.0

OFFICIAL_MANUAL_VALUES = ("spam", "intolerant", "threat", "sexual-figurative", "!takedown")
OFFICIAL_MANUAL_RATE = 3e-5
OFFICIAL_MANUAL_MEDIAN_S = 40_000.0

# Account-level label rates (per signup; Table 4 counts over 5.5M users).
ACCOUNT_LABEL_RATES = (
    ("!takedown", 2_643 / 5.5e6),
    ("spam", 1_067 / 5.5e6),
    ("impersonation", 575 / 5.5e6),
)

# Timeline milestones, parsed once at import time (active_fraction runs
# for every simulated day and used to re-parse these on each call).
RAMP_START_US = date_us("2023-01-01")
RAMP_END_US = date_us("2023-07-01")
DECLINE_START_US = date_us("2024-03-01")
DECLINE_END_US = date_us("2024-05-11")
HANDLE_CHURN_START_US = date_us("2024-03-01")
TOMBSTONE_WINDOW_START_US = date_us("2024-03-06")

# All labeler accounts live on the first default PDS shard, so their
# service-record commits belong to logical shard 0.
LABELER_SHARD = 0


def poisson(rng: random.Random, lam: float) -> int:
    """Knuth's method; fine for the small rates used here."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def active_fraction(day_us: int) -> float:
    """Share of joined users active on a given day (Figure 1 shape)."""
    if day_us < RAMP_START_US:
        return 0.35
    if day_us < RAMP_END_US:
        ramp = (day_us - RAMP_START_US) / (RAMP_END_US - RAMP_START_US)
        return 0.32 - 0.15 * ramp
    if day_us < PUBLIC_OPENING_US:
        return 0.125
    if day_us < DECLINE_START_US:
        return 0.145
    # Post-opening decline: the paper observes ~60K fewer daily actives
    # between March and May 2024.  (Clamped for extended-timeline runs,
    # e.g. the Brazil-ban scenario reaching into autumn 2024.)
    ramp = (day_us - DECLINE_START_US) / (DECLINE_END_US - DECLINE_START_US)
    return max(0.08, 0.135 - 0.038 * ramp)


class _Streams:
    """Every RNG stream the engine consumes, derived from the run seed.

    * ``schedule`` — handle-change and tombstone schedules, computed once
      at startup in every process.
    * ``lifecycle`` — per-day jitter for labeler/feed starts, handle
      changes, and tombstones; consumed identically in every process.
    * ``signup`` — per-signup decisions (profile, initial follows, spam,
      account labels); replayed identically in every process so the
      replicated global state (follow pool, samplers) stays in lockstep.
    * ``shards[s]`` — all activity generation for shard ``s``; consumed
      only by the process that owns the shard.
    * ``identity`` / ``finalize`` — coordinator-only phases.
    """

    def __init__(self, seed: int, n_shards: int):
        self.schedule = random.Random(derive_seed(seed, "schedule"))
        self.lifecycle = random.Random(derive_seed(seed, "lifecycle"))
        self.signup = random.Random(derive_seed(seed, "signup"))
        self.identity = random.Random(derive_seed(seed, "identity"))
        self.finalize = random.Random(derive_seed(seed, "finalize"))
        self.shards = [
            random.Random(derive_seed(seed, "shard", s)) for s in range(n_shards)
        ]


class ShardEngine:
    """Generates one shard's activity; mutates only shard-local state.

    All writes go to the shard's own users' repositories (commits on the
    actor's repo are intrinsically shard-local in AT Protocol); anything
    with cross-shard visibility is queued into the current day batch and
    applied by the coordinator at the barrier.
    """

    def __init__(self, sim: "SimProcess", shard_id: int, rng: random.Random):
        self.sim = sim
        self.world = sim.world
        self.shard_id = shard_id
        self.rng = rng
        # Engagement-weighted sampler over this shard's joined users; its
        # RNG stream is bit-identical to rng.choices(weights=...).
        self.active_sampler: CumulativeSampler[UserState] = CumulativeSampler()
        self.items: list = []
        # Same-day own posts: visible to this shard immediately, to other
        # shards only after the next barrier (see RecentPostPool docs).
        self._overlay_recent: list[RecentPost] = []
        self._overlay_popular: list[RecentPost] = []

    # -- batch plumbing ------------------------------------------------------

    def begin_day(self) -> None:
        self.items = []
        self._overlay_recent = []
        self._overlay_popular = []

    def take_batch(self, gen_wall_us: float = 0.0) -> DayBatch:
        batch = DayBatch(self.shard_id, self.items, gen_wall_us)
        self.items = []
        return batch

    def queue_commit(self, time_us: int, meta, counts_for_noise: bool) -> None:
        self.items.append((time_us, K_COMMIT, (meta.did, meta, counts_for_noise)))

    # -- daily activity ------------------------------------------------------

    def run_day_activity(self, day_us: int, rate_adj: float) -> None:
        joined = self.active_sampler.items
        if not joined:
            return
        target = int(active_fraction(day_us) * len(joined))
        if target <= 0:
            return
        rng = self.rng
        actives = self.active_sampler.sample_k(rng, target)
        seen: set[int] = set()
        for user in actives:
            if user.spec.index in seen or user.tombstoned or not user.joined:
                continue
            seen.add(user.spec.index)
            self._run_session(
                user, day_us + rng.randrange(US_PER_DAY), day_us + US_PER_DAY, rate_adj
            )

    def _run_session(
        self, user: UserState, session_us: int, day_end_us: int, rate_adj: float
    ) -> None:
        """One user session; op times are clamped to the session's day so
        snapshots scheduled at day boundaries stay causally consistent."""
        rng = self.rng
        cap = day_end_us - 1
        t = session_us
        for _ in range(poisson(rng, RATE_POSTS * rate_adj)):
            t = min(cap, t + rng.randrange(1, 180 * US_PER_SECOND))
            self._create_post(user, t)
        for _ in range(poisson(rng, RATE_LIKES * rate_adj)):
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_like(user, t)
        for _ in range(poisson(rng, RATE_REPOSTS * rate_adj)):
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_repost(user, t)
        for _ in range(poisson(rng, RATE_FOLLOWS_DAILY * rate_adj)):
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_follow(user, t)
        if rng.random() < RATE_BLOCKS_DAILY * rate_adj:
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_block(user, t)
        if user.spec.is_whitewind_blogger and rng.random() < 0.06:
            # The small WhiteWind long-form blogging community (Section 4,
            # non-Bluesky content on the firehose).
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_whitewind_entry(user, t)

    # -- content -------------------------------------------------------------

    def _create_post(self, user: UserState, now_us: int) -> None:
        rng = self.rng
        spec = user.spec
        attrs = {
            "nsfw": rng.random() < spec.nsfw_rate,
            "tenor": rng.random() < spec.tenor_rate,
            "screenshot": rng.random() < spec.screenshot_rate,
            "ai_tag": rng.random() < spec.ai_tag_rate,
            "ff14": rng.random() < spec.ff14_rate,
        }
        has_media = attrs["screenshot"] or rng.random() < spec.media_rate
        attrs["missing_alt"] = has_media and rng.random() < spec.missing_alt_rate

        topic = None
        if attrs["nsfw"]:
            topic = "nsfw"
        elif attrs["ff14"]:
            topic = "ff14"
        elif rng.random() < 0.4:
            topic = vocab.pick_weighted(rng, vocab.TOPICS)
        text = vocab.make_post_text(rng, spec.lang, topic)
        if attrs["ai_tag"]:
            text += " #aiart"

        created_at = iso_timestamp(now_us)
        if rng.random() < BOGUS_TIMESTAMP_RATE:
            # The timestamp bug the paper reported upstream: client-supplied
            # createdAt long before the platform (or the epoch) existed.
            year = rng.choice((1185, 1776, 1923))
            created_at = "%04d-07-01T00:00:00.000Z" % year

        record = {"$type": POST, "text": text, "createdAt": created_at}
        if rng.random() < 0.9:
            record["langs"] = [spec.lang]
        if has_media:
            alt = "" if attrs["missing_alt"] else "description of the image"
            record["embed"] = {"images": [{"alt": alt}]}
        elif attrs["tenor"]:
            record["embed"] = {"external": {"uri": "https://media.tenor.com/clip.gif"}}

        meta = user.pds.create_record(user.did, POST, record, now_us)
        self.queue_commit(now_us, meta, True)
        path = meta.ops[0][1]
        uri = "at://%s/%s" % (user.did, path)
        recent = RecentPost(
            uri, str(meta.ops[0][2]), user.did, now_us, popular=spec.attractiveness > 8.0
        )
        self._overlay_recent.append(recent)
        if recent.popular:
            self._overlay_popular.append(recent)

        features = PostFeatures(
            uri=uri,
            author=user.did,
            time_us=now_us,
            text=text,
            langs=tuple(record.get("langs", ())),
            tokens=frozenset(tokenize(text)),
            has_media=has_media or attrs["tenor"],
        )
        self.items.append((now_us, K_POST, (recent, features)))
        self._apply_labels(uri, attrs, now_us)

        if rng.random() < DELETE_POST_RATE:
            rkey = path.split("/", 1)[1]
            delete_us = now_us + 60 * US_PER_SECOND
            meta = user.pds.delete_record(user.did, POST, rkey, delete_us)
            self.queue_commit(delete_us, meta, True)

    def _create_whitewind_entry(self, user: UserState, now_us: int) -> None:
        record = {
            "$type": WHTWND_ENTRY,
            "content": "# " + vocab.make_post_text(self.rng, user.spec.lang),
            "title": "blog entry",
            "createdAt": iso_timestamp(now_us),
        }
        meta = user.pds.create_record(user.did, WHTWND_ENTRY, record, now_us)
        self.queue_commit(now_us, meta, True)

    def _create_like(self, user: UserState, now_us: int) -> None:
        rng = self.rng
        sim = self.sim
        roll = rng.random()
        if roll < FEED_LIKE_SHARE and sim.feed_sampler:
            target = sim.feed_sampler.sample(rng)
            subject_uri, subject_cid = target.uri, "feedgen"
        elif roll < FEED_LIKE_SHARE + LABELER_LIKE_SHARE and sim.labeler_like_sampler:
            subject_uri = sim.labeler_like_sampler.sample(rng)
            subject_cid = "labeler"
        else:
            post = self._pick_post()
            if post is None:
                return
            subject_uri, subject_cid = post.uri, post.cid
        record = {
            "$type": LIKE,
            "subject": {"uri": subject_uri, "cid": subject_cid},
            "createdAt": iso_timestamp(now_us),
        }
        meta = user.pds.create_record(user.did, LIKE, record, now_us)
        self.queue_commit(now_us, meta, True)
        self.items.append((now_us, K_VIEWER_LIKE, (user.did, subject_uri, now_us)))
        if rng.random() < DELETE_LIKE_RATE:
            rkey = meta.ops[0][1].split("/", 1)[1]
            delete_us = now_us + 120 * US_PER_SECOND
            meta = user.pds.delete_record(user.did, LIKE, rkey, delete_us)
            self.queue_commit(delete_us, meta, True)

    def _create_repost(self, user: UserState, now_us: int) -> None:
        post = self._pick_post()
        if post is None:
            return
        record = {
            "$type": REPOST,
            "subject": {"uri": post.uri, "cid": post.cid},
            "createdAt": iso_timestamp(now_us),
        }
        meta = user.pds.create_record(user.did, REPOST, record, now_us)
        self.queue_commit(now_us, meta, True)

    def _create_follow(self, user: UserState, now_us: int) -> None:
        target = self.sim.pick_follow_target(self.rng, user)
        if target is None:
            return
        record = {"$type": FOLLOW, "subject": target, "createdAt": iso_timestamp(now_us)}
        meta = user.pds.create_record(user.did, FOLLOW, record, now_us)
        self.queue_commit(now_us, meta, True)

    def _create_block(self, user: UserState, now_us: int) -> None:
        rng = self.rng
        sim = self.sim
        impersonators = sim.live_impersonator_pool()
        if impersonators and rng.random() < 0.7:
            target = rng.choice(impersonators).did
        elif sim.follow_pool:
            target = sim.follow_pool[rng.randrange(len(sim.follow_pool))]
        else:
            return
        if target == user.did:
            return
        record = {"$type": BLOCK, "subject": target, "createdAt": iso_timestamp(now_us)}
        meta = user.pds.create_record(user.did, BLOCK, record, now_us)
        self.queue_commit(now_us, meta, True)

    def _pick_post(self) -> Optional[RecentPost]:
        """Uniform draw over the barrier-synced pool plus the shard's own
        same-day overlay; cross-shard same-day posts become visible at the
        next barrier (the documented exchange-step semantics)."""
        rng = self.rng
        sim = self.sim
        popular_n = len(sim.popular_posts) + len(self._overlay_popular)
        if popular_n and rng.random() < 0.35:
            index = rng.randrange(popular_n)
            if index < len(sim.popular_posts):
                return sim.popular_posts[index]
            return self._overlay_popular[index - len(sim.popular_posts)]
        recent_n = len(sim.recent_posts) + len(self._overlay_recent)
        if recent_n:
            index = rng.randrange(recent_n)
            if index < len(sim.recent_posts):
                return sim.recent_posts[index]
            return self._overlay_recent[index - len(sim.recent_posts)]
        return None

    # -- labeling ------------------------------------------------------------

    def _apply_labels(self, uri: str, attrs: dict, now_us: int) -> None:
        """Roll label triggers for one post; emissions are queued and
        applied by the coordinator in merged order (label sequence numbers
        are assigned at application, like relay sequence numbers)."""
        rng = self.rng
        items = self.items
        for labeler_index, runtime in enumerate(self.world.labelers):
            spec = runtime.spec
            if runtime.service is None or now_us < spec.start_us:
                continue
            triggered_value: Optional[str] = None
            if spec.trigger == TRIGGER_NSFW and attrs["nsfw"]:
                if rng.random() < spec.trigger_probability:
                    roll = rng.random()
                    if roll < 0.62:
                        triggered_value = "porn"
                    elif roll < 0.87:
                        triggered_value = "sexual"
                    elif roll < 0.94:
                        triggered_value = "nudity"
                    else:
                        triggered_value = "graphic-media"
            elif spec.trigger == TRIGGER_MISSING_ALT and attrs["missing_alt"]:
                if rng.random() < spec.trigger_probability:
                    roll = rng.random()
                    triggered_value = "no-alt-text" if roll < 0.97 else spec.values[1]
            elif spec.trigger == TRIGGER_TENOR and attrs["tenor"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[0] if rng.random() < 0.8 else spec.values[1]
            elif spec.trigger == TRIGGER_SCREENSHOT and attrs["screenshot"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[rng.randrange(len(spec.values))]
            elif spec.trigger == TRIGGER_AI and attrs["ai_tag"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[0]
            elif spec.trigger == TRIGGER_FF14 and attrs["ff14"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[rng.randrange(len(spec.values))]
            elif spec.trigger == TRIGGER_RANDOM:
                probability = spec.trigger_probability / FULL_SCALE_WINDOW_POSTS
                if rng.random() < probability:
                    triggered_value = spec.value_for(rng)
            if triggered_value is None:
                continue
            delay_us = spec.reaction.sample_us(rng)
            items.append(
                (now_us, K_LABEL, (labeler_index, uri, triggered_value, now_us + delay_us, False))
            )
            if rng.random() < spec.rescind_rate:
                rescind_cts = now_us + delay_us + rng.randrange(1, 48 * 3600) * US_PER_SECOND
                items.append(
                    (now_us, K_LABEL, (labeler_index, uri, triggered_value, rescind_cts, True))
                )
        # The official labeler also runs slow, manual review queues.
        sim = self.sim
        official = sim.official_runtime
        if official is not None and official.service is not None:
            if rng.random() < OFFICIAL_MANUAL_RATE * 40 and rng.random() < 0.025:
                value = OFFICIAL_MANUAL_VALUES[rng.randrange(len(OFFICIAL_MANUAL_VALUES))]
                delay_us = int(
                    OFFICIAL_MANUAL_MEDIAN_S * math.exp(rng.gauss(0.0, 1.8)) * US_PER_SECOND
                )
                items.append(
                    (now_us, K_LABEL, (sim.official_index, uri, value, now_us + delay_us, False))
                )


class SimProcess:
    """Deterministic global replay plus generation for a set of shards.

    Every participating process — the coordinator and each spawned
    worker — builds one of these over its own copy of the world and
    replays the global timeline (signups, labeler/feed starts, handle
    changes, tombstones) identically from replicated RNG streams.  Only
    the *owned* shards write records and queue day-batch items; in the
    single-process path the coordinator owns every shard.
    """

    def __init__(self, world: World, owned_shards) -> None:
        self.world = world
        self.config: SimulationConfig = world.config
        self.n_shards = self.config.sim_shards
        self.streams = _Streams(self.config.seed, self.n_shards)
        self.owned = tuple(sorted(owned_shards))
        self.shard_engines = {
            s: ShardEngine(self, s, self.streams.shards[s]) for s in self.owned
        }

        # Replicated global state (identical in every process).
        self.joined: list[UserState] = []
        self.follow_pool: list[str] = []  # DIDs, multiplicity ∝ attractiveness
        self.spam_accounts: list[str] = []
        self.impersonators: list[UserState] = []
        self.official_did: Optional[str] = None
        self.newspaper_dids: list[str] = []
        self.recent_posts = RecentPostPool(RECENT_POOL_MAXLEN)
        self.popular_posts = RecentPostPool(POPULAR_POOL_MAXLEN)
        self.feed_sampler: CumulativeSampler = CumulativeSampler()
        self.labeler_like_sampler: CumulativeSampler[str] = CumulativeSampler()
        self.pds_by_did: dict[str, object] = {}
        # Lazily cached [u for u in impersonators if not u.tombstoned],
        # invalidated via the world's tombstone epoch.
        self._live_impersonators: Optional[list[UserState]] = None
        self._impersonator_epoch = -1
        # Per-viewer recent likes feeding personalized feeds.
        self.world.recent_likes_by_viewer = {}

        self.official_index = -1
        self.official_runtime = None
        for index, runtime in enumerate(world.labelers):
            if runtime.spec.is_official:
                self.official_index = index
                self.official_runtime = runtime
                break

        # Global schedules, identical in every process.
        self.signups = sorted(world.users, key=lambda u: u.spec.signup_us)
        self.feed_starts = sorted(world.feeds, key=lambda f: f.spec.created_us)
        self.labeler_starts = sorted(world.labelers, key=lambda l: l.spec.start_us)
        self.handle_changes = self._schedule_handle_changes()
        self.tombstones = self._schedule_tombstones()
        self._signup_i = self._labeler_i = self._feed_i = 0
        self._handle_i = self._tomb_i = 0

    def owns(self, shard_id: int) -> bool:
        return shard_id in self.shard_engines

    def engine_for_user(self, user: UserState) -> Optional[ShardEngine]:
        return self.shard_engines.get(shard_of(user.spec.index, self.n_shards))

    # -- schedules -----------------------------------------------------------

    def _schedule_handle_changes(self) -> list:
        rng = self.streams.schedule
        scheduled = []
        # Handle churn concentrates in early 2024, when alternative
        # subdomain providers appeared (Section 5, "User Handles Updates");
        # the paper observes all 44K updates inside its firehose window.
        churn_start = max(self.config.start_us, HANDLE_CHURN_START_US)
        for user in self.world.users:
            spec = user.spec
            if not spec.will_change_handle:
                continue
            start = max(spec.signup_us, churn_start)
            span = max(US_PER_DAY, (self.config.end_us - start) // (spec.handle_changes + 1))
            t = start
            for change in range(spec.handle_changes):
                t += rng.randrange(1, span)
                if t >= self.config.end_us:
                    break
                is_last = change == spec.handle_changes - 1
                if is_last and not spec.final_handle_custom:
                    new_handle = "%s.bsky.social" % spec.username
                else:
                    new_handle = "%s%d.handle.example" % (spec.username, change)
                scheduled.append((t, user, new_handle))
        scheduled.sort(key=lambda item: item[0])
        return scheduled

    def _schedule_tombstones(self) -> list:
        rng = self.streams.schedule
        scheduled = []
        window_start = TOMBSTONE_WINDOW_START_US
        for user in self.world.users:
            if not user.spec.will_tombstone:
                continue
            if rng.random() < 0.6 and user.spec.signup_us < window_start:
                # Most removals land in the measurement window (moderation
                # wave), matching Table 1's tombstone share.
                t = window_start + int(rng.random() * (self.config.end_us - window_start))
            else:
                t = user.spec.signup_us + int(rng.uniform(10, 200) * US_PER_DAY)
            if t < self.config.end_us:
                scheduled.append((t, user))
        scheduled.sort(key=lambda item: item[0])
        return scheduled

    # -- day phases ----------------------------------------------------------

    def begin_day(self, day_us: int) -> None:
        """Phase A: replay the day's signups and labeler/feed starts.

        Runs in every process; the owned shards additionally perform the
        associated repo writes and queue their commit events."""
        day_end = day_us + US_PER_DAY
        for engine in self.shard_engines.values():
            engine.begin_day()
        signups = self.signups
        while self._signup_i < len(signups) and signups[self._signup_i].spec.signup_us < day_end:
            self._do_signup(signups[self._signup_i])
            self._signup_i += 1
        lifecycle = self.streams.lifecycle
        starts = self.labeler_starts
        while self._labeler_i < len(starts) and starts[self._labeler_i].spec.start_us < day_end:
            runtime = starts[self._labeler_i]
            t = day_us + lifecycle.randrange(US_PER_DAY)
            engine = self.shard_engines.get(LABELER_SHARD)
            meta = self.world.start_labeler(runtime, t, write_record=engine is not None)
            self.pds_by_did[runtime.did] = self.world.pds_shards[0]
            if engine is not None and meta is not None:
                engine.queue_commit(t, meta, False)
            if runtime.spec.expected_likes:
                self.labeler_like_sampler.append(
                    "at://%s/app.bsky.labeler.service/self" % runtime.did,
                    float(runtime.spec.expected_likes),
                )
            self._labeler_i += 1
        feeds = self.feed_starts
        while self._feed_i < len(feeds) and feeds[self._feed_i].spec.created_us < day_end:
            runtime = feeds[self._feed_i]
            t = day_us + lifecycle.randrange(US_PER_DAY)
            creator = self.world.users[runtime.spec.creator_index]
            engine = self.engine_for_user(creator)
            meta = self.world.create_feed(runtime, t, write_record=engine is not None)
            if engine is not None and meta is not None:
                engine.queue_commit(t, meta, False)
            if runtime.announced:
                # Popular creators draw more likes to their feeds (the
                # paper's r=0.533 between feed likes and followers).
                boost = math.sqrt(max(1.0, creator.spec.attractiveness))
                self.feed_sampler.append(runtime, runtime.spec.like_weight * boost)
            self._feed_i += 1

    def generate_owned(self, day_us: int) -> list[DayBatch]:
        """Phase B: run the owned shards' day activity, one batch each."""
        rate_adj = self.config.activity_scale
        batches = []
        for shard_id in self.owned:
            engine = self.shard_engines[shard_id]
            wall0 = time.perf_counter()  # repro: allow(wallclock) -- per-shard timing telemetry; excluded from batch digests
            engine.run_day_activity(day_us, rate_adj)
            gen_wall_us = (time.perf_counter() - wall0) * 1e6  # repro: allow(wallclock) -- per-shard timing telemetry; excluded from batch digests
            batches.append(engine.take_batch(gen_wall_us))
        return batches

    def apply_cross_shard_update(self, update: list[RecentPost]) -> None:
        """Apply the previous day's merged pool entries (the exchange
        step's input on the worker side; the coordinator applies the same
        entries during its merge)."""
        for post in update:
            self.recent_posts.append(post)
            if post.popular:
                self.popular_posts.append(post)

    def apply_handles(self, day_us: int, publish: bool) -> None:
        """Phase D: handle changes scheduled for this day.

        Runs in every process (the lifecycle stream must advance in
        lockstep); only the coordinator publishes firehose events."""
        day_end = day_us + US_PER_DAY
        changes = self.handle_changes
        lifecycle = self.streams.lifecycle
        while self._handle_i < len(changes) and changes[self._handle_i][0] < day_end:
            _, user, new_handle = changes[self._handle_i]
            if user.joined and not user.tombstoned:
                t = day_us + lifecycle.randrange(US_PER_DAY)
                self.world.change_handle(user, new_handle, t, publish=publish)
            self._handle_i += 1

    def apply_tombstones(self, day_us: int, publish: bool) -> None:
        day_end = day_us + US_PER_DAY
        tombstones = self.tombstones
        lifecycle = self.streams.lifecycle
        while self._tomb_i < len(tombstones) and tombstones[self._tomb_i][0] < day_end:
            _, user = tombstones[self._tomb_i]
            if user.joined and not user.tombstoned:
                t = day_us + lifecycle.randrange(US_PER_DAY)
                self.world.tombstone_user(user, t)
                if publish:
                    self.world.relay.publish_tombstone(user.did, t)
            self._tomb_i += 1

    def replica_end_day(self, day_us: int) -> None:
        """Worker-side phase D: same state transitions, no events."""
        self.apply_handles(day_us, publish=False)
        self.apply_tombstones(day_us, publish=False)

    # -- signup --------------------------------------------------------------

    def _do_signup(self, user: UserState) -> None:
        now_us = user.spec.signup_us
        self.world.signup(user, now_us)
        self.joined.append(user)
        self.pds_by_did[user.did] = user.pds
        engine = self.engine_for_user(user)
        if engine is not None:
            engine.active_sampler.append(user, user.spec.engagement)
        multiplicity = 1 + min(50, int(user.spec.attractiveness))
        self.follow_pool.extend([user.did] * multiplicity)
        if user.spec.is_official:
            self.official_did = user.did
        elif user.spec.is_newspaper:
            self.newspaper_dids.append(user.did)
        if user.spec.is_impersonator:
            self.impersonators.append(user)
            self._live_impersonators = None  # pool changed; recompute lazily
        rng = self.streams.signup
        if user.spec.is_official or rng.random() < 0.6:
            self._set_profile(user, now_us, engine)
        self._initial_follows(user, now_us, engine)
        if rng.random() < 0.002:
            self.spam_accounts.append(user.did)
        self._maybe_label_account(user, now_us)

    def _set_profile(
        self, user: UserState, now_us: int, engine: Optional[ShardEngine]
    ) -> None:
        """Profile record + (possibly) an official label on it.  The
        decision draws come from the replicated signup stream so every
        process agrees; only the owning shard performs the write."""
        rng = self.streams.signup
        record = {
            "$type": PROFILE,
            "displayName": user.spec.username,
            "description": user.spec.profile_description
            or vocab.make_post_text(rng, user.spec.lang)[:60],
            "createdAt": iso_timestamp(now_us),
        }
        if engine is not None:
            meta = user.pds.create_record(user.did, PROFILE, record, now_us, rkey="self")
            engine.queue_commit(now_us, meta, True)
        # NSFW-heavy accounts attract official labels on their avatar/banner.
        if user.spec.nsfw_rate > 0.3:
            official = self.official_runtime
            if official is not None and official.service is not None and rng.random() < 0.5:
                uri = "at://%s/app.bsky.actor.profile/self" % user.did
                value = official.spec.profile_values[
                    rng.randrange(len(official.spec.profile_values))
                ]
                delay = official.spec.reaction.sample_us(rng) * 50
                official.service.emit(uri, value, now_us + delay)

    def pick_follow_target(self, rng: random.Random, user: UserState) -> Optional[str]:
        """Preferential attachment with explicit celebrity bias: the
        official Bluesky account accrues ~14% of all follows (775K of
        5.5M users), newspapers a few percent each (Section 4)."""
        roll = rng.random()
        if roll < 0.13:
            if self.official_did and self.official_did != user.did:
                return self.official_did
        elif roll < 0.21 and self.newspaper_dids:
            target = self.newspaper_dids[rng.randrange(len(self.newspaper_dids))]
            if target != user.did:
                return target
        if not self.follow_pool:
            return None
        target = self.follow_pool[rng.randrange(len(self.follow_pool))]
        return None if target == user.did else target

    def _initial_follows(
        self, user: UserState, now_us: int, engine: Optional[ShardEngine]
    ) -> None:
        rng = self.streams.signup
        count = min(user.spec.follow_initial, max(1, len(self.follow_pool) // 2))
        t = now_us
        for _ in range(count):
            target = self.pick_follow_target(rng, user)
            if target is None:
                continue
            t += rng.randrange(1, 30 * US_PER_SECOND)
            if engine is not None:
                record = {"$type": FOLLOW, "subject": target, "createdAt": iso_timestamp(t)}
                meta = user.pds.create_record(user.did, FOLLOW, record, t)
                engine.queue_commit(t, meta, True)

    def _maybe_label_account(self, user: UserState, now_us: int) -> None:
        official = self.official_runtime
        if official is None or official.service is None:
            return
        rng = self.streams.signup
        for value, rate in ACCOUNT_LABEL_RATES:
            if rng.random() < rate:
                delay_us = int(rng.uniform(1, 20) * US_PER_DAY)
                official.service.emit(user.did, value, now_us + delay_us)
        if user.spec.is_impersonator:
            delay_us = int(rng.uniform(1, 10) * US_PER_DAY)
            official.service.emit(user.did, "impersonation", now_us + delay_us)

    def live_impersonator_pool(self) -> list[UserState]:
        """The non-tombstoned impersonators, rebuilt only when an account
        joins the pool or any account is tombstoned (epoch check)."""
        epoch = self.world.tombstone_epoch
        cached = self._live_impersonators
        if cached is None or epoch != self._impersonator_epoch:
            cached = [u for u in self.impersonators if not u.tombstoned]
            self._live_impersonators = cached
            self._impersonator_epoch = epoch
        return cached

    def export_repo_car(self, did: str):
        """A repo CAR for an owned (or labeler) account, None if unknown."""
        pds = self.pds_by_did.get(did)
        if pds is None or not pds.has_account(did):
            return None
        repo = pds.repo(did)
        if repo.head is None:
            return None
        return repo.export_car()


class Engine:
    """Coordinator: executes a world's timeline over 1..N processes."""

    def __init__(
        self,
        world: World,
        workers: int = 1,
        worker_fault_plan=None,
        supervision=None,
    ):
        self.world = world
        self.config: SimulationConfig = world.config
        self.worker_fault_plan = worker_fault_plan
        self.supervision = supervision
        n_shards = self.config.sim_shards
        self.workers = max(1, min(int(workers), n_shards))
        owned = range(n_shards) if self.workers == 1 else ()
        self.sim = SimProcess(world, owned)
        registry = world.telemetry.registry
        self._m_days = registry.counter("sim_days_total")
        self._m_signups = registry.counter("sim_signups_total")
        self._m_commits = registry.counter("sim_commits_total")
        # Per-shard commit totals, merged into the one coordinator
        # registry (worker registries are replicas and are discarded).
        self._m_shard_commits = registry.counter(
            "sim_shard_commits_total", label_names=("shard",)
        )
        # Per-shard running digests: day_us -> (hex digest per shard).
        # The checkpoint journal embeds the latest entry; a resumed run
        # re-derives the log and verifies the journal's segment matches.
        self.digest_log: dict[int, tuple] = {}
        self._shard_hashers = [
            hashlib.sha256(b"shard-segment:%d" % s) for s in range(n_shards)
        ]
        self._pool = None

    # ---------------------------------------------------------------- run --

    def run(self, progress=None) -> None:
        config = self.config
        world = self.world
        sim = self.sim
        world.shard_digest_log = self.digest_log
        scheduled = sorted(world.scheduled_actions, key=lambda item: item[0])
        sched_i = 0

        # The engine replays the whole world deterministically on every
        # run (including after a resume), so its families are recounted
        # from zero rather than checkpointed — clearing keeps a resumed
        # run's totals equal to an uninterrupted run's.
        tracer = world.telemetry.tracer
        for family in (self._m_days, self._m_signups, self._m_commits, self._m_shard_commits):
            family.clear()

        # The pool is created inside the protected region so every exit
        # path — including a failure while the pool is only partially
        # started — runs shutdown() and cannot leak worker processes.
        pool = None
        try:
            if self.workers > 1:
                from repro.simulation.workers import WorkerPool

                pool = WorkerPool(
                    config,
                    self.workers,
                    fault_plan=self.worker_fault_plan,
                    supervision=self.supervision,
                    telemetry=world.telemetry,
                )
                world.relay.repo_reader = pool.repo_reader()
            self._pool = pool
            pending_update: list[RecentPost] = []
            for day_us in day_range(config.start_us, config.end_us):
                day_end = day_us + US_PER_DAY
                day_traced = tracer.enabled and tracer.sampled("sim-day")
                day_wall0 = tracer.wall_us() if day_traced else 0.0
                # Keep the service directory's clock roughly current so
                # time-windowed faults apply to calls made outside the
                # retry helper (which sets it precisely per attempt).
                world.services.now_us = day_us

                if pool is not None:
                    # Ship the day tick (plus the previous barrier's pool
                    # update) before replaying our own lifecycle, so the
                    # workers generate while the coordinator replays.
                    pool.send_day(day_us, pending_update)
                joined_before = len(sim.joined)
                sim.begin_day(day_us)
                self._m_signups.inc((), len(sim.joined) - joined_before)
                if pool is not None:
                    batches = pool.collect_batches()
                else:
                    batches = sim.generate_owned(day_us)

                if day_traced:
                    # shard.day spans: in worker mode the coordinator can
                    # only anchor them at collection time, so each span ends
                    # "now" and extends back by the worker-measured
                    # generation wall time (spans overlap when workers did).
                    now_us = tracer.wall_us()
                    for batch in batches:
                        tracer.complete(
                            "shard.day s%02d" % batch.shard_id,
                            "shard",
                            now_us - batch.gen_wall_us,
                            args={"shard": batch.shard_id, "items": len(batch.items)},
                            virtual_ts_us=day_us,
                            virtual_dur_us=US_PER_DAY,
                        )
                merge_wall0 = tracer.wall_us() if day_traced else 0.0
                pending_update, commits_today = self._merge_day(day_us, batches)
                if day_traced:
                    tracer.complete(
                        "relay.merge",
                        "shard",
                        merge_wall0,
                        args={"batches": len(batches), "workers": self.workers},
                        virtual_ts_us=day_us,
                        virtual_dur_us=US_PER_DAY,
                    )
                    # The exchange step proper: the merged pool update that
                    # crosses the barrier into the next day tick.
                    tracer.complete(
                        "shard.exchange",
                        "shard",
                        tracer.wall_us(),
                        args={"posts": len(pending_update)},
                        virtual_ts_us=day_us + US_PER_DAY - 1,
                        virtual_dur_us=0,
                    )

                sim.apply_handles(day_us, publish=True)
                sim.apply_tombstones(day_us, publish=True)
                self._identity_noise(day_us, commits_today)
                while sched_i < len(scheduled) and scheduled[sched_i][0] < day_end:
                    scheduled[sched_i][1](day_end - 1)
                    sched_i += 1
                self._m_days.inc()
                self._m_commits.inc((), commits_today)
                if day_traced:
                    tracer.complete(
                        "sim-day %s" % iso_timestamp(day_us)[:10],
                        "sim",
                        day_wall0,
                        args={"commits": commits_today, "workers": self.workers},
                        virtual_ts_us=day_us,
                        virtual_dur_us=US_PER_DAY,
                    )
                if progress is not None and day_us % (30 * US_PER_DAY) < US_PER_DAY:
                    progress("simulated through %s" % iso_timestamp(day_us)[:10])

            # Fire any actions scheduled at/after the end of the timeline.
            while sched_i < len(scheduled):
                scheduled[sched_i][1](config.end_us - 1)
                sched_i += 1

            self._finalize_labels()
            world.appview.sync_labels()
        finally:
            if pool is not None:
                world.relay.repo_reader = pool.close_reader()
                pool.shutdown()

    # --------------------------------------------------------------- merge --

    def _merge_day(self, day_us: int, batches: list[DayBatch]):
        """Apply one day's batches in merged order (the barrier step).

        Relay sequence numbers, label sequence numbers, pool contents,
        feed-routing order, and viewer-like order are all decided here,
        in ``(time_us, shard id, intra-shard seq)`` order — never by
        worker scheduling."""
        sim = self.sim
        world = self.world
        relay = world.relay
        pool = self._pool
        pds_by_did = sim.pds_by_did
        recent_likes = world.recent_likes_by_viewer
        labelers = world.labelers
        update: list[RecentPost] = []
        commits_today = 0
        shard_commits = dict.fromkeys(range(sim.n_shards), 0)
        for time_us, shard_id, _index, item in merged_items(batches):
            kind = item[1]
            if kind == K_COMMIT:
                did, meta, counts = item[2]
                relay.publish_commit(pds_by_did[did], did, meta)
                if pool is not None:
                    pool.note_repo_home(did, shard_id)
                shard_commits[shard_id] += 1
                if counts:
                    commits_today += 1
            elif kind == K_POST:
                post, features = item[2]
                sim.recent_posts.append(post)
                if post.popular:
                    sim.popular_posts.append(post)
                update.append(post)
                world.feed_router.route(features)
            elif kind == K_LABEL:
                labeler_index, uri, value, cts_us, neg = item[2]
                runtime = labelers[labeler_index]
                if neg:
                    runtime.service.rescind(uri, value, cts_us)
                else:
                    runtime.service.emit(uri, value, cts_us)
                    runtime.values_emitted.add(value)
            elif kind == K_VIEWER_LIKE:
                did, uri, like_us = item[2]
                likes = recent_likes.get(did)
                if likes is None:
                    likes = recent_likes[did] = deque(maxlen=20)
                likes.append((uri, like_us))
        for batch in batches:
            digest_batch(self._shard_hashers[batch.shard_id], batch)
        self.digest_log[day_us] = tuple(h.hexdigest() for h in self._shard_hashers)
        for shard_id, count in shard_commits.items():
            if count:
                self._m_shard_commits.inc(("s%02d" % shard_id,), count)
        return update, commits_today

    # ------------------------------------------------------------ labeling --

    def _finalize_labels(self) -> None:
        """Guarantee every by-construction-active labeler issued a label
        *visible by the label-dataset cutoff* (labels whose cts lies beyond
        2024-05-01 do not exist yet when the study closes)."""
        rng = self.sim.streams.finalize
        recent = self.sim.recent_posts
        for runtime in self.world.labelers:
            if runtime.service is None:
                continue
            key = runtime.spec.key
            should_be_active = not (key.startswith("idle") or key.startswith("broken"))
            visible = any(
                label.cts <= LABEL_SNAPSHOT_US
                for label in runtime.service.xrpc_subscribeLabels(cursor=0)
            )
            if should_be_active and not visible and recent:
                # Pick a post old enough that the (slow, manual) reaction
                # time survives the clamp to the dataset cutoff: a forced
                # label must not look like a sub-second automated one.
                margin = 5 * US_PER_DAY
                eligible = [
                    recent[i]
                    for i in range(len(recent))
                    if recent[i].time_us <= LABEL_SNAPSHOT_US - margin
                ]
                pool = eligible if eligible else recent.snapshot()
                post = pool[rng.randrange(len(pool))]
                delay_us = runtime.spec.reaction.sample_us(rng)
                # Emission happens while the labeler is live (possibly a
                # retroactive label on an old post) and before the cutoff.
                cts = min(
                    max(post.time_us + delay_us, runtime.spec.start_us + 3600 * US_PER_SECOND),
                    LABEL_SNAPSHOT_US - US_PER_SECOND,
                )
                runtime.service.emit(post.uri, runtime.spec.values[0], cts)

    # ------------------------------------------------------------ identity --

    def _identity_noise(self, day_us: int, commits_today: int) -> None:
        """Background #identity events (cache invalidations, key rotations)."""
        rng = self.sim.streams.identity
        joined = self.sim.joined
        expected = commits_today * IDENTITY_NOISE_RATE
        for _ in range(poisson(rng, expected)):
            if not joined:
                return
            user = joined[rng.randrange(len(joined))]
            if user.tombstoned:
                continue
            self.world.relay.publish_identity_event(
                user.did, day_us + rng.randrange(US_PER_DAY)
            )
